//! The headline result: per-node multi-threading hides remote latency.
//!
//! Runs the same nearest-neighbour stencil at one and four threads per
//! node and prints the execution-time breakdown. At one thread, every
//! remote page fault stalls the processor for ~1.1 ms; at four threads the
//! scheduler switches to another thread at each remote request and much of
//! the fault latency disappears from the critical path.
//!
//! ```text
//! cargo run --release --example latency_hiding
//! ```

use cvm_apps::sor::{self, SorConfig};
use cvm_dsm::{CvmBuilder, CvmConfig};

fn run(threads: usize) -> cvm_dsm::RunReport {
    let mut builder = CvmBuilder::new(CvmConfig::paper(8, threads));
    let body = sor::build(
        &mut builder,
        SorConfig {
            n: 382,
            iters: 8,
            omega: 1.15,
        },
    );
    builder.run(body)
}

fn main() {
    println!("running SOR on 8 nodes with 1 vs 4 threads per node...\n");
    let single = run(1);
    let multi = run(4);

    let frac = |r: &cvm_dsm::RunReport, f: fn(&cvm_dsm::NodeBreakdown) -> cvm_sim::SimDuration| {
        r.fraction(f) * 100.0
    };
    for (name, r) in [("1 thread/node", &single), ("4 threads/node", &multi)] {
        println!(
            "{name:>15}: {:8.1} ms | user {:4.1}% barrier {:4.1}% fault {:4.1}% lock {:4.1}% | switches {}",
            r.total_ms(),
            frac(r, |n| n.user),
            frac(r, |n| n.barrier),
            frac(r, |n| n.fault),
            frac(r, |n| n.lock),
            r.stats.thread_switches,
        );
    }
    let speedup = (single.total_ms() - multi.total_ms()) / single.total_ms() * 100.0;
    println!(
        "\nmulti-threading speedup: {speedup:.1}% \
         (non-overlapped fault wait: {:.0} ms -> {:.0} ms)",
        single.stats.wait_fault.as_ms_f64(),
        multi.stats.wait_fault.as_ms_f64()
    );
    println!(
        "request overlap: {} outstanding-fault events at 4 threads (0 possible at 1)",
        multi.stats.outstanding_faults
    );
}
