//! Quickstart: a complete CVM program in ~40 lines.
//!
//! Builds a 4-node cluster with 2 threads per node, allocates a shared
//! array, and runs an SPMD body that initializes, synchronizes, computes
//! and reduces — then prints the run report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cvm_dsm::{CvmBuilder, CvmConfig, ReduceOp};

fn main() {
    let mut builder = CvmBuilder::new(CvmConfig::paper(4, 2));
    let data = builder.alloc::<f64>(64 * 1024);
    let result = builder.alloc::<f64>(1);

    let report = builder.run(move |ctx| {
        // Global thread 0 initializes; everyone waits at the startup
        // rendezvous (statistics reset there).
        if ctx.global_id() == 0 {
            for i in 0..data.len() {
                data.write(ctx, i, 1.0);
            }
            result.write(ctx, 0, 0.0);
        }
        ctx.startup_done();

        // Each thread scales its own contiguous block.
        let (lo, hi) = ctx.partition(data.len());
        for i in lo..hi {
            let v = data.read(ctx, i);
            data.write(ctx, i, v * 2.0);
        }
        ctx.barrier();

        // Sum the block, aggregate per node via a local barrier (one
        // remote update per node), then combine globally under a lock.
        let local: f64 = (lo..hi).map(|i| data.read(ctx, i)).sum();
        let node_sum = ctx.local_reduce(ReduceOp::Sum, local);
        if ctx.local_id() == 0 {
            ctx.acquire(0);
            let acc = result.read(ctx, 0);
            result.write(ctx, 0, acc + node_sum);
            ctx.release(0);
        }
        ctx.barrier();

        if ctx.global_id() == 0 {
            let total = result.read(ctx, 0);
            assert_eq!(total, 2.0 * data.len() as f64);
            println!("sum over the cluster: {total}");
        }
    });

    println!("\n{report}");
    println!(
        "\nremote faults {} | diffs created {} used {} | barrier episodes {}",
        report.stats.remote_faults,
        report.stats.diffs_created,
        report.stats.diffs_used,
        report.stats.barriers_crossed
    );
}
