//! A microscope on the multiple-writer protocol: two nodes write disjoint
//! halves of the SAME page (false sharing), and the lazy-release-
//! consistency machinery — twins, diffs, write notices — merges them
//! without ping-ponging the page.
//!
//! ```text
//! cargo run --release --example protocol_trace
//! ```

use cvm_dsm::{CvmBuilder, CvmConfig};

fn main() {
    let mut cfg = CvmConfig::paper(2, 1);
    cfg.trace_capacity = 4096; // record the protocol's actions
    let mut builder = CvmBuilder::new(cfg);
    // 512 f64s = 4 KB: both halves live in one 8 KB coherence page.
    let shared = builder.alloc::<f64>(512);

    let report = builder.run(move |ctx| {
        if ctx.global_id() == 0 {
            for i in 0..512 {
                shared.write(ctx, i, 0.0);
            }
        }
        ctx.startup_done();

        for iter in 0..4 {
            // Node 0 writes the low half, node 1 the high half — of the
            // same page, concurrently. A single-writer protocol would
            // ship the page back and forth on every write.
            let base = ctx.node() * 256;
            for i in 0..256 {
                shared.write(ctx, base + i, (iter * 1000 + i) as f64);
            }
            ctx.barrier();
            // Both nodes read the other half: one diff each direction.
            let other = (1 - ctx.node()) * 256;
            let v = shared.read(ctx, other + 7);
            assert_eq!(v, (iter * 1000 + 7) as f64, "merged writes visible");
            // Reads must complete before the next iteration's writes, or
            // the program would race (LRC only orders accesses that are
            // ordered by synchronization).
            ctx.barrier();
        }
    });

    println!("false sharing on one page, 2 writers x 4 iterations:");
    println!(
        "  twins created      {:>4}  (one per writer per invalidation cycle)",
        report.stats.twins_created
    );
    println!(
        "  diffs created      {:>4}  (page-length comparisons against the twin)",
        report.stats.diffs_created
    );
    println!(
        "  diffs used         {:>4}  (applied at the faulting reader)",
        report.stats.diffs_used
    );
    println!(
        "  remote page faults {:>4}  (each fetches only the ~2 KB diff, not 8 KB)",
        report.stats.remote_faults
    );
    println!(
        "  total wire bytes   {:>4} KB",
        report.net.total_bytes() / 1024
    );
    println!("\nConcurrent diffs never overlapped: the program is race-free, so");
    println!("applying them in timestamp order reconstructs both halves exactly.");
    if let Some(trace) = &report.trace {
        println!("\nfirst protocol events of the run:");
        print!("{}", trace.render(16));
    }
}
