//! The §4.5 case study in miniature: why transparent multi-threading can
//! hurt, and what the local-barrier reduction (`r` modification) buys.
//!
//! Runs Water-Nsq in its unoptimized and optimized forms at four threads
//! per node and compares lock traffic, local contention (Block Same Lock)
//! and run time — Table 5's story in three lines.
//!
//! ```text
//! cargo run --release --example reduction_opt
//! ```

use cvm_apps::water_nsq::{self, WaterNsqConfig, WaterNsqOpt};
use cvm_dsm::{CvmBuilder, CvmConfig};
use cvm_net::MsgClass;

fn run(opt: WaterNsqOpt) -> cvm_dsm::RunReport {
    let mut cfg = WaterNsqConfig::small();
    cfg.opt = opt;
    let mut builder = CvmBuilder::new(CvmConfig::paper(8, 4));
    let body = water_nsq::build(&mut builder, cfg);
    builder.run(body)
}

fn main() {
    println!("Water-Nsq on 8 nodes x 4 threads, three source variants:\n");
    println!(
        "{:<14} {:>9} {:>10} {:>9} {:>9} {:>13}",
        "variant", "time(ms)", "lock msgs", "bs_lock", "bs_page", "diffs created"
    );
    for (name, opt) in [
        ("NoOpts", WaterNsqOpt::NoOpts),
        ("LocalBarrier", WaterNsqOpt::LocalBarrier),
        ("BothOpts", WaterNsqOpt::BothOpts),
    ] {
        let r = run(opt);
        println!(
            "{:<14} {:>9.1} {:>10} {:>9} {:>9} {:>13}",
            name,
            r.total_ms(),
            r.net.class_count(MsgClass::Lock),
            r.stats.block_same_lock,
            r.stats.block_same_page,
            r.stats.diffs_created,
        );
    }
    println!(
        "\nThe local-barrier variant aggregates each node's force updates into \
         a single\nper-node pass, so no two co-located threads ever block on the \
         same lock; the\nread-reordering variant additionally staggers page \
         accesses to cut Block Same Page."
    );
}
