//! End-to-end numeric validation: every application produces the same
//! result as its sequential oracle, across node/thread configurations and
//! under the full paper network (latency changes interleavings but must
//! never change results).

use cvm_apps::{barnes, fft, ocean, sor, swm, water_nsq, water_sp};

fn close(a: f64, b: f64, rel: f64) -> bool {
    let s = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= rel * s
}

macro_rules! check {
    ($got:expr, $want:expr, $what:expr) => {
        let (g, w) = ($got, $want);
        assert!(close(g, w, 1e-9), "{}: {g} vs {w}", $what);
    };
}

#[test]
fn sor_all_configs() {
    let cfg = sor::SorConfig {
        n: 46,
        iters: 4,
        omega: 1.12,
    };
    let want = sor::oracle(&cfg);
    for (nodes, threads) in [(1, 1), (1, 4), (4, 1), (2, 3), (4, 4)] {
        check!(
            sor::checksum_of_run(&cfg, nodes, threads),
            want,
            format!("SOR {nodes}x{threads}")
        );
    }
}

#[test]
fn fft_all_configs() {
    let cfg = fft::FftConfig { m: 32 };
    let want = fft::oracle(&cfg);
    for (nodes, threads) in [(1, 2), (2, 2), (4, 3), (8, 1)] {
        check!(
            fft::checksum_of_run(&cfg, nodes, threads),
            want,
            format!("FFT {nodes}x{threads}")
        );
    }
}

#[test]
fn barnes_all_configs() {
    let cfg = barnes::BarnesConfig {
        n: 80,
        steps: 2,
        theta: 0.7,
        dt: 0.01,
    };
    let want = barnes::oracle(&cfg);
    for (nodes, threads) in [(2, 1), (2, 2), (4, 2)] {
        check!(
            barnes::checksum_of_run(&cfg, nodes, threads),
            want,
            format!("Barnes {nodes}x{threads}")
        );
    }
}

#[test]
fn ocean_all_configs() {
    let cfg = ocean::OceanConfig {
        n: 24,
        steps: 2,
        sweeps: 1,
        coarse_sweeps: 2,
        use_reduction: true,
    };
    let want = ocean::oracle(&cfg);
    for (nodes, threads) in [(2, 2), (4, 1), (4, 4)] {
        check!(
            ocean::checksum_of_run(&cfg, nodes, threads),
            want,
            format!("Ocean {nodes}x{threads}")
        );
    }
}

#[test]
fn swm_all_configs() {
    let cfg = swm::SwmConfig { n: 20, steps: 2 };
    let want = swm::oracle(&cfg);
    for (nodes, threads) in [(2, 2), (4, 2), (5, 1)] {
        check!(
            swm::checksum_of_run(&cfg, nodes, threads),
            want,
            format!("SWM {nodes}x{threads}")
        );
    }
}

#[test]
fn water_nsq_all_variants_and_configs() {
    for opt in [
        water_nsq::WaterNsqOpt::NoOpts,
        water_nsq::WaterNsqOpt::LocalBarrier,
        water_nsq::WaterNsqOpt::BothOpts,
    ] {
        let cfg = water_nsq::WaterNsqConfig {
            n: 24,
            steps: 2,
            dt: 0.002,
            cutoff2: 0.3,
            opt,
        };
        let want = water_nsq::oracle(&cfg);
        for (nodes, threads) in [(2, 2), (3, 3)] {
            check!(
                water_nsq::checksum_of_run(&cfg, nodes, threads),
                want,
                format!("Water-Nsq {opt:?} {nodes}x{threads}")
            );
        }
    }
}

#[test]
fn water_sp_configs() {
    let cfg = water_sp::WaterSpConfig {
        n: 48,
        b: 4,
        steps: 2,
        dt: 0.002,
    };
    let want = water_sp::oracle(&cfg);
    for (nodes, threads) in [(2, 2), (4, 1)] {
        let got = water_sp::checksum_of_run(&cfg, nodes, threads);
        // Cell-list insertion order may differ under migration, so allow
        // a slightly looser tolerance than the elementwise-exact apps.
        assert!(
            close(got, want, 1e-6),
            "Water-Sp {nodes}x{threads}: {got} vs {want}"
        );
    }
}
