//! Structural invariants of the protocol, checked over real application
//! runs under the paper's network model.

use cvm_apps::{build_app, AppId, Scale};
use cvm_dsm::{CvmBuilder, CvmConfig};
use cvm_integration::assert_report_sane;
use cvm_net::MsgKind;

fn paper_run(app: AppId, nodes: usize, threads: usize) -> cvm_dsm::RunReport {
    let mut b = CvmBuilder::new(CvmConfig::paper(nodes, threads));
    let body = build_app(&mut b, app, Scale::Small);
    b.run(body)
}

#[test]
fn every_app_satisfies_wire_invariants() {
    for app in [AppId::Sor, AppId::WaterNsq] {
        let r = paper_run(app, 4, 2);
        assert_report_sane(&r);
    }
}

#[test]
fn aggregated_barrier_messages_are_per_node() {
    // With aggregation, one barrier episode on P nodes costs exactly
    // (P-1) arrivals + (P-1) releases, independent of the thread level.
    for threads in [1usize, 3] {
        let b = CvmBuilder::new(CvmConfig::paper(4, threads));
        let report = b.run(move |ctx| {
            ctx.startup_done();
            for _ in 0..5 {
                ctx.barrier();
            }
        });
        assert_eq!(report.stats.barriers_crossed, 5);
        assert_eq!(
            report.net.kind_count(MsgKind::BarrierArrive),
            5 * 3,
            "arrivals at {threads} threads"
        );
        assert_eq!(
            report.net.kind_count(MsgKind::BarrierRelease),
            5 * 3,
            "releases at {threads} threads"
        );
    }
}

#[test]
fn local_lock_queue_aggregates_remote_requests() {
    // All threads of one node hammer one remote lock: the local queue
    // must turn each node-burst into few remote requests, and grants must
    // equal requests-that-crossed-the-wire.
    let mut b = CvmBuilder::new(CvmConfig::paper(2, 4));
    let v = b.alloc::<u64>(1);
    let report = b.run(move |ctx| {
        if ctx.global_id() == 0 {
            v.write(ctx, 0, 0);
        }
        ctx.startup_done();
        for _ in 0..4 {
            ctx.acquire(5);
            let x = v.read(ctx, 0);
            v.write(ctx, 0, x + 1);
            ctx.release(5);
        }
        ctx.barrier();
        assert_eq!(v.read(ctx, 0), 32);
    });
    let grants = report.net.kind_count(MsgKind::LockGrant);
    assert_eq!(
        report.stats.remote_locks, grants,
        "every remote acquire gets exactly one grant"
    );
    // 8 threads x 4 acquires = 32 acquisitions, but far fewer remote
    // requests thanks to local hand-offs.
    assert!(
        report.stats.local_lock_handoffs + report.stats.local_lock_acquires > 0,
        "some acquisitions must be satisfied locally"
    );
    assert!(
        report.stats.remote_locks < 32,
        "local queue must aggregate ({} remote)",
        report.stats.remote_locks
    );
    assert_report_sane(&report);
}

#[test]
fn no_messages_without_sharing() {
    // Threads that only touch their own pages never need the wire after
    // startup (barriers excepted).
    let mut b = CvmBuilder::new(CvmConfig::paper(4, 2));
    let v = b.alloc::<f64>(8 * 1024 * 4); // whole pages per thread
    let report = b.run(move |ctx| {
        if ctx.global_id() == 0 {
            for i in 0..v.len() {
                v.write(ctx, i, 0.0);
            }
        }
        ctx.startup_done();
        let (lo, hi) = ctx.partition(v.len());
        for round in 0..3 {
            for i in lo..hi {
                v.write(ctx, i, round as f64);
            }
            ctx.barrier();
        }
    });
    assert_eq!(report.stats.remote_faults, 0, "no cross-node data traffic");
    assert_eq!(report.net.kind_count(MsgKind::DiffRequest), 0);
}

#[test]
fn write_notices_only_invalidate_actual_sharers() {
    // Node 1 writes one page; only readers of that page fault.
    let mut b = CvmBuilder::new(CvmConfig::paper(3, 1));
    let v = b.alloc::<f64>(3 * 1024); // 3 pages
    let report = b.run(move |ctx| {
        if ctx.global_id() == 0 {
            for i in 0..v.len() {
                v.write(ctx, i, 0.0);
            }
        }
        ctx.startup_done();
        if ctx.node() == 1 {
            v.write(ctx, 0, 42.0); // page 0 only
        }
        ctx.barrier();
        if ctx.node() == 2 {
            // Reads an untouched page: no fault.
            let _ = v.read(ctx, 2048);
        }
        ctx.barrier();
        if ctx.node() == 0 {
            assert_eq!(v.read(ctx, 0), 42.0);
        }
        ctx.barrier();
    });
    // Exactly one diff fetch: node 0 reading the invalidated page 0.
    assert_eq!(report.stats.remote_faults, 1);
    assert_report_sane(&report);
}
