//! Bit-for-bit determinism: the simulation's core promise. Same seed ⇒
//! identical statistics, traffic and timing; runs are reproducible across
//! repetitions regardless of OS scheduling of the coop threads.

use cvm_apps::{build_app, AppId, Scale};
use cvm_dsm::{CvmBuilder, CvmConfig};

fn run_once(app: AppId, seed: u64) -> cvm_dsm::RunReport {
    let mut cfg = CvmConfig::paper(4, 2);
    cfg.seed = seed;
    let mut b = CvmBuilder::new(cfg);
    let body = build_app(&mut b, app, Scale::Small);
    b.run(body)
}

#[test]
fn repeated_runs_are_identical() {
    for app in [AppId::Sor, AppId::WaterNsq, AppId::Ocean] {
        let a = run_once(app, 7);
        let b = run_once(app, 7);
        assert_eq!(a.stats, b.stats, "{app}: stats differ across runs");
        assert_eq!(a.net, b.net, "{app}: traffic differs across runs");
        assert_eq!(a.total_time, b.total_time, "{app}: timing differs");
        assert_eq!(a.nodes.len(), b.nodes.len());
        for (x, y) in a.nodes.iter().zip(&b.nodes) {
            assert_eq!(x, y, "{app}: node breakdowns differ");
        }
    }
}

#[test]
fn memsim_runs_are_identical_too() {
    let run = || {
        let mut cfg = CvmConfig::paper(2, 2);
        cfg.memsim_enabled = true;
        let mut b = CvmBuilder::new(cfg);
        let body = build_app(&mut b, AppId::Fft, Scale::Small);
        b.run(body)
    };
    let (a, b) = (run(), run());
    assert_eq!(a.mem, b.mem, "cache/TLB misses must be deterministic");
}
