//! The serving workload's determinism contract: `BENCH_serve.json` is a
//! pure function of the scenario — never of host workers, event-core
//! shards, or which run produced it.

use cvm_apps::kv::scenario::ServeScenario;
use cvm_apps::kv::KvConfig;
use cvm_harness::serve::{run_serve, ServeConfig};

/// A host-cheap two-cell ladder.
fn tiny() -> ServeScenario {
    let mut sc = ServeScenario::builtin("smoke").expect("builtin");
    sc.name = "tiny".into();
    sc.kv = KvConfig {
        keys: 2048,
        shards: 4,
        theta: 0.9,
        write_mix: 0.3,
        rate_rps: 2_000.0,
        duration_ms: 20,
        service_flops: 100,
    };
    sc.nodes = 2;
    sc.threads = 2;
    sc.sweep = vec![1_000.0, 3_000.0];
    sc
}

fn bytes_of(workers: usize, shards: usize, scenario: ServeScenario) -> String {
    run_serve(ServeConfig {
        scenario,
        workers,
        shards,
    })
    .to_json()
    .to_pretty()
}

#[test]
fn serve_artifact_is_byte_identical_across_workers_and_shards() {
    let golden = bytes_of(1, 1, tiny());
    for (workers, shards) in [(3, 1), (1, 4), (3, 4)] {
        assert_eq!(
            golden,
            bytes_of(workers, shards, tiny()),
            "workers={workers} shards={shards} changed the artifact bytes"
        );
    }
}

#[test]
fn serve_artifact_is_seed_stable_and_seed_sensitive() {
    let a = bytes_of(1, 1, tiny());
    let b = bytes_of(2, 1, tiny());
    assert_eq!(a, b, "same seed must reproduce the artifact");

    let mut reseeded = tiny();
    reseeded.seed ^= 0xDEAD_BEEF;
    let report = run_serve(ServeConfig::new(reseeded));
    let base = run_serve(ServeConfig::new(tiny()));
    // A different master seed draws different Poisson schedules and key
    // streams; the latency mass cannot collide.
    let sig = |r: &cvm_harness::serve::ServeReport| {
        r.cells
            .iter()
            .map(|c| (c.served, c.report.hist.request_ns.sum()))
            .collect::<Vec<_>>()
    };
    assert_ne!(sig(&base), sig(&report), "reseeding must change the run");
}

#[test]
fn table_checksum_is_topology_independent_per_cell() {
    // Same total thread count, different node split: per-thread request
    // streams are keyed by global thread id, so each ladder cell's table
    // checksum must agree across splits.
    let mut wide = tiny();
    wide.nodes = 4;
    wide.threads = 1;
    let narrow = run_serve(ServeConfig::new(tiny()));
    let split = run_serve(ServeConfig::new(wide));
    for (a, b) in narrow.cells.iter().zip(&split.cells) {
        assert_eq!(a.table_sum, b.table_sum, "rate {} rps", a.rate_rps);
        assert_eq!(a.served, b.served, "rate {} rps", a.rate_rps);
    }
}

#[test]
fn every_served_request_lands_in_the_latency_histogram() {
    let report = run_serve(ServeConfig::new(tiny()));
    for c in &report.cells {
        assert_eq!(c.report.hist.request_ns.count(), c.served);
        assert!(c.report.hist.request_ns.p999() >= c.report.hist.request_ns.p50());
    }
}
