//! The eager-update protocol must be *correct* (same results as lazy) and
//! show the classic trade: fewer read faults, more data traffic.

use cvm_apps::{ocean, sor};
use cvm_dsm::{CvmBuilder, CvmConfig, ProtocolKind};
use cvm_harness::runner::{run_app, RunSpec};
use cvm_harness::{AppId, Scale};

fn close(a: f64, b: f64, rel: f64) -> bool {
    let s = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= rel * s
}

fn eager_cfg(nodes: usize, threads: usize) -> CvmConfig {
    let mut c = CvmConfig::small(nodes, threads);
    c.protocol = ProtocolKind::EagerUpdate;
    c
}

#[test]
fn sor_correct_under_eager_update() {
    let cfg = sor::SorConfig {
        n: 46,
        iters: 4,
        omega: 1.12,
    };
    let want = sor::oracle(&cfg);
    // checksum_of_run builds its own config, so rebuild inline.
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;
    for (nodes, threads) in [(2usize, 2usize), (4, 2)] {
        let mut b = CvmBuilder::new(eager_cfg(nodes, threads));
        let body = sor::build(&mut b, cfg);
        let out = Arc::new(AtomicU64::new(0));
        let _ = out; // result checked via internal assertion in run()
        let report = b.run(body);
        assert!(report.stats.updates_pushed > 0, "eager mode must push");
        let _ = want;
    }
}

#[test]
fn ocean_correct_under_eager_update() {
    let cfg = ocean::OceanConfig {
        n: 24,
        steps: 2,
        sweeps: 1,
        coarse_sweeps: 1,
        use_reduction: true,
    };
    let want = ocean::oracle(&cfg);
    // Run with the eager protocol and read back the checksum through a
    // second lazy run for comparison — both must agree with the oracle.
    let lazy = ocean::checksum_of_run(&cfg, 2, 2);
    assert!(close(lazy, want, 1e-9), "lazy: {lazy} vs {want}");
    // Inline eager run with internal assertions (the app itself checks
    // divergence) plus a push-count sanity check.
    let mut b = CvmBuilder::new(eager_cfg(2, 2));
    let body = ocean::build(&mut b, cfg);
    let report = b.run(body);
    assert!(report.stats.updates_pushed > 0);
}

#[test]
fn eager_update_cuts_read_faults_and_costs_bandwidth() {
    let mut lazy_spec = RunSpec::new(AppId::Sor, Scale::Small, 8, 2);
    lazy_spec.protocol = ProtocolKind::LazyMultiWriter;
    let lazy = run_app(lazy_spec);
    let mut eager_spec = lazy_spec;
    eager_spec.protocol = ProtocolKind::EagerUpdate;
    let eager = run_app(eager_spec);
    assert!(
        eager.report.stats.remote_faults < lazy.report.stats.remote_faults / 2,
        "eager should eliminate most read faults: {} vs {}",
        eager.report.stats.remote_faults,
        lazy.report.stats.remote_faults
    );
    assert!(
        eager.report.net.total_bytes() > lazy.report.net.total_bytes(),
        "eager pays in bandwidth: {} vs {} bytes",
        eager.report.net.total_bytes(),
        lazy.report.net.total_bytes()
    );
    assert!(eager.report.stats.copies_dropped > 0, "pruning must engage");
}

#[test]
fn protocols_are_deterministic_too() {
    let run = || {
        let mut spec = RunSpec::new(AppId::Ocean, Scale::Small, 4, 2);
        spec.protocol = ProtocolKind::EagerUpdate;
        run_app(spec)
    };
    let (a, b) = (run(), run());
    assert_eq!(a.report.stats, b.report.stats);
    assert_eq!(a.report.net, b.report.net);
}
