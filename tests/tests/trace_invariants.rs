//! Cross-validation: the protocol event trace must agree with the
//! aggregate statistics, and event sequences must satisfy causal sanity
//! (a fetch completes only after a fault; barrier arrivals fill each
//! episode exactly).

use cvm_apps::{build_app, AppId, Scale};
use cvm_dsm::trace::TraceEvent;
use cvm_dsm::{CvmBuilder, CvmConfig};

fn traced_run(app: AppId, nodes: usize, threads: usize) -> cvm_dsm::RunReport {
    let mut cfg = CvmConfig::paper(nodes, threads);
    cfg.trace_capacity = 1_000_000;
    let mut b = CvmBuilder::new(cfg);
    let body = build_app(&mut b, app, Scale::Small);
    b.run(body)
}

#[test]
fn trace_counts_agree_with_stats() {
    for app in [AppId::Sor, AppId::WaterNsq] {
        let r = traced_run(app, 4, 2);
        let t = r.trace.as_ref().expect("trace enabled");
        assert_eq!(t.overflow(), 0, "trace capacity too small for the test");
        assert_eq!(
            t.events_total(),
            t.len() as u64 + t.overflow(),
            "{app}: events_total is recorded + dropped"
        );
        let count =
            |f: &dyn Fn(&TraceEvent) -> bool| t.iter().filter(|e| f(&e.event)).count() as u64;
        assert_eq!(
            count(&|e| matches!(e, TraceEvent::ThreadSwitch { .. })),
            r.stats.thread_switches,
            "{app}: switch events vs stats"
        );
        assert_eq!(
            count(&|e| matches!(e, TraceEvent::Fault { .. })),
            r.stats.remote_faults,
            "{app}: fault events vs stats"
        );
        assert_eq!(
            count(&|e| matches!(e, TraceEvent::FetchComplete { .. })),
            r.stats.remote_faults,
            "{app}: every initiated fetch completes exactly once"
        );
        assert_eq!(
            count(&|e| matches!(e, TraceEvent::LockGranted { .. })),
            r.stats.remote_locks,
            "{app}: grants vs remote locks"
        );
        assert_eq!(
            count(&|e| matches!(e, TraceEvent::LockLocalHandoff { .. })),
            r.stats.local_lock_handoffs,
            "{app}: local hand-offs"
        );
        assert_eq!(
            count(&|e| matches!(e, TraceEvent::BarrierReleased { .. })),
            r.stats.barriers_crossed,
            "{app}: barrier releases"
        );
        assert_eq!(
            count(&|e| matches!(e, TraceEvent::DiffCreated { .. })),
            r.stats.diffs_created,
            "{app}: diff creations"
        );
    }
}

#[test]
fn events_total_is_invariant_under_capacity() {
    let full = traced_run(AppId::Sor, 2, 2);
    let full_t = full.trace.as_ref().unwrap();
    assert_eq!(full_t.overflow(), 0);
    let truncated = {
        let mut cfg = CvmConfig::paper(2, 2);
        cfg.trace_capacity = 50;
        let mut b = CvmBuilder::new(cfg);
        let body = build_app(&mut b, AppId::Sor, Scale::Small);
        b.run(body)
    };
    let trunc_t = truncated.trace.as_ref().unwrap();
    assert_eq!(trunc_t.len(), 50);
    assert!(trunc_t.overflow() > 0, "capacity 50 must overflow");
    assert_eq!(
        trunc_t.events_total(),
        full_t.events_total(),
        "capacity changes the recorded/dropped split, never the total"
    );
}

#[test]
fn every_fetch_follows_a_fault_on_the_same_page() {
    let r = traced_run(AppId::Sor, 4, 2);
    let t = r.trace.as_ref().unwrap();
    let mut outstanding: std::collections::HashSet<(usize, usize)> =
        std::collections::HashSet::new();
    for e in t.iter() {
        match &e.event {
            TraceEvent::Fault { node, page, .. } => {
                assert!(
                    outstanding.insert((*node, page.0)),
                    "double fault without completion on n{node} {page}"
                );
            }
            TraceEvent::FetchComplete { node, page, .. } => {
                assert!(
                    outstanding.remove(&(*node, page.0)),
                    "fetch completion without a fault on n{node} {page}"
                );
            }
            _ => {}
        }
    }
    assert!(outstanding.is_empty(), "fetches left outstanding at exit");
}

#[test]
fn barrier_arrivals_fill_each_episode() {
    let nodes = 4;
    let r = traced_run(AppId::Sor, nodes, 3);
    let t = r.trace.as_ref().unwrap();
    let mut per_epoch: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    let mut released = 0u64;
    for e in t.iter() {
        match &e.event {
            TraceEvent::BarrierArrived { epoch, .. } => {
                *per_epoch.entry(*epoch).or_default() += 1;
            }
            TraceEvent::BarrierReleased { epoch, .. } => {
                // Epoch increments at release, so arrivals were tagged
                // with the previous value.
                assert_eq!(
                    per_epoch.get(&(epoch - 1)).copied(),
                    Some(nodes),
                    "episode {} arrivals",
                    epoch - 1
                );
                released += 1;
            }
            _ => {}
        }
    }
    assert_eq!(released, r.stats.barriers_crossed);
}

#[test]
fn per_node_scheduler_events_are_time_ordered() {
    let r = traced_run(AppId::WaterNsq, 4, 2);
    let t = r.trace.as_ref().unwrap();
    let mut last = std::collections::HashMap::new();
    for e in t.iter() {
        if let TraceEvent::ThreadSwitch { node, .. } = &e.event {
            if let Some(prev) = last.insert(*node, e.at) {
                assert!(e.at >= prev, "node {node} scheduler time went backwards");
            }
        }
    }
}
