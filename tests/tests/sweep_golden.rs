//! Golden determinism for the sweep's unit of work: the same seed and
//! configuration must yield **byte-identical** `RunReport` JSON — across
//! repeated runs, and across any worker count of the fan-out queue. This
//! is the property that lets `cvm sweep` parallelize freely without ever
//! changing its output.

use cvm_apps::{build_app, AppId, Scale};
use cvm_dsm::{CvmBuilder, CvmConfig};
use cvm_sim::workq;

/// Runs `app` on a 4-node cluster and returns its report serialized with
/// the byte-stable pretty printer.
fn report_json(app: AppId, threads: usize, seed: u64) -> String {
    let mut cfg = CvmConfig::small(4, threads);
    cfg.seed = seed;
    let mut b = CvmBuilder::new(cfg);
    let body = build_app(&mut b, app, Scale::Small);
    b.run(body).to_json(8).to_pretty()
}

#[test]
fn every_app_is_byte_identical_across_runs() {
    for app in AppId::ALL {
        let seed = workq::seed_split(0x60_1D, app as u64);
        let first = report_json(app, 2, seed);
        let second = report_json(app, 2, seed);
        assert_eq!(first, second, "{app}: report JSON differs between runs");
        assert!(
            first.contains("\"loss\""),
            "{app}: report JSON is missing the loss section"
        );
    }
}

#[test]
fn reports_are_byte_identical_across_worker_counts() {
    // The exact shape the sweep engine relies on: fan the apps out over
    // the work queue and compare the ordered JSON outputs for a serial
    // and a parallel run.
    let jobs = || AppId::ALL.to_vec();
    let run = |workers: usize| {
        workq::run_indexed(workers, jobs(), |i, app| {
            report_json(app, 2, workq::seed_split(0xD15C, i as u64))
        })
    };
    let serial = run(1);
    let parallel = run(3);
    assert_eq!(serial.len(), parallel.len());
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(
            s,
            p,
            "{}: JSON differs between 1 and 3 workers",
            AppId::ALL[i]
        );
    }
}

#[test]
fn golden_runs_are_not_vacuous() {
    // The byte-equality above would be meaningless if the serializer
    // collapsed distinct runs to the same bytes. With network jitter
    // enabled the seed must reach the timing, and thus the JSON.
    let with_jitter = |seed: u64| {
        let mut cfg = CvmConfig::small(4, 2);
        cfg.seed = seed;
        cfg.jitter_max = cvm_sim::SimDuration::from_us(20);
        let mut b = CvmBuilder::new(cfg);
        let body = build_app(&mut b, AppId::Sor, Scale::Small);
        b.run(body).to_json(8).to_pretty()
    };
    assert_eq!(with_jitter(1), with_jitter(1), "jittered runs still golden");
    assert_ne!(
        with_jitter(1),
        with_jitter(2),
        "seed does not reach the report; goldens are vacuous"
    );
}
