//! Protocol fuzzing: random SPMD programs executed on the DSM must agree
//! exactly with a sequential replay. This exercises the full
//! lazy-release-consistency machinery — twins, diffs, write notices,
//! vector timestamps, lock chains, barrier exchanges — under arbitrary
//! access patterns.

use cvm_dsm::{CvmBuilder, CvmConfig};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One thread's action within a round.
#[derive(Debug, Clone)]
struct RoundPlan {
    /// Indices (within the thread's own partition) to write this round.
    writes: Vec<u8>,
    /// Whether the thread takes the shared lock and bumps the counter.
    bump_counter: bool,
}

fn arb_round() -> impl Strategy<Value = RoundPlan> {
    (proptest::collection::vec(any::<u8>(), 0..12), any::<bool>()).prop_map(
        |(writes, bump_counter)| RoundPlan {
            writes,
            bump_counter,
        },
    )
}

/// Per-thread plans for every round: `plans[round][thread]`.
fn arb_plans(threads: usize) -> impl Strategy<Value = Vec<Vec<RoundPlan>>> {
    proptest::collection::vec(
        proptest::collection::vec(arb_round(), threads),
        1..5, // rounds
    )
}

/// Deterministic value written by `thread` at `round` to slot `k`.
fn value_of(round: usize, thread: usize, k: u8) -> u64 {
    (round as u64) << 32 | (thread as u64) << 16 | k as u64
}

fn run_dsm(
    nodes: usize,
    tpn: usize,
    len: usize,
    plans: Vec<Vec<RoundPlan>>,
) -> (Vec<u64>, u64) {
    let threads = nodes * tpn;
    let mut b = CvmBuilder::new(CvmConfig::small(nodes, tpn));
    let data = b.alloc::<u64>(len);
    let counter = b.alloc::<u64>(1);
    let out = Arc::new(
        (0..len + 1)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>(),
    );
    let out2 = Arc::clone(&out);
    let plans = Arc::new(plans);
    b.run(move |ctx| {
        if ctx.global_id() == 0 {
            for i in 0..len {
                data.write(ctx, i, 0);
            }
            counter.write(ctx, 0, 0);
        }
        ctx.startup_done();
        let me = ctx.global_id();
        let (lo, hi) = ctx.partition(len);
        for (round, per_thread) in plans.iter().enumerate() {
            let plan = &per_thread[me];
            for &k in &plan.writes {
                if hi > lo {
                    let idx = lo + (k as usize) % (hi - lo);
                    data.write(ctx, idx, value_of(round, me, k));
                }
            }
            if plan.bump_counter {
                ctx.acquire(3);
                let c = counter.read(ctx, 0);
                counter.write(ctx, 0, c + 1 + me as u64);
                ctx.release(3);
            }
            ctx.barrier();
            // Every thread reads a rotating sample of the whole array —
            // cross-node reads that must observe the barrier-ordered
            // writes of every other thread.
            let probe = (round * 7 + me) % len;
            let _ = data.read(ctx, probe);
        }
        ctx.barrier();
        if me == 0 {
            for i in 0..len {
                out2[i].store(data.read(ctx, i), Ordering::SeqCst);
            }
            out2[len].store(counter.read(ctx, 0), Ordering::SeqCst);
        }
        let _ = threads;
    });
    let vals: Vec<u64> = (0..len).map(|i| out[i].load(Ordering::SeqCst)).collect();
    let cnt = out[len].load(Ordering::SeqCst);
    (vals, cnt)
}

/// Sequential replay of the same plans.
fn replay(threads: usize, len: usize, plans: &[Vec<RoundPlan>]) -> (Vec<u64>, u64) {
    let mut data = vec![0u64; len];
    let mut counter = 0u64;
    for (round, per_thread) in plans.iter().enumerate() {
        for (me, plan) in per_thread.iter().enumerate() {
            let (lo, hi) = cvm_dsm::ctx::partition_for(me, threads, len);
            for &k in &plan.writes {
                if hi > lo {
                    let idx = lo + (k as usize) % (hi - lo);
                    data[idx] = value_of(round, me, k);
                }
            }
            if plan.bump_counter {
                counter += 1 + me as u64;
            }
        }
    }
    (data, counter)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case spins up a full cluster; keep it bounded
        .. ProptestConfig::default()
    })]

    /// Random barrier/lock programs: the DSM's final memory image equals
    /// the sequential replay, for several cluster shapes, including ones
    /// where partitions share pages heavily (small arrays).
    #[test]
    fn random_programs_match_replay(
        plans in arb_plans(6),
        len in 8usize..600,
    ) {
        for (nodes, tpn) in [(2usize, 3usize), (3, 2)] {
            let threads = nodes * tpn;
            prop_assert_eq!(threads, 6);
            let (got, got_cnt) = run_dsm(nodes, tpn, len, plans.clone());
            let (want, want_cnt) = replay(threads, len, &plans);
            prop_assert_eq!(&got, &want, "memory image differs ({}x{})", nodes, tpn);
            prop_assert_eq!(got_cnt, want_cnt, "lock-counter differs");
        }
    }
}
