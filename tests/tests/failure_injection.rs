//! Failure injection: the DSM must produce identical results over a lossy
//! wire — CVM's end-to-end reliability over UDP, exercised through the
//! full protocol stack.

use cvm_apps::{sor, water_nsq};
use cvm_dsm::{CvmBuilder, CvmConfig};
use cvm_net::{AdaptiveRto, LossConfig, RtoPolicy};
use cvm_sim::SimDuration;

fn lossy(nodes: usize, threads: usize, pct: f64) -> CvmConfig {
    let mut c = CvmConfig::small(nodes, threads);
    c.loss = Some(LossConfig {
        loss_probability: pct,
        rto: RtoPolicy::Adaptive(AdaptiveRto {
            initial: SimDuration::from_ms(3),
            ..AdaptiveRto::default()
        }),
        max_retries: 64,
    });
    c
}

#[test]
fn sor_survives_ten_percent_loss() {
    let cfg = sor::SorConfig {
        n: 46,
        iters: 3,
        omega: 1.12,
    };
    let want = sor::oracle(&cfg);
    // The app asserts its own checksum internally; we drive it over a
    // lossy wire and verify it completes with the same physics.
    let mut b = CvmBuilder::new(lossy(3, 2, 0.10));
    let body = sor::build(&mut b, cfg);
    let report = b.run(body);
    assert!(report.stats.remote_faults > 0);
    let lazy = sor::checksum_of_run(&cfg, 3, 2);
    assert!(
        (lazy - want).abs() <= 1e-9 * want.abs().max(1.0),
        "reference run disagrees with oracle"
    );
}

#[test]
fn locks_stay_exact_under_heavy_loss() {
    // A lock-protected counter is the acid test: every lost grant or
    // duplicated request would corrupt the count or deadlock.
    let mut b = CvmBuilder::new(lossy(3, 2, 0.25));
    let v = b.alloc::<u64>(1);
    let report = b.run(move |ctx| {
        if ctx.global_id() == 0 {
            v.write(ctx, 0, 0);
        }
        ctx.startup_done();
        for _ in 0..4 {
            ctx.acquire(2);
            let x = v.read(ctx, 0);
            v.write(ctx, 0, x + 1);
            ctx.release(2);
        }
        ctx.barrier();
        assert_eq!(v.read(ctx, 0), 24, "6 threads x 4 increments");
    });
    assert!(report.stats.remote_locks > 0);
}

#[test]
fn water_nsq_correct_under_loss() {
    let cfg = water_nsq::WaterNsqConfig {
        n: 24,
        steps: 2,
        dt: 0.002,
        cutoff2: 0.3,
        opt: water_nsq::WaterNsqOpt::BothOpts,
    };
    // Runs to completion with internal divergence assertions intact.
    let mut b = CvmBuilder::new(lossy(2, 2, 0.15));
    let body = water_nsq::build(&mut b, cfg);
    let report = b.run(body);
    assert!(report.stats.barriers_crossed > 0);
}

#[test]
fn thirty_percent_loss_is_invisible_to_the_application() {
    // A full application run over a wire dropping nearly one in three
    // transmissions must produce the *identical* result as the lossless
    // run — and the report must show the reliability layer earned it.
    let cfg = sor::SorConfig {
        n: 46,
        iters: 3,
        omega: 1.12,
    };
    let (clean, clean_report) = sor::checksum_of_config(&cfg, CvmConfig::small(4, 2));
    let (noisy, noisy_report) = sor::checksum_of_config(&cfg, lossy(4, 2, 0.30));
    assert_eq!(
        noisy.to_bits(),
        clean.to_bits(),
        "loss changed the application result"
    );
    assert!(
        (clean - sor::oracle(&cfg)).abs() <= 1e-9 * clean.abs().max(1.0),
        "lossless run disagrees with the sequential oracle"
    );
    // The loss counters ride on the RunReport: the clean run is silent,
    // the noisy run shows real drops, retransmissions and dup-kills.
    assert_eq!(clean_report.loss, cvm_net::LossStats::default());
    assert!(noisy_report.loss.dropped > 0, "30% loss dropped nothing?");
    assert!(
        noisy_report.loss.retransmissions > 0,
        "drops were never repaired"
    );
    assert!(noisy_report.total_time > clean_report.total_time);
}

#[test]
fn lossy_runs_are_deterministic() {
    let run = || {
        let mut b = CvmBuilder::new(lossy(2, 2, 0.2));
        let v = b.alloc::<u64>(256);
        b.run(move |ctx| {
            ctx.startup_done();
            let (lo, hi) = ctx.partition(256);
            for r in 0..3u64 {
                for i in lo..hi {
                    v.write(ctx, i, r + i as u64);
                }
                ctx.barrier();
            }
            let sum: u64 = (0..256).map(|i| v.read(ctx, i)).sum();
            assert_eq!(sum, (0..256u64).map(|i| 2 + i).sum::<u64>());
        })
    };
    let (a, b) = (run(), run());
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.total_time, b.total_time);
}
