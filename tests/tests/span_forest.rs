//! End-to-end invariants of the causal span forest: every span closes
//! on healthy runs, children link to real parents, the per-span segment
//! split sums exactly to the duration, the whole-run critical path
//! partitions the wall time exactly, recording is observationally
//! inert, and the forest serializes byte-identically across worker
//! counts and under fault plans.

use cvm_apps::{build_app, AppId, Scale};
use cvm_dsm::{CvmBuilder, CvmConfig, FaultPlan, ProtocolKind, RunReport, SpanKind};
use cvm_harness::explain::{explain, Mode};
use cvm_harness::sweep::{run_sweep, SweepConfig};

fn run_spans(
    app: AppId,
    nodes: usize,
    threads: usize,
    protocol: ProtocolKind,
    faults: Option<&str>,
) -> RunReport {
    let mut cfg = CvmConfig::paper(nodes, threads);
    cfg.protocol = protocol;
    cfg.spans = true;
    if let Some(plan) = faults {
        cfg.faults = Some(FaultPlan::named(plan, nodes).expect("catalog plan"));
    }
    let mut b = CvmBuilder::new(cfg);
    let body = build_app(&mut b, app, Scale::Small);
    b.run(body)
}

#[test]
fn healthy_runs_close_every_span_and_segments_sum_exactly() {
    for protocol in ProtocolKind::ALL {
        let r = run_spans(AppId::Sor, 4, 2, protocol, None);
        let spans = r.spans.as_ref().expect("spans recorded");
        assert!(!spans.is_empty(), "{protocol}: a real run produces spans");
        assert_eq!(
            spans.open_count(),
            0,
            "{protocol}: healthy runs close every span"
        );
        for s in spans.iter() {
            assert!(s.closed, "{protocol}: span {} left open", s.id);
            assert_eq!(
                s.segments().total(),
                s.duration_ns(),
                "{protocol}: span {} ({:?}) segments must sum to its duration",
                s.id,
                s.kind
            );
        }
    }
}

#[test]
fn parent_links_resolve_and_pulls_nest_inside_their_fault() {
    let r = run_spans(AppId::WaterNsq, 4, 2, ProtocolKind::LazyMultiWriter, None);
    let spans = r.spans.as_ref().unwrap();
    for s in spans.iter() {
        if s.parent == 0 {
            continue;
        }
        let p = spans
            .get(s.parent)
            .unwrap_or_else(|| panic!("span {}: dangling parent {}", s.id, s.parent));
        assert!(p.id < s.id, "parents are opened before their children");
        assert!(
            p.open <= s.open,
            "span {}: opens at {:?} before its parent's {:?}",
            s.id,
            s.open,
            p.open
        );
        // Pulls and retransmission bursts are temporally contained in
        // their parent; a notice→refault link (RemoteFault with a
        // causal parent) may outlive the span that invalidated it.
        if matches!(
            s.kind,
            SpanKind::PagePull | SpanKind::DiffPull | SpanKind::Retransmit
        ) && s.closed
            && p.closed
        {
            assert!(
                s.close <= p.close,
                "span {} ({:?}) closes after its parent {}",
                s.id,
                s.kind,
                p.id
            );
        }
    }
    // Lock acquires classify as 2-hop or 3-hop, matching the stats.
    let lock_spans = spans
        .iter()
        .filter(|s| s.kind == SpanKind::LockAcquire)
        .count() as u64;
    assert_eq!(lock_spans, r.stats.remote_locks);
    for s in spans.iter().filter(|s| s.kind == SpanKind::LockAcquire) {
        assert!(
            s.hop_count == 2 || s.hop_count == 3,
            "lock span {} has hop count {}",
            s.id,
            s.hop_count
        );
    }
}

#[test]
fn notice_refault_chain_links_across_synchronization() {
    // SOR's boundary rows are invalidated by barrier write notices, so
    // some remote faults must be caused by (and linked under) an
    // earlier synchronization span.
    let r = run_spans(AppId::Sor, 4, 2, ProtocolKind::LazyMultiWriter, None);
    let spans = r.spans.as_ref().unwrap();
    assert!(
        spans
            .iter()
            .any(|s| s.kind == SpanKind::RemoteFault && s.parent != 0),
        "no remote fault carries a causal parent"
    );
}

#[test]
fn span_counts_match_protocol_statistics() {
    let r = run_spans(AppId::Sor, 4, 2, ProtocolKind::LazyMultiWriter, None);
    let spans = r.spans.as_ref().unwrap();
    let count = |k: SpanKind| spans.iter().filter(|s| s.kind == k).count() as u64;
    assert_eq!(count(SpanKind::RemoteFault), r.stats.remote_faults);
    assert_eq!(
        count(SpanKind::Barrier),
        r.stats.barriers_crossed * 4,
        "one barrier episode per node per crossing"
    );
}

#[test]
fn critical_path_partitions_wall_time_exactly() {
    for app in [AppId::Sor, AppId::WaterSp] {
        let r = run_spans(app, 4, 2, ProtocolKind::LazyMultiWriter, None);
        let spans = r.spans.as_ref().unwrap();
        let cp = spans.critical_path(r.total_time);
        assert_eq!(cp.total, r.total_time.as_ns());
        assert_eq!(
            cp.reconstructed(),
            cp.total,
            "{app}: covered + compute must equal the wall time exactly"
        );
        assert!(cp.compute > 0, "{app}: some time is pure compute");
        let covered: u64 = cp.by_kind.iter().map(|(_, ns)| ns).sum();
        assert!(covered > 0, "{app}: some time is protocol-covered");
    }
}

#[test]
fn spans_are_observationally_inert() {
    let run = |spans: bool| {
        let mut cfg = CvmConfig::paper(4, 2);
        cfg.spans = spans;
        let mut b = CvmBuilder::new(cfg);
        let body = build_app(&mut b, AppId::Sor, Scale::Small);
        b.run(body)
    };
    let off = run(false);
    let on = run(true);
    assert!(off.spans.is_none());
    assert!(on.spans.is_some());
    assert_eq!(off.total_time, on.total_time, "spans never bend time");
    assert_eq!(off.stats, on.stats);
    assert_eq!(off.net, on.net);
}

#[test]
fn forest_is_byte_identical_across_sweep_worker_counts() {
    let sweep = |workers: usize| {
        let cfg = SweepConfig {
            apps: vec![AppId::Sor],
            nodes: vec![2, 4],
            threads: vec![1, 2],
            workers,
            spans: true,
            ..SweepConfig::default()
        };
        run_sweep(cfg).to_json().to_pretty()
    };
    assert_eq!(
        sweep(1),
        sweep(3),
        "span summaries must not depend on the worker count"
    );
}

#[test]
fn retransmission_bursts_become_spans_under_fault_plans() {
    let r = run_spans(
        AppId::Sor,
        4,
        2,
        ProtocolKind::LazyMultiWriter,
        Some("loss-10"),
    );
    let spans = r.spans.as_ref().unwrap();
    let retrans: Vec<_> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::Retransmit)
        .collect();
    assert!(
        !retrans.is_empty(),
        "10% loss must retransmit something into the forest"
    );
    for s in &retrans {
        assert!(s.closed);
        assert!(s.hop_count >= 1, "retry count recorded");
        assert_ne!(s.parent, 0, "bursts hang off the span they delayed");
        assert!(spans.get(s.parent).is_some());
    }
    // And the whole forest is still deterministic under the plan.
    let again = run_spans(
        AppId::Sor,
        4,
        2,
        ProtocolKind::LazyMultiWriter,
        Some("loss-10"),
    );
    assert_eq!(
        r.to_json(10).to_pretty(),
        again.to_json(10).to_pretty(),
        "fault plans are deterministic, so the forest must be too"
    );
}

#[test]
fn explain_renders_three_hop_locks_and_retransmissions() {
    let r = run_spans(
        AppId::WaterNsq,
        4,
        2,
        ProtocolKind::LazyMultiWriter,
        Some("loss-10"),
    );
    let spans = r.spans.as_ref().unwrap();
    let doc = r.to_json(10);
    let three_hop = spans
        .iter()
        .find(|s| s.kind == SpanKind::LockAcquire && s.hop_count == 3)
        .expect("contended locks on 4 nodes take the 3-hop path");
    let text = explain(&doc, &Mode::Span(three_hop.id)).unwrap();
    assert!(text.contains("3-hop"), "explain labels the forward chain");
    let retrans = spans
        .iter()
        .find(|s| s.kind == SpanKind::Retransmit)
        .expect("loss produces retransmit spans");
    let text = explain(&doc, &Mode::Span(retrans.id)).unwrap();
    assert!(text.contains("retransmit"));
    assert!(
        text.contains("under span"),
        "the burst renders beneath its causal parent"
    );
}
