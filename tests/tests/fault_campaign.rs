//! The fault-injection campaign, end to end through the public stack:
//! determinism across worker counts, graceful degradation through the
//! full driver, and the inertness of an empty fault plan all the way up
//! at the sweep level.

use cvm_apps::{sor, AppId};
use cvm_dsm::{CvmBuilder, CvmConfig, FaultPlan, ProtocolKind};
use cvm_harness::faults::{run_campaign, FaultsConfig};
use cvm_harness::sweep::{run_sweep, SweepConfig};
use cvm_net::{AdaptiveRto, LossConfig, Partition, RtoPolicy};
use cvm_sim::VirtualTime;

#[test]
fn tiny_campaign_is_byte_identical_across_worker_counts() {
    let cfg = |workers| FaultsConfig {
        apps: vec![AppId::Sor, AppId::Fft],
        protocols: vec![ProtocolKind::LazyMultiWriter, ProtocolKind::HomeLazy],
        plans: vec!["none", "loss-10", "storm"],
        nodes: 2,
        threads: 2,
        workers,
        ..FaultsConfig::default()
    };
    let serial = run_campaign(cfg(1));
    let parallel = run_campaign(cfg(4));
    assert!(serial.clean(), "{}", serial.violations_section());
    assert_eq!(
        serial.to_json().to_pretty(),
        parallel.to_json().to_pretty(),
        "campaign JSON must be byte-identical at any worker count"
    );
}

#[test]
fn permanent_partition_degrades_through_the_full_driver() {
    // Node 1 is cut off forever and the retry budget is tiny: the run
    // must complete with a degraded report — abandoned traffic and
    // unfinished threads on the record — instead of panicking.
    let mut cfg = CvmConfig::small(3, 1);
    cfg.loss = Some(LossConfig {
        loss_probability: 0.0,
        rto: RtoPolicy::Adaptive(AdaptiveRto::default()),
        max_retries: 4,
    });
    cfg.faults = Some(FaultPlan {
        partitions: vec![Partition {
            island: vec![1],
            from: VirtualTime::ZERO,
            until: VirtualTime::MAX,
        }],
        ..FaultPlan::default()
    });
    let mut b = CvmBuilder::new(cfg);
    let v = b.alloc::<u64>(8);
    let report = b.run(move |ctx| {
        ctx.startup_done();
        v.write(ctx, ctx.global_id(), ctx.global_id() as u64);
        ctx.barrier();
        let _ = v.read(ctx, 0);
    });
    assert!(report.degraded(), "a severed node must degrade the run");
    assert!(!report.failures.is_empty(), "abandoned traffic recorded");
    assert!(report.unfinished_threads > 0, "stuck threads recorded");
    assert!(
        report.loss.balanced(),
        "counters balance even when degraded"
    );
    let json = report.to_json(0).to_pretty();
    assert!(json.contains("\"degraded\""), "degradation serialized");
}

#[test]
fn empty_fault_plan_leaves_the_report_identical() {
    let sor_cfg = sor::SorConfig {
        n: 40,
        iters: 2,
        omega: 1.1,
    };
    let run = |faults: Option<FaultPlan>| {
        let mut cfg = CvmConfig::small(2, 2);
        cfg.faults = faults;
        sor::checksum_of_config(&sor_cfg, cfg)
    };
    let (clean_sum, clean) = run(None);
    let (empty_sum, empty) = run(Some(FaultPlan::default()));
    assert_eq!(clean_sum.to_bits(), empty_sum.to_bits());
    assert_eq!(clean.total_time, empty.total_time);
    assert_eq!(clean.stats, empty.stats);
    assert_eq!(
        clean.to_json(0).to_pretty(),
        empty.to_json(0).to_pretty(),
        "an empty plan must be observationally inert end to end"
    );
}

#[test]
fn sweep_report_is_unchanged_with_faults_disabled() {
    // The sweep never sets a fault plan; this pins the integration down:
    // merely *linking* the fault layer (and the reliability rework behind
    // it) must not move a single byte of the fault-free sweep report.
    let cfg = |workers| SweepConfig {
        apps: vec![AppId::Sor],
        nodes: vec![2],
        threads: vec![1, 2],
        workers,
        ..SweepConfig::default()
    };
    let a = run_sweep(cfg(1));
    let b = run_sweep(cfg(2));
    assert_eq!(
        a.to_json().to_pretty(),
        b.to_json().to_pretty(),
        "fault-free sweep must stay byte-identical across worker counts"
    );
    for o in &a.outcomes {
        assert_eq!(o.report.loss, cvm_net::LossStats::default());
        assert!(!o.report.degraded());
    }
}
