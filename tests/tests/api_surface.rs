//! API-surface tests: the pieces a downstream user composes directly —
//! context metadata, yields, work charging, shared matrices, run-report
//! accessors, the harness runner — behave as documented.

use cvm_dsm::{CvmBuilder, CvmConfig, SharedMat};
use cvm_harness::runner::{run_app, RunSpec};
use cvm_harness::{AppId, Scale};
use cvm_net::MsgClass;
use cvm_sim::SimDuration;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn ctx_metadata_is_consistent() {
    let seen = Arc::new(AtomicU64::new(0));
    let seen2 = Arc::clone(&seen);
    let b = CvmBuilder::new(CvmConfig::small(3, 2));
    b.run(move |ctx| {
        assert_eq!(ctx.nodes(), 3);
        assert_eq!(ctx.threads_per_node(), 2);
        assert_eq!(ctx.total_threads(), 6);
        assert_eq!(ctx.global_id(), ctx.node() * 2 + ctx.local_id());
        assert!(ctx.local_id() < 2);
        seen2.fetch_or(1 << ctx.global_id(), Ordering::SeqCst);
        ctx.barrier();
    });
    assert_eq!(
        seen.load(Ordering::SeqCst),
        0b11_1111,
        "all six threads ran"
    );
}

#[test]
fn work_charges_virtual_time() {
    let run = |work_us: u64| {
        let b = CvmBuilder::new(CvmConfig::small(1, 1));
        let report = b.run(move |ctx| {
            ctx.startup_done();
            ctx.work(SimDuration::from_us(work_us));
            ctx.barrier();
        });
        report.total_time.as_us_f64()
    };
    let short = run(100);
    let long = run(10_100);
    assert!(
        (long - short - 10_000.0).abs() < 1.0,
        "work must charge exactly: {short} vs {long}"
    );
}

#[test]
fn yield_now_round_robins_without_messages() {
    let b = CvmBuilder::new(CvmConfig::small(1, 3));
    let report = b.run(move |ctx| {
        ctx.startup_done();
        for _ in 0..10 {
            ctx.yield_now();
        }
    });
    assert!(report.stats.thread_switches >= 20, "yields must switch");
    assert_eq!(report.net.total_count(), 0);
}

#[test]
fn shared_mat_round_trips_values() {
    let mut b = CvmBuilder::new(CvmConfig::small(2, 1));
    let m: SharedMat<i64> = b.alloc_mat(5, 7);
    let ok = Arc::new(AtomicU64::new(0));
    let ok2 = Arc::clone(&ok);
    b.run(move |ctx| {
        if ctx.global_id() == 0 {
            for r in 0..5 {
                for c in 0..7 {
                    m.write(ctx, r, c, (r * 10 + c) as i64);
                }
            }
        }
        ctx.startup_done();
        ctx.barrier();
        if ctx.node() == 1 {
            let mut good = true;
            for r in 0..5 {
                for c in 0..7 {
                    good &= m.read(ctx, r, c) == (r * 10 + c) as i64;
                }
            }
            ok2.store(good as u64, Ordering::SeqCst);
        }
        ctx.barrier();
    });
    assert_eq!(ok.load(Ordering::SeqCst), 1);
}

#[test]
fn per_thread_rngs_are_independent_and_reproducible() {
    let sample = || {
        let draws = Arc::new(parking_lot_mutex());
        let d2 = Arc::clone(&draws);
        let b = CvmBuilder::new(CvmConfig::small(2, 2));
        b.run(move |ctx| {
            let v = ctx.rng().next_u64();
            d2.lock().unwrap().push((ctx.global_id(), v));
            ctx.barrier();
        });
        let mut out = Arc::try_unwrap(draws).unwrap().into_inner().unwrap();
        out.sort();
        out
    };
    let a = sample();
    let b = sample();
    assert_eq!(a, b, "same seed, same per-thread draws");
    let values: std::collections::HashSet<u64> = a.iter().map(|&(_, v)| v).collect();
    assert_eq!(values.len(), 4, "threads draw distinct streams");
}

fn parking_lot_mutex() -> std::sync::Mutex<Vec<(usize, u64)>> {
    std::sync::Mutex::new(Vec::new())
}

#[test]
fn runner_outcome_accessors_are_consistent() {
    let o = run_app(RunSpec::new(AppId::Sor, Scale::Small, 4, 1));
    assert!(o.time_ms() > 0.0);
    let sum = o.msgs(MsgClass::Barrier) + o.msgs(MsgClass::Lock) + o.msgs(MsgClass::Diff);
    assert!(sum <= o.total_msgs());
    assert!(o.bw_kb() > 0);
    assert!(o.delay_ms(MsgClass::Other) == 0.0);
}

#[test]
fn table_emitters_mention_every_app() {
    use cvm_harness::tables;
    let t1 = tables::table1(Scale::Small);
    for app in AppId::ALL {
        assert!(t1.contains(app.name()), "table1 missing {app}");
    }
}
