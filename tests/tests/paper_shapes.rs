//! Qualitative claims of the paper, asserted as tests. These are the
//! "shape" checks of the reproduction: who wins, what grows, what stays
//! flat. All run at laptop scale under the paper network.

use cvm_apps::water_nsq::WaterNsqOpt;
use cvm_apps::{AppId, Scale};
use cvm_harness::runner::{run_app, run_water_nsq_variant, RunSpec};
use cvm_net::MsgClass;

fn run(app: AppId, nodes: usize, threads: usize) -> cvm_harness::RunOutcome {
    run_app(RunSpec::new(app, Scale::Small, nodes, threads))
}

/// "There is essentially no change in the number of lock messages as the
/// degree of multi-threading increases" (Table 2 discussion).
#[test]
fn lock_messages_flat_across_thread_levels() {
    let base = run(AppId::WaterNsq, 8, 1).msgs(MsgClass::Lock);
    let t4 = run(AppId::WaterNsq, 8, 4).msgs(MsgClass::Lock);
    let drift = (t4 as f64 - base as f64).abs() / base as f64;
    assert!(
        drift < 0.10,
        "lock messages should stay ~flat: {base} -> {t4}"
    );
}

/// SOR's diffs are essentially constant across thread levels: inner
/// boundaries created by extra threads are node-local (Table 2: 1162 at
/// every T; our 768-column rows straddle page boundaries, so a ~1% wiggle
/// from boundary-page timing is tolerated).
#[test]
fn sor_diff_traffic_independent_of_threads() {
    let base = run(AppId::Sor, 8, 1).report.stats.diffs_created as f64;
    for t in [2usize, 4] {
        let o = run(AppId::Sor, 8, t).report.stats.diffs_created as f64;
        assert!(
            (o - base).abs() / base < 0.02,
            "SOR diffs must stay ~flat (T={t}): {base} -> {o}"
        );
    }
}

/// The famous FFT three-thread spike: misaligned row blocks cause extra
/// diff traffic at T=3 but not at T=2 or T=4 (Figure 1 / Table 2).
#[test]
fn fft_three_thread_spike() {
    let d2 = run(AppId::Fft, 8, 2).msgs(MsgClass::Diff);
    let d3 = run(AppId::Fft, 8, 3).msgs(MsgClass::Diff);
    let d4 = run(AppId::Fft, 8, 4).msgs(MsgClass::Diff);
    assert!(
        d3 as f64 > 1.2 * d2 as f64 && d3 as f64 > 1.2 * d4 as f64,
        "expected spike at 3 threads: {d2} / {d3} / {d4}"
    );
}

/// Multi-threading must actually overlap remote requests: outstanding
/// counters are zero at one thread and positive beyond.
#[test]
fn request_overlap_appears_with_threads() {
    for app in [AppId::Sor, AppId::Ocean] {
        let t1 = run(app, 8, 1);
        let t4 = run(app, 8, 4);
        assert_eq!(t1.report.stats.outstanding_faults, 0, "{app}: T=1");
        assert!(
            t4.report.stats.outstanding_faults > 0,
            "{app}: no overlap at T=4"
        );
        assert_eq!(t1.report.stats.thread_switches, 0);
        assert!(t4.report.stats.thread_switches > 0);
    }
}

/// Table 5's contrast: transparent multi-threading makes threads pile up
/// on the same locks; the local-barrier modification eliminates that
/// entirely ("we never had multiple threads block on the same lock").
#[test]
fn water_nsq_opts_eliminate_block_same_lock() {
    let spec = RunSpec::new(AppId::WaterNsq, Scale::Small, 8, 4);
    let noopt = run_water_nsq_variant(spec, WaterNsqOpt::NoOpts);
    let both = run_water_nsq_variant(spec, WaterNsqOpt::BothOpts);
    assert!(
        noopt.report.stats.block_same_lock > 0,
        "NoOpts must show local lock contention"
    );
    assert_eq!(
        both.report.stats.block_same_lock, 0,
        "BothOpts must never block two threads on one lock"
    );
    assert!(
        noopt.time_ms() > both.time_ms(),
        "the optimizations must pay off ({} vs {} ms)",
        noopt.time_ms(),
        both.time_ms()
    );
}

/// Read reordering (the `s` modification) reduces Block Same Page
/// relative to the plain local-barrier variant... or at least never
/// worsens the run (the paper saw a small win for two threads).
#[test]
fn read_reordering_helps_block_same_page() {
    let spec = RunSpec::new(AppId::WaterNsq, Scale::Small, 8, 2);
    let lb = run_water_nsq_variant(spec, WaterNsqOpt::LocalBarrier);
    let both = run_water_nsq_variant(spec, WaterNsqOpt::BothOpts);
    assert!(
        both.report.stats.block_same_page <= lb.report.stats.block_same_page,
        "reordering should not increase BSP: {} vs {}",
        both.report.stats.block_same_page,
        lb.report.stats.block_same_page
    );
}

/// Multi-threading speeds up the latency-bound applications at 8 nodes.
#[test]
fn multithreading_speeds_up_latency_bound_apps() {
    for app in [AppId::Ocean, AppId::WaterNsq] {
        let t1 = run(app, 8, 1).time_ms();
        let t4 = run(app, 8, 4).time_ms();
        assert!(
            t4 < t1,
            "{app}: expected T=4 ({t4} ms) faster than T=1 ({t1} ms)"
        );
    }
}

/// Barrier-arrival aggregation: disabling it multiplies barrier messages
/// by the thread count.
#[test]
fn barrier_aggregation_saves_messages() {
    let mut spec = RunSpec::new(AppId::Sor, Scale::Small, 4, 4);
    let with = run_app(spec);
    spec.aggregate_barriers = false;
    let without = run_app(spec);
    assert_eq!(
        without.msgs(MsgClass::Barrier),
        4 * with.msgs(MsgClass::Barrier),
        "non-aggregated barriers cost T x messages"
    );
}
