//! Regression locks on the paper's headline trends (Multi-threading and
//! Remote Latency in Software DSMs, ICDCS '97): adding compute threads
//! per node must hide remote latency without inflating communication.
//!
//! Each tolerance below was measured against the current simulator and is
//! recorded next to the assertion; a change that moves a trend outside
//! its band is a protocol regression, not noise — the simulation is
//! bit-deterministic, so these numbers are exact until the code changes.

use cvm_apps::{build_app, AppId, Scale};
use cvm_dsm::{CvmBuilder, CvmConfig, RunReport};
use cvm_net::{MsgClass, MsgKind};

const NODES: usize = 8;

fn run(app: AppId, threads: usize) -> RunReport {
    let mut b = CvmBuilder::new(CvmConfig::small(NODES, threads));
    let body = build_app(&mut b, app, Scale::Small);
    b.run(body)
}

/// Paper, Section 4: extra threads multiplex onto the *same* per-node
/// protocol state, so per-node message counts stay essentially flat as
/// threads are added. Measured at 8 nodes, 1 -> 4 threads (total
/// messages): Barnes 462 -> 468 (+1.3%), FFT 952 -> 952 (0%), Ocean
/// 2003 -> 2133 (+6.5%), SOR 908 -> 968 (+6.6%), Water-Sp 543 -> 578
/// (+6.4%), SWM750 1080 -> 1080 (0%), Water-Nsq 4602 -> 4439 (-3.5%).
/// The small rises come from finer partitions faulting a few extra
/// boundary pages, not from per-thread protocol traffic. Tolerance: +10%.
#[test]
fn per_node_messages_do_not_grow_with_threads() {
    for app in AppId::ALL {
        if !app.supports_threads(4) {
            continue;
        }
        let one = run(app, 1);
        let four = run(app, 4);
        let per_node_1 = one.net.total_count() as f64 / NODES as f64;
        let per_node_4 = four.net.total_count() as f64 / NODES as f64;
        assert!(
            per_node_4 <= per_node_1 * 1.10,
            "{app}: per-node messages grew 1T {per_node_1:.1} -> 4T {per_node_4:.1} \
             (> +10% tolerance)"
        );
    }
}

/// Paper, Figure 1: the remote-fault stall component shrinks as threads
/// hide fault latency behind peer computation. Measured at 8 nodes,
/// summed across nodes, 1 -> 4 threads: SOR 266 ms -> 109 ms, Water-Nsq
/// 551 ms -> 347 ms, Water-Sp 128 ms -> 98 ms of fault wait. The lock
/// here is the direction, not the magnitude: absolute fault stall must
/// strictly decrease.
#[test]
fn remote_fault_stall_shrinks_with_threads() {
    for app in [AppId::Sor, AppId::WaterNsq, AppId::WaterSp] {
        let one = run(app, 1);
        let four = run(app, 4);
        let fault_1 = one.breakdown_sum().fault;
        let fault_4 = four.breakdown_sum().fault;
        assert!(
            fault_4 < fault_1,
            "{app}: fault stall did not shrink with threads \
             (1T {fault_1}, 4T {fault_4})"
        );
    }
}

/// Paper, Section 3.1: co-located threads aggregate their barrier
/// arrivals into one message per node, so barrier traffic depends only on
/// the node count — exactly `(nodes - 1)` arrivals and `(nodes - 1)`
/// releases per episode — no matter how many threads arrive.
#[test]
fn barrier_arrivals_aggregate_to_one_message_per_node() {
    let mut counts = Vec::new();
    for threads in [1usize, 2, 4] {
        let r = run(AppId::Sor, threads);
        let episodes = r.stats.barriers_crossed;
        assert!(episodes > 0, "SOR must cross barriers");
        let arrivals = r.net.kind_count(MsgKind::BarrierArrive);
        assert_eq!(
            arrivals,
            episodes * (NODES as u64 - 1),
            "{threads} threads: arrivals not aggregated per node"
        );
        assert_eq!(
            r.net.class_count(MsgClass::Barrier),
            episodes * 2 * (NODES as u64 - 1),
            "{threads} threads: barrier class traffic off"
        );
        counts.push(r.net.class_count(MsgClass::Barrier));
    }
    // And therefore identical across thread counts.
    assert_eq!(counts[0], counts[1]);
    assert_eq!(counts[1], counts[2]);
}
