//! Protocol equivalence: the coherence protocol is a performance choice,
//! never a semantic one. Every application must compute the *same*
//! result under lazy multi-writer, eager update and home-based LRC — at
//! paper geometry (8 nodes) with and without multi-threading — and the
//! home-based protocol must show its signature trade against the
//! homeless one: fewer messages, more bytes.
//!
//! The checksums are compared within the oracle suite's 1e-9 relative
//! band, not bit-for-bit: the applications accumulate their checksums
//! under locks (or reductions combined in arrival order), and a protocol
//! legitimately changes message timing and therefore lock-grant order —
//! reordering a floating-point sum by a few ulp. A *lost or duplicated
//! update* would move the result far outside the band (and is caught
//! independently by the invariant oracle and the race replay).

use cvm_apps::{barnes, fft, ocean, sor, swm, water_nsq, water_sp};
use cvm_dsm::{CvmConfig, ProtocolKind, RunReport};

/// Paper geometry: 8 processors, single-threaded and multi-threaded.
const GEOMETRIES: [(usize, usize); 2] = [(8, 1), (8, 4)];

fn dsm(nodes: usize, threads: usize, protocol: ProtocolKind) -> CvmConfig {
    let mut cfg = CvmConfig::small(nodes, threads);
    cfg.protocol = protocol;
    cfg
}

/// Runs `checksum` under all three protocols at every geometry and
/// asserts equal results within a relative band (1e-9 for the
/// elementwise-exact apps; Water-Sp's cell-list insertion order is
/// timing-sensitive, so it gets the same 1e-6 band its oracle test uses).
fn assert_equivalent<F>(what: &str, rel: f64, checksum: F)
where
    F: Fn(CvmConfig) -> (f64, RunReport),
{
    for (nodes, threads) in GEOMETRIES {
        let (want, _) = checksum(dsm(nodes, threads, ProtocolKind::LazyMultiWriter));
        for protocol in [ProtocolKind::EagerUpdate, ProtocolKind::HomeLazy] {
            let (got, _) = checksum(dsm(nodes, threads, protocol));
            let s = got.abs().max(want.abs()).max(1.0);
            assert!(
                (got - want).abs() <= rel * s,
                "{what} {nodes}x{threads}: {protocol} diverged ({got} vs {want})"
            );
        }
    }
}

#[test]
fn sor_equivalent_across_protocols() {
    let cfg = sor::SorConfig {
        n: 46,
        iters: 4,
        omega: 1.12,
    };
    assert_equivalent("SOR", 1e-9, |dsm| sor::checksum_of_config(&cfg, dsm));
}

#[test]
fn fft_equivalent_across_protocols() {
    let cfg = fft::FftConfig { m: 32 };
    assert_equivalent("FFT", 1e-9, |dsm| fft::checksum_of_config(&cfg, dsm));
}

#[test]
fn barnes_equivalent_across_protocols() {
    let cfg = barnes::BarnesConfig {
        n: 80,
        steps: 2,
        theta: 0.7,
        dt: 0.01,
    };
    assert_equivalent("Barnes", 1e-9, |dsm| barnes::checksum_of_config(&cfg, dsm));
}

#[test]
fn ocean_equivalent_across_protocols() {
    let cfg = ocean::OceanConfig {
        n: 24,
        steps: 2,
        sweeps: 1,
        coarse_sweeps: 1,
        use_reduction: true,
    };
    assert_equivalent("Ocean", 1e-9, |dsm| ocean::checksum_of_config(&cfg, dsm));
}

#[test]
fn swm_equivalent_across_protocols() {
    let cfg = swm::SwmConfig { n: 24, steps: 2 };
    assert_equivalent("SWM750", 1e-9, |dsm| swm::checksum_of_config(&cfg, dsm));
}

/// Water-Nsq accumulates forces into scratch sections under per-section
/// locks, so the summation *order* follows lock-grant order — protocol
/// timing — and the `r2 < cutoff2` branch discretely amplifies the
/// resulting ulp differences in later steps. (At `NoOpts` with one step,
/// all three protocols agree bit-for-bit; the staggered-lock optimization
/// is what makes the sum order timing-sensitive.) Hence the wider band,
/// like Water-Sp's.
#[test]
fn water_nsq_equivalent_across_protocols() {
    let cfg = water_nsq::WaterNsqConfig {
        n: 24,
        steps: 2,
        dt: 0.002,
        cutoff2: 0.3,
        opt: water_nsq::WaterNsqOpt::BothOpts,
    };
    assert_equivalent("Water-Nsq", 1e-5, |dsm| {
        water_nsq::checksum_of_config(&cfg, dsm)
    });
}

#[test]
fn water_sp_equivalent_across_protocols() {
    let cfg = water_sp::WaterSpConfig {
        n: 48,
        b: 4,
        steps: 2,
        dt: 0.002,
    };
    assert_equivalent("Water-Sp", 1e-6, |dsm| {
        water_sp::checksum_of_config(&cfg, dsm)
    });
}

/// The converse of the relative bands above: when the application's sum
/// order does NOT depend on lock-grant timing (Water-Nsq without the
/// staggered-lock optimization, a single step), every protocol produces
/// the *bit-identical* result. Any protocol-level lost or duplicated
/// update would break this exact equality.
#[test]
fn order_insensitive_app_is_bit_identical_across_protocols() {
    let cfg = water_nsq::WaterNsqConfig {
        n: 24,
        steps: 1,
        dt: 0.002,
        cutoff2: 0.3,
        opt: water_nsq::WaterNsqOpt::NoOpts,
    };
    let (want, _) = water_nsq::checksum_of_config(&cfg, dsm(8, 1, ProtocolKind::LazyMultiWriter));
    for protocol in [ProtocolKind::EagerUpdate, ProtocolKind::HomeLazy] {
        let (got, _) = water_nsq::checksum_of_config(&cfg, dsm(8, 1, protocol));
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "{protocol} not bit-identical: {got} vs {want}"
        );
    }
}

/// Home-based LRC's signature trade on a fault-heavy stencil code: every
/// fault is one request/reply pair (fewer messages than chasing every
/// pending writer for diffs), but each reply carries the whole page
/// (more data than diffs). Measured on SOR at 8x4.
#[test]
fn home_lazy_trades_messages_for_bytes_on_sor() {
    let cfg = sor::SorConfig {
        n: 46,
        iters: 4,
        omega: 1.12,
    };
    let (_, lazy) = sor::checksum_of_config(&cfg, dsm(8, 4, ProtocolKind::LazyMultiWriter));
    let (_, home) = sor::checksum_of_config(&cfg, dsm(8, 4, ProtocolKind::HomeLazy));
    assert!(
        home.net.total_count() < lazy.net.total_count(),
        "home-lazy should send fewer messages: {} vs {}",
        home.net.total_count(),
        lazy.net.total_count()
    );
    assert!(
        home.net.total_bytes() > lazy.net.total_bytes(),
        "home-lazy should pay in bytes: {} vs {}",
        home.net.total_bytes(),
        lazy.net.total_bytes()
    );
}

/// The home protocol is as deterministic as the others: identical seeds
/// give identical transport statistics.
#[test]
fn home_lazy_is_deterministic() {
    let cfg = ocean::OceanConfig {
        n: 24,
        steps: 2,
        sweeps: 1,
        coarse_sweeps: 1,
        use_reduction: true,
    };
    let run = || ocean::checksum_of_config(&cfg, dsm(4, 2, ProtocolKind::HomeLazy));
    let ((ca, a), (cb, b)) = (run(), run());
    assert_eq!(ca.to_bits(), cb.to_bits());
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.net, b.net);
    assert_eq!(a.total_time, b.total_time);
}
