//! End-to-end checks of the observability layer: report JSON round-trips
//! and stays byte-identical across identical runs, histograms and
//! attribution are populated by real workloads, and the Chrome trace
//! export is balanced and loadable.

use cvm_apps::{build_app, AppId, Scale};
use cvm_dsm::{chrome_trace, CvmBuilder, CvmConfig, RunReport};
use cvm_sim::json::JsonValue;

fn run(app: AppId, nodes: usize, threads: usize, trace: usize) -> RunReport {
    let mut cfg = CvmConfig::paper(nodes, threads);
    cfg.trace_capacity = trace;
    let mut b = CvmBuilder::new(cfg);
    let body = build_app(&mut b, app, Scale::Small);
    b.run(body)
}

#[test]
fn report_json_round_trips() {
    let r = run(AppId::Sor, 2, 2, 0);
    let doc = r.to_json(10);
    let compact = doc.to_string();
    let pretty = doc.to_pretty();
    assert_eq!(JsonValue::parse(&compact).unwrap(), doc);
    assert_eq!(JsonValue::parse(&pretty).unwrap(), doc);
}

#[test]
fn histograms_and_attribution_populated_by_real_run() {
    let r = run(AppId::Sor, 4, 2, 0);
    assert_eq!(
        r.hist.fault_fetch_ns.count(),
        r.stats.remote_faults,
        "one fetch-latency sample per remote fault"
    );
    assert!(r.hist.fault_fetch_ns.p90() >= r.hist.fault_fetch_ns.p50());
    assert_eq!(r.hist.diff_bytes.count(), r.stats.diffs_created);
    assert!(
        r.hist.barrier_stall_ns.count() >= r.stats.barriers_crossed,
        "each crossed barrier stalls at least the master node"
    );
    // Attribution totals agree with the aggregate counters.
    let doc = r.to_json(10);
    let attr = doc.get("attr").unwrap();
    assert!(attr.get("pages_touched").unwrap().as_u64().unwrap() > 0);
    let hot = attr.get("hot_pages").unwrap().as_array().unwrap();
    assert!(!hot.is_empty());
    let fault_sum: u64 = hot
        .iter()
        .map(|row| row.get("faults").unwrap().as_u64().unwrap())
        .sum();
    assert!(fault_sum <= r.stats.remote_faults, "top-N is a subset");
    // Lock-latency samples partition into 2-hop and 3-hop acquires.
    let locky = run(AppId::WaterNsq, 4, 2, 0);
    assert_eq!(
        locky.hist.lock_2hop_ns.count() + locky.hist.lock_3hop_ns.count(),
        locky.stats.remote_locks,
        "every remote acquire is either 2-hop or 3-hop"
    );
}

#[test]
fn chrome_export_of_two_node_run_is_balanced() {
    let r = run(AppId::Sor, 2, 2, 1_000_000);
    let t = r.trace.as_ref().unwrap();
    assert_eq!(t.overflow(), 0);
    let doc = chrome_trace(t, 2);
    let events = doc.get("traceEvents").unwrap().as_array().unwrap();
    let ph = |e: &JsonValue| e.get("ph").and_then(JsonValue::as_str).unwrap().to_owned();
    let mut begins = Vec::new();
    let mut ends = Vec::new();
    for e in events {
        match ph(e).as_str() {
            "b" => begins.push(e.get("id").unwrap().as_u64().unwrap()),
            "e" => ends.push(e.get("id").unwrap().as_u64().unwrap()),
            _ => {}
        }
    }
    assert!(!begins.is_empty(), "a real run produces duration spans");
    begins.sort_unstable();
    ends.sort_unstable();
    assert_eq!(begins, ends, "every begin has exactly one end");
    // Fault spans match the stats, one per remote fault.
    let fault_spans = events
        .iter()
        .filter(|e| {
            e.get("ph").and_then(JsonValue::as_str) == Some("b")
                && e.get("cat").and_then(JsonValue::as_str) == Some("fault")
        })
        .count() as u64;
    assert_eq!(fault_spans, r.stats.remote_faults);
    // Both nodes have a named track, and every event sits on a known tid.
    let meta_names: Vec<String> = events
        .iter()
        .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("M"))
        .map(|e| {
            e.get("args")
                .unwrap()
                .get("name")
                .unwrap()
                .as_str()
                .unwrap()
                .to_owned()
        })
        .collect();
    assert_eq!(meta_names, ["cvm protocol", "node 0", "node 1"]);
    for e in events {
        assert!(e.get("tid").unwrap().as_u64().unwrap() < 2);
    }
    // The file parses back as strict JSON.
    let text = doc.to_string();
    assert_eq!(JsonValue::parse(&text).unwrap(), doc);
}

#[test]
fn identical_runs_serialize_byte_identically() {
    let a = run(AppId::WaterNsq, 2, 2, 10_000);
    let b = run(AppId::WaterNsq, 2, 2, 10_000);
    assert_eq!(
        a.to_json(10).to_pretty(),
        b.to_json(10).to_pretty(),
        "report JSON must be deterministic"
    );
    let ta = a.trace.as_ref().unwrap();
    let tb = b.trace.as_ref().unwrap();
    assert_eq!(
        chrome_trace(ta, 2).to_string(),
        chrome_trace(tb, 2).to_string(),
        "chrome trace must be deterministic"
    );
}
