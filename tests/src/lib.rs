//! Integration-test package for the CVM reproduction workspace.
//!
//! The actual tests live in `tests/tests/*.rs`; this library only hosts
//! shared helpers.

#![forbid(unsafe_code)]
use cvm_dsm::{CvmConfig, RunReport};

/// Builds the fast test configuration used across integration tests.
pub fn test_config(nodes: usize, threads: usize) -> CvmConfig {
    CvmConfig::small(nodes, threads)
}

/// Asserts the structural sanity conditions every finished run must meet.
///
/// # Panics
///
/// Panics if an invariant is violated.
pub fn assert_report_sane(r: &RunReport) {
    // Every diff that was used was created by someone.
    assert!(
        r.stats.diffs_used == 0 || r.stats.diffs_created > 0,
        "diffs used without any created"
    );
    // Overlap counters can only be nonzero if remote requests happened.
    if r.stats.outstanding_faults > 0 {
        assert!(r.stats.remote_faults > 0);
    }
    if r.stats.outstanding_locks > 0 {
        assert!(r.stats.remote_locks > 0);
    }
    // Requests and replies pair up on the wire.
    use cvm_net::MsgKind;
    assert_eq!(
        r.net.kind_count(MsgKind::PageRequest),
        r.net.kind_count(MsgKind::PageReply),
        "page requests/replies unbalanced"
    );
    assert_eq!(
        r.net.kind_count(MsgKind::DiffRequest),
        r.net.kind_count(MsgKind::DiffReply),
        "diff requests/replies unbalanced"
    );
    // Node breakdowns stay within the run envelope.
    for b in &r.nodes {
        assert!(b.clock <= r.total_time, "node clock exceeds run time");
    }
}
