//! `cvm-verify` — offline checking for the CVM reproduction.
//!
//! Three coupled analyses, all built on artifacts the runtime already
//! produces (the protocol [`Trace`](cvm_dsm::Trace) and the online
//! [`Oracle`](cvm_dsm::Oracle) findings):
//!
//! * [`race`] — a vector-clock happens-before replay of the trace that
//!   flags *lost updates*: a node whose clock advanced past a remote write
//!   to a page it still holds valid, without ever learning the write
//!   notice or applying the diff. Benign multiple-writer concurrency
//!   (clocks incomparable) is deliberately not flagged — that is the
//!   protocol working as designed.
//! * [`explore`] — seeded schedule exploration: runs an application under
//!   perturbed scheduler pick decisions
//!   ([`ExploreSpec`](cvm_sim::ExploreSpec)), salvages oracle findings
//!   even when the run panics, and minimizes failing schedules to the
//!   smallest replayable perturbation budget.
//! * [`check`] — the `cvm check` driver: explores a schedule budget per
//!   application, replays every trace through the race detector, and
//!   renders lint-style findings with a replay command line.
//! * [`dpor`] + [`indep`] — exhaustive stateless model checking: dynamic
//!   partial-order reduction over the scheduler's pick decisions, with an
//!   independence relation derived from per-step page/lock footprints.
//!   On [`Scale::Tiny`](cvm_apps::Scale) kernels the search terminates,
//!   turning "0 findings" into a statement about *every* interleaving.
//!
//! The oracle's fault injection ([`InjectFault`](cvm_dsm::InjectFault))
//! turns the whole stack into its own test: dropping a write notice,
//! reordering diff application, or skipping an invalidation must each be
//! caught, which `tests/mutations.rs` asserts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod dpor;
pub mod explore;
pub mod indep;
pub mod race;

pub use check::{AppCheck, CheckOptions, CheckReport, ScheduleFailure};
pub use dpor::{
    dpor_check, schedule_from_json, schedule_to_json, DporCounterexample, DporOptions, DporReport,
    DporStats, ScheduleFile,
};
pub use explore::{run_schedule, run_scripted, RunPlan, ScheduleResult, ScriptedResult};
pub use indep::dependent;
pub use race::replay_race_check;
