//! Running one application under one (possibly perturbed) schedule and
//! collecting everything the checkers need — even out of a panicking run.

use std::panic::{catch_unwind, AssertUnwindSafe};

use cvm_apps::{build_app, AppId, Scale};
use cvm_dsm::{
    CvmBuilder, CvmConfig, FaultPlan, Finding, FindingSink, InjectFault, LatencyModel, ProtocolKind,
};
use cvm_sim::{ExploreSpec, ScheduleScript, StepRecord};

use crate::race::replay_race_check;

/// Everything a single checked run produced.
#[derive(Debug)]
pub struct ScheduleResult {
    /// The perturbation that was applied (`None` = the configured
    /// scheduling policy, unmodified).
    pub spec: Option<ExploreSpec>,
    /// Online oracle findings plus offline race-replay findings.
    pub findings: Vec<Finding>,
    /// Scheduler pick decisions the exploration actually perturbed.
    pub decisions: u64,
    /// Panic message if the run aborted (oracle findings recorded before
    /// the panic are still salvaged into `findings`).
    pub panic: Option<String>,
    /// Protocol events dropped because the trace filled; nonzero means
    /// the race replay was skipped as unsound.
    pub trace_dropped: u64,
}

impl ScheduleResult {
    /// True if this schedule demonstrated a protocol violation.
    pub fn failed(&self) -> bool {
        !self.findings.is_empty() || self.panic.is_some()
    }
}

/// What to run and how hard to shake it.
#[derive(Debug, Clone, Copy)]
pub struct RunPlan {
    /// Application under test.
    pub app: AppId,
    /// Problem size.
    pub scale: Scale,
    /// Cluster geometry.
    pub nodes: usize,
    /// Threads per node.
    pub threads: usize,
    /// Coherence protocol under test.
    pub protocol: ProtocolKind,
    /// Deliberate protocol mutation (oracle self-test), if any.
    pub inject: Option<InjectFault>,
    /// Named fault plan (from [`cvm_dsm::PLAN_CATALOG`]) layered under
    /// the explored schedules, if any.
    pub faults: Option<&'static str>,
    /// Trace capacity for the offline replay.
    pub trace_capacity: usize,
}

/// Runs `plan.app` once under `spec`, with the online oracle recording
/// and the trace enabled, then replays the trace through the race
/// detector. Panics inside the run are caught; findings recorded before
/// the panic survive.
pub fn run_schedule(plan: RunPlan, spec: Option<ExploreSpec>) -> ScheduleResult {
    let sink = FindingSink::new();
    let run_sink = sink.clone();
    let outcome = catch_unwind(AssertUnwindSafe(move || {
        let mut cfg = CvmConfig::small(plan.nodes, plan.threads);
        cfg.protocol = plan.protocol;
        cfg.verify = true;
        cfg.verify_sink = run_sink;
        cfg.inject = plan.inject;
        if let Some(name) = plan.faults {
            cfg.faults = Some(FaultPlan::named(name, plan.nodes).expect("fault plan in catalog"));
        }
        cfg.explore = spec;
        cfg.trace_capacity = plan.trace_capacity;
        let mut builder = CvmBuilder::new(cfg);
        let body = build_app(&mut builder, plan.app, plan.scale);
        builder.run(body)
    }));
    match outcome {
        Ok(report) => {
            let mut findings = report.findings.clone();
            let trace = report.trace.as_ref().expect("tracing was enabled");
            let dropped = trace.overflow();
            if dropped == 0 {
                findings.extend(replay_race_check(trace, plan.nodes));
            }
            ScheduleResult {
                spec,
                findings,
                decisions: report.explore_decisions,
                panic: None,
                trace_dropped: dropped,
            }
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            ScheduleResult {
                spec,
                findings: sink.snapshot(),
                decisions: 0,
                panic: Some(msg),
                trace_dropped: 0,
            }
        }
    }
}

/// Everything a script-pinned (DPOR) run produced.
#[derive(Debug)]
pub struct ScriptedResult {
    /// Online oracle findings plus offline race-replay findings.
    pub findings: Vec<Finding>,
    /// Panic message if the run aborted (oracle findings recorded before
    /// the panic are still salvaged into `findings`).
    pub panic: Option<String>,
    /// The full scheduling-point log: one record per scheduler pick, with
    /// the enabled set, the chosen thread, and the step's page footprint.
    pub steps: Vec<StepRecord>,
    /// FNV-1a fingerprint of the terminal state (memories, page states,
    /// vector clocks); `0` when the run panicked.
    pub state_hash: u64,
    /// Protocol events dropped because the trace filled; nonzero means
    /// the race replay was skipped as unsound.
    pub trace_dropped: u64,
    /// Step records dropped because the step log filled; nonzero means
    /// the DPOR analysis of this execution is incomplete.
    pub steps_dropped: u64,
}

impl ScriptedResult {
    /// True if this execution demonstrated a protocol violation.
    pub fn failed(&self) -> bool {
        !self.findings.is_empty() || self.panic.is_some()
    }
}

/// Runs `plan.app` once with the scheduler pinned to `choices` (index `i`
/// picks the `choices[i]`-th ready thread, clamped; past the end the
/// default policy resumes), recording every scheduling point. Used by the
/// DPOR explorer, which needs deterministic re-execution plus the enabled
/// sets and per-step page footprints.
///
/// [`Scale::Tiny`] plans swap in the wire-dominant
/// [`LatencyModel::check`] model: under the default instant model,
/// causality pins every flush ahead of the request that needs it, hiding
/// the protocol's parked-request paths from the checker.
pub fn run_scripted(plan: RunPlan, choices: &[u32]) -> ScriptedResult {
    let sink = FindingSink::new();
    let run_sink = sink.clone();
    let script = ScheduleScript::new(choices.to_vec());
    let outcome = catch_unwind(AssertUnwindSafe(move || {
        let mut cfg = CvmConfig::small(plan.nodes, plan.threads);
        cfg.protocol = plan.protocol;
        cfg.verify = true;
        cfg.verify_sink = run_sink;
        cfg.inject = plan.inject;
        if let Some(name) = plan.faults {
            cfg.faults = Some(FaultPlan::named(name, plan.nodes).expect("fault plan in catalog"));
        }
        cfg.trace_capacity = plan.trace_capacity;
        cfg.script = Some(script);
        cfg.record_steps = true;
        if plan.scale == Scale::Tiny {
            cfg.latency = LatencyModel::check();
        }
        let mut builder = CvmBuilder::new(cfg);
        let body = build_app(&mut builder, plan.app, plan.scale);
        builder.run(body)
    }));
    match outcome {
        Ok(report) => {
            let mut findings = report.findings.clone();
            let trace = report.trace.as_ref().expect("tracing was enabled");
            let trace_dropped = trace.overflow();
            if trace_dropped == 0 {
                findings.extend(replay_race_check(trace, plan.nodes));
            }
            let log = report.steps.as_ref().expect("step recording was enabled");
            ScriptedResult {
                findings,
                panic: None,
                steps: log.steps().to_vec(),
                state_hash: report.state_hash,
                trace_dropped,
                steps_dropped: log.dropped(),
            }
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            ScriptedResult {
                findings: sink.snapshot(),
                panic: Some(msg),
                steps: Vec::new(),
                state_hash: 0,
                trace_dropped: 0,
                steps_dropped: 0,
            }
        }
    }
}

/// Shrinks a failing schedule to the smallest perturbation budget that
/// still fails, probing budgets `0..=probes` linearly (budget 0 is the
/// default schedule, so a hit there means the bug is schedule-independent).
/// Returns the original spec when no smaller budget reproduces.
pub fn minimize(plan: RunPlan, failing: ExploreSpec, probes: u64) -> ExploreSpec {
    for budget in 0..failing.budget.min(probes + 1) {
        let candidate = ExploreSpec {
            seed: failing.seed,
            budget,
        };
        if run_schedule(plan, Some(candidate)).failed() {
            return candidate;
        }
    }
    failing
}
