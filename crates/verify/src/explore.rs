//! Running one application under one (possibly perturbed) schedule and
//! collecting everything the checkers need — even out of a panicking run.

use std::panic::{catch_unwind, AssertUnwindSafe};

use cvm_apps::{build_app, AppId, Scale};
use cvm_dsm::{CvmBuilder, CvmConfig, FaultPlan, Finding, FindingSink, InjectFault, ProtocolKind};
use cvm_sim::ExploreSpec;

use crate::race::replay_race_check;

/// Everything a single checked run produced.
#[derive(Debug)]
pub struct ScheduleResult {
    /// The perturbation that was applied (`None` = the configured
    /// scheduling policy, unmodified).
    pub spec: Option<ExploreSpec>,
    /// Online oracle findings plus offline race-replay findings.
    pub findings: Vec<Finding>,
    /// Scheduler pick decisions the exploration actually perturbed.
    pub decisions: u64,
    /// Panic message if the run aborted (oracle findings recorded before
    /// the panic are still salvaged into `findings`).
    pub panic: Option<String>,
    /// Protocol events dropped because the trace filled; nonzero means
    /// the race replay was skipped as unsound.
    pub trace_dropped: u64,
}

impl ScheduleResult {
    /// True if this schedule demonstrated a protocol violation.
    pub fn failed(&self) -> bool {
        !self.findings.is_empty() || self.panic.is_some()
    }
}

/// What to run and how hard to shake it.
#[derive(Debug, Clone, Copy)]
pub struct RunPlan {
    /// Application under test.
    pub app: AppId,
    /// Problem size.
    pub scale: Scale,
    /// Cluster geometry.
    pub nodes: usize,
    /// Threads per node.
    pub threads: usize,
    /// Coherence protocol under test.
    pub protocol: ProtocolKind,
    /// Deliberate protocol mutation (oracle self-test), if any.
    pub inject: Option<InjectFault>,
    /// Named fault plan (from [`cvm_dsm::PLAN_CATALOG`]) layered under
    /// the explored schedules, if any.
    pub faults: Option<&'static str>,
    /// Trace capacity for the offline replay.
    pub trace_capacity: usize,
}

/// Runs `plan.app` once under `spec`, with the online oracle recording
/// and the trace enabled, then replays the trace through the race
/// detector. Panics inside the run are caught; findings recorded before
/// the panic survive.
pub fn run_schedule(plan: RunPlan, spec: Option<ExploreSpec>) -> ScheduleResult {
    let sink = FindingSink::new();
    let run_sink = sink.clone();
    let outcome = catch_unwind(AssertUnwindSafe(move || {
        let mut cfg = CvmConfig::small(plan.nodes, plan.threads);
        cfg.protocol = plan.protocol;
        cfg.verify = true;
        cfg.verify_sink = run_sink;
        cfg.inject = plan.inject;
        if let Some(name) = plan.faults {
            cfg.faults = Some(FaultPlan::named(name, plan.nodes).expect("fault plan in catalog"));
        }
        cfg.explore = spec;
        cfg.trace_capacity = plan.trace_capacity;
        let mut builder = CvmBuilder::new(cfg);
        let body = build_app(&mut builder, plan.app, plan.scale);
        builder.run(body)
    }));
    match outcome {
        Ok(report) => {
            let mut findings = report.findings.clone();
            let trace = report.trace.as_ref().expect("tracing was enabled");
            let dropped = trace.overflow();
            if dropped == 0 {
                findings.extend(replay_race_check(trace, plan.nodes));
            }
            ScheduleResult {
                spec,
                findings,
                decisions: report.explore_decisions,
                panic: None,
                trace_dropped: dropped,
            }
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            ScheduleResult {
                spec,
                findings: sink.snapshot(),
                decisions: 0,
                panic: Some(msg),
                trace_dropped: 0,
            }
        }
    }
}

/// Shrinks a failing schedule to the smallest perturbation budget that
/// still fails, probing budgets `0..=probes` linearly (budget 0 is the
/// default schedule, so a hit there means the bug is schedule-independent).
/// Returns the original spec when no smaller budget reproduces.
pub fn minimize(plan: RunPlan, failing: ExploreSpec, probes: u64) -> ExploreSpec {
    for budget in 0..failing.budget.min(probes + 1) {
        let candidate = ExploreSpec {
            seed: failing.seed,
            budget,
        };
        if run_schedule(plan, Some(candidate)).failed() {
            return candidate;
        }
    }
    failing
}
