//! The `cvm check` driver: schedule exploration per application with
//! lint-style findings and replayable failure seeds.

use std::fmt::Write as _;

use cvm_apps::{AppId, Scale};
use cvm_dsm::{Finding, InjectFault, ProtocolKind};
use cvm_sim::ExploreSpec;

use crate::explore::{minimize, run_schedule, RunPlan};

/// What `cvm check` should do.
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// Applications to check.
    pub apps: Vec<AppId>,
    /// Cluster geometry.
    pub nodes: usize,
    /// Threads per node.
    pub threads: usize,
    /// Coherence protocol to explore (every protocol must survive the
    /// same schedule shaking as the default).
    pub protocol: ProtocolKind,
    /// Perturbed schedules to explore per application (an unperturbed
    /// baseline always runs first, on top of this count).
    pub schedules: u64,
    /// Base exploration seed; schedule `i` derives its seed from it
    /// (schedule 0 uses it verbatim, so a reported seed replays with
    /// `--schedules 1 --seed <seed>`).
    pub seed: u64,
    /// Scheduler pick decisions each explored schedule may perturb.
    pub budget: u64,
    /// Deliberate protocol mutation (oracle self-test), if any.
    pub inject: Option<InjectFault>,
    /// Named fault plan (from [`cvm_dsm::PLAN_CATALOG`]) layered under
    /// every explored schedule: the oracle and race replay then run over
    /// a faulty wire repaired by the reliability layer.
    pub faults: Option<&'static str>,
    /// Trace capacity per run for the offline race replay.
    pub trace_capacity: usize,
    /// Problem size.
    pub scale: Scale,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            apps: AppId::ALL.to_vec(),
            nodes: 2,
            threads: 2,
            protocol: ProtocolKind::LazyMultiWriter,
            schedules: 8,
            seed: 0xC11E_C4ED,
            budget: 64,
            inject: None,
            faults: None,
            trace_capacity: 4_000_000,
            scale: Scale::Small,
        }
    }
}

impl CheckOptions {
    /// The exploration spec of schedule `i` (0-based). Schedule 0 uses
    /// the base seed verbatim so printed seeds replay directly.
    pub fn spec_of(&self, i: u64) -> ExploreSpec {
        ExploreSpec {
            seed: self.seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            budget: self.budget,
        }
    }

    fn plan(&self, app: AppId) -> RunPlan {
        RunPlan {
            app,
            scale: self.scale,
            nodes: self.nodes,
            threads: self.threads,
            protocol: self.protocol,
            inject: self.inject,
            faults: self.faults,
            trace_capacity: self.trace_capacity,
        }
    }
}

/// A failing schedule, minimized and ready to replay.
#[derive(Debug)]
pub struct ScheduleFailure {
    /// The schedule that first failed (`None` = the unperturbed
    /// baseline).
    pub spec: Option<ExploreSpec>,
    /// The smallest perturbation budget that still fails (present only
    /// when `spec` is a perturbed schedule).
    pub minimized: Option<ExploreSpec>,
    /// Findings of the failing run (online oracle + offline replay).
    pub findings: Vec<Finding>,
    /// Panic message if the failing run aborted.
    pub panic: Option<String>,
}

/// One application's check outcome.
#[derive(Debug)]
pub struct AppCheck {
    /// Application checked.
    pub app: AppId,
    /// Schedules actually run (exploration stops at the first failure).
    pub schedules_run: u64,
    /// Total scheduler decisions perturbed across all runs.
    pub decisions: u64,
    /// The first failing schedule, if any.
    pub failure: Option<ScheduleFailure>,
    /// Non-fatal caveats (e.g. trace overflow disabling the race replay).
    pub warnings: Vec<String>,
}

impl AppCheck {
    /// True if every schedule of this application came back clean.
    pub fn clean(&self) -> bool {
        self.failure.is_none()
    }
}

/// The full `cvm check` outcome.
#[derive(Debug)]
pub struct CheckReport {
    /// Options the check ran with (used to render replay commands).
    pub options: CheckOptions,
    /// Per-application outcomes.
    pub apps: Vec<AppCheck>,
}

impl CheckReport {
    /// True if every application came back clean.
    pub fn clean(&self) -> bool {
        self.apps.iter().all(AppCheck::clean)
    }

    /// Lint-style rendering: one status line per application, indented
    /// findings and a copy-pastable replay command per failure.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for app in &self.apps {
            if let Some(fail) = &app.failure {
                let which = match fail.spec {
                    Some(spec) => format!("schedule seed={:#x} budget={}", spec.seed, spec.budget),
                    None => "the unperturbed baseline".to_owned(),
                };
                let _ = writeln!(
                    out,
                    "{}: FAIL after {} schedule(s) — {which}",
                    app.app, app.schedules_run
                );
                if let Some(min) = fail.minimized {
                    if min.budget == 0 {
                        let _ = writeln!(
                            out,
                            "  minimized: fails with budget 0 (schedule-independent)"
                        );
                    } else {
                        let _ = writeln!(
                            out,
                            "  minimized: seed={:#x} budget={}",
                            min.seed, min.budget
                        );
                    }
                }
                for f in &fail.findings {
                    let _ = writeln!(out, "  finding: {f}");
                }
                if let Some(p) = &fail.panic {
                    let _ = writeln!(out, "  panic: {p}");
                }
                let replay = fail.minimized.or(fail.spec);
                if let Some(spec) = replay {
                    let mut proto = if self.options.protocol == ProtocolKind::default() {
                        String::new()
                    } else {
                        format!(" --protocol {}", self.options.protocol.slug())
                    };
                    if let Some(faults) = self.options.faults {
                        let _ = write!(proto, " --faults {faults}");
                    }
                    let _ = writeln!(
                        out,
                        "  replay: cvm check --app {} --nodes {} --threads {}{proto} \
                         --schedules 1 --seed {:#x} --budget {}",
                        app.app.name().to_lowercase(),
                        self.options.nodes,
                        self.options.threads,
                        spec.seed,
                        spec.budget
                    );
                }
            } else {
                let _ = writeln!(
                    out,
                    "{}: ok — {} schedule(s), {} perturbed decisions, 0 findings",
                    app.app, app.schedules_run, app.decisions
                );
            }
            for w in &app.warnings {
                let _ = writeln!(out, "  warning: {w}");
            }
        }
        out
    }
}

/// Runs the check: per application, an unperturbed baseline followed by
/// `schedules` seeded perturbations, stopping at (and minimizing) the
/// first failure.
pub fn run_check(options: &CheckOptions) -> CheckReport {
    let mut apps = Vec::new();
    for &app in &options.apps {
        apps.push(check_app(options, app));
    }
    CheckReport {
        options: options.clone(),
        apps,
    }
}

fn check_app(options: &CheckOptions, app: AppId) -> AppCheck {
    let plan = options.plan(app);
    let mut decisions = 0;
    let mut warnings = Vec::new();
    let mut schedules_run = 0;
    // Baseline first: the configured policy, no perturbation.
    let specs =
        std::iter::once(None).chain((0..options.schedules).map(|i| Some(options.spec_of(i))));
    for spec in specs {
        let result = run_schedule(plan, spec);
        schedules_run += 1;
        decisions += result.decisions;
        if result.trace_dropped > 0 && warnings.is_empty() {
            warnings.push(format!(
                "trace overflowed ({} events dropped) — race replay skipped; \
                 raise the trace capacity to restore it",
                result.trace_dropped
            ));
        }
        if result.failed() {
            let minimized = spec.map(|s| minimize(plan, s, 16));
            return AppCheck {
                app,
                schedules_run,
                decisions,
                failure: Some(ScheduleFailure {
                    spec,
                    minimized,
                    findings: result.findings,
                    panic: result.panic,
                }),
                warnings,
            };
        }
    }
    AppCheck {
        app,
        schedules_run,
        decisions,
        failure: None,
        warnings,
    }
}
