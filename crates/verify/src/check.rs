//! The `cvm check` driver: schedule exploration per application with
//! lint-style findings and replayable failure seeds.

use std::fmt::Write as _;

use cvm_apps::{AppId, Scale};
use cvm_dsm::{Finding, InjectFault, ProtocolKind};
use cvm_sim::json::JsonValue;
use cvm_sim::ExploreSpec;

use crate::dpor::{dpor_check, DporCounterexample, DporOptions, DporStats};
use crate::explore::{minimize, run_schedule, RunPlan};

/// What `cvm check` should do.
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// Applications to check.
    pub apps: Vec<AppId>,
    /// Cluster geometry.
    pub nodes: usize,
    /// Threads per node.
    pub threads: usize,
    /// Coherence protocol to explore (every protocol must survive the
    /// same schedule shaking as the default).
    pub protocol: ProtocolKind,
    /// Perturbed schedules to explore per application (an unperturbed
    /// baseline always runs first, on top of this count).
    pub schedules: u64,
    /// Base exploration seed; schedule `i` derives its seed from it
    /// (schedule 0 uses it verbatim, so a reported seed replays with
    /// `--schedules 1 --seed <seed>`).
    pub seed: u64,
    /// Scheduler pick decisions each explored schedule may perturb.
    pub budget: u64,
    /// Deliberate protocol mutation (oracle self-test), if any.
    pub inject: Option<InjectFault>,
    /// Named fault plan (from [`cvm_dsm::PLAN_CATALOG`]) layered under
    /// every explored schedule: the oracle and race replay then run over
    /// a faulty wire repaired by the reliability layer.
    pub faults: Option<&'static str>,
    /// Trace capacity per run for the offline race replay.
    pub trace_capacity: usize,
    /// Problem size.
    pub scale: Scale,
    /// Exhaustive DPOR exploration instead of seeded random shaking:
    /// every inequivalent interleaving of each application's kernel is
    /// executed (normally paired with [`Scale::Tiny`], the only scale
    /// where exhaustion terminates).
    pub dpor: bool,
    /// DPOR execution cap (see [`DporOptions::max_traces`]).
    pub max_traces: u64,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            apps: AppId::ALL.to_vec(),
            nodes: 2,
            threads: 2,
            protocol: ProtocolKind::LazyMultiWriter,
            schedules: 8,
            seed: 0xC11E_C4ED,
            budget: 64,
            inject: None,
            faults: None,
            trace_capacity: 4_000_000,
            scale: Scale::Small,
            dpor: false,
            max_traces: 20_000,
        }
    }
}

impl CheckOptions {
    /// The exploration spec of schedule `i` (0-based). Schedule 0 uses
    /// the base seed verbatim so printed seeds replay directly.
    pub fn spec_of(&self, i: u64) -> ExploreSpec {
        ExploreSpec {
            seed: self.seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            budget: self.budget,
        }
    }

    /// The [`RunPlan`] these options induce for one application (the
    /// harness uses it to serialize schedule files for DPOR failures).
    pub fn plan(&self, app: AppId) -> RunPlan {
        RunPlan {
            app,
            scale: self.scale,
            nodes: self.nodes,
            threads: self.threads,
            protocol: self.protocol,
            inject: self.inject,
            faults: self.faults,
            trace_capacity: self.trace_capacity,
        }
    }
}

/// A failing schedule, minimized and ready to replay.
#[derive(Debug)]
pub struct ScheduleFailure {
    /// The schedule that first failed (`None` = the unperturbed
    /// baseline).
    pub spec: Option<ExploreSpec>,
    /// The smallest perturbation budget that still fails (present only
    /// when `spec` is a perturbed schedule).
    pub minimized: Option<ExploreSpec>,
    /// Findings of the failing run (online oracle + offline replay).
    pub findings: Vec<Finding>,
    /// Panic message if the failing run aborted.
    pub panic: Option<String>,
    /// DPOR mode: the minimized pick sequence, ready to serialize as a
    /// schedule file and replay byte-identically with `cvm run --replay`.
    pub script: Option<DporCounterexample>,
}

/// One application's check outcome.
#[derive(Debug)]
pub struct AppCheck {
    /// Application checked.
    pub app: AppId,
    /// Schedules actually run (exploration stops at the first failure).
    pub schedules_run: u64,
    /// Total scheduler decisions perturbed across all runs.
    pub decisions: u64,
    /// The first failing schedule, if any.
    pub failure: Option<ScheduleFailure>,
    /// Non-fatal caveats (e.g. trace overflow disabling the race replay).
    pub warnings: Vec<String>,
    /// Schedules whose analysis was incomplete: the protocol trace
    /// overflowed, so the offline race replay was silently skipped for
    /// that run.
    pub truncated_schedules: u64,
    /// DPOR mode: the exploration statistics.
    pub dpor: Option<DporStats>,
}

impl AppCheck {
    /// True if every schedule of this application came back clean.
    pub fn clean(&self) -> bool {
        self.failure.is_none()
    }
}

/// The full `cvm check` outcome.
#[derive(Debug)]
pub struct CheckReport {
    /// Options the check ran with (used to render replay commands).
    pub options: CheckOptions,
    /// Per-application outcomes.
    pub apps: Vec<AppCheck>,
}

impl CheckReport {
    /// True if every application came back clean.
    pub fn clean(&self) -> bool {
        self.apps.iter().all(AppCheck::clean)
    }

    /// Total incomplete-analysis schedules across all applications.
    pub fn truncated_schedules(&self) -> u64 {
        self.apps.iter().map(|a| a.truncated_schedules).sum()
    }

    /// Lint-style rendering: one status line per application, indented
    /// findings and a copy-pastable replay command per failure, closed by
    /// a one-line summary (failures and truncated schedules are always
    /// surfaced there, even when individually warned about).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for app in &self.apps {
            if let Some(stats) = &app.dpor {
                self.render_dpor(&mut out, app, stats);
                continue;
            }
            if let Some(fail) = &app.failure {
                let which = match fail.spec {
                    Some(spec) => format!("schedule seed={:#x} budget={}", spec.seed, spec.budget),
                    None => "the unperturbed baseline".to_owned(),
                };
                let _ = writeln!(
                    out,
                    "{}: FAIL after {} schedule(s) — {which}",
                    app.app, app.schedules_run
                );
                if let Some(min) = fail.minimized {
                    if min.budget == 0 {
                        let _ = writeln!(
                            out,
                            "  minimized: fails with budget 0 (schedule-independent)"
                        );
                    } else {
                        let _ = writeln!(
                            out,
                            "  minimized: seed={:#x} budget={}",
                            min.seed, min.budget
                        );
                    }
                }
                for f in &fail.findings {
                    let _ = writeln!(out, "  finding: {f}");
                }
                if let Some(p) = &fail.panic {
                    let _ = writeln!(out, "  panic: {p}");
                }
                let replay = fail.minimized.or(fail.spec);
                if let Some(spec) = replay {
                    let mut proto = if self.options.protocol == ProtocolKind::default() {
                        String::new()
                    } else {
                        format!(" --protocol {}", self.options.protocol.slug())
                    };
                    if let Some(faults) = self.options.faults {
                        let _ = write!(proto, " --faults {faults}");
                    }
                    let _ = writeln!(
                        out,
                        "  replay: cvm check --app {} --nodes {} --threads {}{proto} \
                         --schedules 1 --seed {:#x} --budget {}",
                        app.app.name().to_lowercase(),
                        self.options.nodes,
                        self.options.threads,
                        spec.seed,
                        spec.budget
                    );
                }
            } else {
                let _ = writeln!(
                    out,
                    "{}: ok — {} schedule(s), {} perturbed decisions, 0 findings",
                    app.app, app.schedules_run, app.decisions
                );
            }
            for w in &app.warnings {
                let _ = writeln!(out, "  warning: {w}");
            }
        }
        let failures = self.apps.iter().filter(|a| !a.clean()).count();
        let _ = writeln!(
            out,
            "summary: {} app(s), {failures} failure(s), {} truncated schedule(s)",
            self.apps.len(),
            self.truncated_schedules()
        );
        out
    }

    /// One application's DPOR outcome: explored-vs-naive counts on the
    /// status line, minimized schedule and replay command on failure.
    fn render_dpor(&self, out: &mut String, app: &AppCheck, stats: &DporStats) {
        if let Some(fail) = &app.failure {
            let _ = writeln!(
                out,
                "{}: FAIL after {} trace(s) — DPOR found a failing interleaving",
                app.app, stats.traces
            );
            for f in &fail.findings {
                let _ = writeln!(out, "  finding: {f}");
            }
            if let Some(p) = &fail.panic {
                let _ = writeln!(out, "  panic: {p}");
            }
            if let Some(cx) = &fail.script {
                let _ = writeln!(
                    out,
                    "  minimized: {} pick(s), {} differing from the default policy",
                    cx.choices.len(),
                    cx.perturbations
                );
                let _ = writeln!(
                    out,
                    "  replay: cvm run {} --replay {}",
                    app.app.slug(),
                    schedule_file_name(app.app)
                );
            }
        } else {
            let verdict = if stats.exhausted {
                "exhaustive".to_owned()
            } else {
                format!("CAPPED at {} traces — not exhaustive", stats.traces)
            };
            let _ = writeln!(
                out,
                "{}: ok — {verdict}, {} trace(s) explored (naive ~{}), \
                 {} sleep-set prune(s), {} backtrack(s), max frontier {}, \
                 {} distinct terminal state(s)",
                app.app,
                stats.traces,
                naive_estimate(stats),
                stats.sleep_prunes,
                stats.backtracks,
                stats.max_frontier,
                stats.distinct_states
            );
        }
        for w in &app.warnings {
            let _ = writeln!(out, "  warning: {w}");
        }
    }

    /// Machine-readable form (`"schema": "cvm-check"`), committed as
    /// `baselines/BENCH_check.json` so the regression gate covers the
    /// exploration statistics: a protocol change that silently doubles
    /// the reachable interleavings (or halves the reduction) moves these
    /// leaves past the gate.
    pub fn to_json(&self) -> JsonValue {
        let mut obj = JsonValue::object();
        obj.set("schema", "cvm-check");
        obj.set("mode", if self.options.dpor { "dpor" } else { "random" });
        obj.set("nodes", self.options.nodes);
        obj.set("threads", self.options.threads);
        obj.set("protocol", self.options.protocol.slug());
        obj.set("scale", self.options.scale.slug());
        if let Some(inject) = self.options.inject {
            obj.set("mutate", inject.to_string());
        }
        let failures = self.apps.iter().filter(|a| !a.clean()).count();
        obj.set("failures", failures);
        obj.set("truncated_schedules", self.truncated_schedules());
        let mut apps = JsonValue::array();
        for app in &self.apps {
            let mut a = JsonValue::object();
            a.set("app", app.app.slug());
            a.set("clean", app.clean());
            a.set("schedules_run", app.schedules_run);
            a.set("truncated_schedules", app.truncated_schedules);
            if let Some(stats) = &app.dpor {
                let mut d = JsonValue::object();
                d.set("traces", stats.traces);
                d.set("naive_log10", stats.naive_log10);
                d.set("sleep_prunes", stats.sleep_prunes);
                d.set("backtracks", stats.backtracks);
                d.set("max_frontier", stats.max_frontier);
                d.set("max_depth", stats.max_depth);
                d.set("distinct_states", stats.distinct_states);
                d.set("exhausted", stats.exhausted);
                a.set("dpor", d);
            }
            if let Some(fail) = &app.failure {
                let mut f = JsonValue::object();
                let mut finds = JsonValue::array();
                for finding in &fail.findings {
                    finds.push(finding.to_string());
                }
                f.set("findings", finds);
                if let Some(p) = &fail.panic {
                    f.set("panic", p.as_str());
                }
                if let Some(cx) = &fail.script {
                    f.set("perturbations", cx.perturbations);
                    f.set("picks", cx.choices.len());
                }
                a.set("failure", f);
            }
            apps.push(a);
        }
        obj.set("apps", apps);
        obj
    }
}

/// The schedule file `cvm check --dpor` writes for a failing app (and
/// the render's replay command references).
pub fn schedule_file_name(app: AppId) -> String {
    format!("cvm-schedule-{}.json", app.slug())
}

/// Human form of the naive interleaving count: exact while it fits
/// comfortably, order-of-magnitude beyond that.
fn naive_estimate(stats: &DporStats) -> String {
    if stats.naive < 1_000_000_000 {
        format!("{}", stats.naive)
    } else {
        format!("10^{:.1}", stats.naive_log10)
    }
}

/// Runs the check. Random mode: per application, an unperturbed baseline
/// followed by `schedules` seeded perturbations, stopping at (and
/// minimizing) the first failure. DPOR mode: exhaustive exploration of
/// every inequivalent interleaving per application.
pub fn run_check(options: &CheckOptions) -> CheckReport {
    let mut apps = Vec::new();
    for &app in &options.apps {
        apps.push(if options.dpor {
            check_app_dpor(options, app)
        } else {
            check_app(options, app)
        });
    }
    CheckReport {
        options: options.clone(),
        apps,
    }
}

fn check_app_dpor(options: &CheckOptions, app: AppId) -> AppCheck {
    let report = dpor_check(
        options.plan(app),
        &DporOptions {
            max_traces: options.max_traces,
        },
    );
    let mut warnings = Vec::new();
    if report.stats.truncated {
        warnings.push(format!(
            "exploration capped at {} trace(s); raise --max-traces for an \
             exhaustive verdict",
            report.stats.traces
        ));
    }
    if report.stats.overflowed > 0 {
        warnings.push(format!(
            "{} trace(s) overflowed the protocol trace buffer — race \
             replay skipped for those terminal states",
            report.stats.overflowed
        ));
    }
    let failure = report.counterexample.map(|cx| ScheduleFailure {
        spec: None,
        minimized: None,
        findings: cx.findings.clone(),
        panic: cx.panic.clone(),
        script: Some(cx),
    });
    AppCheck {
        app,
        schedules_run: report.stats.traces,
        decisions: 0,
        failure,
        warnings,
        truncated_schedules: report.stats.overflowed,
        dpor: Some(report.stats),
    }
}

fn check_app(options: &CheckOptions, app: AppId) -> AppCheck {
    let plan = options.plan(app);
    let mut decisions = 0;
    let mut warnings = Vec::new();
    let mut schedules_run = 0;
    let mut truncated_schedules = 0;
    // Baseline first: the configured policy, no perturbation.
    let specs =
        std::iter::once(None).chain((0..options.schedules).map(|i| Some(options.spec_of(i))));
    for spec in specs {
        let result = run_schedule(plan, spec);
        schedules_run += 1;
        decisions += result.decisions;
        if result.trace_dropped > 0 {
            truncated_schedules += 1;
            if warnings.is_empty() {
                warnings.push(format!(
                    "trace overflowed ({} events dropped) — race replay skipped; \
                     raise the trace capacity to restore it",
                    result.trace_dropped
                ));
            }
        }
        if result.failed() {
            let minimized = spec.map(|s| minimize(plan, s, 16));
            return AppCheck {
                app,
                schedules_run,
                decisions,
                failure: Some(ScheduleFailure {
                    spec,
                    minimized,
                    findings: result.findings,
                    panic: result.panic,
                    script: None,
                }),
                warnings,
                truncated_schedules,
                dpor: None,
            };
        }
    }
    AppCheck {
        app,
        schedules_run,
        decisions,
        failure: None,
        warnings,
        truncated_schedules,
        dpor: None,
    }
}
