//! The dependence relation over scheduler steps — the heart of DPOR.
//!
//! Two steps are *independent* when they commute: executing them in
//! either order from any state reaches the same state. DPOR only needs a
//! sound over-approximation of dependence (calling an independent pair
//! dependent costs extra exploration, never soundness), so the relation
//! here is deliberately coarse where the protocol is subtle:
//!
//! * Steps of the same thread are always dependent (program order).
//! * Steps whose page footprints conflict (a write on one side, any
//!   access on the other, same page) are dependent — this is exactly the
//!   conflict the vector-clock race replay checks, projected onto steps.
//! * Operations on the same lock are dependent (grant order is visible).
//! * Global reductions are dependent on each other (float addition does
//!   not commute) and on page writes.
//! * Interval-closing operations (barrier, release) are dependent on
//!   steps that write: a close publishes or pushes diffs, so its order
//!   against a conflicting write is visible. Two closes commute —
//!   barrier arrivals and notice unions are order-independent.
//!
//! The relation is symmetric by construction — `tests/indep_props.rs`
//! checks symmetry, and that independent pairs really do commute on a
//! model state machine while dependent witnesses do not.

use cvm_sim::{StepRecord, SyncOp};

/// True if the step ended in an operation that closes the current write
/// interval and publishes notices (visible to every other node's clock).
fn closes_interval(s: &SyncOp) -> bool {
    matches!(s, SyncOp::Barrier | SyncOp::Release { .. })
}

/// True if the step ended in a global reduction.
fn is_reduce(s: &SyncOp) -> bool {
    matches!(s, SyncOp::Reduce)
}

/// The lock an acquire/release step operates on, if any.
fn lock_of(s: &SyncOp) -> Option<u32> {
    match s {
        SyncOp::Acquire { lock } | SyncOp::Release { lock } => Some(*lock),
        _ => None,
    }
}

/// The pages this step read (faulting reads included).
fn reads_of(s: &StepRecord) -> Vec<u32> {
    let mut pages = s.reads.clone();
    if let SyncOp::Fault { page, write: false } = s.sync {
        if !pages.contains(&page) {
            pages.push(page);
        }
    }
    pages
}

/// The pages this step wrote (faulting writes included).
fn writes_of(s: &StepRecord) -> Vec<u32> {
    let mut pages = s.writes.clone();
    if let SyncOp::Fault { page, write: true } = s.sync {
        if !pages.contains(&page) {
            pages.push(page);
        }
    }
    pages
}

/// True if `a`'s writes overlap `b`'s reads or writes.
fn write_conflict(a: &StepRecord, b: &StepRecord) -> bool {
    let aw = writes_of(a);
    if aw.is_empty() {
        return false;
    }
    let br = reads_of(b);
    let bw = writes_of(b);
    aw.iter().any(|p| br.contains(p) || bw.contains(p))
}

/// True if the step wrote any page (closing ops commute with pure reads:
/// the notices a close publishes only cover writes).
fn touches_pages(s: &StepRecord) -> bool {
    !writes_of(s).is_empty()
}

/// The symmetric dependence relation: `true` means the two steps may not
/// commute, so DPOR must explore both orders.
pub fn dependent(a: &StepRecord, b: &StepRecord) -> bool {
    // Program order: same thread of the same node.
    if a.node == b.node && a.thread == b.thread {
        return true;
    }
    // Page conflicts, both directions (writer/reader and writer/writer).
    if write_conflict(a, b) || write_conflict(b, a) {
        return true;
    }
    // Same-lock operations: grant order decides which critical section's
    // notices the other acquirer inherits.
    if let (Some(la), Some(lb)) = (lock_of(&a.sync), lock_of(&b.sync)) {
        if la == lb {
            return true;
        }
    }
    // Global reductions fold floats in arrival order.
    if is_reduce(&a.sync) && is_reduce(&b.sync) {
        return true;
    }
    // Interval-closing operations against remote writes: a close pushes
    // or publishes diffs, so its order against a conflicting write is
    // visible (eager update applies the pushed diff to the other copy).
    // Two closes commute: barrier arrivals and notice unions are
    // order-independent (vector merges are elementwise max).
    let (ca, cb) = (closes_interval(&a.sync), closes_interval(&b.sync));
    if (ca && touches_pages(b)) || (cb && touches_pages(a)) {
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(node: u32, thread: u32, reads: &[u32], writes: &[u32], sync: SyncOp) -> StepRecord {
        StepRecord {
            node,
            thread,
            enabled: vec![thread],
            chosen: 0,
            reads: reads.to_vec(),
            writes: writes.to_vec(),
            sync,
        }
    }

    #[test]
    fn program_order_is_dependent() {
        let a = step(0, 1, &[], &[], SyncOp::Yield);
        let b = step(0, 1, &[], &[], SyncOp::Yield);
        assert!(dependent(&a, &b));
        let c = step(1, 1, &[], &[], SyncOp::Yield);
        assert!(!dependent(&a, &c), "same tid on another node is fine");
    }

    #[test]
    fn page_conflicts_need_a_writer() {
        let r1 = step(0, 0, &[7], &[], SyncOp::Yield);
        let r2 = step(1, 0, &[7], &[], SyncOp::Yield);
        assert!(!dependent(&r1, &r2), "read/read commutes");
        let w = step(1, 0, &[], &[7], SyncOp::Yield);
        assert!(dependent(&r1, &w));
        assert!(dependent(&w, &r1), "symmetric");
        let w2 = step(0, 0, &[], &[7], SyncOp::Yield);
        assert!(dependent(&w, &w2), "write/write conflicts");
        let other = step(0, 0, &[], &[8], SyncOp::Yield);
        assert!(!dependent(&w, &other), "distinct pages commute");
    }

    #[test]
    fn fault_pages_join_the_footprint() {
        let rf = step(
            0,
            0,
            &[],
            &[],
            SyncOp::Fault {
                page: 3,
                write: false,
            },
        );
        let wf = step(
            1,
            0,
            &[],
            &[],
            SyncOp::Fault {
                page: 3,
                write: true,
            },
        );
        assert!(dependent(&rf, &wf));
        let rf2 = step(
            1,
            0,
            &[],
            &[],
            SyncOp::Fault {
                page: 3,
                write: false,
            },
        );
        assert!(!dependent(&rf, &rf2), "two read faults commute");
    }

    #[test]
    fn locks_and_reduces() {
        let a0 = step(0, 0, &[], &[], SyncOp::Acquire { lock: 0 });
        let a0b = step(1, 0, &[], &[], SyncOp::Acquire { lock: 0 });
        let a1 = step(1, 0, &[], &[], SyncOp::Acquire { lock: 1 });
        assert!(dependent(&a0, &a0b));
        assert!(!dependent(&a0, &a1), "different locks commute");
        let r = step(0, 0, &[], &[], SyncOp::Reduce);
        let r2 = step(1, 0, &[], &[], SyncOp::Reduce);
        assert!(dependent(&r, &r2));
    }

    #[test]
    fn closing_ops_vs_writes() {
        let bar = step(0, 0, &[], &[], SyncOp::Barrier);
        let bar2 = step(1, 0, &[], &[], SyncOp::Barrier);
        let w = step(1, 0, &[], &[5], SyncOp::Yield);
        let r = step(1, 0, &[5], &[], SyncOp::Yield);
        assert!(!dependent(&bar, &bar2), "two barrier arrivals commute");
        assert!(dependent(&bar, &w));
        assert!(!dependent(&bar, &r), "closing op vs pure read commutes");
    }
}
