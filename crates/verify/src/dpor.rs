//! Exhaustive stateless model checking via dynamic partial-order
//! reduction (Flanagan & Godefroid, POPL 2005), over the scheduler's
//! only source of nondeterminism: the per-node ready-queue pick.
//!
//! Every run of a [`RunPlan`] is a deterministic function of the sequence
//! of pick decisions, so the checker explores the tree of pick sequences
//! depth-first, re-executing from scratch with the prefix pinned by a
//! [`ScheduleScript`](cvm_sim::ScheduleScript) (stateless search: no
//! state saving, just replay). At each scheduling point the executed run
//! reports the *enabled* set and the step's page/lock footprint; the
//! analysis then decides which alternative picks can be skipped:
//!
//! * An alternative thread `u` at point `k` whose next step commutes
//!   (per [`dependent`]) with everything executed between `k` and that
//!   step leads to a Mazurkiewicz-equivalent trace — pruned, counted in
//!   [`DporStats::sleep_prunes`].
//! * Otherwise the reordering is observable and `u` joins the backtrack
//!   set of point `k` ([`DporStats::backtracks`]). Alternatives whose
//!   thread never runs again in the observed suffix are conservatively
//!   explored too (they may be blocked *because* of the current order).
//!
//! Every terminal state runs the full oracle battery (lost-update /
//! exactly-once invariants online, vector-clock race replay offline), so
//! "explored exhaustively with 0 findings" means: no interleaving of
//! this kernel, under this protocol, violates the coherence contract.
//!
//! Failures are minimized (each scripted pick is reverted to the default
//! policy if the failure persists) and exported as a replayable schedule
//! file — `cvm run <app> --replay FILE` re-executes it byte-identically,
//! asserting the terminal state fingerprint matches.

use std::collections::{BTreeSet, HashSet};

use cvm_apps::{AppId, Scale};
use cvm_dsm::{Finding, InjectFault, ProtocolKind};
use cvm_sim::json::JsonValue;
use cvm_sim::StepRecord;

use crate::explore::{run_scripted, RunPlan, ScriptedResult};
use crate::indep::dependent;

/// Tuning knobs for the DPOR exploration.
#[derive(Debug, Clone, Copy)]
pub struct DporOptions {
    /// Hard cap on executions; hitting it sets [`DporStats::truncated`]
    /// instead of looping for hours on an unexpectedly wide kernel.
    pub max_traces: u64,
}

impl Default for DporOptions {
    fn default() -> Self {
        DporOptions { max_traces: 20_000 }
    }
}

/// Exploration statistics, reported next to the verdict.
#[derive(Debug, Clone, Copy, Default)]
pub struct DporStats {
    /// Executions actually run.
    pub traces: u64,
    /// Naive interleaving count (product of enabled-set sizes along the
    /// first trace — what a schedule enumerator without reduction would
    /// face), saturating at `u128::MAX`.
    pub naive: u128,
    /// `log10` of the naive count, for rendering astronomically large
    /// products.
    pub naive_log10: f64,
    /// Alternatives skipped because they provably lead to an equivalent
    /// trace (the sleep-set side of the reduction).
    pub sleep_prunes: u64,
    /// Alternatives added to backtrack sets (each is one future trace).
    pub backtracks: u64,
    /// Largest pending-alternative frontier (sum of backtrack-set sizes
    /// over the DFS stack) at any point.
    pub max_frontier: usize,
    /// Deepest execution, in scheduling points.
    pub max_depth: usize,
    /// Distinct terminal-state fingerprints among clean executions.
    pub distinct_states: usize,
    /// Executions whose protocol trace overflowed, silently skipping the
    /// offline race replay for that terminal state (surfaced as
    /// truncated schedules in `cvm check`).
    pub overflowed: u64,
    /// True if `max_traces` stopped the search before the frontier
    /// emptied, or a step log overflowed (analysis incomplete).
    pub truncated: bool,
    /// True if the frontier emptied: every Mazurkiewicz class reachable
    /// under the dependence over-approximation has been executed.
    pub exhausted: bool,
}

/// A failing pick sequence, minimized and ready to replay.
#[derive(Debug, Clone)]
pub struct DporCounterexample {
    /// Scheduler picks reproducing the failure (index `i` picks the
    /// `choices[i]`-th ready thread at scheduling point `i`).
    pub choices: Vec<u32>,
    /// Picks that differ from the default (FIFO) policy — the
    /// counterexample's size in the sense the minimizer optimizes.
    pub perturbations: usize,
    /// Findings of the failing run.
    pub findings: Vec<Finding>,
    /// Panic message if the failing run aborted.
    pub panic: Option<String>,
    /// Terminal-state fingerprint of the failing run (`0` on panic) —
    /// replays assert against it.
    pub state_hash: u64,
}

/// The outcome of one DPOR exploration.
#[derive(Debug)]
pub struct DporReport {
    /// Exploration statistics.
    pub stats: DporStats,
    /// The first failure found, if any (the search stops at it).
    pub counterexample: Option<DporCounterexample>,
}

/// One scheduling point on the DFS stack.
#[derive(Debug)]
struct Point {
    /// Ready thread ids (per-node) observed at this point.
    enabled: Vec<u32>,
    /// Owning node of this scheduling point.
    node: u32,
    /// Index into `enabled` currently pinned by the script.
    chosen: u32,
    /// Indices already executed from this point.
    done: BTreeSet<u32>,
    /// Indices still to execute (the backtrack set).
    todo: BTreeSet<u32>,
    /// Indices pruned as equivalent so far. A pruned alternative is
    /// re-examined on every execution through this point — a later
    /// suffix can reveal a dependence the first one hid — but is only
    /// counted once, and graduates to `todo` if that happens.
    pruned: BTreeSet<u32>,
}

/// Explores all inequivalent schedules of `plan`, stopping at the first
/// failure. Rejects plans with fault injection via the wire (`faults`):
/// lossy-wire timer nondeterminism is not captured by the pick script,
/// so replay would not be deterministic.
///
/// # Panics
///
/// Panics if `plan.faults` is set.
pub fn dpor_check(plan: RunPlan, options: &DporOptions) -> DporReport {
    assert!(
        plan.faults.is_none(),
        "DPOR requires a deterministic wire; fault plans are not supported"
    );
    let mut stats = DporStats::default();
    let mut stack: Vec<Point> = Vec::new();
    let mut terminal = HashSet::new();
    loop {
        let choices: Vec<u32> = stack.iter().map(|p| p.chosen).collect();
        let result = run_scripted(plan, &choices);
        stats.traces += 1;
        if stats.traces == 1 {
            let mut product: u128 = 1;
            let mut log10 = 0.0f64;
            for s in &result.steps {
                let n = s.enabled.len().max(1) as u128;
                product = product.saturating_mul(n);
                log10 += (n as f64).log10();
            }
            stats.naive = product;
            stats.naive_log10 = log10;
        }
        if result.failed() {
            let cx = minimize_counterexample(plan, choices, &result);
            stats.distinct_states = terminal.len();
            return DporReport {
                stats,
                counterexample: Some(cx),
            };
        }
        if result.steps_dropped > 0 {
            stats.truncated = true;
        }
        if result.trace_dropped > 0 {
            stats.overflowed += 1;
        }
        terminal.insert(result.state_hash);
        stats.max_depth = stats.max_depth.max(result.steps.len());

        // Extend the stack with the scheduling points beyond the pinned
        // prefix (the prefix itself replayed identically by construction).
        for s in &result.steps[stack.len()..] {
            stack.push(Point {
                enabled: s.enabled.clone(),
                node: s.node,
                chosen: s.chosen,
                done: BTreeSet::from([s.chosen]),
                todo: BTreeSet::new(),
                pruned: BTreeSet::new(),
            });
        }
        analyze(&mut stack, &result.steps, &mut stats);
        let frontier: usize = stack.iter().map(|p| p.todo.len()).sum();
        stats.max_frontier = stats.max_frontier.max(frontier);

        if stats.truncated || stats.traces >= options.max_traces {
            stats.truncated = true;
            break;
        }
        // Deepest-first backtracking: pop exhausted points, then take the
        // smallest pending alternative of the deepest live point.
        let mut advanced = false;
        while let Some(p) = stack.last_mut() {
            if let Some(&u) = p.todo.iter().next() {
                p.todo.remove(&u);
                p.done.insert(u);
                p.chosen = u;
                advanced = true;
                break;
            }
            stack.pop();
        }
        if !advanced {
            stats.exhausted = true;
            break;
        }
    }
    stats.distinct_states = terminal.len();
    DporReport {
        stats,
        counterexample: None,
    }
}

/// The Flanagan–Godefroid update: for every point `k` with more than one
/// enabled thread and every untried alternative `u`, find `u`'s next step
/// `m` in the observed trace. If anything in `steps[k..m]` is dependent
/// with `steps[m]`, running `u` first is observably different — add it to
/// the backtrack set. Otherwise the swap commutes all the way and the
/// resulting trace is equivalent — prune. Alternatives that never run
/// again are explored conservatively.
fn analyze(stack: &mut [Point], steps: &[StepRecord], stats: &mut DporStats) {
    for (k, point) in stack.iter_mut().enumerate() {
        if point.enabled.len() < 2 {
            continue;
        }
        for ui in 0..point.enabled.len() {
            let ui = u32::try_from(ui).expect("enabled set fits u32");
            if point.done.contains(&ui) || point.todo.contains(&ui) {
                continue;
            }
            let tid = point.enabled[ui as usize];
            let next = steps[k + 1..]
                .iter()
                .position(|s| s.node == point.node && s.thread == tid)
                .map(|off| k + 1 + off);
            let must_explore = match next {
                // Never ran again: possibly blocked by the current order.
                None => true,
                Some(m) => steps[k..m].iter().any(|l| dependent(l, &steps[m])),
            };
            if must_explore {
                point.pruned.remove(&ui);
                point.todo.insert(ui);
                stats.backtracks += 1;
            } else if point.pruned.insert(ui) {
                stats.sleep_prunes += 1;
            }
        }
    }
}

/// Minimizes a failing pick sequence: reverts each non-default pick to
/// the default policy (index 0, FIFO) one at a time, keeping reversions
/// that still fail, then drops the now-redundant zero tail.
fn minimize_counterexample(
    plan: RunPlan,
    mut choices: Vec<u32>,
    first: &ScriptedResult,
) -> DporCounterexample {
    let mut findings = first.findings.clone();
    let mut panic = first.panic.clone();
    let mut state_hash = first.state_hash;
    for i in 0..choices.len() {
        if choices[i] == 0 {
            continue;
        }
        let saved = choices[i];
        choices[i] = 0;
        let probe = run_scripted(plan, &choices);
        if probe.failed() {
            findings = probe.findings;
            panic = probe.panic;
            state_hash = probe.state_hash;
        } else {
            choices[i] = saved;
        }
    }
    while choices.last() == Some(&0) {
        choices.pop();
    }
    let perturbations = choices.iter().filter(|&&c| c != 0).count();
    DporCounterexample {
        choices,
        perturbations,
        findings,
        panic,
        state_hash,
    }
}

/// A parsed schedule file: everything needed to re-execute a
/// counterexample byte-identically.
#[derive(Debug)]
pub struct ScheduleFile {
    /// The run to repeat (fault plans are never carried — DPOR rejects
    /// them).
    pub plan: RunPlan,
    /// The pinned pick sequence.
    pub choices: Vec<u32>,
    /// Expected terminal-state fingerprint (`0` when the failing run
    /// panicked before reaching a terminal state).
    pub state_hash: u64,
}

/// Serializes a counterexample as a replayable schedule document
/// (`"schema": "cvm-schedule"`).
pub fn schedule_to_json(plan: &RunPlan, cx: &DporCounterexample) -> JsonValue {
    let mut obj = JsonValue::object();
    obj.set("schema", "cvm-schedule");
    obj.set("app", plan.app.slug());
    obj.set("scale", plan.scale.slug());
    obj.set("nodes", plan.nodes);
    obj.set("threads", plan.threads);
    obj.set("protocol", plan.protocol.slug());
    if let Some(inject) = plan.inject {
        obj.set("mutate", inject.to_string());
    }
    obj.set("choices", cx.choices.clone());
    obj.set("state_hash", format!("{:016x}", cx.state_hash));
    obj.set("perturbations", cx.perturbations);
    let mut finds = JsonValue::array();
    for f in &cx.findings {
        finds.push(f.to_string());
    }
    obj.set("findings", finds);
    if let Some(p) = &cx.panic {
        obj.set("panic", p.as_str());
    }
    obj
}

/// Parses a schedule document produced by [`schedule_to_json`].
pub fn schedule_from_json(doc: &JsonValue) -> Result<ScheduleFile, String> {
    if doc.get("schema").and_then(JsonValue::as_str) != Some("cvm-schedule") {
        return Err("not a cvm-schedule document".to_owned());
    }
    let field = |name: &str| doc.get(name).ok_or_else(|| format!("missing '{name}'"));
    let app = field("app")?
        .as_str()
        .and_then(AppId::parse)
        .ok_or("bad 'app'")?;
    let scale = field("scale")?
        .as_str()
        .and_then(Scale::parse)
        .ok_or("bad 'scale'")?;
    let nodes = field("nodes")?.as_u64().ok_or("bad 'nodes'")? as usize;
    let threads = field("threads")?.as_u64().ok_or("bad 'threads'")? as usize;
    let protocol = field("protocol")?
        .as_str()
        .and_then(ProtocolKind::parse)
        .ok_or("bad 'protocol'")?;
    let inject = match doc.get("mutate") {
        None | Some(JsonValue::Null) => None,
        Some(v) => Some(
            v.as_str()
                .and_then(InjectFault::parse)
                .ok_or("bad 'mutate'")?,
        ),
    };
    let choices = field("choices")?
        .as_array()
        .ok_or("bad 'choices'")?
        .iter()
        .map(|v| {
            v.as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or("bad pick in 'choices'")
        })
        .collect::<Result<Vec<u32>, _>>()?;
    let state_hash = field("state_hash")?
        .as_str()
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or("bad 'state_hash'")?;
    Ok(ScheduleFile {
        plan: RunPlan {
            app,
            scale,
            nodes,
            threads,
            protocol,
            inject,
            faults: None,
            trace_capacity: 4_000_000,
        },
        choices,
        state_hash,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cx() -> DporCounterexample {
        DporCounterexample {
            choices: vec![0, 1, 0, 1],
            perturbations: 2,
            findings: Vec::new(),
            panic: Some("boom".to_owned()),
            state_hash: 0xDEAD_BEEF,
        }
    }

    #[test]
    fn schedule_document_round_trips() {
        let plan = RunPlan {
            app: AppId::Sor,
            scale: Scale::Tiny,
            nodes: 2,
            threads: 2,
            protocol: ProtocolKind::HomeLazy,
            inject: Some(InjectFault::SkipHomeWatermark { nth: 1 }),
            faults: None,
            trace_capacity: 4_000_000,
        };
        let doc = schedule_to_json(&plan, &cx());
        let parsed = schedule_from_json(&doc).expect("round trip");
        assert_eq!(parsed.plan.app, plan.app);
        assert_eq!(parsed.plan.scale, plan.scale);
        assert_eq!(parsed.plan.nodes, plan.nodes);
        assert_eq!(parsed.plan.protocol, plan.protocol);
        assert_eq!(parsed.plan.inject, plan.inject);
        assert_eq!(parsed.choices, vec![0, 1, 0, 1]);
        assert_eq!(parsed.state_hash, 0xDEAD_BEEF);
    }

    #[test]
    fn schedule_parse_rejects_garbage() {
        assert!(schedule_from_json(&JsonValue::object()).is_err());
        let plan = RunPlan {
            app: AppId::Fft,
            scale: Scale::Tiny,
            nodes: 2,
            threads: 1,
            protocol: ProtocolKind::LazyMultiWriter,
            inject: None,
            faults: None,
            trace_capacity: 4_000_000,
        };
        let mut doc = schedule_to_json(&plan, &cx());
        doc.set("protocol", "bogus");
        assert!(schedule_from_json(&doc).is_err());
    }
}
