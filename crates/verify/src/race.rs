//! Happens-before replay race detection over the protocol trace.
//!
//! Lazy release consistency promises: when a node's vector time advances
//! past a remote interval, the write notices of that interval have been
//! delivered, so every page the interval dirtied is either invalidated or
//! already patched to (at least) that interval. A *lost update* is the
//! negation — the clock moved, but the node still holds a valid copy of a
//! dirtied page with neither the notice nor the diff. The reader sees
//! stale data that *happens-before* its own time, which LRC forbids.
//! Concurrent writes (incomparable clocks) are never flagged: the
//! multiple-writer protocol makes them benign until a synchronization
//! orders them.
//!
//! The replay mirrors each node's vector time using only trace events:
//! own closes ([`IntervalClosed`](TraceEvent::IntervalClosed)), lock
//! grants (the granter's clock captured at the
//! [`LockTransfer`](TraceEvent::LockTransfer) that precedes the matching
//! [`LockGranted`](TraceEvent::LockGranted)), and barrier releases (a
//! global least-upper-bound — every node participates in every barrier).
//! Page validity mirrors [`Invalidated`](TraceEvent::Invalidated) /
//! [`FetchComplete`](TraceEvent::FetchComplete); notice knowledge mirrors
//! [`NoticeCreated`](TraceEvent::NoticeCreated); the diff watermark
//! mirrors [`DiffApplied`](TraceEvent::DiffApplied) (it can run ahead of
//! the clock, which suppresses false positives).
//!
//! Scans are deferred to the node's *next own event* after a merge: a
//! blocked node's invalidations are recorded before any of its threads
//! run again, so at that point the mirror state is consistent.

use std::collections::{HashMap, HashSet, VecDeque};

use cvm_dsm::trace::TraceEvent;
use cvm_dsm::{Finding, Invariant, PageId, Trace, VectorTime};
use cvm_sim::VirtualTime;

/// Replay state for one run.
struct Replay {
    nodes: usize,
    /// Mirrored vector time per node.
    vt: Vec<VectorTime>,
    /// Clock prefix already audited per node.
    scanned: Vec<VectorTime>,
    /// Pages the node does *not* hold a readable copy of (startup leaves
    /// every page valid everywhere, so absence means valid).
    invalid: Vec<HashSet<PageId>>,
    /// Write notices known at each node: `(writer, interval, page)`.
    known: Vec<HashSet<(usize, u32, PageId)>>,
    /// Diff watermark per `(node, page, writer)`: writer intervals folded
    /// into the node's copy.
    applied: HashMap<(usize, PageId, usize), u32>,
    /// Pages dirtied by each closed interval `(writer, interval)`, learnt
    /// from the writer's own `NoticeCreated` records.
    interval_pages: HashMap<(usize, u32), Vec<PageId>>,
    /// Granter clocks captured at `LockTransfer`, consumed in order by the
    /// matching `LockGranted` (the token is single, so at most one grant
    /// per lock is ever in flight).
    pending_grant: HashMap<usize, VecDeque<VectorTime>>,
    findings: Vec<Finding>,
}

impl Replay {
    fn new(nodes: usize) -> Self {
        Replay {
            nodes,
            vt: vec![VectorTime::new(nodes); nodes],
            scanned: vec![VectorTime::new(nodes); nodes],
            invalid: vec![HashSet::new(); nodes],
            known: vec![HashSet::new(); nodes],
            applied: HashMap::new(),
            interval_pages: HashMap::new(),
            pending_grant: HashMap::new(),
            findings: Vec::new(),
        }
    }

    /// Audits every interval node `n`'s clock has newly covered since the
    /// last scan, flagging lost updates.
    fn scan(&mut self, n: usize, at: VirtualTime) {
        for q in 0..self.nodes {
            if q == n {
                continue;
            }
            let from = self.scanned[n].get(q) + 1;
            let upto = self.vt[n].get(q);
            for i in from..=upto {
                let Some(pages) = self.interval_pages.get(&(q, i)) else {
                    continue;
                };
                for &p in pages {
                    let valid = !self.invalid[n].contains(&p);
                    let noticed = self.known[n].contains(&(q, i, p));
                    let patched = self.applied.get(&(n, p, q)).is_some_and(|&upto| upto >= i);
                    if valid && !noticed && !patched {
                        self.findings.push(Finding {
                            invariant: Invariant::LostUpdate,
                            node: Some(n),
                            at,
                            detail: format!(
                                "n{n} holds a valid copy of {p} while its clock \
                                 covers n{q}.{i}, which dirtied {p}; the write \
                                 notice never arrived and no diff was applied"
                            ),
                        });
                    }
                }
            }
        }
        let vt = self.vt[n].clone();
        self.scanned[n] = vt;
    }

    fn step(&mut self, at: VirtualTime, event: &TraceEvent) {
        match *event {
            // Not a scan point: an incoming notice batch can force a
            // close (and a diff extraction) mid-application, after the
            // clock merged but before the remaining notices are recorded.
            TraceEvent::IntervalClosed { node, interval, .. } => {
                self.vt[node].advance(node, interval);
            }
            TraceEvent::NoticeCreated {
                node,
                writer,
                interval,
                page,
            } => {
                self.known[node].insert((writer, interval, page));
                if node == writer {
                    self.interval_pages
                        .entry((writer, interval))
                        .or_default()
                        .push(page);
                }
            }
            TraceEvent::DiffApplied {
                node,
                page,
                writer,
                upto,
            } => {
                let w = self.applied.entry((node, page, writer)).or_insert(0);
                *w = (*w).max(upto);
            }
            TraceEvent::Invalidated { node, page, .. } => {
                self.invalid[node].insert(page);
            }
            TraceEvent::FetchComplete { node, page, .. } => {
                self.invalid[node].remove(&page);
                self.scan(node, at);
            }
            TraceEvent::LockTransfer { lock, from, .. } => {
                let vt = self.vt[from].clone();
                self.pending_grant.entry(lock).or_default().push_back(vt);
            }
            TraceEvent::LockGranted { node, lock } => {
                if let Some(vt) = self
                    .pending_grant
                    .get_mut(&lock)
                    .and_then(VecDeque::pop_front)
                {
                    self.vt[node].merge(&vt);
                }
                self.scan(node, at);
            }
            TraceEvent::BarrierReleased { .. } => {
                // Global LUB: every node participates in every barrier and
                // has closed (and recorded) its pre-arrival interval. Do
                // NOT scan here — remote invalidations are recorded later,
                // when each release message is delivered; the scan waits
                // for that node's next own event.
                let mut lub = VectorTime::new(self.nodes);
                for vt in &self.vt {
                    lub.merge(vt);
                }
                for vt in &mut self.vt {
                    vt.merge(&lub);
                }
            }
            TraceEvent::Fault { node, page, .. } => {
                self.invalid[node].insert(page);
                self.scan(node, at);
            }
            TraceEvent::LockRequested { node, .. }
            | TraceEvent::LockLocalHandoff { node, .. }
            | TraceEvent::BarrierArrived { node, .. }
            | TraceEvent::ThreadSwitch { node, .. } => {
                self.scan(node, at);
            }
            // DiffCreated can also fire mid-notice-application (diff
            // extraction on invalidate); UpdatePushed is writer-side.
            TraceEvent::DiffCreated { .. } | TraceEvent::UpdatePushed { .. } => {}
        }
    }
}

/// Replays a recorded trace through the happens-before race detector and
/// returns every lost update found.
///
/// The trace must have been recorded with
/// [`CvmConfig::verify`](cvm_dsm::CvmConfig) set, so that notice, diff
/// watermark and lock-transfer events are present; without them the
/// replay cannot see coverage and would report false positives, so pass
/// the trace of a `verify` run only. The caller is responsible for
/// checking [`Trace::overflow`] — a truncated trace cannot be soundly
/// replayed.
pub fn replay_race_check(trace: &Trace, nodes: usize) -> Vec<Finding> {
    let mut replay = Replay::new(nodes);
    let mut last = VirtualTime::ZERO;
    for entry in trace.iter() {
        replay.step(entry.at, &entry.event);
        last = entry.at;
    }
    // Final audit: merges whose scan event never came (end of run).
    for n in 0..nodes {
        replay.scan(n, last);
    }
    replay.findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> VirtualTime {
        VirtualTime::from_us(us)
    }

    /// Hand-built trace: n0 writes p3 in interval 1, n1 learns the notice
    /// at a barrier and is invalidated — no finding.
    #[test]
    fn covered_write_is_clean() {
        let mut tr = Trace::new(64);
        tr.record(
            t(1),
            TraceEvent::NoticeCreated {
                node: 0,
                writer: 0,
                interval: 1,
                page: PageId(3),
            },
        );
        tr.record(
            t(1),
            TraceEvent::IntervalClosed {
                node: 0,
                interval: 1,
                pages: 1,
            },
        );
        tr.record(
            t(2),
            TraceEvent::BarrierReleased {
                epoch: 1,
                notices: 1,
            },
        );
        tr.record(
            t(3),
            TraceEvent::NoticeCreated {
                node: 1,
                writer: 0,
                interval: 1,
                page: PageId(3),
            },
        );
        tr.record(
            t(3),
            TraceEvent::Invalidated {
                node: 1,
                page: PageId(3),
                writer: 0,
            },
        );
        tr.record(
            t(4),
            TraceEvent::ThreadSwitch {
                node: 1,
                from: 2,
                to: 3,
            },
        );
        assert!(replay_race_check(&tr, 2).is_empty());
    }

    /// Same trace with the receiving node's notice dropped: n1's clock
    /// covers n0.1 after the barrier but it still holds p3 — lost update.
    #[test]
    fn dropped_notice_is_flagged() {
        let mut tr = Trace::new(64);
        tr.record(
            t(1),
            TraceEvent::NoticeCreated {
                node: 0,
                writer: 0,
                interval: 1,
                page: PageId(3),
            },
        );
        tr.record(
            t(1),
            TraceEvent::IntervalClosed {
                node: 0,
                interval: 1,
                pages: 1,
            },
        );
        tr.record(
            t(2),
            TraceEvent::BarrierReleased {
                epoch: 1,
                notices: 1,
            },
        );
        tr.record(
            t(4),
            TraceEvent::ThreadSwitch {
                node: 1,
                from: 2,
                to: 3,
            },
        );
        let findings = replay_race_check(&tr, 2);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].invariant, Invariant::LostUpdate);
        assert_eq!(findings[0].node, Some(1));
    }

    /// A diff watermark at or past the interval suppresses the report
    /// even without a notice (fetches can run ahead of the clock).
    #[test]
    fn applied_diff_suppresses_report() {
        let mut tr = Trace::new(64);
        tr.record(
            t(1),
            TraceEvent::NoticeCreated {
                node: 0,
                writer: 0,
                interval: 1,
                page: PageId(3),
            },
        );
        tr.record(
            t(1),
            TraceEvent::IntervalClosed {
                node: 0,
                interval: 1,
                pages: 1,
            },
        );
        tr.record(
            t(2),
            TraceEvent::DiffApplied {
                node: 1,
                page: PageId(3),
                writer: 0,
                upto: 1,
            },
        );
        tr.record(
            t(3),
            TraceEvent::BarrierReleased {
                epoch: 1,
                notices: 1,
            },
        );
        tr.record(
            t(4),
            TraceEvent::ThreadSwitch {
                node: 1,
                from: 2,
                to: 3,
            },
        );
        assert!(replay_race_check(&tr, 2).is_empty());
    }

    /// Concurrent writers with incomparable clocks are benign — nothing
    /// is flagged until a synchronization orders them.
    #[test]
    fn concurrent_writes_are_not_flagged() {
        let mut tr = Trace::new(64);
        for n in 0..2usize {
            tr.record(
                t(1),
                TraceEvent::NoticeCreated {
                    node: n,
                    writer: n,
                    interval: 1,
                    page: PageId(3),
                },
            );
            tr.record(
                t(1),
                TraceEvent::IntervalClosed {
                    node: n,
                    interval: 1,
                    pages: 1,
                },
            );
        }
        assert!(replay_race_check(&tr, 2).is_empty());
    }

    /// Lock-grant merges carry the granter's clock captured at the
    /// transfer; the grantee without the notice is flagged.
    #[test]
    fn lock_grant_merge_without_notice_is_flagged() {
        let mut tr = Trace::new(64);
        tr.record(
            t(1),
            TraceEvent::NoticeCreated {
                node: 0,
                writer: 0,
                interval: 1,
                page: PageId(9),
            },
        );
        tr.record(
            t(1),
            TraceEvent::IntervalClosed {
                node: 0,
                interval: 1,
                pages: 1,
            },
        );
        tr.record(
            t(2),
            TraceEvent::LockTransfer {
                lock: 0,
                from: 0,
                to: 1,
            },
        );
        tr.record(t(3), TraceEvent::LockGranted { node: 1, lock: 0 });
        let findings = replay_race_check(&tr, 2);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].node, Some(1));
    }
}
