//! Oracle self-tests: each injected protocol mutation must be caught,
//! and the faithful protocol must come back clean.

use cvm_apps::{AppId, Scale};
use cvm_dsm::{InjectFault, Invariant, ProtocolKind};
use cvm_sim::ExploreSpec;
use cvm_verify::check::{run_check, CheckOptions};
use cvm_verify::explore::{run_schedule, RunPlan};

fn plan(inject: Option<InjectFault>) -> RunPlan {
    RunPlan {
        app: AppId::Sor,
        scale: Scale::Small,
        nodes: 2,
        threads: 2,
        protocol: ProtocolKind::LazyMultiWriter,
        inject,
        faults: None,
        trace_capacity: 4_000_000,
    }
}

#[test]
fn faithful_run_is_clean() {
    let result = run_schedule(plan(None), None);
    assert_eq!(result.panic, None);
    assert!(
        result.findings.is_empty(),
        "clean run reported findings: {:?}",
        result.findings
    );
    assert_eq!(result.trace_dropped, 0, "raise the test trace capacity");
}

#[test]
fn explored_schedules_are_clean_and_perturbed() {
    let spec = ExploreSpec {
        seed: 0xFEED_F00D,
        budget: 32,
    };
    let result = run_schedule(plan(None), Some(spec));
    assert_eq!(result.panic, None);
    assert!(
        result.findings.is_empty(),
        "explored schedule reported findings: {:?}",
        result.findings
    );
    assert!(
        result.decisions > 0,
        "the exploration budget perturbed no decisions"
    );
}

#[test]
fn dropped_write_notice_is_caught() {
    let result = run_schedule(plan(Some(InjectFault::DropWriteNotice { nth: 0 })), None);
    assert!(result.failed(), "dropped notice went undetected");
    assert!(
        result.findings.iter().any(|f| matches!(
            f.invariant,
            Invariant::NoticeCoverage | Invariant::LostUpdate
        )),
        "expected NoticeCoverage or LostUpdate, got: {:?} panic: {:?}",
        result.findings,
        result.panic
    );
}

#[test]
fn reordered_diff_apply_is_caught() {
    let result = run_schedule(plan(Some(InjectFault::ReorderDiffApply { nth: 0 })), None);
    assert!(
        result.failed(),
        "reordered diff application went undetected"
    );
    assert!(
        result
            .findings
            .iter()
            .any(|f| f.invariant == Invariant::DiffApplyOrder),
        "expected DiffApplyOrder, got: {:?} panic: {:?}",
        result.findings,
        result.panic
    );
}

#[test]
fn skipped_invalidate_is_caught() {
    let result = run_schedule(plan(Some(InjectFault::SkipInvalidate { nth: 0 })), None);
    assert!(result.failed(), "skipped invalidation went undetected");
    assert!(
        result.findings.iter().any(|f| matches!(
            f.invariant,
            Invariant::PendingImpliesInvalid | Invariant::LostUpdate
        )),
        "expected PendingImpliesInvalid or LostUpdate, got: {:?} panic: {:?}",
        result.findings,
        result.panic
    );
}

#[test]
fn check_driver_minimizes_injected_failures() {
    let options = CheckOptions {
        apps: vec![AppId::Sor],
        schedules: 2,
        inject: Some(InjectFault::DropWriteNotice { nth: 0 }),
        ..CheckOptions::default()
    };
    let report = run_check(&options);
    assert!(!report.clean(), "injected fault not detected by cvm check");
    let failure = report.apps[0].failure.as_ref().expect("failure recorded");
    // The injection fires independent of scheduling, so the unperturbed
    // baseline (spec None) must already catch it.
    assert!(failure.spec.is_none(), "baseline should have failed first");
    let rendered = report.render();
    assert!(
        rendered.contains("FAIL"),
        "render misses failure: {rendered}"
    );
}

#[test]
fn non_default_protocols_survive_schedule_exploration() {
    for protocol in [ProtocolKind::EagerUpdate, ProtocolKind::HomeLazy] {
        let options = CheckOptions {
            apps: vec![AppId::Sor],
            schedules: 2,
            protocol,
            ..CheckOptions::default()
        };
        let report = run_check(&options);
        assert!(report.clean(), "{protocol}: {}", report.render());
    }
}

#[test]
fn check_driver_reports_clean_suite() {
    let options = CheckOptions {
        apps: vec![AppId::Sor],
        schedules: 1,
        ..CheckOptions::default()
    };
    let report = run_check(&options);
    assert!(report.clean(), "clean SOR reported: {}", report.render());
    assert!(report.render().contains("ok"));
}
