//! The DPOR model checker end-to-end: deterministic scripted replay,
//! exhaustive exploration of tiny kernels under all three protocols, and
//! mutation self-tests (a checker that cannot find seeded bugs proves
//! nothing by finding none).

use cvm_apps::{AppId, Scale};
use cvm_dsm::{InjectFault, ProtocolKind};
use cvm_verify::{dpor_check, run_scripted, DporOptions};
use cvm_verify::{schedule_from_json, schedule_to_json};

fn plan(app: AppId, protocol: ProtocolKind) -> cvm_verify::explore::RunPlan {
    cvm_verify::explore::RunPlan {
        app,
        scale: Scale::Tiny,
        nodes: 2,
        threads: 2,
        protocol,
        inject: None,
        faults: None,
        trace_capacity: 4_000_000,
    }
}

#[test]
fn scripted_replay_is_byte_identical() {
    let p = plan(AppId::Sor, ProtocolKind::LazyMultiWriter);
    let a = run_scripted(p, &[]);
    let b = run_scripted(p, &[]);
    assert!(!a.failed(), "baseline must be clean: {:?}", a.findings);
    assert_eq!(a.state_hash, b.state_hash, "terminal state must replay");
    assert_eq!(a.steps, b.steps, "step log must replay");
    assert!(!a.steps.is_empty(), "scheduling points were recorded");
    // Re-pinning the observed choices reproduces the same execution.
    let choices: Vec<u32> = a.steps.iter().map(|s| s.chosen).collect();
    let c = run_scripted(p, &choices);
    assert_eq!(a.state_hash, c.state_hash);
    assert_eq!(a.steps, c.steps);
}

#[test]
fn perturbed_prefix_changes_the_pick() {
    let p = plan(AppId::Sor, ProtocolKind::LazyMultiWriter);
    let base = run_scripted(p, &[]);
    // Find the first point with a real choice and flip it.
    let k = base
        .steps
        .iter()
        .position(|s| s.enabled.len() > 1)
        .expect("a 2-thread node has contended picks");
    let mut choices = vec![0u32; k + 1];
    choices[k] = 1;
    let flipped = run_scripted(p, &choices);
    assert_eq!(
        flipped.steps[k].chosen, 1,
        "the scripted pick must be honored"
    );
    assert_eq!(
        base.steps[..k],
        flipped.steps[..k],
        "the unperturbed prefix must replay identically"
    );
}

#[test]
fn dpor_exhausts_tiny_sor_under_every_protocol() {
    for protocol in [
        ProtocolKind::LazyMultiWriter,
        ProtocolKind::EagerUpdate,
        ProtocolKind::HomeLazy,
    ] {
        let report = dpor_check(plan(AppId::Sor, protocol), &DporOptions::default());
        assert!(
            report.counterexample.is_none(),
            "{protocol:?}: unexpected counterexample: {:?}",
            report.counterexample
        );
        assert!(
            report.stats.exhausted,
            "{protocol:?}: search must terminate (ran {} traces)",
            report.stats.traces
        );
        assert!(report.stats.traces >= 1);
        assert!(
            report.stats.naive_log10 >= (report.stats.traces as f64).log10(),
            "{protocol:?}: reduction must not exceed the naive count"
        );
    }
}

#[test]
fn dpor_catches_skip_watermark_mutant() {
    let mut p = plan(AppId::Sor, ProtocolKind::HomeLazy);
    p.inject = Some(InjectFault::SkipHomeWatermark { nth: 1 });
    let report = dpor_check(p, &DporOptions::default());
    let cx = report
        .counterexample
        .expect("DPOR must find the skipped watermark check");
    assert!(
        !cx.findings.is_empty() || cx.panic.is_some(),
        "counterexample carries evidence"
    );
    // The minimized schedule replays to the same failure and state.
    let replay = run_scripted(p, &cx.choices);
    assert!(replay.failed(), "minimized counterexample must reproduce");
    assert_eq!(replay.state_hash, cx.state_hash, "replay is byte-identical");
}

#[test]
fn dpor_catches_drop_grant_notice_mutant() {
    let mut p = plan(AppId::Sor, ProtocolKind::LazyMultiWriter);
    p.inject = Some(InjectFault::DropGrantNotice { nth: 1 });
    let report = dpor_check(p, &DporOptions::default());
    let cx = report
        .counterexample
        .expect("DPOR must find the dropped lock-grant notice");
    let replay = run_scripted(p, &cx.choices);
    assert!(replay.failed(), "minimized counterexample must reproduce");
    assert_eq!(replay.state_hash, cx.state_hash, "replay is byte-identical");
    // The schedule file round-trips into the same replay.
    let doc = schedule_to_json(&p, &cx);
    let parsed = schedule_from_json(&doc).expect("parse back");
    let again = run_scripted(parsed.plan, &parsed.choices);
    assert!(again.failed());
    assert_eq!(again.state_hash, parsed.state_hash);
}

#[test]
fn dpor_cap_reports_truncation() {
    let report = dpor_check(
        plan(AppId::Sor, ProtocolKind::LazyMultiWriter),
        &DporOptions { max_traces: 1 },
    );
    assert!(report.counterexample.is_none());
    assert!(!report.stats.exhausted);
    assert!(report.stats.truncated, "cap must be surfaced, not silent");
    assert_eq!(report.stats.traces, 1);
}

/// Not an assertion-heavy test: prints the exploration statistics so CI
/// logs show the explored-vs-naive reduction at a glance.
#[test]
fn dpor_stats_probe() {
    let report = dpor_check(
        plan(AppId::Sor, ProtocolKind::LazyMultiWriter),
        &DporOptions::default(),
    );
    let s = &report.stats;
    println!(
        "sor/lazy-mw tiny 2x2: traces={} naive~10^{:.1} prunes={} backtracks={} \
         frontier={} depth={} states={} exhausted={}",
        s.traces,
        s.naive_log10,
        s.sleep_prunes,
        s.backtracks,
        s.max_frontier,
        s.max_depth,
        s.distinct_states,
        s.exhausted
    );
    assert!(s.exhausted || s.truncated);
}
