//! Property tests for the DPOR dependence relation: symmetry over random
//! step pairs, and the semantic contract on a model state machine —
//! independent pairs commute to the same state hash, dependent witnesses
//! (page write conflicts, same-lock operations, reduction pairs) do not.

use cvm_sim::{Fnv64, SimRng, StepRecord, SyncOp};
use cvm_verify::dependent;

const PAGES: u64 = 6;
const LOCKS: u64 = 4;
/// 4 nodes x 2 threads; global thread ids, so distinct nodes never share
/// a tid (mirrors the driver's numbering).
const NODES: u64 = 4;
const TPN: u64 = 2;

fn mix(h: u64, vals: &[u64]) -> u64 {
    let mut f = Fnv64::new();
    f.write_u64(h);
    for &v in vals {
        f.write_u64(v);
    }
    f.finish()
}

/// A model machine just rich enough to distinguish every conflict the
/// relation declares: per-page values whose evolution is writer-order
/// sensitive, per-thread observation logs (so what a reader *saw* is part
/// of the state), per-lock grant logs, and an order-sensitive reduction
/// accumulator. Barrier-class arrivals are no-ops — the protocol's
/// vector merges and notice unions are order-independent, and the
/// relation says so.
#[derive(Clone, Debug, PartialEq, Eq)]
struct MiniState {
    pages: Vec<u64>,
    obs: Vec<u64>,
    locks: Vec<u64>,
    reduce: u64,
}

impl MiniState {
    fn random(rng: &mut SimRng) -> Self {
        MiniState {
            pages: (0..PAGES).map(|_| rng.next_u64()).collect(),
            obs: (0..NODES * TPN).map(|_| rng.next_u64()).collect(),
            locks: (0..LOCKS).map(|_| rng.next_u64()).collect(),
            reduce: rng.next_u64(),
        }
    }

    fn apply(&mut self, s: &StepRecord) {
        let t = u64::from(s.thread);
        let mut reads = s.reads.clone();
        let mut writes = s.writes.clone();
        match s.sync {
            SyncOp::Fault { page, write: false } => reads.push(page),
            SyncOp::Fault { page, write: true } => writes.push(page),
            _ => {}
        }
        for &p in &reads {
            let v = self.pages[p as usize];
            self.obs[t as usize] = mix(self.obs[t as usize], &[u64::from(p), v]);
        }
        for &p in &writes {
            self.pages[p as usize] = mix(self.pages[p as usize], &[t + 1]);
        }
        match s.sync {
            SyncOp::Acquire { lock } => {
                self.locks[lock as usize] = mix(self.locks[lock as usize], &[t + 1, 0]);
            }
            SyncOp::Release { lock } => {
                self.locks[lock as usize] = mix(self.locks[lock as usize], &[t + 1, 1]);
            }
            SyncOp::Reduce => self.reduce = mix(self.reduce, &[t + 1]),
            _ => {}
        }
    }

    fn hash(&self) -> u64 {
        let mut f = Fnv64::new();
        for &v in self.pages.iter().chain(&self.obs).chain(&self.locks) {
            f.write_u64(v);
        }
        f.write_u64(self.reduce);
        f.finish()
    }
}

fn both_orders(init: &MiniState, a: &StepRecord, b: &StepRecord) -> (u64, u64) {
    let mut ab = init.clone();
    ab.apply(a);
    ab.apply(b);
    let mut ba = init.clone();
    ba.apply(b);
    ba.apply(a);
    (ab.hash(), ba.hash())
}

fn step(node: u32, thread: u32, reads: Vec<u32>, writes: Vec<u32>, sync: SyncOp) -> StepRecord {
    StepRecord {
        node,
        thread,
        enabled: vec![thread],
        chosen: 0,
        reads,
        writes,
        sync,
    }
}

fn gen_pages(rng: &mut SimRng) -> Vec<u32> {
    (0..PAGES as u32).filter(|_| rng.below(3) == 0).collect()
}

fn gen_sync(rng: &mut SimRng) -> SyncOp {
    match rng.below(9) {
        0 => SyncOp::Fault {
            page: rng.below(PAGES) as u32,
            write: rng.below(2) == 0,
        },
        1 => SyncOp::Acquire {
            lock: rng.below(LOCKS) as u32,
        },
        2 => SyncOp::Release {
            lock: rng.below(LOCKS) as u32,
        },
        3 => SyncOp::Barrier,
        4 => SyncOp::LocalBarrier,
        5 => SyncOp::Reduce,
        6 => SyncOp::Rendezvous,
        7 => SyncOp::Yield,
        _ => SyncOp::Finish,
    }
}

fn gen_step(rng: &mut SimRng) -> StepRecord {
    let node = rng.below(NODES) as u32;
    let thread = node * TPN as u32 + rng.below(TPN) as u32;
    step(node, thread, gen_pages(rng), gen_pages(rng), gen_sync(rng))
}

#[test]
fn dependence_is_symmetric() {
    let mut rng = SimRng::seed_from(0xD0_0DEE);
    for _ in 0..4000 {
        let a = gen_step(&mut rng);
        let b = gen_step(&mut rng);
        assert_eq!(
            dependent(&a, &b),
            dependent(&b, &a),
            "asymmetric on {a:?} / {b:?}"
        );
    }
}

#[test]
fn program_order_pairs_are_dependent() {
    let mut rng = SimRng::seed_from(0x9A6E5);
    for _ in 0..1000 {
        let a = gen_step(&mut rng);
        let mut b = gen_step(&mut rng);
        b.node = a.node;
        b.thread = a.thread;
        assert!(dependent(&a, &b), "program order lost on {a:?} / {b:?}");
    }
}

#[test]
fn independent_pairs_commute() {
    let mut rng = SimRng::seed_from(0xC001_FACE);
    let mut tested = 0u32;
    for _ in 0..8000 {
        let a = gen_step(&mut rng);
        let b = gen_step(&mut rng);
        if dependent(&a, &b) {
            continue;
        }
        let init = MiniState::random(&mut rng);
        let (ab, ba) = both_orders(&init, &a, &b);
        assert_eq!(ab, ba, "independent pair does not commute: {a:?} / {b:?}");
        tested += 1;
    }
    assert!(tested > 500, "only {tested} independent pairs generated");
}

#[test]
fn conflicting_witnesses_do_not_commute() {
    let mut rng = SimRng::seed_from(0xBAD_C0DE);
    for trial in 0..2000u32 {
        // Distinct nodes, hence distinct global thread ids.
        let na = rng.below(NODES) as u32;
        let nb = (na + 1 + rng.below(NODES - 1) as u32) % NODES as u32;
        let (ta, tb) = (na * TPN as u32, nb * TPN as u32);
        let p = rng.below(PAGES) as u32;
        let (a, b) = match trial % 4 {
            // Write/write on the same page.
            0 => (
                step(na, ta, vec![], vec![p], SyncOp::Yield),
                step(nb, tb, vec![], vec![p], SyncOp::Yield),
            ),
            // Write/read on the same page: the reader's observation log
            // records which value it saw.
            1 => (
                step(na, ta, vec![], vec![p], SyncOp::Yield),
                step(nb, tb, vec![p], vec![], SyncOp::Yield),
            ),
            // Same lock: grant order is visible.
            2 => {
                let l = rng.below(LOCKS) as u32;
                (
                    step(na, ta, vec![], vec![], SyncOp::Acquire { lock: l }),
                    step(nb, tb, vec![], vec![], SyncOp::Release { lock: l }),
                )
            }
            // Two global reductions: floats fold in arrival order.
            _ => (
                step(na, ta, vec![], vec![], SyncOp::Reduce),
                step(nb, tb, vec![], vec![], SyncOp::Reduce),
            ),
        };
        assert!(dependent(&a, &b), "witness not dependent: {a:?} / {b:?}");
        let init = MiniState::random(&mut rng);
        let (ab, ba) = both_orders(&init, &a, &b);
        assert_ne!(ab, ba, "dependent witness commuted: {a:?} / {b:?}");
    }
}
