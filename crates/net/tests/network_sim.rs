//! Behavioral tests of [`NetworkSim`]: delivery ordering, handler
//! occupancy, jitter determinism, loss recovery, delivery floors and the
//! parked-byte gauges. Everything here drives the public API only.

use cvm_net::*;
use cvm_sim::{SimDuration, SimRng, VirtualTime};

fn msg(src: usize, dst: usize, kind: MsgKind, bytes: usize) -> Message<u32> {
    Message::new(NodeId(src), NodeId(dst), kind, bytes, 0)
}

#[test]
fn delivery_order_is_completion_order() {
    let mut net = NetworkSim::new(3, LatencyModel::paper());
    // Two messages to the same node: the second waits for the handler.
    net.send(VirtualTime::ZERO, msg(0, 2, MsgKind::LockRequest, 64));
    net.send(VirtualTime::ZERO, msg(1, 2, MsgKind::LockRequest, 64));
    let (t1, _) = net.next().unwrap();
    let (t2, _) = net.next().unwrap();
    let h = LatencyModel::paper()
        .handler_time(MsgKind::LockRequest)
        .as_us_f64();
    assert!((t2.as_us_f64() - t1.as_us_f64() - h).abs() < 1e-6);
}

#[test]
fn handlers_on_different_nodes_do_not_serialize() {
    let mut net = NetworkSim::new(3, LatencyModel::paper());
    net.send(VirtualTime::ZERO, msg(0, 1, MsgKind::LockRequest, 64));
    net.send(VirtualTime::ZERO, msg(0, 2, MsgKind::LockRequest, 64));
    let (t1, _) = net.next().unwrap();
    let (t2, _) = net.next().unwrap();
    assert_eq!(t1, t2);
}

#[test]
fn barrier_serialization_reproduces_cost() {
    // 7 simultaneous arrivals at the master (node 0), as in a minimal
    // 8-node barrier: last service completes ~ wire + 7 * handler.
    let model = LatencyModel::paper();
    let mut net = NetworkSim::new(8, model.clone());
    for src in 1..8 {
        net.send(VirtualTime::ZERO, msg(src, 0, MsgKind::BarrierArrive, 64));
    }
    let mut last = VirtualTime::ZERO;
    for _ in 0..7 {
        let (t, _) = net.next().unwrap();
        last = last.max(t);
    }
    let expect = model.wire_time(64).as_us_f64()
        + 7.0 * model.handler_time(MsgKind::BarrierArrive).as_us_f64();
    assert!((last.as_us_f64() - expect).abs() < 1.0);
}

#[test]
fn stats_accumulate_by_class() {
    use crate::message::MsgClass;
    let mut net = NetworkSim::new(2, LatencyModel::instant());
    net.send(VirtualTime::ZERO, msg(0, 1, MsgKind::DiffRequest, 100));
    net.send(VirtualTime::ZERO, msg(1, 0, MsgKind::DiffReply, 900));
    net.send(VirtualTime::ZERO, msg(0, 1, MsgKind::LockRequest, 64));
    assert_eq!(net.stats().class_count(MsgClass::Diff), 2);
    assert_eq!(net.stats().class_bytes(MsgClass::Diff), 1000);
    assert_eq!(net.stats().class_count(MsgClass::Lock), 1);
    assert_eq!(net.stats().total_count(), 3);
}

#[test]
fn in_flight_tracks_queue() {
    let mut net = NetworkSim::new(2, LatencyModel::instant());
    assert_eq!(net.in_flight(), 0);
    net.send(VirtualTime::ZERO, msg(0, 1, MsgKind::Other, 10));
    assert_eq!(net.in_flight(), 1);
    net.next().unwrap();
    assert_eq!(net.in_flight(), 0);
    assert!(net.next().is_none());
}

#[test]
fn jitter_is_deterministic_per_seed() {
    let run = |seed| {
        let mut net = NetworkSim::new(2, LatencyModel::paper());
        net.set_jitter(SimRng::seed_from(seed), SimDuration::from_us(100));
        for _ in 0..10 {
            net.send(VirtualTime::ZERO, msg(0, 1, MsgKind::Other, 10));
        }
        let mut times = Vec::new();
        while let Some((t, _)) = net.next() {
            times.push(t.as_ns());
        }
        times
    };
    assert_eq!(run(1), run(1));
    assert_ne!(run(1), run(2));
}

#[test]
fn reliable_delivery_acks_at_service_completion() {
    let mut net = NetworkSim::new(2, LatencyModel::paper());
    net.enable_loss(SimRng::seed_from(1), LossConfig::clean_adaptive());
    net.send(VirtualTime::ZERO, msg(0, 1, MsgKind::LockRequest, 64));
    let (_, m) = net.next().unwrap();
    assert_eq!(m.payload, 0);
    // Drain the ack arrival; afterwards the network is quiescent.
    assert!(net.next().is_none());
    assert_eq!(net.peek_time(), None);
    let s = net.loss_stats();
    assert_eq!(s.acks_sent, 1);
    assert_eq!(s.delivered, 1);
    assert!(s.balanced());
    // Ack bandwidth is accounted like any other traffic.
    assert_eq!(net.stats().kind_count(MsgKind::Ack), 1);
    assert_eq!(net.stats().kind_bytes(MsgKind::Ack), ACK_BYTES as u64);
}

#[test]
fn stalled_node_defers_service_not_arrival() {
    use crate::fault::StallWindow;
    let mut net = NetworkSim::new(2, LatencyModel::paper());
    let plan = FaultPlan {
        stalls: vec![StallWindow {
            node: 1,
            from: VirtualTime::ZERO,
            until: VirtualTime::from_us(5_000),
        }],
        ..FaultPlan::default()
    };
    net.set_faults(SimRng::seed_from(1), plan);
    net.send(VirtualTime::ZERO, msg(0, 1, MsgKind::LockRequest, 64));
    let (t, _) = net.next().unwrap();
    let expect =
        VirtualTime::from_us(5_000) + LatencyModel::paper().handler_time(MsgKind::LockRequest);
    assert_eq!(t, expect, "service starts when the stall releases");
}

#[test]
#[should_panic(expected = "require the reliability layer")]
fn lossy_fault_plan_without_reliability_rejected() {
    let mut net: NetworkSim<u32> = NetworkSim::new(2, LatencyModel::paper());
    net.set_faults(
        SimRng::seed_from(1),
        FaultPlan::named("loss-10", 2).unwrap(),
    );
}

#[test]
#[should_panic(expected = "out of range")]
fn bad_destination_panics() {
    let mut net = NetworkSim::new(2, LatencyModel::instant());
    net.send(VirtualTime::ZERO, msg(0, 5, MsgKind::Other, 1));
}

#[test]
fn delivery_floors_bound_actual_deliveries() {
    let mut net = NetworkSim::new(3, LatencyModel::paper());
    net.send(VirtualTime::ZERO, msg(0, 1, MsgKind::LockRequest, 64));
    net.send(
        VirtualTime::from_us(10),
        msg(0, 2, MsgKind::PageReply, 8192),
    );
    let mut floors = [VirtualTime::MAX; 3];
    net.delivery_floors(&mut floors);
    assert_eq!(floors[0], VirtualTime::MAX, "nothing targets node 0");
    assert!(floors[1] < VirtualTime::MAX);
    assert!(floors[2] < VirtualTime::MAX);
    while let Some((t, m)) = net.next() {
        assert!(
            floors[m.dst.0] <= t,
            "floor for {} exceeded its delivery",
            m.dst
        );
    }
}

#[test]
fn parked_bytes_track_retransmission_copies() {
    let mut net = NetworkSim::new(2, LatencyModel::paper());
    net.enable_loss(SimRng::seed_from(1), LossConfig::clean_adaptive());
    net.send(VirtualTime::ZERO, msg(0, 1, MsgKind::DiffRequest, 100));
    net.send(VirtualTime::ZERO, msg(0, 1, MsgKind::DiffRequest, 150));
    // Both retransmission copies parked on the sender until acked.
    assert_eq!(net.parked().live_total(), 250);
    assert_eq!(net.parked().peaks()[0], 250);
    assert_eq!(net.parked().peaks()[1], 0, "receiver holds nothing");
    while net.next().is_some() {}
    assert_eq!(net.parked().live_total(), 0, "acks release the copies");
    assert_eq!(net.parked().peak_total(), 250, "peak survives drain");
}

#[test]
fn parked_bytes_drain_under_loss() {
    // A genuinely lossy link exercises retry re-parking and (with
    // reordering) the receiver-side hold; whatever path each message
    // takes, a fully drained network must park nothing.
    let mut net = NetworkSim::new(2, LatencyModel::paper());
    net.enable_loss(SimRng::seed_from(7), LossConfig::lossy_10pct());
    for i in 0..50 {
        net.send(VirtualTime::from_us(i * 5), msg(0, 1, MsgKind::Other, 64));
    }
    let mut delivered = 0;
    while net.next().is_some() {
        delivered += 1;
    }
    assert_eq!(delivered, 50);
    assert_eq!(net.parked().live_total(), 0);
    assert!(net.parked().peak_total() >= 64);
}

#[test]
fn delivery_floors_cover_retransmission_timers() {
    let mut net = NetworkSim::new(2, LatencyModel::paper());
    net.enable_loss(SimRng::seed_from(1), LossConfig::clean_adaptive());
    net.send(VirtualTime::ZERO, msg(0, 1, MsgKind::LockRequest, 64));
    let mut floors = [VirtualTime::MAX; 2];
    net.delivery_floors(&mut floors);
    // The armed retry timer resends toward node 1; its floor entry
    // must exist even though the ack will normally cancel it.
    assert!(floors[1] < VirtualTime::MAX);
    assert_eq!(floors[0], VirtualTime::MAX, "acks do not floor the sender");
}
