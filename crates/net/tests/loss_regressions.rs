//! Regression tests for the loss-path bug cluster fixed alongside the
//! fault-injection subsystem, plus property tests of the reliability
//! layer's exactly-once guarantee under composed faults.
//!
//! Each regression test names the bug it pins down:
//!
//! 1. *Phantom timer events* — a cleared retransmission timer kept
//!    `peek_time()` non-quiescent for up to one RTO.
//! 2. *Ack accounting* — dropped acks were counted as sent, ack drops
//!    polluted the data-loss counter, and ack bandwidth was invisible.
//! 3. *Unbounded dedup memory* — delivered-sequence state grew by one
//!    entry per message forever.
//! 4. *Spurious retransmission* — a message slower than the fixed RTO was
//!    retransmitted while still in flight, double-counting bandwidth.

use cvm_net::{
    FaultPlan, LatencyModel, LinkRule, LossConfig, Message, MsgKind, NetworkSim, NodeId, RtoPolicy,
    ACK_BYTES,
};
use cvm_sim::{SimDuration, SimRng, VirtualTime};

fn msg(src: usize, dst: usize, kind: MsgKind, bytes: usize, id: u64) -> Message<u64> {
    Message::new(NodeId(src), NodeId(dst), kind, bytes, id)
}

/// Drains the network to quiescence, returning every delivery in order.
fn drain(net: &mut NetworkSim<u64>) -> Vec<(VirtualTime, u64)> {
    let mut out = Vec::new();
    while let Some((t, m)) = net.next() {
        out.push((t, m.payload));
    }
    out
}

/// Bug 1: after the ack clears `pending`, the already-queued retry timer
/// must not make the network look busy.
#[test]
fn cleared_retry_timer_is_not_pending_activity() {
    let mut net = NetworkSim::new(2, LatencyModel::paper());
    net.enable_loss(SimRng::seed_from(1), LossConfig::clean_adaptive());
    net.send(VirtualTime::ZERO, msg(0, 1, MsgKind::LockRequest, 64, 7));
    let (done, _) = net.next().expect("delivered");
    // Let the ack arrive (one wire hop after service completion), but stay
    // well before the ~5 ms retransmission timer.
    let ack_at = done + LatencyModel::paper().wire_time(ACK_BYTES);
    assert!(net.poll(ack_at).is_none(), "only the ack is left");
    assert_eq!(net.in_flight(), 0);
    assert_eq!(
        net.peek_time(),
        None,
        "nothing is in flight: the dead retry timer must not report activity"
    );
}

/// Bug 2: `acks_sent` counts only acks actually transmitted, ack drops
/// have their own counter, and ack bandwidth is visible in `NetStats`.
#[test]
fn ack_drops_are_not_sent_acks_and_ack_bandwidth_is_accounted() {
    let mut net = NetworkSim::new(2, LatencyModel::paper());
    net.enable_loss(SimRng::seed_from(11), LossConfig::clean_adaptive());
    // Asymmetric plan: the ack path 1 → 0 loses 60% of its traffic, the
    // data path 0 → 1 is clean.
    net.set_faults(
        SimRng::seed_from(5),
        FaultPlan::uniform(LinkRule {
            src: Some(1),
            dst: Some(0),
            loss: 0.6,
            ..LinkRule::default()
        }),
    );
    for i in 0..50 {
        net.send(
            VirtualTime::from_us(i * 10),
            msg(0, 1, MsgKind::LockRequest, 64, i),
        );
    }
    let delivered = drain(&mut net);
    assert_eq!(delivered.len(), 50, "every message delivered exactly once");
    let s = net.loss_stats();
    assert!(s.balanced(), "{s:?}");
    assert_eq!(s.dropped, 0, "ack drops must not pollute the data counter");
    assert!(s.ack_drops > 0, "the lossy reverse path dropped acks");
    assert!(
        s.retransmissions > 0,
        "lost acks force data retransmissions"
    );
    // The sent-counter counts transmissions, not attempts — and every
    // transmitted ack's bytes are on the books.
    assert_eq!(
        net.stats().kind_count(MsgKind::Ack),
        s.acks_sent,
        "NetStats and LossStats agree on transmitted acks"
    );
    assert_eq!(
        net.stats().kind_bytes(MsgKind::Ack),
        s.acks_sent * ACK_BYTES as u64,
        "ack bandwidth accounted like retransmission bandwidth"
    );
}

/// Bug 3: in-order delivery must not accumulate dedup state (the old
/// per-link `HashSet` grew by one entry per message forever).
#[test]
fn dedup_memory_stays_bounded_over_long_runs() {
    let mut net = NetworkSim::new(2, LatencyModel::instant());
    net.enable_loss(SimRng::seed_from(3), LossConfig::clean_adaptive());
    for i in 0..2000 {
        net.send(
            VirtualTime::from_us(i),
            msg(0, 1, MsgKind::UpdatePush, 64, i),
        );
    }
    let delivered = drain(&mut net);
    assert_eq!(delivered.len(), 2000);
    assert_eq!(
        net.dedup_entries(),
        0,
        "2000 in-order deliveries must leave zero sparse dedup entries"
    );
}

/// Bug 4, fixed-RTO half: a message whose wire time alone exceeds the
/// fixed timeout is retransmitted while still in flight, double-counting
/// its bytes — the legacy behaviour, demonstrated on the legacy policy.
#[test]
fn fixed_rto_spuriously_retransmits_slow_messages() {
    const BIG: usize = 3_000_000; // wire ≈ 6.4 ms > the 5 ms fixed RTO
    let mut net = NetworkSim::new(2, LatencyModel::paper());
    net.enable_loss(
        SimRng::seed_from(1),
        LossConfig {
            loss_probability: 0.0,
            rto: RtoPolicy::Fixed(SimDuration::from_ms(5)),
            max_retries: 64,
        },
    );
    net.send(VirtualTime::ZERO, msg(0, 1, MsgKind::DiffReply, BIG, 1));
    let delivered = drain(&mut net);
    assert_eq!(delivered.len(), 1, "still exactly-once to the protocol");
    let s = net.loss_stats();
    assert!(
        s.retransmissions >= 1,
        "the fixed RTO fires while the message is on the wire: {s:?}"
    );
    assert!(s.duplicates_suppressed >= 1, "{s:?}");
    assert!(
        net.stats().kind_bytes(MsgKind::DiffReply) >= 2 * BIG as u64,
        "spurious retransmission double-counts bandwidth"
    );
}

/// Bug 4, adaptive half: the per-message floor (wire + handler + ack wire,
/// with headroom) keeps the timer from ever firing below the uncontended
/// round trip, eliminating the spurious retransmission on the same
/// scenario.
#[test]
fn adaptive_rto_floor_eliminates_spurious_retransmission() {
    const BIG: usize = 3_000_000;
    let mut net = NetworkSim::new(2, LatencyModel::paper());
    net.enable_loss(SimRng::seed_from(1), LossConfig::clean_adaptive());
    net.send(VirtualTime::ZERO, msg(0, 1, MsgKind::DiffReply, BIG, 1));
    let delivered = drain(&mut net);
    assert_eq!(delivered.len(), 1);
    let s = net.loss_stats();
    assert_eq!(s.retransmissions, 0, "{s:?}");
    assert_eq!(s.duplicates_suppressed, 0, "{s:?}");
    assert_eq!(
        net.stats().kind_bytes(MsgKind::DiffReply),
        BIG as u64,
        "each byte on the wire exactly once"
    );
    assert!(s.balanced());
}

/// Retry exhaustion against an unresponsive peer is a structured outcome,
/// not a panic: the send resolves as a `DeliveryFailure`, the counters
/// balance, and the network reaches quiescence.
#[test]
fn retry_exhaustion_degrades_instead_of_panicking() {
    let mut net = NetworkSim::new(3, LatencyModel::paper());
    net.enable_loss(
        SimRng::seed_from(9),
        LossConfig {
            max_retries: 4,
            ..LossConfig::clean_adaptive()
        },
    );
    // Node 2 is cut off forever.
    net.set_faults(
        SimRng::seed_from(2),
        FaultPlan {
            partitions: vec![cvm_net::Partition {
                island: vec![2],
                from: VirtualTime::ZERO,
                until: VirtualTime::MAX,
            }],
            ..FaultPlan::default()
        },
    );
    net.send(VirtualTime::ZERO, msg(0, 2, MsgKind::PageRequest, 64, 1));
    net.send(VirtualTime::ZERO, msg(0, 1, MsgKind::LockRequest, 64, 2));
    let delivered = drain(&mut net);
    assert_eq!(delivered.len(), 1, "the healthy link still delivers");
    assert_eq!(delivered[0].1, 2);
    let failures = net.delivery_failures();
    assert_eq!(failures.len(), 1);
    assert_eq!(failures[0].dst, NodeId(2));
    assert_eq!(failures[0].kind, MsgKind::PageRequest);
    let s = net.loss_stats();
    assert!(s.balanced(), "{s:?}");
    assert_eq!(s.gave_up, 1);
    assert_eq!(net.in_flight(), 0, "abandoned messages leave in_flight");
    assert_eq!(net.peek_time(), None, "fully quiescent after giving up");
}

/// Property: exactly-once delivery under loss × duplication × reordering ×
/// corruption, across seeds. Every payload reaches the protocol exactly
/// once, the counters balance, and the run is deterministic per seed.
#[test]
fn exactly_once_under_composed_faults_across_seeds() {
    let storm = FaultPlan::uniform(LinkRule {
        loss: 0.15,
        duplicate: 0.15,
        corrupt: 0.05,
        reorder: 0.30,
        reorder_window: SimDuration::from_ms(2),
        ..LinkRule::default()
    });
    let run = |seed: u64| {
        let mut net = NetworkSim::new(4, LatencyModel::paper());
        net.enable_loss(
            SimRng::seed_from(seed),
            LossConfig {
                loss_probability: 0.10,
                ..LossConfig::clean_adaptive()
            },
        );
        net.set_faults(SimRng::seed_from(seed ^ 0xFA17), storm.clone());
        let mut traffic = SimRng::seed_from(seed ^ 0x7AFF);
        let n = 300;
        for i in 0..n {
            let src = traffic.below(4) as usize;
            let dst = (src + 1 + traffic.below(3) as usize) % 4;
            let kind = if i % 3 == 0 {
                MsgKind::DiffReply
            } else {
                MsgKind::LockRequest
            };
            net.send(VirtualTime::from_us(i * 50), msg(src, dst, kind, 64, i));
        }
        let delivered = drain(&mut net);
        let mut ids: Vec<u64> = delivered.iter().map(|&(_, id)| id).collect();
        ids.sort_unstable();
        assert_eq!(
            ids,
            (0..n).collect::<Vec<_>>(),
            "seed {seed}: every message exactly once"
        );
        let s = net.loss_stats();
        assert!(s.balanced(), "seed {seed}: {s:?}");
        assert_eq!(s.gave_up, 0, "seed {seed}: nothing abandoned");
        assert!(s.dropped > 0 && s.duplicates_injected > 0, "seed {seed}");
        assert!(
            s.corrupt_drops > 0 && s.reorders_injected > 0,
            "seed {seed}"
        );
        assert_eq!(net.in_flight(), 0);
        assert_eq!(net.peek_time(), None);
        delivered
    };
    for seed in [1, 7, 42, 1999, 0xC0FFEE] {
        let a = run(seed);
        let b = run(seed);
        assert_eq!(a, b, "seed {seed}: deterministic replay");
    }
}

/// A fault plan draws from its own RNG stream: enabling an *empty* plan
/// must not perturb any delivery time of an otherwise identical run.
#[test]
fn empty_fault_plan_is_observationally_inert() {
    let run = |with_plan: bool| {
        let mut net = NetworkSim::new(3, LatencyModel::paper());
        net.enable_loss(SimRng::seed_from(4), LossConfig::lossy_10pct());
        net.set_jitter(SimRng::seed_from(8), SimDuration::from_us(50));
        if with_plan {
            net.set_faults(SimRng::seed_from(99), FaultPlan::default());
        }
        for i in 0..100 {
            net.send(
                VirtualTime::from_us(i * 20),
                msg(
                    (i % 3) as usize,
                    ((i + 1) % 3) as usize,
                    MsgKind::UpdatePush,
                    128,
                    i,
                ),
            );
        }
        drain(&mut net)
    };
    assert_eq!(run(false), run(true));
}
