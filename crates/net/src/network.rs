//! The in-flight message scheduler.
//!
//! [`NetworkSim`] owns the set of messages currently on the wire or queued
//! at a busy destination handler. Message delivery is a two-phase event:
//! the *arrival* (wire time after the send) and the *service completion*
//! (after waiting for the destination's handler to be free and being
//! processed for the per-kind service time). [`NetworkSim::next`] returns
//! messages in service-completion order, which is the instant their effects
//! become visible to the protocol — so the DSM driver can simply apply each
//! message as it pops.
//!
//! With the reliability layer enabled ([`NetworkSim::enable_loss`])
//! delivery is exactly-once and *in order per link*: an out-of-order
//! arrival is acknowledged immediately but held back until its gap fills,
//! so a retransmission delay never reorders a link's traffic (retransmitted
//! messages arrive a full RTO late — far beyond the wire size-skew the
//! protocols tolerate). An in-order message is acknowledged when its
//! *service* completes — not when it arrives — so the sender's measured
//! round trip includes handler queueing, exactly the component that makes
//! a fixed timeout fire while a message is still waiting in line. A
//! [`FaultPlan`] layered on top
//! ([`NetworkSim::set_faults`]) injects per-link loss, duplication,
//! reordering, corruption drops, node stalls and transient partitions,
//! deterministically from its own RNG stream.

use std::collections::{BTreeMap, HashMap};

use cvm_sim::{EventQueue, SimDuration, SimRng, VirtualTime};

use crate::fault::{DropCause, FaultInjector, FaultPlan, TxFate};
use crate::latency::LatencyModel;
use crate::message::{Message, MsgKind};
use crate::parked::ParkedBytes;
use crate::reliable::{DeliveryFailure, LossConfig, LossStats, ReliabilityState};
use crate::stats::NetStats;

/// Wire size of an acknowledgement (reliability layer).
pub const ACK_BYTES: usize = 32;

struct Envelope<P> {
    msg: Message<P>,
    /// Sequence number when the reliability layer is active.
    seq: Option<u64>,
    /// Original send time (constant across retransmissions).
    sent_at: VirtualTime,
    /// When this copy went on the wire (later than `sent_at` only for
    /// retransmitted copies).
    tx_at: VirtualTime,
    /// Retransmissions preceding this copy.
    retries: u32,
}

/// Per-delivery timing metadata, kept for the causal-span layer: when
/// the message was originally sent, when the delivered copy was
/// transmitted (differs from `sent_at` only after retransmission), when
/// it arrived at the destination, when its handler completed, and how
/// many retransmissions preceded the delivered copy. The segments the
/// critical-path engine wants fall out by subtraction: backoff =
/// `tx_at - sent_at`, wire = `arrived_at - tx_at`, handler (including
/// queueing and reorder hold) = `serviced_at - arrived_at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveryInfo {
    /// Original send time.
    pub sent_at: VirtualTime,
    /// Transmit time of the delivered copy.
    pub tx_at: VirtualTime,
    /// Arrival time at the destination NIC.
    pub arrived_at: VirtualTime,
    /// Handler service completion (the delivery instant).
    pub serviced_at: VirtualTime,
    /// Retransmissions before the delivered copy.
    pub retries: u32,
}

enum Phase<P> {
    Arrival(Envelope<P>),
    /// Service completion; the key, when present, is the `(src, dst, seq)`
    /// to acknowledge at this instant (fresh reliable deliveries only).
    Serviced(Message<P>, Option<(usize, usize, u64)>, DeliveryInfo),
    /// Retransmission timer for `(src, dst, seq)`.
    Retry(usize, usize, u64),
    /// An acknowledgement for `(src, dst, seq)` arriving back at `src`.
    AckArrival(usize, usize, u64),
}

/// A sent-but-unacknowledged message awaiting possible retransmission.
struct PendingMsg<P> {
    msg: Message<P>,
    retries: u32,
    /// Original send time; the RTT sample when the ack returns (Karn's
    /// rule: only taken if the message was never retransmitted).
    sent_at: VirtualTime,
}

/// Per-link hold buffer: arrived-but-out-of-order messages keyed by
/// sequence, each with the arrival metadata delivery needs.
type ReorderBuf<P> = BTreeMap<u64, (Message<P>, DeliveryInfo)>;

/// Simulated network connecting `n` nodes.
///
/// # Example
///
/// ```
/// use cvm_net::{LatencyModel, Message, MsgKind, NetworkSim, NodeId};
/// use cvm_sim::VirtualTime;
///
/// let mut net: NetworkSim<&str> = NetworkSim::new(2, LatencyModel::paper());
/// net.send(
///     VirtualTime::ZERO,
///     Message::new(NodeId(0), NodeId(1), MsgKind::Other, 64, "ping"),
/// );
/// let (when, msg) = net.next().expect("one message in flight");
/// assert_eq!(msg.payload, "ping");
/// assert!(when > VirtualTime::ZERO);
/// ```
pub struct NetworkSim<P> {
    queue: EventQueue<Phase<P>>,
    handler_free: Vec<VirtualTime>,
    model: LatencyModel,
    stats: NetStats,
    jitter: Option<(SimRng, SimDuration)>,
    in_flight: usize,
    reliability: ReliabilityState,
    faults: Option<FaultInjector>,
    pending: HashMap<(usize, usize, u64), PendingMsg<P>>,
    /// Next sequence to hand to the protocol per link: the reliability
    /// layer delivers in order, like any transport built over a lossy
    /// datagram network. Without this, a retransmitted message arrives a
    /// full RTO late — a reordering orders of magnitude beyond the wire
    /// size-skew the protocols are built to tolerate.
    deliver_next: HashMap<(usize, usize), u64>,
    /// Arrived-but-out-of-order messages per link, held until their gap
    /// fills (or the gap's sender gives up). Bounded by the reorder
    /// window, like the dedup state. Each entry keeps its arrival
    /// metadata so delivery timing survives the hold.
    reorder_buf: HashMap<(usize, usize), ReorderBuf<P>>,
    /// Timing metadata of the message most recently returned by
    /// [`poll`](Self::poll)/[`next`](Self::next).
    last_delivery: Option<DeliveryInfo>,
    /// Bytes held in `pending` (per src) and `reorder_buf` (per dst).
    parked: ParkedBytes,
}

impl<P> std::fmt::Debug for NetworkSim<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetworkSim")
            .field("nodes", &self.handler_free.len())
            .field("in_flight", &self.in_flight)
            .finish_non_exhaustive()
    }
}

impl<P> NetworkSim<P> {
    /// Creates a network of `nodes` nodes under `model`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(nodes: usize, model: LatencyModel) -> Self {
        assert!(nodes > 0, "network needs at least one node");
        NetworkSim {
            queue: EventQueue::new(),
            handler_free: vec![VirtualTime::ZERO; nodes],
            model,
            stats: NetStats::new(),
            jitter: None,
            in_flight: 0,
            reliability: ReliabilityState::default(),
            faults: None,
            pending: HashMap::new(),
            deliver_next: HashMap::new(),
            reorder_buf: HashMap::new(),
            last_delivery: None,
            parked: ParkedBytes::new(nodes),
        }
    }

    /// High-water marks of parked bytes (retransmission copies and
    /// reorder-buffer holds) since creation.
    pub fn parked(&self) -> &ParkedBytes {
        &self.parked
    }

    /// Enables packet-loss injection; delivery then runs over the
    /// acknowledgement/retransmission layer of [`crate::reliable`], still
    /// exactly-once to the protocol. Deterministic under the given RNG.
    pub fn enable_loss(&mut self, rng: SimRng, config: LossConfig) {
        self.reliability.enable(rng, config);
    }

    /// Layers a [`FaultPlan`] over every transmission, evaluated with its
    /// own RNG stream (independent of the uniform-loss stream, so adding a
    /// plan never perturbs unrelated random decisions).
    ///
    /// # Panics
    ///
    /// Panics if the plan can discard or duplicate traffic while the
    /// reliability layer is disabled — without acknowledgements those
    /// faults would silently break exactly-once delivery instead of
    /// degrading gracefully.
    pub fn set_faults(&mut self, rng: SimRng, plan: FaultPlan) {
        let needs_reliability = plan.can_drop() || plan.rules.iter().any(|r| r.duplicate > 0.0);
        assert!(
            !needs_reliability || self.reliability.enabled(),
            "fault plans that drop or duplicate traffic require the reliability layer"
        );
        self.faults = Some(FaultInjector::new(rng, plan));
    }

    /// Reliability-layer counters (drops, retransmissions, duplicates).
    pub fn loss_stats(&self) -> LossStats {
        self.reliability.stats()
    }

    /// Messages the reliability layer gave up on (retry exhaustion), in
    /// deterministic order. Empty in a healthy run.
    pub fn delivery_failures(&self) -> Vec<DeliveryFailure> {
        self.reliability.delivery_failures()
    }

    /// Out-of-order dedup entries currently held (memory-bound metric).
    pub fn dedup_entries(&self) -> usize {
        self.reliability.dedup_entries()
    }

    /// Enables uniform random extra delay in `[0, max)` per message, for
    /// perturbation/failure-injection experiments. Deterministic under the
    /// given RNG.
    pub fn set_jitter(&mut self, rng: SimRng, max: SimDuration) {
        self.jitter = if max.is_zero() {
            None
        } else {
            Some((rng, max))
        };
    }

    fn wire_delay(&mut self, bytes: usize) -> SimDuration {
        let mut wire = self.model.wire_time(bytes);
        if let Some((rng, max)) = &mut self.jitter {
            wire += SimDuration::from_ns(rng.below(max.as_ns().max(1)));
        }
        wire
    }

    /// The round trip this message cannot possibly beat: its own wire
    /// time, its handler service time, and the ack's wire time back, plus
    /// 12.5% headroom so an ack that arrives exactly on the uncontended
    /// round trip still beats the timer. The adaptive RTO never fires
    /// below this, so an uncontended slow message is never retransmitted
    /// while in flight.
    fn rto_floor(&self, msg: &Message<P>) -> SimDuration {
        let round_trip = self.model.wire_time(msg.payload_bytes)
            + self.model.handler_time(msg.kind)
            + self.model.wire_time(ACK_BYTES);
        round_trip + round_trip / 8
    }

    /// Puts one copy of `msg` on the wire: rolls uniform loss, then the
    /// fault plan, and schedules the arrival(s) that survive. `sent_at`
    /// is the original send time and `retries` the copy's retransmission
    /// count — both ride along for delivery timing.
    fn transmit(
        &mut self,
        now: VirtualTime,
        msg: Message<P>,
        seq: Option<u64>,
        sent_at: VirtualTime,
        retries: u32,
    ) where
        P: Clone,
    {
        let (src, dst) = (msg.src.0, msg.dst.0);
        if seq.is_some() && self.reliability.should_drop() {
            return;
        }
        let fate = match &mut self.faults {
            Some(f) => f.roll(src, dst, now),
            None => TxFate::Deliver {
                delay: SimDuration::ZERO,
                duplicate: None,
            },
        };
        match fate {
            TxFate::Drop(cause) => {
                let s = self.reliability.stats_mut();
                match cause {
                    DropCause::Loss => s.dropped += 1,
                    DropCause::Corrupt => s.corrupt_drops += 1,
                    DropCause::Partition => s.partition_drops += 1,
                }
            }
            TxFate::Deliver { delay, duplicate } => {
                if !delay.is_zero() {
                    self.reliability.stats_mut().reorders_injected += 1;
                }
                let wire = self.wire_delay(msg.payload_bytes);
                if let Some(lag) = duplicate {
                    self.reliability.stats_mut().duplicates_injected += 1;
                    let copy = Envelope {
                        msg: msg.clone(),
                        seq,
                        sent_at,
                        tx_at: now,
                        retries,
                    };
                    self.queue
                        .push(now + wire + delay + lag, Phase::Arrival(copy));
                }
                self.queue.push(
                    now + wire + delay,
                    Phase::Arrival(Envelope {
                        msg,
                        seq,
                        sent_at,
                        tx_at: now,
                        retries,
                    }),
                );
            }
        }
    }

    /// Sends the acknowledgement for `(src, dst, seq)` from `dst` back to
    /// `src`, subject to the same loss and fault plan as data (on the
    /// reverse link). Ack bandwidth is accounted in [`NetStats`] under
    /// [`MsgKind::Ack`]; drops land in `ack_drops`, never in the data-loss
    /// counter.
    fn send_ack(&mut self, now: VirtualTime, src: usize, dst: usize, seq: u64) {
        if self.reliability.should_drop_ack() {
            return;
        }
        let fate = match &mut self.faults {
            Some(f) => f.roll(dst, src, now),
            None => TxFate::Deliver {
                delay: SimDuration::ZERO,
                duplicate: None,
            },
        };
        match fate {
            TxFate::Drop(cause) => {
                let s = self.reliability.stats_mut();
                s.ack_drops += 1;
                match cause {
                    DropCause::Loss => {}
                    DropCause::Corrupt => s.corrupt_drops += 1,
                    DropCause::Partition => s.partition_drops += 1,
                }
            }
            TxFate::Deliver { delay, duplicate } => {
                self.reliability.count_ack();
                self.stats.record(MsgKind::Ack, ACK_BYTES);
                let wire = self.wire_delay(ACK_BYTES);
                self.queue
                    .push(now + wire + delay, Phase::AckArrival(src, dst, seq));
                if let Some(lag) = duplicate {
                    // A duplicated ack still costs wire bandwidth; the
                    // second arrival is a no-op at the sender.
                    self.reliability.count_ack();
                    self.stats.record(MsgKind::Ack, ACK_BYTES);
                    self.queue
                        .push(now + wire + delay + lag, Phase::AckArrival(src, dst, seq));
                }
            }
        }
    }

    /// Pops the next message in service-completion order, returning the
    /// virtual time at which its effects apply at the destination.
    // Deliberately named like an iterator: the network *is* consumed as a
    // stream of deliveries, but it cannot implement Iterator (the item
    // borrows nothing, yet delivery mutates shared handler state and the
    // type parameter needs Clone only here).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(VirtualTime, Message<P>)>
    where
        P: Clone,
    {
        self.poll(VirtualTime::MAX)
    }

    /// Like [`next`](Self::next), but only returns a message whose service
    /// completes at or before `until`; otherwise leaves it queued and
    /// returns `None`.
    ///
    /// Arrivals up to `until` are expanded into service completions, which
    /// is safe because any message sent later arrives later than every
    /// expanded arrival — handler-occupancy order at each node is
    /// preserved. This is what lets a driver interleave network events with
    /// its own event queue in strict time order.
    pub fn poll(&mut self, until: VirtualTime) -> Option<(VirtualTime, Message<P>)>
    where
        P: Clone,
    {
        loop {
            match self.queue.peek_time() {
                None => return None,
                Some(t) if t > until => return None,
                Some(_) => {}
            }
            match self.queue.pop().expect("peeked nonempty") {
                (arrived, Phase::Arrival(env)) => self.handle_arrival(arrived, env),
                (done, Phase::Serviced(msg, ack, info)) => {
                    if let Some((src, dst, seq)) = ack {
                        self.send_ack(done, src, dst, seq);
                    }
                    self.in_flight -= 1;
                    self.last_delivery = Some(info);
                    return Some((done, msg));
                }
                (now, Phase::Retry(src, dst, seq)) => self.handle_retry(now, src, dst, seq),
                (t, Phase::AckArrival(src, dst, seq)) => {
                    if let Some(p) = self.pending.remove(&(src, dst, seq)) {
                        self.parked.unpark(src, p.msg.payload_bytes as u64);
                        if p.retries == 0 {
                            // Karn's rule: the RTT of a retransmitted
                            // message is ambiguous; never sample it.
                            self.reliability.sample_rtt(src, dst, t.since(p.sent_at));
                        }
                    }
                }
            }
        }
    }

    fn handle_arrival(&mut self, arrived: VirtualTime, env: Envelope<P>) {
        let (src, dst) = (env.msg.src.0, env.msg.dst.0);
        let info = DeliveryInfo {
            sent_at: env.sent_at,
            tx_at: env.tx_at,
            arrived_at: arrived,
            serviced_at: arrived, // finalized in schedule_service
            retries: env.retries,
        };
        let Some(seq) = env.seq else {
            self.schedule_service(arrived, env.msg, None, info);
            return;
        };
        if !self.reliability.first_arrival(src, dst, seq) {
            // Duplicate: the sender is evidently missing our ack, so
            // re-ack immediately — but never re-deliver.
            self.send_ack(arrived, src, dst, seq);
            return;
        }
        let next = self.deliver_next.get(&(src, dst)).copied().unwrap_or(0);
        if seq != next {
            // Out of order: the message has arrived — ack it now, so the
            // sender does not retransmit something we already hold — but
            // its delivery waits for the link gap to fill.
            self.send_ack(arrived, src, dst, seq);
            self.parked.park(dst, env.msg.payload_bytes as u64);
            self.reorder_buf
                .entry((src, dst))
                .or_default()
                .insert(seq, (env.msg, info));
            return;
        }
        // In order: service now, ack at service completion (so the
        // sender's RTT sample includes handler queueing).
        self.reliability.count_delivered();
        self.deliver_next.insert((src, dst), seq + 1);
        self.schedule_service(arrived, env.msg, Some((src, dst, seq)), info);
        self.drain_in_order(arrived, src, dst);
    }

    /// Queues `msg` for its destination handler starting no earlier than
    /// `at`; `ack`, when present, is acknowledged at service completion.
    fn schedule_service(
        &mut self,
        at: VirtualTime,
        msg: Message<P>,
        ack: Option<(usize, usize, u64)>,
        mut info: DeliveryInfo,
    ) {
        let dst = msg.dst.0;
        let mut start = at.max(self.handler_free[dst]);
        if let Some(release) = self
            .faults
            .as_ref()
            .and_then(|f| f.stall_release(dst, start))
        {
            start = release;
        }
        let done = start + self.model.handler_time(msg.kind);
        self.handler_free[dst] = done;
        info.serviced_at = done;
        self.queue.push(done, Phase::Serviced(msg, ack, info));
    }

    /// Delivers every buffered message on `src → dst` that is now in
    /// order, skipping tombstoned sequences (abandoned at retry
    /// exhaustion — they will never arrive, and must not block the link).
    /// Held-back messages were already acknowledged at arrival, so their
    /// service completion carries no ack.
    fn drain_in_order(&mut self, now: VirtualTime, src: usize, dst: usize) {
        loop {
            let next = self.deliver_next.get(&(src, dst)).copied().unwrap_or(0);
            let held = self
                .reorder_buf
                .get_mut(&(src, dst))
                .and_then(|b| b.remove(&next));
            if let Some((m, info)) = held {
                self.parked.unpark(dst, m.payload_bytes as u64);
                self.reliability.count_delivered();
                self.deliver_next.insert((src, dst), next + 1);
                self.schedule_service(now, m, None, info);
            } else if self.reliability.is_failed(src, dst, next) {
                self.deliver_next.insert((src, dst), next + 1);
            } else {
                return;
            }
        }
    }

    fn handle_retry(&mut self, now: VirtualTime, src: usize, dst: usize, seq: u64)
    where
        P: Clone,
    {
        let Some(p) = self.pending.remove(&(src, dst, seq)) else {
            return; // already acknowledged
        };
        self.parked.unpark(src, p.msg.payload_bytes as u64);
        let cfg = self.reliability.config().expect("loss enabled");
        if p.retries >= cfg.max_retries {
            // Retry exhaustion is a structured outcome, not a crash: the
            // message becomes a DeliveryFailure and its sequence is
            // tombstoned so a late copy can never resurrect it.
            if self
                .reliability
                .give_up(src, dst, seq, p.msg.kind, p.msg.span)
            {
                self.in_flight -= 1;
                // The tombstoned sequence will never arrive; unblock any
                // later messages held behind it in the reorder buffer.
                self.drain_in_order(now, src, dst);
            }
            return;
        }
        self.reliability.count_retransmission();
        // Retransmissions consume real bandwidth.
        self.stats.record(p.msg.kind, p.msg.payload_bytes);
        let floor = self.rto_floor(&p.msg);
        let retries = p.retries + 1;
        self.parked.park(src, p.msg.payload_bytes as u64);
        self.pending.insert(
            (src, dst, seq),
            PendingMsg {
                msg: p.msg.clone(),
                retries,
                sent_at: p.sent_at,
            },
        );
        self.transmit(now, p.msg, Some(seq), p.sent_at, retries);
        let rto = self.reliability.rto_for(src, dst, retries, floor);
        self.queue.push(now + rto, Phase::Retry(src, dst, seq));
    }

    /// Sends `msg` at virtual time `now`. Arrival and service are scheduled
    /// automatically; the message is eventually returned by
    /// [`next`](Self::next) exactly once, even under injected loss — or, if
    /// the peer stays unresponsive past `max_retries`, it surfaces in
    /// [`delivery_failures`](Self::delivery_failures) instead.
    ///
    /// # Panics
    ///
    /// Panics if the destination node is out of range.
    pub fn send(&mut self, now: VirtualTime, msg: Message<P>)
    where
        P: Clone,
    {
        assert!(
            msg.dst.0 < self.handler_free.len(),
            "destination {} out of range",
            msg.dst
        );
        self.stats.record(msg.kind, msg.payload_bytes);
        self.in_flight += 1;
        if self.reliability.enabled() {
            let (src, dst) = (msg.src.0, msg.dst.0);
            let seq = self.reliability.next_seq(src, dst);
            let floor = self.rto_floor(&msg);
            self.parked.park(src, msg.payload_bytes as u64);
            self.pending.insert(
                (src, dst, seq),
                PendingMsg {
                    msg: msg.clone(),
                    retries: 0,
                    sent_at: now,
                },
            );
            self.transmit(now, msg, Some(seq), now, 0);
            let rto = self.reliability.rto_for(src, dst, 0, floor);
            self.queue.push(now + rto, Phase::Retry(src, dst, seq));
        } else {
            self.transmit(now, msg, None, now, 0);
        }
    }

    /// Drops bookkeeping events at the head of the queue that can no
    /// longer do anything: a retry timer or ack arrival whose pending
    /// entry is gone (the message was acknowledged or abandoned). Without
    /// this, a cleared timer makes the network look busy for up to one
    /// RTO after the last real delivery.
    fn purge_dead(&mut self) {
        while let Some((_, phase)) = self.queue.peek() {
            let dead = match phase {
                Phase::Retry(src, dst, seq) | Phase::AckArrival(src, dst, seq) => {
                    !self.pending.contains_key(&(*src, *dst, *seq))
                }
                Phase::Arrival(_) | Phase::Serviced(..) => false,
            };
            if !dead {
                break;
            }
            self.queue.pop();
        }
    }

    /// Timing metadata of the most recent delivery (the message last
    /// returned by [`poll`](Self::poll)); `None` before any delivery.
    pub fn last_delivery(&self) -> Option<DeliveryInfo> {
        self.last_delivery
    }

    /// Completion time of the earliest *live* pending event (arrival,
    /// service, or an armed retransmission timer). `None` means the
    /// network is quiescent: dead timer residue does not count.
    pub fn peek_time(&mut self) -> Option<VirtualTime> {
        self.purge_dead();
        self.queue.peek_time()
    }

    /// Number of messages sent but not yet returned by `next` (abandoned
    /// messages leave this count when the sender gives up).
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Lowers `floors[n]` to a conservative bound on the earliest instant
    /// the network could still affect node `n`: the minimum pending event
    /// time over arrivals and service completions destined for `n`, and
    /// over armed retransmission timers whose resend would target `n`
    /// (the resend's delivery is strictly later than the timer, so the
    /// timer time is a safe lower bound). Ack arrivals are excluded — ack
    /// processing only updates sender-side RTT bookkeeping, never node
    /// state. Messages held in a reorder buffer need no entry of their
    /// own: their delivery is triggered by a pending event on the same
    /// link, which is already counted.
    ///
    /// Entries for quiescent destinations are left untouched, so callers
    /// should pre-fill with [`VirtualTime::MAX`].
    pub fn delivery_floors(&self, floors: &mut [VirtualTime]) {
        for (t, phase) in self.queue.iter() {
            let dst = match phase {
                Phase::Arrival(env) => env.msg.dst.0,
                Phase::Serviced(msg, _, _) => msg.dst.0,
                Phase::Retry(src, dst, seq) => {
                    if !self.pending.contains_key(&(*src, *dst, *seq)) {
                        continue; // dead timer: the message was acked
                    }
                    *dst
                }
                Phase::AckArrival(..) => continue,
            };
            if t < floors[dst] {
                floors[dst] = t;
            }
        }
    }

    /// Accumulated traffic statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// The latency model in force.
    pub fn model(&self) -> &LatencyModel {
        &self.model
    }
}
