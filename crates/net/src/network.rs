//! The in-flight message scheduler.
//!
//! [`NetworkSim`] owns the set of messages currently on the wire or queued
//! at a busy destination handler. Message delivery is a two-phase event:
//! the *arrival* (wire time after the send) and the *service completion*
//! (after waiting for the destination's handler to be free and being
//! processed for the per-kind service time). [`NetworkSim::next`] returns
//! messages in service-completion order, which is the instant their effects
//! become visible to the protocol — so the DSM driver can simply apply each
//! message as it pops.

use std::collections::HashMap;

use cvm_sim::{EventQueue, SimDuration, SimRng, VirtualTime};

use crate::latency::LatencyModel;
use crate::message::Message;
use crate::reliable::{LossConfig, LossStats, ReliabilityState};
use crate::stats::NetStats;

/// Wire size of an acknowledgement (reliability layer).
const ACK_BYTES: usize = 32;

struct Envelope<P> {
    msg: Message<P>,
    /// Sequence number when the reliability layer is active.
    seq: Option<u64>,
}

enum Phase<P> {
    Arrival(Envelope<P>),
    Serviced(Message<P>),
    /// Retransmission timer for `(src, dst, seq)`.
    Retry(usize, usize, u64),
    /// An acknowledgement for `(src, dst, seq)` arriving back at `src`.
    AckArrival(usize, usize, u64),
}

/// Simulated network connecting `n` nodes.
///
/// # Example
///
/// ```
/// use cvm_net::{LatencyModel, Message, MsgKind, NetworkSim, NodeId};
/// use cvm_sim::VirtualTime;
///
/// let mut net: NetworkSim<&str> = NetworkSim::new(2, LatencyModel::paper());
/// net.send(
///     VirtualTime::ZERO,
///     Message::new(NodeId(0), NodeId(1), MsgKind::Other, 64, "ping"),
/// );
/// let (when, msg) = net.next().expect("one message in flight");
/// assert_eq!(msg.payload, "ping");
/// assert!(when > VirtualTime::ZERO);
/// ```
pub struct NetworkSim<P> {
    queue: EventQueue<Phase<P>>,
    handler_free: Vec<VirtualTime>,
    model: LatencyModel,
    stats: NetStats,
    jitter: Option<(SimRng, SimDuration)>,
    in_flight: usize,
    reliability: ReliabilityState,
    /// Unacknowledged messages awaiting possible retransmission:
    /// `(src, dst, seq) → (message, retries)`.
    pending: HashMap<(usize, usize, u64), (Message<P>, u32)>,
}

impl<P> std::fmt::Debug for NetworkSim<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetworkSim")
            .field("nodes", &self.handler_free.len())
            .field("in_flight", &self.in_flight)
            .finish_non_exhaustive()
    }
}

impl<P> NetworkSim<P> {
    /// Creates a network of `nodes` nodes under `model`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(nodes: usize, model: LatencyModel) -> Self {
        assert!(nodes > 0, "network needs at least one node");
        NetworkSim {
            queue: EventQueue::new(),
            handler_free: vec![VirtualTime::ZERO; nodes],
            model,
            stats: NetStats::new(),
            jitter: None,
            in_flight: 0,
            reliability: ReliabilityState::default(),
            pending: HashMap::new(),
        }
    }

    /// Enables packet-loss injection; delivery then runs over the
    /// acknowledgement/retransmission layer of [`crate::reliable`], still
    /// exactly-once to the protocol. Deterministic under the given RNG.
    pub fn enable_loss(&mut self, rng: SimRng, config: LossConfig) {
        self.reliability.enable(rng, config);
    }

    /// Reliability-layer counters (drops, retransmissions, duplicates).
    pub fn loss_stats(&self) -> LossStats {
        self.reliability.stats()
    }

    /// Enables uniform random extra delay in `[0, max)` per message, for
    /// perturbation/failure-injection experiments. Deterministic under the
    /// given RNG.
    pub fn set_jitter(&mut self, rng: SimRng, max: SimDuration) {
        self.jitter = if max.is_zero() {
            None
        } else {
            Some((rng, max))
        };
    }

    fn wire_delay(&mut self, bytes: usize) -> SimDuration {
        let mut wire = self.model.wire_time(bytes);
        if let Some((rng, max)) = &mut self.jitter {
            wire += SimDuration::from_ns(rng.below(max.as_ns().max(1)));
        }
        wire
    }

    /// Pops the next message in service-completion order, returning the
    /// virtual time at which its effects apply at the destination.
    // Deliberately named like an iterator: the network *is* consumed as a
    // stream of deliveries, but it cannot implement Iterator (the item
    // borrows nothing, yet delivery mutates shared handler state and the
    // type parameter needs Clone only here).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(VirtualTime, Message<P>)>
    where
        P: Clone,
    {
        self.poll(VirtualTime::MAX)
    }

    /// Like [`next`](Self::next), but only returns a message whose service
    /// completes at or before `until`; otherwise leaves it queued and
    /// returns `None`.
    ///
    /// Arrivals up to `until` are expanded into service completions, which
    /// is safe because any message sent later arrives later than every
    /// expanded arrival — handler-occupancy order at each node is
    /// preserved. This is what lets a driver interleave network events with
    /// its own event queue in strict time order.
    pub fn poll(&mut self, until: VirtualTime) -> Option<(VirtualTime, Message<P>)>
    where
        P: Clone,
    {
        loop {
            match self.queue.peek_time() {
                None => return None,
                Some(t) if t > until => return None,
                Some(_) => {}
            }
            match self.queue.pop().expect("peeked nonempty") {
                (arrived, Phase::Arrival(env)) => {
                    let (src, dst) = (env.msg.src.0, env.msg.dst.0);
                    if let Some(seq) = env.seq {
                        // Acknowledge (the ack itself may be dropped) and
                        // deduplicate retransmissions.
                        self.reliability.count_ack();
                        if !self.reliability.should_drop() {
                            let wire = self.wire_delay(ACK_BYTES);
                            self.queue
                                .push(arrived + wire, Phase::AckArrival(src, dst, seq));
                        }
                        if !self.reliability.first_delivery(src, dst, seq) {
                            continue; // duplicate: suppress
                        }
                    }
                    let start = arrived.max(self.handler_free[dst]);
                    let done = start + self.model.handler_time(env.msg.kind);
                    self.handler_free[dst] = done;
                    self.queue.push(done, Phase::Serviced(env.msg));
                }
                (done, Phase::Serviced(msg)) => {
                    self.in_flight -= 1;
                    return Some((done, msg));
                }
                (now, Phase::Retry(src, dst, seq)) => {
                    let Some((msg, retries)) = self.pending.remove(&(src, dst, seq)) else {
                        continue; // already acknowledged
                    };
                    let cfg = self.reliability.config().expect("loss enabled");
                    assert!(
                        retries < cfg.max_retries,
                        "message {src}->{dst} seq {seq} exceeded {} retries",
                        cfg.max_retries
                    );
                    self.reliability.count_retransmission();
                    // Retransmissions consume real bandwidth.
                    self.stats.record(msg.kind, msg.payload_bytes);
                    self.pending
                        .insert((src, dst, seq), (msg.clone(), retries + 1));
                    if !self.reliability.should_drop() {
                        let wire = self.wire_delay(msg.payload_bytes);
                        self.queue.push(
                            now + wire,
                            Phase::Arrival(Envelope {
                                msg,
                                seq: Some(seq),
                            }),
                        );
                    }
                    self.queue.push(now + cfg.rto, Phase::Retry(src, dst, seq));
                }
                (_, Phase::AckArrival(src, dst, seq)) => {
                    self.pending.remove(&(src, dst, seq));
                }
            }
        }
    }

    /// Sends `msg` at virtual time `now`. Arrival and service are scheduled
    /// automatically; the message is eventually returned by
    /// [`next`](Self::next) exactly once, even under injected loss.
    ///
    /// # Panics
    ///
    /// Panics if the destination node is out of range.
    pub fn send(&mut self, now: VirtualTime, msg: Message<P>)
    where
        P: Clone,
    {
        assert!(
            msg.dst.0 < self.handler_free.len(),
            "destination {} out of range",
            msg.dst
        );
        self.stats.record(msg.kind, msg.payload_bytes);
        self.in_flight += 1;
        if self.reliability.enabled() {
            let (src, dst) = (msg.src.0, msg.dst.0);
            let seq = self.reliability.next_seq(src, dst);
            let cfg = self.reliability.config().expect("enabled");
            self.pending.insert((src, dst, seq), (msg.clone(), 0));
            if !self.reliability.should_drop() {
                let wire = self.wire_delay(msg.payload_bytes);
                self.queue.push(
                    now + wire,
                    Phase::Arrival(Envelope {
                        msg,
                        seq: Some(seq),
                    }),
                );
            }
            self.queue.push(now + cfg.rto, Phase::Retry(src, dst, seq));
        } else {
            let wire = self.wire_delay(msg.payload_bytes);
            self.queue
                .push(now + wire, Phase::Arrival(Envelope { msg, seq: None }));
        }
    }

    /// Completion time of the earliest pending event (arrival or service).
    pub fn peek_time(&self) -> Option<VirtualTime> {
        self.queue.peek_time()
    }

    /// Number of messages sent but not yet returned by `next`.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Accumulated traffic statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// The latency model in force.
    pub fn model(&self) -> &LatencyModel {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{MsgKind, NodeId};

    fn msg(src: usize, dst: usize, kind: MsgKind, bytes: usize) -> Message<u32> {
        Message::new(NodeId(src), NodeId(dst), kind, bytes, 0)
    }

    #[test]
    fn delivery_order_is_completion_order() {
        let mut net = NetworkSim::new(3, LatencyModel::paper());
        // Two messages to the same node: the second waits for the handler.
        net.send(VirtualTime::ZERO, msg(0, 2, MsgKind::LockRequest, 64));
        net.send(VirtualTime::ZERO, msg(1, 2, MsgKind::LockRequest, 64));
        let (t1, _) = net.next().unwrap();
        let (t2, _) = net.next().unwrap();
        let h = LatencyModel::paper()
            .handler_time(MsgKind::LockRequest)
            .as_us_f64();
        assert!((t2.as_us_f64() - t1.as_us_f64() - h).abs() < 1e-6);
    }

    #[test]
    fn handlers_on_different_nodes_do_not_serialize() {
        let mut net = NetworkSim::new(3, LatencyModel::paper());
        net.send(VirtualTime::ZERO, msg(0, 1, MsgKind::LockRequest, 64));
        net.send(VirtualTime::ZERO, msg(0, 2, MsgKind::LockRequest, 64));
        let (t1, _) = net.next().unwrap();
        let (t2, _) = net.next().unwrap();
        assert_eq!(t1, t2);
    }

    #[test]
    fn barrier_serialization_reproduces_cost() {
        // 7 simultaneous arrivals at the master (node 0), as in a minimal
        // 8-node barrier: last service completes ~ wire + 7 * handler.
        let model = LatencyModel::paper();
        let mut net = NetworkSim::new(8, model.clone());
        for src in 1..8 {
            net.send(VirtualTime::ZERO, msg(src, 0, MsgKind::BarrierArrive, 64));
        }
        let mut last = VirtualTime::ZERO;
        for _ in 0..7 {
            let (t, _) = net.next().unwrap();
            last = last.max(t);
        }
        let expect = model.wire_time(64).as_us_f64()
            + 7.0 * model.handler_time(MsgKind::BarrierArrive).as_us_f64();
        assert!((last.as_us_f64() - expect).abs() < 1.0);
    }

    #[test]
    fn stats_accumulate_by_class() {
        use crate::message::MsgClass;
        let mut net = NetworkSim::new(2, LatencyModel::instant());
        net.send(VirtualTime::ZERO, msg(0, 1, MsgKind::DiffRequest, 100));
        net.send(VirtualTime::ZERO, msg(1, 0, MsgKind::DiffReply, 900));
        net.send(VirtualTime::ZERO, msg(0, 1, MsgKind::LockRequest, 64));
        assert_eq!(net.stats().class_count(MsgClass::Diff), 2);
        assert_eq!(net.stats().class_bytes(MsgClass::Diff), 1000);
        assert_eq!(net.stats().class_count(MsgClass::Lock), 1);
        assert_eq!(net.stats().total_count(), 3);
    }

    #[test]
    fn in_flight_tracks_queue() {
        let mut net = NetworkSim::new(2, LatencyModel::instant());
        assert_eq!(net.in_flight(), 0);
        net.send(VirtualTime::ZERO, msg(0, 1, MsgKind::Other, 10));
        assert_eq!(net.in_flight(), 1);
        net.next().unwrap();
        assert_eq!(net.in_flight(), 0);
        assert!(net.next().is_none());
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let run = |seed| {
            let mut net = NetworkSim::new(2, LatencyModel::paper());
            net.set_jitter(SimRng::seed_from(seed), SimDuration::from_us(100));
            for _ in 0..10 {
                net.send(VirtualTime::ZERO, msg(0, 1, MsgKind::Other, 10));
            }
            let mut times = Vec::new();
            while let Some((t, _)) = net.next() {
                times.push(t.as_ns());
            }
            times
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_destination_panics() {
        let mut net = NetworkSim::new(2, LatencyModel::instant());
        net.send(VirtualTime::ZERO, msg(0, 5, MsgKind::Other, 1));
    }
}
