//! The latency model, calibrated to the paper's measured costs.
//!
//! A message's one-way wire time is `fixed + bytes * per_byte`; on arrival
//! it additionally occupies the destination's protocol handler for a
//! per-kind service time (see [`HandlerCosts`]). With the defaults below the
//! §4.1 microbenchmarks come out at:
//!
//! | operation | paper | model |
//! |---|---|---|
//! | 2-hop lock acquire | 937 µs | ≈ 937 µs |
//! | 3-hop lock acquire | 1382 µs | ≈ 1406 µs |
//! | remote page fault (incl. 49 µs mprotect + 98 µs signal) | ≈ 1100 µs | ≈ 1101 µs |
//! | minimal 8-processor barrier | 2470 µs | ≈ 2465 µs |
//!
//! The per-byte term is small (the paper's own numbers imply that fixed
//! software overhead dominated; they call their OS communication path
//! "inefficient"), so bandwidth figures in Table 2 are tracked by byte
//! *accounting*, not by queueing delay.

use cvm_sim::SimDuration;

use crate::message::MsgKind;

/// Per-kind handler service times charged at the receiving node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HandlerCosts {
    /// Page request lookup + send.
    pub page_request: SimDuration,
    /// Page reply `bcopy` + protection change at the faulter.
    pub page_reply: SimDuration,
    /// Diff request: locate/create diffs.
    pub diff_request: SimDuration,
    /// Diff reply: queue diffs for application.
    pub diff_reply: SimDuration,
    /// Lock request at the manager.
    pub lock_request: SimDuration,
    /// Forwarded lock request at the last owner.
    pub lock_forward: SimDuration,
    /// Lock grant at the acquirer (write-notice processing).
    pub lock_grant: SimDuration,
    /// Barrier arrival at the master (interval/write-notice merging; the
    /// dominant term in the 2470 µs 8-node barrier).
    pub barrier_arrive: SimDuration,
    /// Barrier release at a worker (write-notice application).
    pub barrier_release: SimDuration,
    /// Eager diff push at the receiver (apply in place).
    pub update_push: SimDuration,
    /// Copyset-drop notification.
    pub drop_copy: SimDuration,
    /// Home-based flush at the home (apply diff in place).
    pub home_flush: SimDuration,
    /// Home-based page request at the home (lookup + send).
    pub home_request: SimDuration,
    /// Home-based page reply at the faulter (`bcopy` + protection change).
    pub home_reply: SimDuration,
    /// Anything else.
    pub other: SimDuration,
}

impl HandlerCosts {
    /// Costs calibrated to the paper's Alpha/ATM measurements.
    pub fn paper() -> Self {
        HandlerCosts {
            page_request: SimDuration::from_us(100),
            page_reply: SimDuration::from_us(100),
            diff_request: SimDuration::from_us(100),
            diff_reply: SimDuration::from_us(100),
            lock_request: SimDuration::from_us(100),
            lock_forward: SimDuration::from_us(100),
            lock_grant: SimDuration::from_us(100),
            barrier_arrive: SimDuration::from_us(216),
            barrier_release: SimDuration::from_us(216),
            update_push: SimDuration::from_us(100),
            drop_copy: SimDuration::from_us(50),
            home_flush: SimDuration::from_us(100),
            home_request: SimDuration::from_us(100),
            home_reply: SimDuration::from_us(100),
            other: SimDuration::from_us(50),
        }
    }

    /// Service time for one message kind.
    pub fn cost(&self, kind: MsgKind) -> SimDuration {
        match kind {
            MsgKind::PageRequest => self.page_request,
            MsgKind::PageReply => self.page_reply,
            MsgKind::DiffRequest => self.diff_request,
            MsgKind::DiffReply => self.diff_reply,
            MsgKind::LockRequest => self.lock_request,
            MsgKind::LockForward => self.lock_forward,
            MsgKind::LockGrant => self.lock_grant,
            MsgKind::BarrierArrive => self.barrier_arrive,
            MsgKind::BarrierRelease => self.barrier_release,
            MsgKind::UpdatePush => self.update_push,
            MsgKind::DropCopy => self.drop_copy,
            MsgKind::HomeFlush => self.home_flush,
            MsgKind::HomeRequest => self.home_request,
            MsgKind::HomeReply => self.home_reply,
            // Acks are consumed by the messaging layer on receipt; they
            // never occupy the protocol handler.
            MsgKind::Ack => SimDuration::ZERO,
            MsgKind::Other => self.other,
        }
    }
}

impl Default for HandlerCosts {
    fn default() -> Self {
        Self::paper()
    }
}

/// One-way message latency model.
///
/// # Example
///
/// ```
/// use cvm_net::LatencyModel;
/// let m = LatencyModel::paper();
/// // Small control messages are dominated by fixed software overhead.
/// let small = m.wire_time(64);
/// let page = m.wire_time(8192);
/// assert!(page > small);
/// assert!(small.as_us_f64() > 300.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyModel {
    /// Fixed per-message software + wire overhead.
    pub fixed: SimDuration,
    /// Marginal cost per payload byte, in nanoseconds.
    pub per_byte_ns: f64,
    /// Receiver-side handler service times.
    pub handler: HandlerCosts,
}

impl LatencyModel {
    /// The calibrated paper model (see module docs).
    pub fn paper() -> Self {
        LatencyModel {
            fixed: SimDuration::from_ns(368_500),
            per_byte_ns: 2.0,
            handler: HandlerCosts::paper(),
        }
    }

    /// A fast, idealised network (useful in unit tests where protocol
    /// logic, not timing, is under test).
    pub fn instant() -> Self {
        LatencyModel {
            fixed: SimDuration::from_us(1),
            per_byte_ns: 0.0,
            handler: HandlerCosts {
                page_request: SimDuration::ZERO,
                page_reply: SimDuration::ZERO,
                diff_request: SimDuration::ZERO,
                diff_reply: SimDuration::ZERO,
                lock_request: SimDuration::ZERO,
                lock_forward: SimDuration::ZERO,
                lock_grant: SimDuration::ZERO,
                barrier_arrive: SimDuration::ZERO,
                barrier_release: SimDuration::ZERO,
                update_push: SimDuration::ZERO,
                drop_copy: SimDuration::ZERO,
                home_flush: SimDuration::ZERO,
                home_request: SimDuration::ZERO,
                home_reply: SimDuration::ZERO,
                other: SimDuration::ZERO,
            },
        }
    }

    /// A wire-dominant model for the model checker's tiny kernels:
    /// negligible fixed software overhead with a large per-byte term, so
    /// bulk transfers (diff flushes, whole-page replies) genuinely
    /// overtake small control messages in flight. Under [`instant`]'s
    /// size-independent latency, the message reorderings that the
    /// protocols guard against (and that the paper's network exhibits —
    /// its per-byte term makes an 8 KB page ~45× slower than a request)
    /// are unreachable on kernels small enough to enumerate; this model
    /// restores them without paper-scale run times.
    ///
    /// [`instant`]: LatencyModel::instant
    pub fn check() -> Self {
        LatencyModel {
            fixed: SimDuration::from_us(2),
            per_byte_ns: 100.0,
            ..Self::instant()
        }
    }

    /// One-way wire time for a message of `bytes` payload bytes.
    pub fn wire_time(&self, bytes: usize) -> SimDuration {
        self.fixed + SimDuration::from_us_f64(bytes as f64 * self.per_byte_ns / 1_000.0)
    }

    /// Conservative lookahead floor: the minimum time between a send and
    /// *any* consequence at the receiver. The per-byte term, jitter and
    /// handler service only ever add to the fixed overhead, so a message
    /// sent at `t` cannot affect its destination before `t + lookahead()`.
    /// This bound is what lets the parallel event core run node-local work
    /// inside a window of that width without consulting other nodes.
    pub fn lookahead(&self) -> SimDuration {
        self.fixed
    }

    /// Receiver handler service time for `kind`.
    pub fn handler_time(&self, kind: MsgKind) -> SimDuration {
        self.handler.cost(kind)
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The §4.1 microbenchmark calibration, checked analytically.
    #[test]
    fn two_hop_lock_matches_paper() {
        let m = LatencyModel::paper();
        let us = 2.0 * m.wire_time(64).as_us_f64()
            + m.handler_time(MsgKind::LockRequest).as_us_f64()
            + m.handler_time(MsgKind::LockGrant).as_us_f64();
        assert!((us - 937.0).abs() < 10.0, "2-hop lock = {us} µs");
    }

    #[test]
    fn three_hop_lock_close_to_paper() {
        let m = LatencyModel::paper();
        let us = 3.0 * m.wire_time(64).as_us_f64()
            + m.handler_time(MsgKind::LockRequest).as_us_f64()
            + m.handler_time(MsgKind::LockForward).as_us_f64()
            + m.handler_time(MsgKind::LockGrant).as_us_f64();
        assert!((us - 1382.0).abs() < 40.0, "3-hop lock = {us} µs");
    }

    #[test]
    fn page_fault_matches_paper() {
        let m = LatencyModel::paper();
        // 98 µs signal + 49 µs mprotect charged by the DSM layer.
        let us = 98.0
            + 49.0
            + m.wire_time(64).as_us_f64()
            + m.handler_time(MsgKind::PageRequest).as_us_f64()
            + m.wire_time(8192).as_us_f64()
            + m.handler_time(MsgKind::PageReply).as_us_f64();
        assert!((us - 1100.0).abs() < 15.0, "page fault = {us} µs");
    }

    #[test]
    fn eight_node_barrier_matches_paper() {
        let m = LatencyModel::paper();
        // 7 simultaneous arrivals serialize at the master, then the last
        // release is handled at a worker.
        let us = m.wire_time(64).as_us_f64()
            + 7.0 * m.handler_time(MsgKind::BarrierArrive).as_us_f64()
            + m.wire_time(128).as_us_f64()
            + m.handler_time(MsgKind::BarrierRelease).as_us_f64();
        assert!((us - 2470.0).abs() < 50.0, "8-node barrier = {us} µs");
    }

    #[test]
    fn wire_time_monotone_in_bytes() {
        let m = LatencyModel::paper();
        assert!(m.wire_time(0) < m.wire_time(1000));
        assert!(m.wire_time(1000) < m.wire_time(100_000));
    }

    #[test]
    fn lookahead_bounds_every_wire_time() {
        for m in [
            LatencyModel::paper(),
            LatencyModel::instant(),
            LatencyModel::check(),
        ] {
            assert!(m.lookahead() > SimDuration::ZERO);
            for bytes in [0usize, 1, 64, 8192, 1 << 20] {
                assert!(m.wire_time(bytes) >= m.lookahead());
            }
        }
    }
}
