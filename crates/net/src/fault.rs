//! Deterministic fault injection: the `FaultPlan` layer.
//!
//! CVM's communication layer is "efficient, end-to-end protocols built on
//! top of UDP" — loss, duplication and reordering are the normal case, not
//! the exception. This module turns those conditions into a first-class,
//! composable experiment input: a [`FaultPlan`] describes *which* faults to
//! inject (per-link asymmetric loss, duplication, reordering windows,
//! detected-corruption drops, node stall windows, and transient partitions
//! that heal), and [`NetworkSim`](crate::NetworkSim) evaluates the plan on
//! every transmission with a dedicated RNG — so a plan is **seed-stable**:
//! the same `(plan, seed)` pair injects the identical fault sequence on
//! every run, on any machine, at any worker count.
//!
//! A plan composes: several [`LinkRule`]s may match one transmission (each
//! rolls independently), stall windows and partitions stack on top of link
//! rules, and the uniform [`LossConfig`](crate::LossConfig) probability
//! still applies underneath. Any plan that can discard traffic requires
//! the acknowledgement/retransmission layer to be enabled — dropping
//! without retransmission would silently violate the exactly-once
//! delivery contract instead of degrading gracefully.

use cvm_sim::{SimDuration, SimRng, VirtualTime};

/// Why a transmission was discarded by the fault layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropCause {
    /// Plain packet loss (the datagram vanished on the wire).
    Loss,
    /// Checksum-detected corruption: the receiver saw the packet, found it
    /// damaged, and discarded it (indistinguishable from loss to the
    /// sender, but accounted separately).
    Corrupt,
    /// The link crossed an active partition.
    Partition,
}

/// The fate the fault layer assigns one transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxFate {
    /// Deliver, possibly late (reordering) and possibly twice
    /// (duplication; the second copy arrives `dup_delay` after the first).
    Deliver {
        /// Extra wire delay from reordering rules (zero = in order).
        delay: SimDuration,
        /// A duplicate copy to inject, arriving this much after the first.
        duplicate: Option<SimDuration>,
    },
    /// Discard the transmission.
    Drop(DropCause),
}

/// Fault probabilities for one (possibly wildcarded) directed link.
///
/// `src`/`dst` of `None` match any node, so a single rule can cover the
/// whole mesh; `src: None, dst: Some(0)` injects *asymmetric* loss — the
/// forward path into node 0 is lossy while node 0's own sends are clean.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkRule {
    /// Sending node this rule applies to (`None` = any).
    pub src: Option<usize>,
    /// Receiving node this rule applies to (`None` = any).
    pub dst: Option<usize>,
    /// Probability the transmission is lost outright.
    pub loss: f64,
    /// Probability the transmission is duplicated on the wire.
    pub duplicate: f64,
    /// Probability the transmission arrives corrupted and is dropped by
    /// the receiver's checksum.
    pub corrupt: f64,
    /// Probability the transmission is delayed (reordered past later
    /// traffic on the same link).
    pub reorder: f64,
    /// Extra delay drawn uniformly from `[0, reorder_window)` when the
    /// reorder roll hits.
    pub reorder_window: SimDuration,
}

impl Default for LinkRule {
    fn default() -> Self {
        LinkRule {
            src: None,
            dst: None,
            loss: 0.0,
            duplicate: 0.0,
            corrupt: 0.0,
            reorder: 0.0,
            reorder_window: SimDuration::from_ms(2),
        }
    }
}

impl LinkRule {
    fn matches(&self, src: usize, dst: usize) -> bool {
        self.src.is_none_or(|s| s == src) && self.dst.is_none_or(|d| d == dst)
    }

    fn validate(&self) {
        for (name, p) in [
            ("loss", self.loss),
            ("duplicate", self.duplicate),
            ("corrupt", self.corrupt),
            ("reorder", self.reorder),
        ] {
            assert!(
                (0.0..1.0).contains(&p),
                "link-rule {name} probability must be in [0, 1), got {p}"
            );
        }
    }
}

/// A window during which one node's protocol handler is stalled (a GC
/// pause, a scheduling hiccup, an overloaded peer): arrivals at the node
/// are not serviced before the window ends, so its replies and
/// acknowledgements come late and the sender's timers must cope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallWindow {
    /// The stalled node.
    pub node: usize,
    /// Window start (inclusive).
    pub from: VirtualTime,
    /// Window end (exclusive) — service resumes here.
    pub until: VirtualTime,
}

/// A transient network partition: while active, every transmission
/// crossing between `island` and the rest of the cluster is dropped. At
/// `until` the partition heals and retransmission timers recover the
/// traffic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Nodes on the isolated side (traffic *within* the island, and
    /// within its complement, still flows).
    pub island: Vec<usize>,
    /// Partition start (inclusive).
    pub from: VirtualTime,
    /// Heal time (exclusive) — `VirtualTime::MAX` never heals.
    pub until: VirtualTime,
}

impl Partition {
    fn severs(&self, src: usize, dst: usize, at: VirtualTime) -> bool {
        at >= self.from
            && at < self.until
            && (self.island.contains(&src) != self.island.contains(&dst))
    }
}

/// A composable, deterministic description of what to break.
///
/// The empty plan (`FaultPlan::default()`) injects nothing and draws no
/// randomness, so enabling it is observationally identical to not
/// enabling it at all.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Per-link fault probabilities; every matching rule rolls.
    pub rules: Vec<LinkRule>,
    /// Node stall windows.
    pub stalls: Vec<StallWindow>,
    /// Transient partitions.
    pub partitions: Vec<Partition>,
}

/// Names of the standard campaign plans (`cvm faults`), in grid order.
pub const PLAN_CATALOG: [&str; 12] = [
    "none",
    "loss-1",
    "loss-5",
    "loss-10",
    "loss-30",
    "asym-loss",
    "dup",
    "reorder",
    "corrupt",
    "stall",
    "partition",
    "storm",
];

impl FaultPlan {
    /// True if the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty() && self.stalls.is_empty() && self.partitions.is_empty()
    }

    /// True if the plan can discard traffic (and therefore requires the
    /// reliability layer underneath).
    pub fn can_drop(&self) -> bool {
        !self.partitions.is_empty() || self.rules.iter().any(|r| r.loss > 0.0 || r.corrupt > 0.0)
    }

    /// A plan with a single mesh-wide rule.
    pub fn uniform(rule: LinkRule) -> Self {
        FaultPlan {
            rules: vec![rule],
            ..FaultPlan::default()
        }
    }

    /// Looks up one of the standard campaign plans by name (see
    /// [`PLAN_CATALOG`]). `nodes` scales the stall/partition targets: the
    /// victim node is `1 % nodes` so the plan is valid on any cluster.
    pub fn named(name: &str, nodes: usize) -> Option<FaultPlan> {
        let victim = 1 % nodes.max(1);
        let loss = |p: f64| {
            Some(FaultPlan::uniform(LinkRule {
                loss: p,
                ..LinkRule::default()
            }))
        };
        match name {
            "none" => Some(FaultPlan::default()),
            "loss-1" => loss(0.01),
            "loss-5" => loss(0.05),
            "loss-10" => loss(0.10),
            "loss-30" => loss(0.30),
            // Asymmetric: the path *into* node 0 (every node's manager for
            // most locks and the barrier master) drops a quarter of its
            // traffic; node 0's own sends are clean.
            "asym-loss" => Some(FaultPlan::uniform(LinkRule {
                dst: Some(0),
                loss: 0.25,
                ..LinkRule::default()
            })),
            "dup" => Some(FaultPlan::uniform(LinkRule {
                duplicate: 0.15,
                ..LinkRule::default()
            })),
            "reorder" => Some(FaultPlan::uniform(LinkRule {
                reorder: 0.30,
                reorder_window: SimDuration::from_ms(2),
                ..LinkRule::default()
            })),
            "corrupt" => Some(FaultPlan::uniform(LinkRule {
                corrupt: 0.05,
                ..LinkRule::default()
            })),
            "stall" => Some(FaultPlan {
                stalls: vec![StallWindow {
                    node: victim,
                    from: VirtualTime::from_us(40_000),
                    until: VirtualTime::from_us(140_000),
                }],
                ..FaultPlan::default()
            }),
            "partition" => Some(FaultPlan {
                partitions: vec![Partition {
                    island: vec![victim],
                    from: VirtualTime::from_us(40_000),
                    until: VirtualTime::from_us(120_000),
                }],
                ..FaultPlan::default()
            }),
            "storm" => Some(FaultPlan {
                rules: vec![LinkRule {
                    loss: 0.05,
                    duplicate: 0.05,
                    corrupt: 0.02,
                    reorder: 0.20,
                    reorder_window: SimDuration::from_ms(1),
                    ..LinkRule::default()
                }],
                stalls: vec![StallWindow {
                    node: victim,
                    from: VirtualTime::from_us(40_000),
                    until: VirtualTime::from_us(100_000),
                }],
                partitions: vec![Partition {
                    island: vec![victim],
                    from: VirtualTime::from_us(150_000),
                    until: VirtualTime::from_us(220_000),
                }],
            }),
            _ => None,
        }
    }

    /// Panics if any probability is out of `[0, 1)` or a window is
    /// inverted.
    pub fn validate(&self) {
        for rule in &self.rules {
            rule.validate();
        }
        for s in &self.stalls {
            assert!(s.from <= s.until, "stall window inverted");
        }
        for p in &self.partitions {
            assert!(p.from <= p.until, "partition window inverted");
        }
    }
}

/// The plan plus its RNG: evaluates one transmission at a time.
#[derive(Debug)]
pub(crate) struct FaultInjector {
    plan: FaultPlan,
    rng: SimRng,
}

impl FaultInjector {
    pub(crate) fn new(rng: SimRng, plan: FaultPlan) -> Self {
        plan.validate();
        FaultInjector { plan, rng }
    }

    /// Rolls the fate of one transmission on `src → dst` at `now`.
    /// Partitions are checked first (deterministic, no randomness drawn);
    /// each matching rule then rolls corruption, loss, duplication and
    /// reordering in that fixed order. Rolls are only drawn for nonzero
    /// probabilities, so a plan that never mentions a fault kind leaves
    /// the random stream — and therefore every other decision — intact.
    pub(crate) fn roll(&mut self, src: usize, dst: usize, now: VirtualTime) -> TxFate {
        if self.plan.partitions.iter().any(|p| p.severs(src, dst, now)) {
            return TxFate::Drop(DropCause::Partition);
        }
        let mut delay = SimDuration::ZERO;
        let mut duplicate = None;
        for rule in &self.plan.rules {
            if !rule.matches(src, dst) {
                continue;
            }
            if rule.corrupt > 0.0 && self.rng.unit_f64() < rule.corrupt {
                return TxFate::Drop(DropCause::Corrupt);
            }
            if rule.loss > 0.0 && self.rng.unit_f64() < rule.loss {
                return TxFate::Drop(DropCause::Loss);
            }
            if rule.duplicate > 0.0 && self.rng.unit_f64() < rule.duplicate {
                // The copy trails the original by a draw from the reorder
                // window (a duplicated datagram rarely arrives back-to-back).
                let lag = self.rng.below(rule.reorder_window.as_ns().max(1));
                duplicate = Some(SimDuration::from_ns(lag));
            }
            if rule.reorder > 0.0 && self.rng.unit_f64() < rule.reorder {
                delay += SimDuration::from_ns(self.rng.below(rule.reorder_window.as_ns().max(1)));
            }
        }
        TxFate::Deliver { delay, duplicate }
    }

    /// If `node` is stalled at `at`, the time its handler becomes
    /// available again (the latest covering window's end).
    pub(crate) fn stall_release(&self, node: usize, at: VirtualTime) -> Option<VirtualTime> {
        self.plan
            .stalls
            .iter()
            .filter(|s| s.node == node && at >= s.from && at < s.until)
            .map(|s| s.until)
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn injector(plan: FaultPlan, seed: u64) -> FaultInjector {
        FaultInjector::new(SimRng::seed_from(seed), plan)
    }

    #[test]
    fn empty_plan_always_delivers_and_draws_nothing() {
        let mut f = injector(FaultPlan::default(), 1);
        for i in 0..100 {
            assert_eq!(
                f.roll(i % 4, (i + 1) % 4, VirtualTime::from_us(i as u64)),
                TxFate::Deliver {
                    delay: SimDuration::ZERO,
                    duplicate: None
                }
            );
        }
        // The RNG was never advanced: it still matches a fresh one.
        assert_eq!(f.rng.next_u64(), SimRng::seed_from(1).next_u64());
    }

    #[test]
    fn plans_are_seed_stable() {
        let plan = FaultPlan::named("storm", 4).unwrap();
        let run = |seed| {
            let mut f = injector(plan.clone(), seed);
            (0..500)
                .map(|i| f.roll(i % 4, (i + 1) % 4, VirtualTime::from_us(50_000 + i as u64)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn asymmetric_loss_spares_the_reverse_path() {
        let plan = FaultPlan::named("asym-loss", 4).unwrap();
        let mut f = injector(plan, 3);
        let mut into_0_drops = 0;
        let mut from_0_drops = 0;
        for _ in 0..2000 {
            if matches!(f.roll(2, 0, VirtualTime::ZERO), TxFate::Drop(_)) {
                into_0_drops += 1;
            }
            if matches!(f.roll(0, 2, VirtualTime::ZERO), TxFate::Drop(_)) {
                from_0_drops += 1;
            }
        }
        assert!((350..650).contains(&into_0_drops), "~25% of 2000");
        assert_eq!(from_0_drops, 0, "reverse path must be clean");
    }

    #[test]
    fn partitions_sever_exactly_the_crossing_links_and_heal() {
        let plan = FaultPlan::named("partition", 4).unwrap();
        let mut f = injector(plan, 1);
        let during = VirtualTime::from_us(60_000);
        let after = VirtualTime::from_us(130_000);
        assert_eq!(f.roll(0, 1, during), TxFate::Drop(DropCause::Partition));
        assert_eq!(f.roll(1, 0, during), TxFate::Drop(DropCause::Partition));
        assert!(matches!(f.roll(0, 2, during), TxFate::Deliver { .. }));
        assert!(matches!(f.roll(0, 1, after), TxFate::Deliver { .. }));
    }

    #[test]
    fn stall_release_covers_only_the_window() {
        let plan = FaultPlan::named("stall", 4).unwrap();
        let f = injector(plan, 1);
        assert_eq!(f.stall_release(1, VirtualTime::from_us(10_000)), None);
        assert_eq!(
            f.stall_release(1, VirtualTime::from_us(50_000)),
            Some(VirtualTime::from_us(140_000))
        );
        assert_eq!(f.stall_release(0, VirtualTime::from_us(50_000)), None);
        assert_eq!(f.stall_release(1, VirtualTime::from_us(140_000)), None);
    }

    #[test]
    fn corruption_and_duplication_roll_per_rule() {
        let plan = FaultPlan::uniform(LinkRule {
            corrupt: 0.5,
            duplicate: 0.5,
            ..LinkRule::default()
        });
        let mut f = injector(plan, 42);
        let mut corrupt = 0;
        let mut dup = 0;
        for _ in 0..1000 {
            match f.roll(0, 1, VirtualTime::ZERO) {
                TxFate::Drop(DropCause::Corrupt) => corrupt += 1,
                TxFate::Deliver {
                    duplicate: Some(_), ..
                } => dup += 1,
                _ => {}
            }
        }
        assert!((400..600).contains(&corrupt), "got {corrupt}");
        // Duplication rolls only on the half that survived corruption.
        assert!((150..350).contains(&dup), "got {dup}");
    }

    #[test]
    fn catalog_names_all_resolve() {
        for name in PLAN_CATALOG {
            let plan = FaultPlan::named(name, 4).expect(name);
            plan.validate();
            assert_eq!(plan.is_empty(), name == "none");
        }
        assert!(FaultPlan::named("no-such-plan", 4).is_none());
        // Single-node clusters clamp the victim in range.
        assert!(FaultPlan::named("stall", 1).is_some());
    }

    #[test]
    fn can_drop_identifies_reliability_requirement() {
        assert!(!FaultPlan::default().can_drop());
        assert!(!FaultPlan::named("dup", 4).unwrap().can_drop());
        assert!(!FaultPlan::named("reorder", 4).unwrap().can_drop());
        assert!(!FaultPlan::named("stall", 4).unwrap().can_drop());
        for lossy in ["loss-10", "asym-loss", "corrupt", "partition", "storm"] {
            assert!(FaultPlan::named(lossy, 4).unwrap().can_drop(), "{lossy}");
        }
    }
}
