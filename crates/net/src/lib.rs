//! Simulated cluster network for the CVM reproduction.
//!
//! The paper ran CVM over UDP/IP on a 155 Mbit/s ATM Gigaswitch connecting
//! eight Alpha nodes, and reports end-to-end costs (ICDCS '97 §4.1):
//!
//! * simple 2-hop lock acquire: **937 µs**
//! * 3-hop lock acquire: **1382 µs**
//! * remote page fault: **≈ 1100 µs** (including 49 µs `mprotect` and
//!   98 µs user-level signal handling)
//! * minimal 8-processor barrier: **2470 µs**
//! * thread switch: **8 µs**
//!
//! This crate models the network portion of those costs: each message costs
//! a fixed software+wire overhead plus a per-byte term, and each *received*
//! message occupies the destination node's protocol handler for a
//! per-message-kind service time. Handler occupancy is serialized per node,
//! which is what makes an 8-node barrier cost ≈ 2.5 ms even though each hop
//! is under 0.5 ms — the master drains seven arrival messages one after
//! another, exactly as the real CVM's request handler did.
//!
//! The crate is generic over the payload type `P`; the DSM layer supplies
//! its protocol messages. See [`NetworkSim`] for the main entry point.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
pub mod fault;
pub mod latency;
pub mod message;
pub mod network;
pub mod parked;
pub mod reliable;
pub mod stats;

pub use fault::{FaultPlan, LinkRule, Partition, StallWindow, PLAN_CATALOG};
pub use latency::{HandlerCosts, LatencyModel};
pub use message::{Message, MsgClass, MsgKind, NodeId};
pub use network::{DeliveryInfo, NetworkSim, ACK_BYTES};
pub use parked::ParkedBytes;
pub use reliable::{AdaptiveRto, DeliveryFailure, LossConfig, LossStats, RtoPolicy};
pub use stats::NetStats;
