//! Reliable delivery over a lossy datagram network.
//!
//! CVM's communication layer consists of "efficient, end-to-end protocols
//! built on top of UDP" — the wire may drop packets, and the runtime
//! recovers with acknowledgements and retransmission. This module supplies
//! that machinery for [`NetworkSim`](crate::NetworkSim): when loss
//! injection is enabled, every protocol message carries a per-(src → dst)
//! sequence number; the receiver acknowledges and deduplicates, and the
//! sender retransmits after a timeout until acknowledged. With loss
//! disabled (the default) none of this machinery runs.
//!
//! Delivery guarantee under loss: **exactly once** to the protocol layer
//! (at-least-once on the wire plus receiver-side dedup), with no ordering
//! guarantee across retransmissions — which the DSM protocol tolerates by
//! construction (requests are idempotent at the protocol layer and
//! replies are matched to outstanding state).

use std::collections::{HashMap, HashSet};

use cvm_sim::{SimDuration, SimRng};

/// Sender-side retransmission configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossConfig {
    /// Probability each transmission (including retransmissions and acks)
    /// is dropped on the wire.
    pub loss_probability: f64,
    /// Retransmission timeout.
    pub rto: SimDuration,
    /// Give up after this many retransmissions (a real system would
    /// declare the peer dead; the simulator panics, surfacing the bug).
    pub max_retries: u32,
}

impl LossConfig {
    /// A typical test configuration: 10% loss, 5 ms RTO.
    pub fn lossy_10pct() -> Self {
        LossConfig {
            loss_probability: 0.10,
            rto: SimDuration::from_ms(5),
            max_retries: 64,
        }
    }
}

/// Per-direction sequence numbering and dedup state.
#[derive(Debug, Default)]
pub struct ReliabilityState {
    /// Next sequence number per (src, dst).
    next_seq: HashMap<(usize, usize), u64>,
    /// Sequences already delivered, per (src, dst).
    delivered: HashMap<(usize, usize), HashSet<u64>>,
    /// RNG deciding drops.
    rng: Option<SimRng>,
    /// Configuration, if loss is enabled.
    config: Option<LossConfig>,
    /// Counters.
    stats: LossStats,
}

/// Observability counters for the reliability layer.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LossStats {
    /// Transmissions dropped by the injected loss.
    pub dropped: u64,
    /// Retransmissions performed.
    pub retransmissions: u64,
    /// Duplicate deliveries suppressed.
    pub duplicates_suppressed: u64,
    /// Acknowledgements sent.
    pub acks_sent: u64,
}

impl ReliabilityState {
    /// Enables loss injection with the given RNG and configuration.
    pub fn enable(&mut self, rng: SimRng, config: LossConfig) {
        assert!(
            (0.0..1.0).contains(&config.loss_probability),
            "loss probability must be in [0, 1)"
        );
        self.rng = Some(rng);
        self.config = Some(config);
    }

    /// True if the reliability machinery is active.
    pub fn enabled(&self) -> bool {
        self.config.is_some()
    }

    /// The active configuration.
    pub fn config(&self) -> Option<LossConfig> {
        self.config
    }

    /// Counters so far.
    pub fn stats(&self) -> LossStats {
        self.stats
    }

    /// Allocates the next sequence number for `src → dst`.
    pub fn next_seq(&mut self, src: usize, dst: usize) -> u64 {
        let e = self.next_seq.entry((src, dst)).or_insert(0);
        let s = *e;
        *e += 1;
        s
    }

    /// Rolls the dice: should this transmission be dropped?
    pub fn should_drop(&mut self) -> bool {
        match (&mut self.rng, &self.config) {
            (Some(rng), Some(cfg)) => {
                let drop = rng.unit_f64() < cfg.loss_probability;
                if drop {
                    self.stats.dropped += 1;
                }
                drop
            }
            _ => false,
        }
    }

    /// Records a delivery attempt; returns `true` if this is the first
    /// time (deliver) or `false` for a duplicate (suppress).
    pub fn first_delivery(&mut self, src: usize, dst: usize, seq: u64) -> bool {
        let fresh = self.delivered.entry((src, dst)).or_default().insert(seq);
        if !fresh {
            self.stats.duplicates_suppressed += 1;
        }
        fresh
    }

    /// Counts a retransmission.
    pub fn count_retransmission(&mut self) {
        self.stats.retransmissions += 1;
    }

    /// Counts an acknowledgement.
    pub fn count_ack(&mut self) {
        self.stats.acks_sent += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_are_per_direction() {
        let mut r = ReliabilityState::default();
        assert_eq!(r.next_seq(0, 1), 0);
        assert_eq!(r.next_seq(0, 1), 1);
        assert_eq!(r.next_seq(1, 0), 0, "reverse direction is independent");
        assert_eq!(r.next_seq(0, 2), 0);
    }

    #[test]
    fn dedup_suppresses_repeats() {
        let mut r = ReliabilityState::default();
        assert!(r.first_delivery(0, 1, 7));
        assert!(!r.first_delivery(0, 1, 7));
        assert!(r.first_delivery(1, 0, 7), "direction matters");
        assert_eq!(r.stats().duplicates_suppressed, 1);
    }

    #[test]
    fn drops_follow_probability_roughly() {
        let mut r = ReliabilityState::default();
        r.enable(SimRng::seed_from(42), LossConfig::lossy_10pct());
        let drops = (0..10_000).filter(|_| r.should_drop()).count();
        assert!((800..1200).contains(&drops), "~10% of 10k, got {drops}");
    }

    #[test]
    fn disabled_never_drops() {
        let mut r = ReliabilityState::default();
        assert!(!r.enabled());
        for _ in 0..100 {
            assert!(!r.should_drop());
        }
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn full_loss_rejected() {
        let mut r = ReliabilityState::default();
        r.enable(
            SimRng::seed_from(1),
            LossConfig {
                loss_probability: 1.0,
                rto: SimDuration::from_ms(1),
                max_retries: 3,
            },
        );
    }
}
