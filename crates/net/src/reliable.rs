//! Reliable delivery over a lossy datagram network.
//!
//! CVM's communication layer consists of "efficient, end-to-end protocols
//! built on top of UDP" — the wire may drop packets, and the runtime
//! recovers with acknowledgements and retransmission. This module supplies
//! that machinery for [`NetworkSim`](crate::NetworkSim): when loss
//! injection is enabled, every protocol message carries a per-(src → dst)
//! sequence number; the receiver acknowledges and deduplicates, and the
//! sender retransmits after a timeout until acknowledged. With loss
//! disabled (the default) none of this machinery runs.
//!
//! Delivery guarantee under loss: **exactly once** to the protocol layer
//! (at-least-once on the wire plus receiver-side dedup), with no ordering
//! guarantee across retransmissions — which the DSM protocol tolerates by
//! construction (requests are idempotent at the protocol layer and
//! replies are matched to outstanding state). When a sender exhausts its
//! retries the message becomes a structured [`DeliveryFailure`] instead of
//! a panic — at that point the guarantee weakens to *at most once* for
//! that message (it is tombstoned so a straggling copy can never be
//! delivered late), and the driver reports the run as degraded.
//!
//! The retransmission timeout is adaptive by default
//! ([`RtoPolicy::Adaptive`]): per-link SRTT/RTTVAR estimation in the style
//! of RFC 6298, exponential backoff across retries, Karn's rule (never
//! sample the RTT of a retransmitted message), and a per-message floor of
//! the round trip it cannot possibly beat (wire + handler + ack wire).
//! [`RtoPolicy::Fixed`] preserves the legacy fixed-timeout behaviour —
//! including its spurious-retransmission bug for messages slower than the
//! timeout — for regression tests and comparison experiments.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use cvm_sim::{SimDuration, SimRng};

use crate::message::{MsgKind, NodeId};

/// How the retransmission timeout is chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RtoPolicy {
    /// The same timeout for every message, with no backoff and no floor.
    /// A message whose delivery takes longer than this is retransmitted
    /// while still in flight.
    Fixed(SimDuration),
    /// RFC 6298-style estimation (see [`AdaptiveRto`]).
    Adaptive(AdaptiveRto),
}

/// Parameters of the adaptive timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveRto {
    /// Timeout before the first RTT sample on a link.
    pub initial: SimDuration,
    /// Lower clamp on the estimated timeout (the per-message wire floor
    /// applies on top of this).
    pub min: SimDuration,
    /// Upper clamp, also the backoff ceiling.
    pub max: SimDuration,
}

impl Default for AdaptiveRto {
    fn default() -> Self {
        AdaptiveRto {
            initial: SimDuration::from_ms(5),
            min: SimDuration::from_us(500),
            max: SimDuration::from_ms(200),
        }
    }
}

/// Sender-side retransmission configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossConfig {
    /// Probability each transmission (including retransmissions and acks)
    /// is dropped on the wire, uniformly across links. Per-link rates come
    /// from a [`FaultPlan`](crate::FaultPlan) instead.
    pub loss_probability: f64,
    /// Retransmission-timeout policy.
    pub rto: RtoPolicy,
    /// Give up after this many retransmissions: the message becomes a
    /// [`DeliveryFailure`] and the run degrades instead of panicking.
    pub max_retries: u32,
}

impl LossConfig {
    /// A typical test configuration: 10% loss, adaptive RTO.
    pub fn lossy_10pct() -> Self {
        LossConfig {
            loss_probability: 0.10,
            rto: RtoPolicy::Adaptive(AdaptiveRto::default()),
            max_retries: 64,
        }
    }

    /// Reliability machinery with no uniform loss — the configuration to
    /// pair with a [`FaultPlan`](crate::FaultPlan), which injects its own.
    pub fn clean_adaptive() -> Self {
        LossConfig {
            loss_probability: 0.0,
            rto: RtoPolicy::Adaptive(AdaptiveRto::default()),
            max_retries: 64,
        }
    }
}

/// A message the reliability layer gave up on: `max_retries`
/// retransmissions went unacknowledged. Surfaced in the RunReport as
/// graceful degradation (the simulated peer is treated as unresponsive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveryFailure {
    /// Sending node.
    pub src: NodeId,
    /// Unresponsive destination node.
    pub dst: NodeId,
    /// Link-level sequence number of the abandoned message.
    pub seq: u64,
    /// Protocol kind of the abandoned message.
    pub kind: MsgKind,
    /// Causal span the abandoned message belonged to (0 = none), so a
    /// degraded run's explain output can still anchor the failure in its
    /// causal chain.
    pub span: u64,
}

/// RFC 6298 smoothed RTT estimation, in integer nanoseconds.
#[derive(Debug, Clone, Copy, Default)]
struct RttEstimator {
    /// Smoothed RTT (ns); 0 = no sample yet.
    srtt: u64,
    /// RTT variance (ns).
    rttvar: u64,
    sampled: bool,
}

impl RttEstimator {
    fn sample(&mut self, rtt: SimDuration) {
        let r = rtt.as_ns();
        if self.sampled {
            // RTTVAR := 3/4 RTTVAR + 1/4 |SRTT - R|, then
            // SRTT := 7/8 SRTT + 1/8 R (integer arithmetic: exact,
            // deterministic, and within a nanosecond of the float form).
            // Saturating: a pathological RTT (storm plans at serve-length
            // runs can stack stall + partition delays) must pin the
            // estimate at the top, not wrap it around to a tiny RTO.
            self.rttvar = self
                .rttvar
                .saturating_mul(3)
                .saturating_add(self.srtt.abs_diff(r))
                / 4;
            self.srtt = self.srtt.saturating_mul(7).saturating_add(r) / 8;
        } else {
            self.srtt = r;
            self.rttvar = r / 2;
            self.sampled = true;
        }
    }

    /// RTO = SRTT + 4·RTTVAR, unclamped (saturating at `u64::MAX` ns; the
    /// policy ceiling clamps it down afterwards).
    fn rto(&self) -> Option<SimDuration> {
        self.sampled
            .then(|| SimDuration::from_ns(self.srtt.saturating_add(self.rttvar.saturating_mul(4))))
    }
}

/// Receiver-side dedup with bounded memory: a cumulative watermark plus a
/// sparse set of out-of-order sequences above it.
///
/// `contiguous` is the count of consecutively-delivered sequences from 0,
/// i.e. every `seq < contiguous` has been seen; `above` holds only the
/// gaps' survivors. In-order traffic keeps `above` empty forever, where
/// the old per-link `HashSet<u64>` grew by one entry per message.
#[derive(Debug, Default)]
struct DedupWindow {
    contiguous: u64,
    above: BTreeSet<u64>,
}

impl DedupWindow {
    /// Records `seq`; returns `true` the first time it is seen.
    fn insert(&mut self, seq: u64) -> bool {
        if seq < self.contiguous || !self.above.insert(seq) {
            return false;
        }
        while self.above.remove(&self.contiguous) {
            self.contiguous += 1;
        }
        true
    }

    fn len_above(&self) -> usize {
        self.above.len()
    }
}

/// Per-direction sequence numbering, dedup and RTT state.
#[derive(Debug, Default)]
pub struct ReliabilityState {
    /// Next sequence number per (src, dst).
    next_seq: HashMap<(usize, usize), u64>,
    /// Delivered-sequence tracking per (src, dst), bounded by the
    /// out-of-order window rather than the message count.
    delivered: HashMap<(usize, usize), DedupWindow>,
    /// Per-link RTT estimators (adaptive RTO).
    rtt: HashMap<(usize, usize), RttEstimator>,
    /// Messages abandoned after `max_retries` (BTreeMap for deterministic
    /// report order), with the causal span each belonged to.
    failed: BTreeMap<(usize, usize, u64), (MsgKind, u64)>,
    /// RNG deciding uniform drops.
    rng: Option<SimRng>,
    /// Configuration, if loss is enabled.
    config: Option<LossConfig>,
    /// Counters.
    stats: LossStats,
}

/// Observability counters for the reliability layer.
///
/// At quiescence `delivered + gave_up == sends`: every logical send either
/// reached the protocol exactly once or was abandoned as a
/// [`DeliveryFailure`] — never both, never neither.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LossStats {
    /// Logical sends entering the reliability layer.
    pub sends: u64,
    /// Messages delivered to the protocol (exactly once each).
    pub delivered: u64,
    /// Messages abandoned after `max_retries` retransmissions.
    pub gave_up: u64,
    /// Data transmissions dropped by uniform loss or a fault-plan loss
    /// rule.
    pub dropped: u64,
    /// Acknowledgement transmissions dropped (previously conflated with
    /// `dropped`, and counted in `acks_sent` even when dropped).
    pub ack_drops: u64,
    /// Transmissions discarded by the receiver's checksum (fault plan).
    pub corrupt_drops: u64,
    /// Transmissions discarded while crossing an active partition.
    pub partition_drops: u64,
    /// Wire duplicates injected by the fault plan.
    pub duplicates_injected: u64,
    /// Transmissions delayed by a reordering rule.
    pub reorders_injected: u64,
    /// Retransmissions performed.
    pub retransmissions: u64,
    /// Duplicate deliveries suppressed by the receiver.
    pub duplicates_suppressed: u64,
    /// Acknowledgements actually transmitted (drops excluded).
    pub acks_sent: u64,
}

impl LossStats {
    /// True if every send was resolved: delivered exactly once or
    /// abandoned, with nothing lost in between.
    pub fn balanced(&self) -> bool {
        self.delivered + self.gave_up == self.sends
    }
}

impl ReliabilityState {
    /// Enables loss injection with the given RNG and configuration.
    pub fn enable(&mut self, rng: SimRng, config: LossConfig) {
        assert!(
            (0.0..1.0).contains(&config.loss_probability),
            "loss probability must be in [0, 1)"
        );
        self.rng = Some(rng);
        self.config = Some(config);
    }

    /// True if the reliability machinery is active.
    pub fn enabled(&self) -> bool {
        self.config.is_some()
    }

    /// The active configuration.
    pub fn config(&self) -> Option<LossConfig> {
        self.config
    }

    /// Counters so far.
    pub fn stats(&self) -> LossStats {
        self.stats
    }

    /// Direct access to the counters (fault-layer bookkeeping).
    pub(crate) fn stats_mut(&mut self) -> &mut LossStats {
        &mut self.stats
    }

    /// Allocates the next sequence number for `src → dst` and counts the
    /// logical send.
    pub fn next_seq(&mut self, src: usize, dst: usize) -> u64 {
        self.stats.sends += 1;
        let e = self.next_seq.entry((src, dst)).or_insert(0);
        let s = *e;
        *e += 1;
        s
    }

    /// Rolls the dice: should this data transmission be dropped by the
    /// uniform loss probability?
    pub fn should_drop(&mut self) -> bool {
        let drop = self.roll_uniform();
        if drop {
            self.stats.dropped += 1;
        }
        drop
    }

    /// Like [`should_drop`](Self::should_drop) but for acknowledgements:
    /// same probability, separate counter.
    pub fn should_drop_ack(&mut self) -> bool {
        let drop = self.roll_uniform();
        if drop {
            self.stats.ack_drops += 1;
        }
        drop
    }

    fn roll_uniform(&mut self) -> bool {
        match (&mut self.rng, &self.config) {
            (Some(rng), Some(cfg)) if cfg.loss_probability > 0.0 => {
                rng.unit_f64() < cfg.loss_probability
            }
            _ => false,
        }
    }

    /// Records an arrival; returns `true` the first time `(src, dst, seq)`
    /// is ever seen and `false` for a duplicate (suppress and re-ack). A
    /// fresh arrival is not yet a delivery — out-of-order messages are held
    /// back until their link gap fills; call [`count_delivered`]
    /// (Self::count_delivered) when the message is actually handed to the
    /// destination handler.
    pub fn first_arrival(&mut self, src: usize, dst: usize, seq: u64) -> bool {
        let fresh = self.delivered.entry((src, dst)).or_default().insert(seq);
        if !fresh {
            self.stats.duplicates_suppressed += 1;
        }
        fresh
    }

    /// Counts one exactly-once delivery to the protocol.
    pub fn count_delivered(&mut self) {
        self.stats.delivered += 1;
    }

    /// True if `(src, dst, seq)` was abandoned at retry exhaustion — a
    /// tombstone that will never arrive, which in-order delivery must skip
    /// over so later sequences on the link are not blocked forever.
    pub fn is_failed(&self, src: usize, dst: usize, seq: u64) -> bool {
        self.failed.contains_key(&(src, dst, seq))
    }

    /// Abandons `src → dst` sequence `seq` after retry exhaustion. The
    /// sequence is tombstoned in the dedup window so a copy still on the
    /// wire can never be delivered late — the failure is final. Returns
    /// `false` if the message had in fact already been delivered (the ack
    /// is merely slow): that is not a failure and is not recorded as one.
    pub fn give_up(&mut self, src: usize, dst: usize, seq: u64, kind: MsgKind, span: u64) -> bool {
        let undelivered = self.delivered.entry((src, dst)).or_default().insert(seq);
        if undelivered {
            self.stats.gave_up += 1;
            self.failed.insert((src, dst, seq), (kind, span));
        }
        undelivered
    }

    /// Messages abandoned so far, in deterministic (src, dst, seq) order.
    pub fn delivery_failures(&self) -> Vec<DeliveryFailure> {
        self.failed
            .iter()
            .map(|(&(src, dst, seq), &(kind, span))| DeliveryFailure {
                src: NodeId(src),
                dst: NodeId(dst),
                seq,
                kind,
                span,
            })
            .collect()
    }

    /// Total out-of-order dedup entries held above the watermarks — the
    /// reliability layer's only unbounded-looking state, bounded in
    /// practice by the reorder window, not the message count.
    pub fn dedup_entries(&self) -> usize {
        self.delivered.values().map(DedupWindow::len_above).sum()
    }

    /// Feeds one RTT measurement for `src → dst` into the adaptive
    /// estimator. Callers must respect Karn's rule: only sample messages
    /// that were never retransmitted.
    pub fn sample_rtt(&mut self, src: usize, dst: usize, rtt: SimDuration) {
        self.rtt.entry((src, dst)).or_default().sample(rtt);
    }

    /// The retransmission timeout for the next (re)transmission of a
    /// message on `src → dst` that has been retransmitted `retries` times:
    /// policy estimate, exponentially backed off, clamped, and never below
    /// `floor` (the round trip this particular message cannot beat).
    pub fn rto_for(&self, src: usize, dst: usize, retries: u32, floor: SimDuration) -> SimDuration {
        let cfg = self.config.expect("reliability enabled");
        match cfg.rto {
            // Legacy semantics exactly: no backoff, no floor.
            RtoPolicy::Fixed(rto) => rto,
            RtoPolicy::Adaptive(a) => {
                let base = self
                    .rtt
                    .get(&(src, dst))
                    .and_then(RttEstimator::rto)
                    .unwrap_or(a.initial);
                let backed = SimDuration::from_ns(
                    base.as_ns()
                        .saturating_shl(retries.min(16))
                        .min(a.max.as_ns()),
                );
                SimDuration::from_ns(backed.as_ns().max(a.min.as_ns()).max(floor.as_ns()))
            }
        }
    }

    /// Counts a retransmission.
    pub fn count_retransmission(&mut self) {
        self.stats.retransmissions += 1;
    }

    /// Counts an acknowledgement actually put on the wire.
    pub fn count_ack(&mut self) {
        self.stats.acks_sent += 1;
    }
}

/// `<<` with saturation (backoff can overflow 64 bits long before the
/// clamp applies).
///
/// `u64::checked_shl` is the wrong tool here: it only returns `None` when
/// the *shift amount* is ≥ 64 — a shift that discards set high bits is
/// considered fine and silently returns the truncated value. With a large
/// SRTT and enough retries that truncation can shift every set bit out,
/// producing an RTO of *zero* that the policy then clamps up to `min` —
/// exponential backoff collapsing to the most aggressive timeout exactly
/// when the network is at its worst. True saturation checks the operand's
/// leading zeros instead.
trait SaturatingShl {
    fn saturating_shl(self, rhs: u32) -> u64;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, rhs: u32) -> u64 {
        if self == 0 {
            0
        } else if rhs > self.leading_zeros() {
            u64::MAX
        } else {
            self << rhs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_are_per_direction() {
        let mut r = ReliabilityState::default();
        assert_eq!(r.next_seq(0, 1), 0);
        assert_eq!(r.next_seq(0, 1), 1);
        assert_eq!(r.next_seq(1, 0), 0, "reverse direction is independent");
        assert_eq!(r.next_seq(0, 2), 0);
        assert_eq!(r.stats().sends, 4);
    }

    #[test]
    fn dedup_suppresses_repeats() {
        let mut r = ReliabilityState::default();
        assert!(r.first_arrival(0, 1, 0));
        r.count_delivered();
        assert!(!r.first_arrival(0, 1, 0));
        assert!(r.first_arrival(1, 0, 0), "direction matters");
        r.count_delivered();
        assert_eq!(r.stats().duplicates_suppressed, 1);
        assert_eq!(r.stats().delivered, 2);
    }

    #[test]
    fn dedup_window_memory_stays_bounded_in_order() {
        let mut r = ReliabilityState::default();
        for seq in 0..10_000 {
            assert!(r.first_arrival(0, 1, seq));
        }
        assert_eq!(
            r.dedup_entries(),
            0,
            "in-order delivery must not accumulate dedup state"
        );
        // And the watermark still rejects everything already seen.
        for seq in [0, 1, 4_999, 9_999] {
            assert!(!r.first_arrival(0, 1, seq));
        }
    }

    #[test]
    fn dedup_window_handles_reordering_and_collapses() {
        let mut r = ReliabilityState::default();
        // Deliver 0..100 in a scrambled order with a hole at 50.
        let mut order: Vec<u64> = (0..100).filter(|&s| s != 50).collect();
        order.reverse();
        for seq in order {
            assert!(r.first_arrival(0, 1, seq));
        }
        // 0..=49 collapsed into the watermark once 0 arrived; only the 49
        // sequences above the hole at 50 remain sparse.
        assert_eq!(
            r.dedup_entries(),
            49,
            "only entries above the hole are sparse"
        );
        assert!(r.first_arrival(0, 1, 50), "the hole itself is fresh");
        assert_eq!(r.dedup_entries(), 0, "watermark advanced through the gap");
        assert!(
            !r.first_arrival(0, 1, 73),
            "still remembered below watermark"
        );
    }

    #[test]
    fn drops_follow_probability_roughly() {
        let mut r = ReliabilityState::default();
        r.enable(SimRng::seed_from(42), LossConfig::lossy_10pct());
        let drops = (0..10_000).filter(|_| r.should_drop()).count();
        assert!((800..1200).contains(&drops), "~10% of 10k, got {drops}");
    }

    #[test]
    fn ack_drops_count_separately() {
        let mut r = ReliabilityState::default();
        r.enable(
            SimRng::seed_from(7),
            LossConfig {
                loss_probability: 0.5,
                ..LossConfig::lossy_10pct()
            },
        );
        for _ in 0..100 {
            r.should_drop_ack();
        }
        let s = r.stats();
        assert_eq!(s.dropped, 0, "ack drops must not pollute the data counter");
        assert!((30..70).contains(&s.ack_drops), "got {}", s.ack_drops);
    }

    #[test]
    fn disabled_never_drops() {
        let mut r = ReliabilityState::default();
        assert!(!r.enabled());
        for _ in 0..100 {
            assert!(!r.should_drop());
        }
    }

    #[test]
    fn estimator_follows_rfc_6298() {
        let mut e = RttEstimator::default();
        e.sample(SimDuration::from_us(1000));
        // First sample: SRTT = R, RTTVAR = R/2, RTO = R + 4·R/2 = 3R.
        assert_eq!(e.rto(), Some(SimDuration::from_us(3000)));
        // A stream of identical samples converges the variance toward 0,
        // so the RTO decays toward SRTT.
        for _ in 0..64 {
            e.sample(SimDuration::from_us(1000));
        }
        let rto = e.rto().unwrap();
        assert!(rto >= SimDuration::from_us(1000));
        assert!(rto < SimDuration::from_us(1100), "rto = {rto}");
    }

    #[test]
    fn adaptive_rto_backs_off_and_clamps() {
        let mut r = ReliabilityState::default();
        r.enable(SimRng::seed_from(1), LossConfig::clean_adaptive());
        r.sample_rtt(0, 1, SimDuration::from_ms(2));
        let base = r.rto_for(0, 1, 0, SimDuration::ZERO);
        assert_eq!(base, SimDuration::from_ms(6), "3R on the first sample");
        assert_eq!(r.rto_for(0, 1, 1, SimDuration::ZERO), base * 2);
        assert_eq!(
            r.rto_for(0, 1, 60, SimDuration::ZERO),
            SimDuration::from_ms(200),
            "backoff saturates at the ceiling, even past shift width"
        );
        // Unmeasured links fall back to the initial timeout.
        assert_eq!(
            r.rto_for(2, 3, 0, SimDuration::ZERO),
            SimDuration::from_ms(5)
        );
        // The per-message floor wins when it exceeds the estimate.
        assert_eq!(
            r.rto_for(0, 1, 0, SimDuration::from_ms(50)),
            SimDuration::from_ms(50)
        );
    }

    /// Regression: the old `saturating_shl` was `checked_shl(..).unwrap_or(MAX)`,
    /// which only saturates when the *shift amount* is ≥ 64 — a shift that
    /// discards set high bits silently truncated instead.
    #[test]
    fn saturating_shl_saturates_on_bit_loss_not_just_wide_shifts() {
        assert_eq!(0u64.saturating_shl(1000), 0);
        assert_eq!(1u64.saturating_shl(63), 1 << 63, "exact fit is exact");
        assert_eq!(
            3u64.saturating_shl(62),
            3 << 62,
            "rhs == leading_zeros fits"
        );
        assert_eq!(1u64.saturating_shl(64), u64::MAX, "wide shift saturates");
        // The bug: 2^61 << 16 has rhs < 64, so checked_shl "succeeds" —
        // returning 0 after every set bit is shifted out.
        assert_eq!((1u64 << 61).saturating_shl(16), u64::MAX);
        assert_eq!(u64::MAX.saturating_shl(1), u64::MAX);
    }

    /// Regression: pathological RTT samples (storm fault plans stack stall
    /// and partition delays at serve-length runs) overflowed the estimator's
    /// `7 * srtt` / `srtt + 4 * rttvar` in debug builds.
    #[test]
    fn estimator_survives_pathological_rtts() {
        let mut e = RttEstimator::default();
        e.sample(SimDuration::from_ns(u64::MAX / 2));
        // Second identical sample: 7·SRTT would overflow without saturation.
        e.sample(SimDuration::from_ns(u64::MAX / 2));
        let rto = e.rto().expect("sampled");
        assert!(
            rto.as_ns() > u64::MAX / 4,
            "huge RTTs must pin the estimate high, not wrap: rto = {rto}"
        );
    }

    /// Regression for the end-to-end failure mode: with bit-loss
    /// truncation, a large SRTT at high retry counts shifted to *zero*,
    /// and the min-clamp then produced the most aggressive timeout exactly
    /// when the link was at its worst. Post-fix the backoff saturates and
    /// the ceiling clamp wins.
    #[test]
    fn backoff_of_large_srtt_hits_ceiling_not_floor() {
        let mut r = ReliabilityState::default();
        r.enable(SimRng::seed_from(1), LossConfig::clean_adaptive());
        // One sample: SRTT = R, RTTVAR = R/2, base RTO = 3R = 3·2^61 ns.
        r.sample_rtt(0, 1, SimDuration::from_ns(1 << 61));
        let a = AdaptiveRto::default();
        let rto = r.rto_for(0, 1, 16, SimDuration::ZERO);
        // Pre-fix: 3·2^61 << 16 truncated to 0, clamped *up* to min (500µs).
        assert_eq!(
            rto, a.max,
            "saturated backoff must clamp to the 200 ms ceiling, got {rto}"
        );
    }

    #[test]
    fn fixed_rto_ignores_backoff_and_floor() {
        let mut r = ReliabilityState::default();
        r.enable(
            SimRng::seed_from(1),
            LossConfig {
                loss_probability: 0.0,
                rto: RtoPolicy::Fixed(SimDuration::from_ms(5)),
                max_retries: 8,
            },
        );
        r.sample_rtt(0, 1, SimDuration::from_ms(40));
        assert_eq!(
            r.rto_for(0, 1, 3, SimDuration::from_ms(90)),
            SimDuration::from_ms(5),
            "legacy fixed policy: no estimation, no backoff, no floor"
        );
    }

    #[test]
    fn give_up_tombstones_and_balances() {
        let mut r = ReliabilityState::default();
        let seq = r.next_seq(0, 1);
        assert!(r.give_up(0, 1, seq, MsgKind::DiffReply, 42));
        assert!(
            !r.first_arrival(0, 1, seq),
            "an abandoned message must never be delivered late"
        );
        assert!(r.is_failed(0, 1, seq), "the tombstone is queryable");
        let s = r.stats();
        assert!(s.balanced(), "gave_up resolves the send: {s:?}");
        assert_eq!(s.gave_up, 1);
        assert_eq!(s.delivered, 0);
        assert_eq!(
            r.delivery_failures(),
            vec![DeliveryFailure {
                src: NodeId(0),
                dst: NodeId(1),
                seq,
                kind: MsgKind::DiffReply,
                span: 42,
            }]
        );
    }

    #[test]
    fn give_up_after_delivery_is_not_a_failure() {
        // The retry timer can exhaust while the ack (not the message) is
        // the thing that's slow — the message reached the protocol, so the
        // send resolved as delivered, not abandoned.
        let mut r = ReliabilityState::default();
        let seq = r.next_seq(0, 1);
        assert!(r.first_arrival(0, 1, seq));
        r.count_delivered();
        assert!(!r.give_up(0, 1, seq, MsgKind::LockGrant, 0));
        assert!(
            !r.is_failed(0, 1, seq),
            "no tombstone for a delivered message"
        );
        let s = r.stats();
        assert!(s.balanced(), "{s:?}");
        assert_eq!(s.gave_up, 0);
        assert!(r.delivery_failures().is_empty());
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn full_loss_rejected() {
        let mut r = ReliabilityState::default();
        r.enable(
            SimRng::seed_from(1),
            LossConfig {
                loss_probability: 1.0,
                rto: RtoPolicy::Fixed(SimDuration::from_ms(1)),
                max_retries: 3,
            },
        );
    }
}
