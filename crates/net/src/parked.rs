//! Live/peak gauges of bytes parked inside the network simulator.

/// Live/peak gauge of message bytes *parked* inside the network: sender
/// retransmission copies (attributed to the source node) and received but
/// out-of-order messages held in the reorder buffer (attributed to the
/// destination). These are the network's only unbounded-by-design stores,
/// so their high-water marks are the interesting memory numbers at scale.
#[derive(Debug, Clone)]
pub struct ParkedBytes {
    live: Vec<u64>,
    peak: Vec<u64>,
    live_total: u64,
    peak_total: u64,
}

impl ParkedBytes {
    pub(crate) fn new(nodes: usize) -> Self {
        ParkedBytes {
            live: vec![0; nodes],
            peak: vec![0; nodes],
            live_total: 0,
            peak_total: 0,
        }
    }

    pub(crate) fn park(&mut self, node: usize, bytes: u64) {
        self.live[node] += bytes;
        self.peak[node] = self.peak[node].max(self.live[node]);
        self.live_total += bytes;
        self.peak_total = self.peak_total.max(self.live_total);
    }

    pub(crate) fn unpark(&mut self, node: usize, bytes: u64) {
        self.live[node] -= bytes;
        self.live_total -= bytes;
    }

    /// Per-node high-water marks (bytes).
    pub fn peaks(&self) -> &[u64] {
        &self.peak
    }

    /// Whole-network high-water mark of the total (bytes) — generally
    /// less than the sum of per-node peaks, which need not coincide.
    pub fn peak_total(&self) -> u64 {
        self.peak_total
    }

    /// Bytes currently parked (all nodes).
    pub fn live_total(&self) -> u64 {
        self.live_total
    }
}
