//! Traffic statistics for Table 2 (message counts and bandwidth).

use std::fmt;

use cvm_sim::json::JsonValue;
use cvm_sim::Log2Hist;

use crate::message::{MsgClass, MsgKind};

/// Per-kind message counts and byte totals.
///
/// # Example
///
/// ```
/// use cvm_net::{MsgClass, MsgKind, NetStats};
/// let mut s = NetStats::new();
/// s.record(MsgKind::DiffReply, 1000);
/// s.record(MsgKind::BarrierArrive, 64);
/// assert_eq!(s.class_count(MsgClass::Diff), 1);
/// assert_eq!(s.total_bytes(), 1064);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NetStats {
    counts: [u64; MsgKind::ALL.len()],
    bytes: [u64; MsgKind::ALL.len()],
    msg_size: Log2Hist,
}

fn kind_index(kind: MsgKind) -> usize {
    MsgKind::ALL
        .iter()
        .position(|&k| k == kind)
        .expect("kind present in ALL")
}

impl NetStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sent message.
    pub fn record(&mut self, kind: MsgKind, bytes: usize) {
        let i = kind_index(kind);
        self.counts[i] += 1;
        self.bytes[i] += bytes as u64;
        self.msg_size.record(bytes as u64);
    }

    /// Distribution of on-wire message sizes, in bytes.
    pub fn msg_size(&self) -> &Log2Hist {
        &self.msg_size
    }

    /// Messages of one exact kind.
    pub fn kind_count(&self, kind: MsgKind) -> u64 {
        self.counts[kind_index(kind)]
    }

    /// Bytes of one exact kind.
    pub fn kind_bytes(&self, kind: MsgKind) -> u64 {
        self.bytes[kind_index(kind)]
    }

    /// Messages in a Table 2 class.
    pub fn class_count(&self, class: MsgClass) -> u64 {
        MsgKind::ALL
            .iter()
            .filter(|k| k.class() == class)
            .map(|&k| self.kind_count(k))
            .sum()
    }

    /// Bytes in a Table 2 class.
    pub fn class_bytes(&self, class: MsgClass) -> u64 {
        MsgKind::ALL
            .iter()
            .filter(|k| k.class() == class)
            .map(|&k| self.kind_bytes(k))
            .sum()
    }

    /// All messages.
    pub fn total_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// All bytes (Table 2's "BW Kbytes" column is this divided by 1024).
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Merges another node's statistics into this one.
    pub fn merge(&mut self, other: &NetStats) {
        for i in 0..self.counts.len() {
            self.counts[i] += other.counts[i];
            self.bytes[i] += other.bytes[i];
        }
        self.msg_size.merge(&other.msg_size);
    }

    /// JSON form: per-kind counts/bytes (kinds with traffic only), class
    /// and grand totals, and the message-size distribution summary.
    pub fn to_json(&self) -> JsonValue {
        let mut obj = JsonValue::object();
        let mut kinds = JsonValue::object();
        for &k in &MsgKind::ALL {
            if self.kind_count(k) == 0 {
                continue;
            }
            let mut row = JsonValue::object();
            row.set("count", self.kind_count(k));
            row.set("bytes", self.kind_bytes(k));
            kinds.set(&format!("{k:?}"), row);
        }
        obj.set("kinds", kinds);
        let mut classes = JsonValue::object();
        for (name, class) in [
            ("barrier", MsgClass::Barrier),
            ("lock", MsgClass::Lock),
            ("diff", MsgClass::Diff),
            ("other", MsgClass::Other),
        ] {
            let mut row = JsonValue::object();
            row.set("count", self.class_count(class));
            row.set("bytes", self.class_bytes(class));
            classes.set(name, row);
        }
        obj.set("classes", classes);
        obj.set("total_count", self.total_count());
        obj.set("total_bytes", self.total_bytes());
        let h = &self.msg_size;
        let mut size = JsonValue::object();
        size.set("unit", "bytes");
        size.set("count", h.count());
        size.set("min", h.min());
        size.set("p50", h.p50());
        size.set("p90", h.p90());
        size.set("p99", h.p99());
        size.set("max", h.max());
        obj.set("msg_size", size);
        obj
    }
}

impl fmt::Display for NetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "msgs: barrier {} lock {} diff {} total {} ({} KB)",
            self.class_count(MsgClass::Barrier),
            self.class_count(MsgClass::Lock),
            self.class_count(MsgClass::Diff),
            self.total_count(),
            self.total_bytes() / 1024,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_are_sums_over_kinds() {
        let mut s = NetStats::new();
        for (i, k) in MsgKind::ALL.into_iter().enumerate() {
            s.record(k, i + 1);
        }
        assert_eq!(s.total_count(), MsgKind::ALL.len() as u64);
        let expect: u64 = (1..=MsgKind::ALL.len() as u64).sum();
        assert_eq!(s.total_bytes(), expect);
    }

    #[test]
    fn class_totals_partition_total() {
        let mut s = NetStats::new();
        for k in MsgKind::ALL {
            s.record(k, 10);
        }
        let sum = s.class_count(MsgClass::Barrier)
            + s.class_count(MsgClass::Lock)
            + s.class_count(MsgClass::Diff)
            + s.class_count(MsgClass::Other);
        assert_eq!(sum, s.total_count());
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = NetStats::new();
        let mut b = NetStats::new();
        a.record(MsgKind::LockGrant, 5);
        b.record(MsgKind::LockGrant, 7);
        b.record(MsgKind::PageReply, 8192);
        a.merge(&b);
        assert_eq!(a.kind_count(MsgKind::LockGrant), 2);
        assert_eq!(a.kind_bytes(MsgKind::LockGrant), 12);
        assert_eq!(a.kind_count(MsgKind::PageReply), 1);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", NetStats::new()).is_empty());
    }

    #[test]
    fn msg_size_histogram_tracks_records() {
        let mut s = NetStats::new();
        s.record(MsgKind::PageReply, 8192);
        s.record(MsgKind::LockGrant, 64);
        assert_eq!(s.msg_size().count(), 2);
        assert_eq!(s.msg_size().max(), 8192);
        let mut other = NetStats::new();
        other.record(MsgKind::DiffReply, 256);
        s.merge(&other);
        assert_eq!(s.msg_size().count(), 3);
    }

    #[test]
    fn json_skips_idle_kinds_and_sums_classes() {
        let mut s = NetStats::new();
        s.record(MsgKind::LockGrant, 100);
        let j = s.to_json();
        let kinds = j.get("kinds").unwrap();
        assert!(kinds.get("LockGrant").is_some());
        assert!(kinds.get("PageRequest").is_none(), "zero kinds omitted");
        assert_eq!(j.get("total_bytes").unwrap().as_u64(), Some(100));
        assert_eq!(
            j.get("classes")
                .unwrap()
                .get("lock")
                .unwrap()
                .get("count")
                .unwrap()
                .as_u64(),
            Some(1)
        );
        assert_eq!(
            j.get("msg_size").unwrap().get("count").unwrap().as_u64(),
            Some(1)
        );
    }
}
