//! Traffic statistics for Table 2 (message counts and bandwidth).

use std::fmt;

use crate::message::{MsgClass, MsgKind};

/// Per-kind message counts and byte totals.
///
/// # Example
///
/// ```
/// use cvm_net::{MsgClass, MsgKind, NetStats};
/// let mut s = NetStats::new();
/// s.record(MsgKind::DiffReply, 1000);
/// s.record(MsgKind::BarrierArrive, 64);
/// assert_eq!(s.class_count(MsgClass::Diff), 1);
/// assert_eq!(s.total_bytes(), 1064);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NetStats {
    counts: [u64; MsgKind::ALL.len()],
    bytes: [u64; MsgKind::ALL.len()],
}

fn kind_index(kind: MsgKind) -> usize {
    MsgKind::ALL
        .iter()
        .position(|&k| k == kind)
        .expect("kind present in ALL")
}

impl NetStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sent message.
    pub fn record(&mut self, kind: MsgKind, bytes: usize) {
        let i = kind_index(kind);
        self.counts[i] += 1;
        self.bytes[i] += bytes as u64;
    }

    /// Messages of one exact kind.
    pub fn kind_count(&self, kind: MsgKind) -> u64 {
        self.counts[kind_index(kind)]
    }

    /// Bytes of one exact kind.
    pub fn kind_bytes(&self, kind: MsgKind) -> u64 {
        self.bytes[kind_index(kind)]
    }

    /// Messages in a Table 2 class.
    pub fn class_count(&self, class: MsgClass) -> u64 {
        MsgKind::ALL
            .iter()
            .filter(|k| k.class() == class)
            .map(|&k| self.kind_count(k))
            .sum()
    }

    /// Bytes in a Table 2 class.
    pub fn class_bytes(&self, class: MsgClass) -> u64 {
        MsgKind::ALL
            .iter()
            .filter(|k| k.class() == class)
            .map(|&k| self.kind_bytes(k))
            .sum()
    }

    /// All messages.
    pub fn total_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// All bytes (Table 2's "BW Kbytes" column is this divided by 1024).
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Merges another node's statistics into this one.
    pub fn merge(&mut self, other: &NetStats) {
        for i in 0..self.counts.len() {
            self.counts[i] += other.counts[i];
            self.bytes[i] += other.bytes[i];
        }
    }
}

impl fmt::Display for NetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "msgs: barrier {} lock {} diff {} total {} ({} KB)",
            self.class_count(MsgClass::Barrier),
            self.class_count(MsgClass::Lock),
            self.class_count(MsgClass::Diff),
            self.total_count(),
            self.total_bytes() / 1024,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_are_sums_over_kinds() {
        let mut s = NetStats::new();
        for (i, k) in MsgKind::ALL.into_iter().enumerate() {
            s.record(k, i + 1);
        }
        assert_eq!(s.total_count(), MsgKind::ALL.len() as u64);
        let expect: u64 = (1..=MsgKind::ALL.len() as u64).sum();
        assert_eq!(s.total_bytes(), expect);
    }

    #[test]
    fn class_totals_partition_total() {
        let mut s = NetStats::new();
        for k in MsgKind::ALL {
            s.record(k, 10);
        }
        let sum = s.class_count(MsgClass::Barrier)
            + s.class_count(MsgClass::Lock)
            + s.class_count(MsgClass::Diff)
            + s.class_count(MsgClass::Other);
        assert_eq!(sum, s.total_count());
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = NetStats::new();
        let mut b = NetStats::new();
        a.record(MsgKind::LockGrant, 5);
        b.record(MsgKind::LockGrant, 7);
        b.record(MsgKind::PageReply, 8192);
        a.merge(&b);
        assert_eq!(a.kind_count(MsgKind::LockGrant), 2);
        assert_eq!(a.kind_bytes(MsgKind::LockGrant), 12);
        assert_eq!(a.kind_count(MsgKind::PageReply), 1);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", NetStats::new()).is_empty());
    }
}
