//! Message and node identity types.

use std::fmt;

/// Identifier of a node (physical processor) in the simulated cluster.
///
/// # Example
///
/// ```
/// use cvm_net::NodeId;
/// let n = NodeId(3);
/// assert_eq!(format!("{n}"), "n3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Wire-level classification of a DSM protocol message.
///
/// The paper's Table 2 groups traffic into *Barrier*, *Lock* and *Diff*
/// messages ("diff messages are used to satisfy remote data requests", so
/// page fetches count there too); [`MsgKind::class`] implements that
/// grouping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MsgKind {
    /// Request for a full copy of a page.
    PageRequest,
    /// Reply carrying a full page.
    PageReply,
    /// Request for diffs of one or more intervals of a page.
    DiffRequest,
    /// Reply carrying diffs.
    DiffReply,
    /// Lock acquire request sent to the lock's static manager.
    LockRequest,
    /// Manager forwarding a request to the lock's last owner.
    LockForward,
    /// Grant from the previous owner to the acquirer (carries write
    /// notices per lazy release consistency).
    LockGrant,
    /// Per-node barrier arrival at the barrier master (aggregated: one per
    /// node regardless of the local thread count).
    BarrierArrive,
    /// Barrier release fan-out from the master (carries write notices).
    BarrierRelease,
    /// Eager-protocol diff push from a writer to the copyset.
    UpdatePush,
    /// Copyset-pruning notification (eager protocol).
    DropCopy,
    /// Home-based protocol: a writer flushing its interval's diff to the
    /// page's home node.
    HomeFlush,
    /// Home-based protocol: a faulting reader asking the home for the
    /// up-to-date page.
    HomeRequest,
    /// Home-based protocol: the home's full-page reply.
    HomeReply,
    /// Reliability-layer acknowledgement (consumed by the messaging
    /// layer, never delivered to the protocol; tracked so ack bandwidth
    /// is accounted like retransmission bandwidth).
    Ack,
    /// Anything else (control, shutdown, diagnostics).
    Other,
}

/// Table 2 message classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MsgClass {
    /// Barrier arrivals and releases.
    Barrier,
    /// Lock requests, forwards and grants.
    Lock,
    /// Remote-data traffic: page and diff requests/replies.
    Diff,
    /// Unclassified.
    Other,
}

impl MsgKind {
    /// The Table 2 class this kind belongs to.
    pub fn class(self) -> MsgClass {
        match self {
            MsgKind::PageRequest
            | MsgKind::PageReply
            | MsgKind::DiffRequest
            | MsgKind::DiffReply
            | MsgKind::UpdatePush
            | MsgKind::HomeFlush
            | MsgKind::HomeRequest
            | MsgKind::HomeReply => MsgClass::Diff,
            MsgKind::DropCopy => MsgClass::Other,
            MsgKind::LockRequest | MsgKind::LockForward | MsgKind::LockGrant => MsgClass::Lock,
            MsgKind::BarrierArrive | MsgKind::BarrierRelease => MsgClass::Barrier,
            MsgKind::Ack | MsgKind::Other => MsgClass::Other,
        }
    }

    /// All kinds, for iteration in stats and tests.
    pub const ALL: [MsgKind; 16] = [
        MsgKind::PageRequest,
        MsgKind::PageReply,
        MsgKind::DiffRequest,
        MsgKind::DiffReply,
        MsgKind::LockRequest,
        MsgKind::LockForward,
        MsgKind::LockGrant,
        MsgKind::BarrierArrive,
        MsgKind::BarrierRelease,
        MsgKind::UpdatePush,
        MsgKind::DropCopy,
        MsgKind::HomeFlush,
        MsgKind::HomeRequest,
        MsgKind::HomeReply,
        MsgKind::Ack,
        MsgKind::Other,
    ];
}

impl fmt::Display for MsgKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A message in flight between two nodes.
///
/// `payload_bytes` is the modelled wire size (headers + body) used for
/// latency and bandwidth accounting; `payload` is the in-memory protocol
/// content delivered to the destination.
#[derive(Debug, Clone)]
pub struct Message<P> {
    /// Sending node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Wire classification.
    pub kind: MsgKind,
    /// Modelled size in bytes.
    pub payload_bytes: usize,
    /// Causal span this message belongs to (0 = none). Packed into the
    /// modelled header's reserved bytes, so it never changes
    /// `payload_bytes`; retransmissions carry the same id, which is how
    /// a receiver links its child spans to the sender's span even when
    /// only a later copy survives the fault plan.
    pub span: u64,
    /// Protocol content.
    pub payload: P,
}

impl<P> Message<P> {
    /// Convenience constructor (no span).
    pub fn new(src: NodeId, dst: NodeId, kind: MsgKind, payload_bytes: usize, payload: P) -> Self {
        Message {
            src,
            dst,
            kind,
            payload_bytes,
            span: 0,
            payload,
        }
    }

    /// Stamps the causal span id onto the message.
    pub fn with_span(mut self, span: u64) -> Self {
        self.span = span;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_partition_kinds() {
        for k in MsgKind::ALL {
            // Every kind maps to exactly one class; just exercise it.
            let _ = k.class();
        }
        assert_eq!(MsgKind::PageReply.class(), MsgClass::Diff);
        assert_eq!(MsgKind::LockForward.class(), MsgClass::Lock);
        assert_eq!(MsgKind::BarrierArrive.class(), MsgClass::Barrier);
        assert_eq!(MsgKind::Other.class(), MsgClass::Other);
    }

    #[test]
    fn message_carries_payload() {
        let m = Message::new(NodeId(0), NodeId(1), MsgKind::Other, 64, "hi");
        assert_eq!(m.payload, "hi");
        assert_eq!(m.payload_bytes, 64);
        assert_eq!(m.span, 0, "span defaults to none");
        let m = m.with_span(7);
        assert_eq!(m.span, 7);
        assert_eq!(m.payload_bytes, 64, "span rides in reserved header bytes");
    }
}
