//! Benchmark crate for the CVM reproduction.
//!
//! | bench target | regenerates |
//! |---|---|
//! | `micro_latency` | §4.1 primitive costs (also: `harness micro`) |
//! | `paper_tables` | the runs behind Figure 1 / Tables 2–5 and Figure 2 (also: `harness all`) |
//! | `ablation` | the §3 design-choice ablations (also: `harness ablation`) |
//! | `protocol_micro` | throughput of the protocol's data structures |
//!
//! Run everything with `cargo bench --workspace`. The benches print the
//! simulated metrics once per group, then measure the wall-clock cost of
//! regenerating them with the [`timing`] harness (self-contained — the
//! workspace builds offline with no external crates).

#![forbid(unsafe_code)]
/// Shared tiny workloads so bench iterations stay fast.
pub mod workloads {
    use cvm_apps::sor::SorConfig;
    use cvm_apps::water_nsq::WaterNsqConfig;

    /// A SOR configuration small enough to run in tens of milliseconds.
    pub fn sor_tiny() -> SorConfig {
        SorConfig {
            n: 126,
            iters: 4,
            omega: 1.15,
        }
    }

    /// A Water-Nsq configuration small enough for benching.
    pub fn water_tiny() -> WaterNsqConfig {
        WaterNsqConfig {
            n: 125,
            steps: 2,
            dt: 0.002,
            cutoff2: 0.3,
            opt: cvm_apps::water_nsq::WaterNsqOpt::BothOpts,
        }
    }
}

/// A minimal wall-clock benchmarking harness: warm-up, timed samples,
/// median-of-samples reporting. Deliberately tiny — enough to spot
/// order-of-magnitude regressions without external dependencies.
pub mod timing {
    use std::hint::black_box;
    use std::time::{Duration, Instant};

    /// Re-export so benches can `use cvm_bench::timing::black_box`.
    pub use std::hint::black_box as bb;

    /// Number of timed samples per benchmark.
    const SAMPLES: usize = 10;
    /// Target wall-clock time per sample.
    const SAMPLE_TARGET: Duration = Duration::from_millis(100);

    /// Times `f`, printing `name: <median>/iter (n iters/sample)`.
    ///
    /// The closure's return value is passed through [`black_box`] so the
    /// optimizer cannot delete the measured work.
    pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
        // Calibrate: how many iterations fit in one sample?
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (SAMPLE_TARGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as usize;

        // Warm-up sample.
        for _ in 0..iters {
            black_box(f());
        }

        let mut per_iter: Vec<Duration> = (0..SAMPLES)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                start.elapsed() / iters as u32
            })
            .collect();
        per_iter.sort_unstable();
        let median = per_iter[SAMPLES / 2];
        println!("{name}: {} ({iters} iters/sample)", fmt_duration(median));
    }

    fn fmt_duration(d: Duration) -> String {
        let ns = d.as_nanos();
        if ns < 1_000 {
            format!("{ns} ns/iter")
        } else if ns < 1_000_000 {
            format!("{:.2} µs/iter", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            format!("{:.2} ms/iter", ns as f64 / 1e6)
        } else {
            format!("{:.2} s/iter", ns as f64 / 1e9)
        }
    }
}
