//! Criterion benchmark crate for the CVM reproduction.
//!
//! | bench target | regenerates |
//! |---|---|
//! | `micro_latency` | §4.1 primitive costs (also: `harness micro`) |
//! | `paper_tables` | the runs behind Figure 1 / Tables 2–5 and Figure 2 (also: `harness all`) |
//! | `ablation` | the §3 design-choice ablations (also: `harness ablation`) |
//! | `protocol_micro` | throughput of the protocol's data structures |
//!
//! Run everything with `cargo bench --workspace`. The benches print the
//! simulated metrics once per group, then let Criterion measure the
//! wall-clock cost of regenerating them.

/// Shared tiny workloads so bench iterations stay fast.
pub mod workloads {
    use cvm_apps::sor::SorConfig;
    use cvm_apps::water_nsq::WaterNsqConfig;

    /// A SOR configuration small enough to run in tens of milliseconds.
    pub fn sor_tiny() -> SorConfig {
        SorConfig {
            n: 126,
            iters: 4,
            omega: 1.15,
        }
    }

    /// A Water-Nsq configuration small enough for benching.
    pub fn water_tiny() -> WaterNsqConfig {
        WaterNsqConfig {
            n: 125,
            steps: 2,
            dt: 0.002,
            cutoff2: 0.3,
            opt: cvm_apps::water_nsq::WaterNsqOpt::BothOpts,
        }
    }
}
