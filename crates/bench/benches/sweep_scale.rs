//! Sweep-engine scaling: how the `cvm sweep` wall-clock falls as workers
//! are added, with the determinism contract checked along the way — the
//! parallel sweep must emit byte-for-byte the JSON of the serial one.
//!
//! On a single-core host the parallel legs still run (oversubscribed) to
//! exercise the determinism contract; the ≥ 2x speedup gate only arms
//! when the machine actually has ≥ 4 cores.

use std::time::Instant;

use cvm_apps::AppId;
use cvm_harness::sweep::{run_sweep, SweepConfig};

/// A sweep big enough to amortize thread spawn, small enough to iterate.
fn workload(workers: usize) -> SweepConfig {
    SweepConfig {
        apps: vec![AppId::Sor, AppId::Fft, AppId::WaterSp],
        nodes: vec![4, 8],
        threads: vec![1, 2],
        workers,
        ..SweepConfig::default()
    }
}

fn timed(workers: usize) -> (f64, String) {
    let t0 = Instant::now();
    let report = run_sweep(workload(workers));
    (t0.elapsed().as_secs_f64(), report.to_json().to_pretty())
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    println!("sweep_scale: {cores} core(s) available");
    let (serial_s, serial_json) = timed(1);
    println!("sweep_scale/workers=1: {serial_s:.2}s");
    for workers in [2usize, 4] {
        // Oversubscribing a small host is still a valid determinism test;
        // only the speedup expectation needs real cores behind it.
        let (par_s, par_json) = timed(workers);
        let speedup = serial_s / par_s;
        println!("sweep_scale/workers={workers}: {par_s:.2}s ({speedup:.2}x)");
        assert_eq!(
            serial_json, par_json,
            "sweep output changed with {workers} workers"
        );
        if workers == 4 && cores >= 4 {
            assert!(
                speedup >= 2.0,
                "4 workers on {cores} cores only {speedup:.2}x over serial"
            );
        }
    }
}
