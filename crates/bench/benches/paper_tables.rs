//! One bench per paper artifact: measures the cost of regenerating the
//! runs behind Figure 1 and Tables 2–5 (at reduced size so sampling is
//! fast), and prints the simulated headline metrics once per group.
//!
//! The full-size artifacts are produced by the `harness` binary:
//! `cargo run --release -p cvm-harness -- all`.

use cvm_apps::water_nsq::{self, WaterNsqOpt};
use cvm_apps::{build_app, sor, AppId, Scale};
use cvm_bench::timing::bench;
use cvm_bench::workloads;
use cvm_dsm::{CvmBuilder, CvmConfig, RunReport};

fn tiny_run(app: AppId, nodes: usize, threads: usize) -> RunReport {
    // Figure 2 source: memory simulator enabled.
    let mut cfg = CvmConfig::paper(nodes, threads);
    cfg.memsim_enabled = app == AppId::Fft; // keep one memsim case hot
    let mut b = CvmBuilder::new(cfg);
    let body = match app {
        AppId::Sor => sor::build(&mut b, workloads::sor_tiny()),
        AppId::WaterNsq => water_nsq::build(&mut b, workloads::water_tiny()),
        other => build_app(&mut b, other, Scale::Small),
    };
    b.run(body)
}

/// Figure 1 / Table 2 / Table 3 source runs: app × thread level.
fn bench_fig1_tables23() {
    for threads in [1usize, 4] {
        for app in [AppId::Sor, AppId::WaterNsq] {
            bench(&format!("fig1_tables23/{}_{threads}", app.name()), || {
                tiny_run(app, 8, threads)
            });
        }
    }
    let r = tiny_run(AppId::WaterNsq, 8, 4);
    eprintln!(
        "\n[table2/3 sample] Water-Nsq P=8 T=4: {} msgs, {} KB, {} switches, {} diffs",
        r.net.total_count(),
        r.net.total_bytes() / 1024,
        r.stats.thread_switches,
        r.stats.diffs_created
    );
}

/// Figure 2 source: a memsim-enabled run.
fn bench_fig2() {
    bench("fig2/fft_memsim_p4_t2", || tiny_run(AppId::Fft, 4, 2));
    let r = tiny_run(AppId::Fft, 4, 2);
    eprintln!(
        "\n[fig2 sample] FFT P=4 T=2: dcache {} dtlb {} itlb {} misses",
        r.mem.dcache, r.mem.dtlb, r.mem.itlb
    );
}

/// Table 4 source: a 16-processor scalability run.
fn bench_table4() {
    bench("table4/sor_p16_t2", || {
        let mut builder = CvmBuilder::new(CvmConfig::paper(16, 2));
        let body = sor::build(&mut builder, workloads::sor_tiny());
        builder.run(body)
    });
}

/// Table 5 source: the Water-Nsq variants.
fn bench_table5() {
    for (name, opt) in [
        ("noopts", WaterNsqOpt::NoOpts),
        ("bothopts", WaterNsqOpt::BothOpts),
    ] {
        bench(&format!("table5_variants/{name}"), || {
            let mut cfg = workloads::water_tiny();
            cfg.opt = opt;
            let mut builder = CvmBuilder::new(CvmConfig::paper(8, 4));
            let body = water_nsq::build(&mut builder, cfg);
            builder.run(body)
        });
    }
}

fn main() {
    bench_fig1_tables23();
    bench_fig2();
    bench_table4();
    bench_table5();
}
