//! Ablation benches for the design choices DESIGN.md calls out: barrier
//! arrival aggregation and the local-first lock release policy. Each
//! bench pair runs the same workload with the mechanism on and off; the
//! simulated cost difference is printed once, then the regeneration cost
//! is measured.

use cvm_apps::{sor, water_nsq};
use cvm_bench::timing::bench;
use cvm_bench::workloads;
use cvm_dsm::{CvmBuilder, CvmConfig, RunReport};

fn sor_run(aggregate_barriers: bool) -> RunReport {
    let mut cfg = CvmConfig::paper(8, 4);
    cfg.aggregate_barriers = aggregate_barriers;
    let mut b = CvmBuilder::new(cfg);
    let body = sor::build(&mut b, workloads::sor_tiny());
    b.run(body)
}

fn water_run(prefer_local: bool) -> RunReport {
    let mut cfg = CvmConfig::paper(8, 4);
    cfg.prefer_local_lock_waiters = prefer_local;
    let mut b = CvmBuilder::new(cfg);
    let mut w = workloads::water_tiny();
    w.opt = water_nsq::WaterNsqOpt::NoOpts; // the variant with contention
    let body = water_nsq::build(&mut b, w);
    b.run(body)
}

fn bench_barrier_aggregation() {
    let with = sor_run(true);
    let without = sor_run(false);
    eprintln!(
        "\n[ablation] barrier aggregation: {:.1} ms / {} msgs with, \
         {:.1} ms / {} msgs without",
        with.total_ms(),
        with.net.total_count(),
        without.total_ms(),
        without.net.total_count()
    );
    bench("ablation_barrier/aggregated", || sor_run(true));
    bench("ablation_barrier/per_thread", || sor_run(false));
}

fn bench_lock_policy() {
    let with = water_run(true);
    let without = water_run(false);
    eprintln!(
        "\n[ablation] local-first release: {:.1} ms / {} remote locks with, \
         {:.1} ms / {} remote locks without",
        with.total_ms(),
        with.stats.remote_locks,
        without.total_ms(),
        without.stats.remote_locks
    );
    bench("ablation_lock/local_first", || water_run(true));
    bench("ablation_lock/fair", || water_run(false));
}

fn main() {
    bench_barrier_aggregation();
    bench_lock_policy();
}
