//! Microbenchmarks of the protocol's hot data structures: diff creation
//! and application on 8 KB pages, vector-time merges, lock transitions,
//! and the cache simulator's access path.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use cvm_dsm::lock::LockLocal;
use cvm_dsm::page::PageId;
use cvm_dsm::{Diff, VectorTime};
use cvm_memsim::{MemConfig, MemSystem};

const PAGE: usize = 8192;

fn bench_diff(c: &mut Criterion) {
    let mut g = c.benchmark_group("diff");
    g.throughput(Throughput::Bytes(PAGE as u64));

    let twin = vec![0u8; PAGE];
    // Sparse modification: every 64th word (a typical boundary-row diff).
    let mut sparse = twin.clone();
    for w in (0..PAGE / 8).step_by(64) {
        sparse[w * 8] = 0xAB;
    }
    g.bench_function("create_sparse", |b| {
        b.iter(|| Diff::create(PageId(0), black_box(&twin), black_box(&sparse)))
    });

    // Dense modification: half the page (a whole-row rewrite).
    let mut dense = twin.clone();
    for byte in dense.iter_mut().take(PAGE / 2) {
        *byte = 0xCD;
    }
    g.bench_function("create_dense", |b| {
        b.iter(|| Diff::create(PageId(0), black_box(&twin), black_box(&dense)))
    });

    let diff = Diff::create(PageId(0), &twin, &dense);
    g.bench_function("apply_dense", |b| {
        b.iter_batched(
            || twin.clone(),
            |mut page| diff.apply(black_box(&mut page)),
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_vector_time(c: &mut Criterion) {
    let mut g = c.benchmark_group("vector_time");
    for nodes in [8usize, 64] {
        let mut a = VectorTime::new(nodes);
        let mut b2 = VectorTime::new(nodes);
        for i in 0..nodes {
            a.advance(i, (i * 7) as u32);
            b2.advance(i, (i * 5 + 3) as u32);
        }
        g.bench_function(format!("merge_{nodes}"), |bench| {
            bench.iter(|| {
                let mut m = a.clone();
                m.merge(black_box(&b2));
                m
            })
        });
        g.bench_function(format!("covers_{nodes}"), |bench| {
            bench.iter(|| black_box(&a).covers(black_box(&b2)))
        });
    }
    g.finish();
}

fn bench_lock_transitions(c: &mut Criterion) {
    c.bench_function("lock/acquire_release_cached", |b| {
        let mut l = LockLocal {
            cached: true,
            ..Default::default()
        };
        b.iter(|| {
            l.try_acquire(1);
            l.release(1, true)
        })
    });
}

fn bench_memsim(c: &mut Criterion) {
    let mut g = c.benchmark_group("memsim");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("sp2_stream_1k", |b| {
        let mut m = MemSystem::new(MemConfig::sp2());
        let mut addr = 0u64;
        b.iter(|| {
            for _ in 0..1024 {
                addr = addr.wrapping_add(128) & 0xF_FFFF;
                m.data_access(black_box(addr));
            }
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_diff,
    bench_vector_time,
    bench_lock_transitions,
    bench_memsim
);
criterion_main!(benches);
