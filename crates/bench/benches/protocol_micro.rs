//! Microbenchmarks of the protocol's hot data structures: diff creation
//! and application on 8 KB pages, vector-time merges, lock transitions,
//! and the cache simulator's access path.

use cvm_bench::timing::{bb, bench};
use cvm_dsm::lock::LockLocal;
use cvm_dsm::page::PageId;
use cvm_dsm::{Diff, VectorTime};
use cvm_memsim::{MemConfig, MemSystem};

const PAGE: usize = 8192;

fn bench_diff() {
    let twin = vec![0u8; PAGE];
    // Sparse modification: every 64th word (a typical boundary-row diff).
    let mut sparse = twin.clone();
    for w in (0..PAGE / 8).step_by(64) {
        sparse[w * 8] = 0xAB;
    }
    bench("diff/create_sparse", || {
        Diff::create(PageId(0), bb(&twin), bb(&sparse))
    });

    // Dense modification: half the page (a whole-row rewrite).
    let mut dense = twin.clone();
    for byte in dense.iter_mut().take(PAGE / 2) {
        *byte = 0xCD;
    }
    bench("diff/create_dense", || {
        Diff::create(PageId(0), bb(&twin), bb(&dense))
    });

    let diff = Diff::create(PageId(0), &twin, &dense);
    bench("diff/apply_dense", || {
        let mut page = twin.clone();
        diff.apply(bb(&mut page));
        page
    });
}

fn bench_vector_time() {
    for nodes in [8usize, 64] {
        let mut a = VectorTime::new(nodes);
        let mut b2 = VectorTime::new(nodes);
        for i in 0..nodes {
            a.advance(i, (i * 7) as u32);
            b2.advance(i, (i * 5 + 3) as u32);
        }
        bench(&format!("vector_time/merge_{nodes}"), || {
            let mut m = a.clone();
            m.merge(bb(&b2));
            m
        });
        bench(&format!("vector_time/covers_{nodes}"), || {
            bb(&a).covers(bb(&b2))
        });
    }
}

fn bench_lock_transitions() {
    let mut l = LockLocal {
        cached: true,
        ..Default::default()
    };
    bench("lock/acquire_release_cached", || {
        l.try_acquire(1);
        l.release(1, true, 0)
    });
}

fn bench_memsim() {
    let mut m = MemSystem::new(MemConfig::sp2());
    let mut addr = 0u64;
    bench("memsim/sp2_stream_1k", || {
        for _ in 0..1024 {
            addr = addr.wrapping_add(128) & 0xF_FFFF;
            m.data_access(bb(addr));
        }
    });
}

fn main() {
    bench_diff();
    bench_vector_time();
    bench_lock_transitions();
    bench_memsim();
}
