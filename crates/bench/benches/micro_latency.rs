//! §4.1 microbenchmarks: prints the paper-vs-measured cost table once,
//! then benches how fast the simulator reproduces each primitive
//! (thousands of simulated lock acquires / page faults per second).

use criterion::{criterion_group, criterion_main, Criterion};
use cvm_dsm::{CvmBuilder, CvmConfig};
use cvm_harness::micro;

fn print_table_once() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| eprintln!("\n{}", micro::render(&micro::report())));
}

fn bench_lock_rtt(c: &mut Criterion) {
    print_table_once();
    c.bench_function("micro/simulated_2hop_lock_run", |b| {
        b.iter(|| {
            let builder = CvmBuilder::new(CvmConfig::paper(2, 1));
            builder.run(|ctx| {
                ctx.startup_done();
                if ctx.global_id() == 0 {
                    ctx.acquire(1);
                    ctx.release(1);
                }
                ctx.barrier();
            })
        })
    });
}

fn bench_fault_run(c: &mut Criterion) {
    c.bench_function("micro/simulated_page_fault_run", |b| {
        b.iter(|| {
            let mut builder = CvmBuilder::new(CvmConfig::paper(2, 1));
            let v = builder.alloc::<f64>(1024);
            builder.run(move |ctx| {
                if ctx.global_id() == 0 {
                    for i in 0..1024 {
                        v.write(ctx, i, 1.0);
                    }
                }
                ctx.startup_done();
                if ctx.node() == 1 {
                    v.write(ctx, 0, 2.0);
                }
                ctx.barrier();
                if ctx.node() == 0 {
                    let _ = v.read(ctx, 0);
                }
                ctx.barrier();
            })
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_lock_rtt, bench_fault_run
}
criterion_main!(benches);
