//! §4.1 microbenchmarks: prints the paper-vs-measured cost table once,
//! then benches how fast the simulator reproduces each primitive
//! (thousands of simulated lock acquires / page faults per second).

use cvm_bench::timing::bench;
use cvm_dsm::{CvmBuilder, CvmConfig};
use cvm_harness::micro;

fn bench_lock_rtt() {
    bench("micro/simulated_2hop_lock_run", || {
        let builder = CvmBuilder::new(CvmConfig::paper(2, 1));
        builder.run(|ctx| {
            ctx.startup_done();
            if ctx.global_id() == 0 {
                ctx.acquire(1);
                ctx.release(1);
            }
            ctx.barrier();
        })
    });
}

fn bench_fault_run() {
    bench("micro/simulated_page_fault_run", || {
        let mut builder = CvmBuilder::new(CvmConfig::paper(2, 1));
        let v = builder.alloc::<f64>(1024);
        builder.run(move |ctx| {
            if ctx.global_id() == 0 {
                for i in 0..1024 {
                    v.write(ctx, i, 1.0);
                }
            }
            ctx.startup_done();
            if ctx.node() == 1 {
                v.write(ctx, 0, 2.0);
            }
            ctx.barrier();
            if ctx.node() == 0 {
                let _ = v.read(ctx, 0);
            }
            ctx.barrier();
        })
    });
}

fn main() {
    eprintln!("\n{}", micro::render(&micro::report()));
    bench_lock_rtt();
    bench_fault_run();
}
