//! `cvm sweep` — the full configuration cross-product, in parallel.
//!
//! The paper's evaluation is a sweep: seven applications × {4, 8, 16}
//! processors × 1–4 threads per node. This module runs that cross-product
//! on a pool of scoped OS threads ([`cvm_sim::workq`]), aggregates each
//! run's [`RunReport`](cvm_dsm::RunReport) into a [`SweepReport`], and
//! emits:
//!
//! * `BENCH_sweep.json` — one machine-readable summary per configuration,
//!   for the perf trajectory;
//! * markdown tables mirroring the paper's Figure 1 breakdown (compute /
//!   remote-fault / lock / barrier shares), its message-count and
//!   data-volume tables, and speedup-vs-one-thread columns.
//!
//! Determinism: every configuration derives its seed from the master seed
//! with [`workq::seed_split`] (a pure function of the configuration, not
//! of the worker that runs it), and results are keyed by configuration
//! index — so the report is **byte-identical at any worker count**. Host
//! wall-clock is printed to stderr only, never serialized.

use std::fmt::Write as _;
use std::time::Instant;

use cvm_apps::{AppId, Scale};
use cvm_dsm::ProtocolKind;
use cvm_net::MsgClass;
use cvm_sim::json::JsonValue;
use cvm_sim::workq;

use crate::bench::slug;
use crate::runner::{run_app, RunOutcome, RunSpec};

/// Processor counts evaluated by the paper (4, 8, and a virtualized 16).
pub const NODES: [usize; 3] = [4, 8, 16];

/// The sweep report file name.
pub const FILE_NAME: &str = "BENCH_sweep.json";

/// What to sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Problem scale.
    pub scale: Scale,
    /// Applications (paper order).
    pub apps: Vec<AppId>,
    /// Processor counts.
    pub nodes: Vec<usize>,
    /// Threads-per-node levels.
    pub threads: Vec<usize>,
    /// Coherence protocols (an extra cross-product axis; the default
    /// sweeps only the paper's lazy multi-writer protocol).
    pub protocols: Vec<ProtocolKind>,
    /// Worker threads running simulations concurrently (0 = one per
    /// available core).
    pub workers: usize,
    /// Record causal span forests in every cell (off by default so the
    /// golden sweep artifacts stay byte-identical).
    pub spans: bool,
    /// Event-core shards for every cell (`--shards`); any value
    /// produces byte-identical reports.
    pub shards: usize,
    /// Master seed; each configuration splits its own seed off this.
    pub seed: u64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            scale: Scale::Small,
            apps: AppId::ALL.to_vec(),
            nodes: NODES.to_vec(),
            threads: crate::tables::THREADS.to_vec(),
            protocols: vec![ProtocolKind::LazyMultiWriter],
            workers: 0,
            spans: false,
            shards: 1,
            seed: 0x5EED_CAFE,
        }
    }
}

impl SweepConfig {
    /// The configurations this sweep will run, in report order: the full
    /// cross-product minus thread counts an application rejects.
    pub fn specs(&self) -> Vec<RunSpec> {
        let mut specs = Vec::new();
        for &protocol in &self.protocols {
            for &app in &self.apps {
                for &nodes in &self.nodes {
                    for &threads in &self.threads {
                        if !app.supports_threads(threads) {
                            continue;
                        }
                        let mut spec = RunSpec::new(app, self.scale, nodes, threads);
                        spec.protocol = protocol;
                        spec.spans = self.spans;
                        spec.shards = self.shards;
                        spec.seed = workq::seed_split(
                            self.seed,
                            config_salt(protocol, app, nodes, threads),
                        );
                        specs.push(spec);
                    }
                }
            }
        }
        specs
    }

    /// The effective worker count.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism().map_or(1, usize::from)
        }
    }
}

/// A stable per-configuration salt: which worker runs a configuration can
/// never matter, only the configuration itself. The protocol index sits
/// in the high bits so lazy multi-writer (index 0) keeps the exact seeds
/// of the pre-protocol-axis sweeps.
fn config_salt(protocol: ProtocolKind, app: AppId, nodes: usize, threads: usize) -> u64 {
    let proto_idx = ProtocolKind::ALL
        .iter()
        .position(|&p| p == protocol)
        .expect("protocol registered") as u64;
    let app_idx = AppId::ALL
        .iter()
        .position(|&a| a == app)
        .expect("app registered") as u64;
    (proto_idx << 32) | (app_idx << 16) | ((nodes as u64) << 8) | threads as u64
}

/// The aggregated result of one sweep.
#[derive(Debug)]
pub struct SweepReport {
    /// The sweep's configuration.
    pub config: SweepConfig,
    /// One outcome per configuration, in [`SweepConfig::specs`] order.
    pub outcomes: Vec<RunOutcome>,
    /// Host wall-clock of the whole sweep, milliseconds (diagnostic only —
    /// deliberately *not* serialized, so reports stay byte-identical
    /// across machines and worker counts).
    pub host_wall_ms: f64,
}

/// Runs the sweep: every configuration on the worker pool, results in
/// configuration order.
pub fn run_sweep(config: SweepConfig) -> SweepReport {
    let specs = config.specs();
    let workers = config.effective_workers();
    eprintln!(
        "[sweep] {} configurations on {} worker(s)",
        specs.len(),
        workers
    );
    let started = Instant::now();
    let outcomes = workq::run_indexed(workers, specs, |_, spec| {
        let t0 = Instant::now();
        let outcome = run_app(spec);
        eprintln!(
            "[sweep] {} P={} T={} done in {:.2}s host",
            outcome.spec.app,
            outcome.spec.nodes,
            outcome.spec.threads,
            t0.elapsed().as_secs_f64()
        );
        outcome
    });
    let host_wall_ms = started.elapsed().as_secs_f64() * 1e3;
    eprintln!(
        "[sweep] complete: {} runs in {:.2}s host wall-clock",
        outcomes.len(),
        host_wall_ms / 1e3
    );
    SweepReport {
        config,
        outcomes,
        host_wall_ms,
    }
}

impl SweepReport {
    /// The single-thread outcome matching `(protocol, app, nodes)`, the
    /// speedup baseline — `None` when the sweep did not include one
    /// thread. Baselines never cross protocols: each protocol's speedup
    /// is measured against its own one-thread run.
    fn one_thread_base(
        &self,
        protocol: ProtocolKind,
        app: AppId,
        nodes: usize,
    ) -> Option<&RunOutcome> {
        self.outcomes.iter().find(|o| {
            o.spec.protocol == protocol
                && o.spec.app == app
                && o.spec.nodes == nodes
                && o.spec.threads == 1
        })
    }

    /// Speedup of `outcome` over the one-thread run of the same
    /// protocol, application and node count.
    pub fn speedup_vs_one_thread(&self, outcome: &RunOutcome) -> Option<f64> {
        let base =
            self.one_thread_base(outcome.spec.protocol, outcome.spec.app, outcome.spec.nodes)?;
        Some(base.time_ms() / outcome.time_ms())
    }

    /// True when the sweep covers more than the default protocol — the
    /// cue to annotate rows and render the protocol-comparison table.
    fn multi_protocol(&self) -> bool {
        self.config.protocols != [ProtocolKind::LazyMultiWriter]
    }

    /// Row label for `outcome`: the app name, protocol-qualified when
    /// the sweep covers several protocols.
    fn row_label(&self, o: &RunOutcome) -> String {
        if self.multi_protocol() {
            format!("{} [{}]", o.spec.app.name(), o.spec.protocol.slug())
        } else {
            o.spec.app.name().to_owned()
        }
    }

    /// The whole sweep as one JSON document (`BENCH_sweep.json`): the
    /// matrix plus one compact summary per configuration. Host timings are
    /// excluded by design.
    pub fn to_json(&self) -> JsonValue {
        let mut obj = JsonValue::object();
        obj.set("schema", "cvm-sweep");
        obj.set("version", 1u64);
        obj.set("scale", self.config.scale.slug());
        obj.set("seed", self.config.seed);
        let mut nodes = JsonValue::array();
        for &n in &self.config.nodes {
            nodes.push(n);
        }
        obj.set("nodes", nodes);
        let mut threads = JsonValue::array();
        for &t in &self.config.threads {
            threads.push(t);
        }
        obj.set("threads", threads);
        // Only sweeps that use the protocol axis mention it, so the
        // default report stays byte-identical to pre-axis sweeps.
        if self.multi_protocol() {
            let mut protocols = JsonValue::array();
            for &p in &self.config.protocols {
                protocols.push(p.slug());
            }
            obj.set("protocols", protocols);
        }
        let mut configs = JsonValue::array();
        for o in &self.outcomes {
            configs.push(self.outcome_json(o));
        }
        obj.set("configs", configs);
        obj
    }

    /// One configuration's summary row.
    fn outcome_json(&self, o: &RunOutcome) -> JsonValue {
        let r = &o.report;
        let mut row = JsonValue::object();
        row.set("app", slug(o.spec.app));
        if o.spec.protocol != ProtocolKind::LazyMultiWriter {
            row.set("protocol", o.spec.protocol.slug());
        }
        row.set("nodes", o.spec.nodes);
        row.set("threads", o.spec.threads);
        row.set("seed", o.spec.seed);
        row.set("total_ns", r.total_time.as_ns());
        row.set("total_ms", r.total_ms());
        let sum = r.breakdown_sum();
        let mut breakdown = JsonValue::object();
        breakdown.set("user_ns", sum.user.as_ns());
        breakdown.set("barrier_ns", sum.barrier.as_ns());
        breakdown.set("fault_ns", sum.fault.as_ns());
        breakdown.set("lock_ns", sum.lock.as_ns());
        let mut shares = JsonValue::object();
        shares.set("user", r.fraction(|n| n.user));
        shares.set("barrier", r.fraction(|n| n.barrier));
        shares.set("fault", r.fraction(|n| n.fault));
        shares.set("lock", r.fraction(|n| n.lock));
        breakdown.set("shares", shares);
        row.set("breakdown", breakdown);
        let mut msgs = JsonValue::object();
        msgs.set("barrier", r.net.class_count(MsgClass::Barrier));
        msgs.set("lock", r.net.class_count(MsgClass::Lock));
        msgs.set("diff", r.net.class_count(MsgClass::Diff));
        msgs.set("total", r.net.total_count());
        msgs.set("per_node", r.net.total_count() as f64 / o.spec.nodes as f64);
        row.set("msgs", msgs);
        let mut bytes = JsonValue::object();
        bytes.set("barrier", r.net.class_bytes(MsgClass::Barrier));
        bytes.set("lock", r.net.class_bytes(MsgClass::Lock));
        bytes.set("diff", r.net.class_bytes(MsgClass::Diff));
        bytes.set("total", r.net.total_bytes());
        bytes.set("kb", r.net.total_bytes() / 1024);
        row.set("bytes", bytes);
        let mut stats = JsonValue::object();
        stats.set("remote_faults", r.stats.remote_faults);
        stats.set("remote_locks", r.stats.remote_locks);
        stats.set("diffs_created", r.stats.diffs_created);
        stats.set("diffs_used", r.stats.diffs_used);
        stats.set("thread_switches", r.stats.thread_switches);
        stats.set("twins_created", r.stats.twins_created);
        stats.set("barriers_crossed", r.stats.barriers_crossed);
        row.set("stats", stats);
        // Only spans-enabled sweeps mention the forest, so the default
        // golden artifacts stay byte-identical.
        if let Some(spans) = &r.spans {
            row.set("spans", spans.summary_json(r.total_time));
        }
        match self.speedup_vs_one_thread(o) {
            Some(s) => {
                row.set("speedup_vs_1t", s);
            }
            None => {
                row.set("speedup_vs_1t", JsonValue::Null);
            }
        }
        row
    }

    /// Figure 1-style markdown table: per configuration, total time
    /// normalized to the one-thread run of the same (app, nodes), and the
    /// compute / remote-fault / lock / barrier shares of the run.
    pub fn breakdown_table(&self) -> String {
        let mut out = String::from(
            "## Execution-time breakdown (Fig. 1)\n\n\
             | app | P | T | norm. time | compute % | fault % | lock % | barrier % |\n\
             |---|---:|---:|---:|---:|---:|---:|---:|\n",
        );
        for o in &self.outcomes {
            let norm = self
                .one_thread_base(o.spec.protocol, o.spec.app, o.spec.nodes)
                .map_or(1.0, |b| o.time_ms() / b.time_ms());
            let r = &o.report;
            let _ = writeln!(
                out,
                "| {} | {} | {} | {:.3} | {:.1} | {:.1} | {:.1} | {:.1} |",
                self.row_label(o),
                o.spec.nodes,
                o.spec.threads,
                norm,
                r.fraction(|n| n.user) * 100.0,
                r.fraction(|n| n.fault) * 100.0,
                r.fraction(|n| n.lock) * 100.0,
                r.fraction(|n| n.barrier) * 100.0,
            );
        }
        out
    }

    /// Message-count markdown table (the paper's Table 2 counts), with a
    /// per-node column.
    pub fn messages_table(&self) -> String {
        let mut out = String::from(
            "## Message counts\n\n\
             | app | P | T | barrier | lock | diff | total | per node |\n\
             |---|---:|---:|---:|---:|---:|---:|---:|\n",
        );
        for o in &self.outcomes {
            let n = &o.report.net;
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {} | {} | {:.1} |",
                self.row_label(o),
                o.spec.nodes,
                o.spec.threads,
                n.class_count(MsgClass::Barrier),
                n.class_count(MsgClass::Lock),
                n.class_count(MsgClass::Diff),
                n.total_count(),
                n.total_count() as f64 / o.spec.nodes as f64,
            );
        }
        out
    }

    /// Data-volume markdown table (the paper's bandwidth columns).
    pub fn data_table(&self) -> String {
        let mut out = String::from(
            "## Data volume\n\n\
             | app | P | T | diff KB | total KB | KB per node |\n\
             |---|---:|---:|---:|---:|---:|\n",
        );
        for o in &self.outcomes {
            let n = &o.report.net;
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {:.1} |",
                self.row_label(o),
                o.spec.nodes,
                o.spec.threads,
                n.class_bytes(MsgClass::Diff) / 1024,
                n.total_bytes() / 1024,
                n.total_bytes() as f64 / 1024.0 / o.spec.nodes as f64,
            );
        }
        out
    }

    /// Speedup-vs-one-thread markdown table: one row per (app, nodes),
    /// one column per thread level.
    pub fn speedup_table(&self) -> String {
        let mut out = String::from("## Speedup vs 1 thread/node\n\n| app | P |");
        for &t in &self.config.threads {
            let _ = write!(out, " T={t} |");
        }
        out.push('\n');
        out.push_str("|---|---:|");
        for _ in &self.config.threads {
            out.push_str("---:|");
        }
        out.push('\n');
        for &protocol in &self.config.protocols {
            for &app in &self.config.apps {
                for &nodes in &self.config.nodes {
                    let label = if self.multi_protocol() {
                        format!("{} [{}]", app.name(), protocol.slug())
                    } else {
                        app.name().to_owned()
                    };
                    let _ = write!(out, "| {label} | {nodes} |");
                    for &t in &self.config.threads {
                        let cell = self
                            .outcomes
                            .iter()
                            .find(|o| {
                                o.spec.protocol == protocol
                                    && o.spec.app == app
                                    && o.spec.nodes == nodes
                                    && o.spec.threads == t
                            })
                            .and_then(|o| self.speedup_vs_one_thread(o));
                        match cell {
                            Some(s) => {
                                let _ = write!(out, " {s:.2}x |");
                            }
                            None => {
                                let _ = write!(out, " - |");
                            }
                        }
                    }
                    out.push('\n');
                }
            }
        }
        out
    }

    /// Protocol-comparison markdown table: per `(app, nodes, threads)`,
    /// one column group per protocol — messages, data volume and
    /// non-overlapped fault stall. This is where home-based LRC's trade
    /// (fewer messages, more bytes) shows against the homeless lazy
    /// protocol and the eager-update pusher.
    pub fn protocol_table(&self) -> String {
        let mut out = String::from("## Protocol comparison\n\n| app | P | T |");
        for &p in &self.config.protocols {
            let _ = write!(out, " {0} msgs | {0} KB | {0} fault ms |", p.slug());
        }
        out.push('\n');
        out.push_str("|---|---:|---:|");
        for _ in &self.config.protocols {
            out.push_str("---:|---:|---:|");
        }
        out.push('\n');
        for &app in &self.config.apps {
            for &nodes in &self.config.nodes {
                for &threads in &self.config.threads {
                    if !app.supports_threads(threads) {
                        continue;
                    }
                    let _ = write!(out, "| {} | {} | {} |", app.name(), nodes, threads);
                    for &protocol in &self.config.protocols {
                        let o = self.outcomes.iter().find(|o| {
                            o.spec.protocol == protocol
                                && o.spec.app == app
                                && o.spec.nodes == nodes
                                && o.spec.threads == threads
                        });
                        match o {
                            Some(o) => {
                                let _ = write!(
                                    out,
                                    " {} | {} | {:.2} |",
                                    o.report.net.total_count(),
                                    o.report.net.total_bytes() / 1024,
                                    o.report.stats.wait_fault.as_ms_f64(),
                                );
                            }
                            None => out.push_str(" - | - | - |"),
                        }
                    }
                    out.push('\n');
                }
            }
        }
        out
    }

    /// All markdown tables, in presentation order. The protocol
    /// comparison appears only when the sweep actually crossed protocols,
    /// keeping single-protocol output unchanged.
    pub fn render_tables(&self) -> String {
        let mut out = format!(
            "{}\n{}\n{}\n{}",
            self.breakdown_table(),
            self.messages_table(),
            self.data_table(),
            self.speedup_table()
        );
        if self.multi_protocol() {
            out.push('\n');
            out.push_str(&self.protocol_table());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(workers: usize) -> SweepConfig {
        SweepConfig {
            apps: vec![AppId::Sor, AppId::Fft],
            nodes: vec![2],
            threads: vec![1, 2],
            workers,
            ..SweepConfig::default()
        }
    }

    #[test]
    fn specs_skip_unsupported_thread_levels() {
        let cfg = SweepConfig {
            apps: vec![AppId::Ocean],
            nodes: vec![4],
            threads: vec![1, 2, 3, 4],
            ..SweepConfig::default()
        };
        let specs = cfg.specs();
        assert_eq!(specs.len(), 3, "Ocean rejects T=3");
        assert!(specs.iter().all(|s| s.threads != 3));
    }

    #[test]
    fn config_seeds_are_stable_and_distinct() {
        let a = tiny_config(1).specs();
        let b = tiny_config(4).specs();
        assert_eq!(
            a.iter().map(|s| s.seed).collect::<Vec<_>>(),
            b.iter().map(|s| s.seed).collect::<Vec<_>>(),
            "worker count must not shift seeds"
        );
        let mut seeds: Vec<u64> = a.iter().map(|s| s.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), a.len(), "every config gets its own seed");
    }

    #[test]
    fn sweep_json_and_tables_cover_every_config() {
        let report = run_sweep(tiny_config(2));
        assert_eq!(report.outcomes.len(), 4);
        let j = report.to_json();
        assert_eq!(j.get("schema").unwrap().as_str(), Some("cvm-sweep"));
        let configs = j.get("configs").unwrap().as_array().unwrap();
        assert_eq!(configs.len(), 4);
        // One-thread rows have speedup exactly 1; two-thread rows have some
        // finite positive speedup.
        for c in configs {
            let s = c.get("speedup_vs_1t").unwrap().as_f64().unwrap();
            assert!(s > 0.0);
            if c.get("threads").unwrap().as_u64() == Some(1) {
                assert!((s - 1.0).abs() < 1e-12);
            }
        }
        let tables = report.render_tables();
        for needle in ["SOR", "FFT", "compute %", "per node", "T=2"] {
            assert!(tables.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn protocol_axis_keeps_lazy_seeds_and_renders_comparison() {
        let base = tiny_config(1);
        let lazy_seeds: Vec<u64> = base.specs().iter().map(|s| s.seed).collect();
        let mut cfg = tiny_config(1);
        cfg.protocols = ProtocolKind::ALL.to_vec();
        let specs = cfg.specs();
        assert_eq!(specs.len(), 3 * lazy_seeds.len());
        assert_eq!(
            specs[..lazy_seeds.len()]
                .iter()
                .map(|s| s.seed)
                .collect::<Vec<_>>(),
            lazy_seeds,
            "adding protocols must not shift the lazy seeds"
        );
        let report = run_sweep(cfg);
        let tables = report.render_tables();
        assert!(tables.contains("## Protocol comparison"));
        assert!(tables.contains("[home-lazy]"));
        let j = report.to_json();
        assert!(j.get("protocols").is_some(), "protocol axis is recorded");
        // Single-protocol sweeps must not mention the axis at all.
        let plain = run_sweep(tiny_config(1));
        assert!(plain.to_json().get("protocols").is_none());
        assert!(!plain.render_tables().contains("Protocol comparison"));
    }

    #[test]
    fn sweep_reports_match_across_worker_counts() {
        let serial = run_sweep(tiny_config(1));
        let parallel = run_sweep(tiny_config(3));
        assert_eq!(
            serial.to_json().to_pretty(),
            parallel.to_json().to_pretty(),
            "sweep JSON must be byte-identical at any worker count"
        );
    }
}
