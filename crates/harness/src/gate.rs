//! Regression gate: numeric comparison of two benchmark artifacts.
//!
//! `cvm bench --baseline FILE [--current FILE] --gate PCT` walks the two
//! JSON documents together and compares every numeric leaf. A leaf whose
//! relative change exceeds the gate percentage is a **warning**; one
//! that exceeds *twice* the gate **fails** the gate (exit 1). The walk
//! is schema-agnostic — it handles `BENCH_<app>.json`,
//! `BENCH_sweep.json`, `BENCH_faults.json` and `BENCH_obs.json` alike —
//! so blessing an intentional change is just committing a new baseline.
//!
//! Array elements are labelled by their identifying key (`app`, `kind`,
//! `plan`, `page`, `lock`) when they carry one, so an offender path
//! reads `apps[sor].spans.agg[lock_acquire].p99_ns` rather than a bare
//! index. A leaf present in the baseline but missing from the current
//! document fails outright (a silently dropped metric is worse than a
//! regressed one); keys new in the current document are ignored, since
//! the report schema is append-only.

use std::fmt;

use cvm_sim::json::JsonValue;

/// How badly one leaf moved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Over the gate: report, keep going.
    Warn,
    /// Over twice the gate, or the leaf vanished: fail the gate.
    Fail,
}

/// One numeric leaf whose change crossed a threshold.
#[derive(Debug, Clone)]
pub struct Offense {
    /// Dotted path to the leaf, array elements labelled where possible.
    pub path: String,
    /// Baseline value.
    pub base: f64,
    /// Current value (`None` when the leaf disappeared).
    pub current: Option<f64>,
    /// Relative change in percent (absolute).
    pub delta_pct: f64,
    /// Warn or fail.
    pub severity: Severity,
}

impl fmt::Display for Offense {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self.severity {
            Severity::Warn => "WARN",
            Severity::Fail => "FAIL",
        };
        match self.current {
            Some(cur) => write!(
                f,
                "{tag} {}: {} -> {} ({:+.1}%)",
                self.path,
                self.base,
                cur,
                // Signed form for display; delta_pct stores the magnitude.
                (cur - self.base) / self.base.abs().max(1.0) * 100.0
            ),
            None => write!(f, "{tag} {}: {} -> missing", self.path, self.base),
        }
    }
}

/// Result of comparing one baseline against one current document.
#[derive(Debug, Clone, Default)]
pub struct GateOutcome {
    /// Numeric leaves compared.
    pub leaves: usize,
    /// Leaves over a threshold, in document order.
    pub offenses: Vec<Offense>,
}

impl GateOutcome {
    /// True when any offense is at [`Severity::Fail`].
    pub fn failed(&self) -> bool {
        self.offenses.iter().any(|o| o.severity == Severity::Fail)
    }

    /// Renders the verdict plus every offense, one per line.
    pub fn render(&self, gate_pct: f64) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for o in &self.offenses {
            let _ = writeln!(out, "{o}");
        }
        let fails = self
            .offenses
            .iter()
            .filter(|o| o.severity == Severity::Fail)
            .count();
        let _ = writeln!(
            out,
            "gate: {} leaves compared, {} warned (> {gate_pct}%), {} failed (> {}%)",
            self.leaves,
            self.offenses.len() - fails,
            fails,
            gate_pct * 2.0
        );
        out
    }
}

/// Compares every numeric leaf of `current` against `base`, flagging
/// relative changes over `gate_pct` percent (fail over `2 * gate_pct`).
pub fn compare(base: &JsonValue, current: &JsonValue, gate_pct: f64) -> GateOutcome {
    let mut out = GateOutcome::default();
    walk(
        base,
        Some(current),
        &mut String::from("$"),
        gate_pct,
        &mut out,
    );
    out
}

/// Numeric view of a leaf, if it is one.
fn as_number(v: &JsonValue) -> Option<f64> {
    match v {
        JsonValue::UInt(n) => Some(*n as f64),
        JsonValue::Int(n) => Some(*n as f64),
        JsonValue::Float(x) => Some(*x),
        _ => None,
    }
}

/// A human label for an array element: the value of its identifying key
/// when it is an object that has one.
fn element_label(v: &JsonValue, index: usize) -> String {
    for key in ["app", "kind", "plan", "name", "page", "lock"] {
        if let Some(id) = v.get(key) {
            if let Some(s) = id.as_str() {
                return s.to_owned();
            }
            if let Some(n) = id.as_u64() {
                return format!("{key}{n}");
            }
        }
    }
    index.to_string()
}

fn walk(
    base: &JsonValue,
    current: Option<&JsonValue>,
    path: &mut String,
    gate_pct: f64,
    out: &mut GateOutcome,
) {
    if let Some(b) = as_number(base) {
        out.leaves += 1;
        let cur = current.and_then(as_number);
        let Some(c) = cur else {
            out.offenses.push(Offense {
                path: path.clone(),
                base: b,
                current: None,
                delta_pct: f64::INFINITY,
                severity: Severity::Fail,
            });
            return;
        };
        // Relative to max(|base|, 1): tiny counters flipping 0 -> 2
        // read as 200%, not infinity, and exact-zero bases divide fine.
        let delta_pct = (c - b).abs() / b.abs().max(1.0) * 100.0;
        if delta_pct > gate_pct {
            out.offenses.push(Offense {
                path: path.clone(),
                base: b,
                current: Some(c),
                delta_pct,
                severity: if delta_pct > gate_pct * 2.0 {
                    Severity::Fail
                } else {
                    Severity::Warn
                },
            });
        }
        return;
    }
    match base {
        JsonValue::Object(pairs) => {
            for (key, bv) in pairs {
                let cv = current.and_then(|c| c.get(key));
                if cv.is_none() && as_number(bv).is_none() && !leafless(bv) {
                    // A whole subtree vanished: flag once, not per leaf.
                    out.offenses.push(Offense {
                        path: format!("{path}.{key}"),
                        base: 0.0,
                        current: None,
                        delta_pct: f64::INFINITY,
                        severity: Severity::Fail,
                    });
                    continue;
                }
                let len = path.len();
                path.push('.');
                path.push_str(key);
                walk(bv, cv, path, gate_pct, out);
                path.truncate(len);
            }
        }
        JsonValue::Array(items) => {
            let empty: &[JsonValue] = &[];
            let cur_items = current.and_then(JsonValue::as_array).unwrap_or(empty);
            for (i, bv) in items.iter().enumerate() {
                let len = path.len();
                path.push('[');
                path.push_str(&element_label(bv, i));
                path.push(']');
                walk(bv, cur_items.get(i), path, gate_pct, out);
                path.truncate(len);
            }
        }
        // Strings, bools and nulls don't gate.
        _ => {}
    }
}

/// True when the subtree contains no numeric leaf at all (nothing for
/// the gate to miss if it disappears).
fn leafless(v: &JsonValue) -> bool {
    match v {
        JsonValue::Object(pairs) => pairs.iter().all(|(_, x)| leafless(x)),
        JsonValue::Array(items) => items.iter().all(leafless),
        JsonValue::UInt(_) | JsonValue::Int(_) | JsonValue::Float(_) => false,
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(text: &str) -> JsonValue {
        JsonValue::parse(text).unwrap()
    }

    #[test]
    fn identical_docs_pass_clean() {
        let d = doc(r#"{"a":1,"b":{"c":[1,2,3]}}"#);
        let out = compare(&d, &d, 5.0);
        assert_eq!(out.leaves, 4);
        assert!(out.offenses.is_empty());
        assert!(!out.failed());
    }

    #[test]
    fn warn_between_gate_and_twice_gate() {
        let base = doc(r#"{"t":100}"#);
        let cur = doc(r#"{"t":107}"#);
        let out = compare(&base, &cur, 5.0);
        assert_eq!(out.offenses.len(), 1);
        assert_eq!(out.offenses[0].severity, Severity::Warn);
        assert!(!out.failed());
    }

    #[test]
    fn fail_beyond_twice_gate() {
        let base = doc(r#"{"t":100}"#);
        let cur = doc(r#"{"t":120}"#);
        let out = compare(&base, &cur, 5.0);
        assert_eq!(out.offenses[0].severity, Severity::Fail);
        assert!(out.failed());
    }

    #[test]
    fn missing_leaf_fails_and_new_keys_are_ignored() {
        let base = doc(r#"{"kept":1,"dropped":2}"#);
        let cur = doc(r#"{"kept":1,"added":3}"#);
        let out = compare(&base, &cur, 5.0);
        assert_eq!(out.offenses.len(), 1);
        assert!(out.offenses[0].path.contains("dropped"));
        assert!(out.failed());
    }

    #[test]
    fn array_elements_are_labelled_by_identity_key() {
        let base = doc(r#"{"apps":[{"app":"sor","t":100}]}"#);
        let cur = doc(r#"{"apps":[{"app":"sor","t":300}]}"#);
        let out = compare(&base, &cur, 5.0);
        assert_eq!(out.offenses[0].path, "$.apps[sor].t");
    }

    #[test]
    fn zero_base_uses_absolute_floor() {
        let base = doc(r#"{"retries":0}"#);
        let cur = doc(r#"{"retries":1}"#);
        let out = compare(&base, &cur, 50.0);
        // 1 vs 0 with floor 1 → 100% → fail at gate 50 (2× = 100 not
        // exceeded), so it lands exactly on warn/fail boundary: 100 > 50
        // warns, 100 > 100 is false → Warn.
        assert_eq!(out.offenses[0].severity, Severity::Warn);
    }

    #[test]
    fn render_summarizes_counts() {
        let base = doc(r#"{"a":100,"b":100}"#);
        let cur = doc(r#"{"a":108,"b":150}"#);
        let text = compare(&base, &cur, 5.0).render(5.0);
        assert!(text.contains("WARN $.a"));
        assert!(text.contains("FAIL $.b"));
        assert!(text.contains("2 leaves compared, 1 warned"));
    }
}
