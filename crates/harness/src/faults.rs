//! `cvm faults` — the fault-injection campaign.
//!
//! Runs every application × protocol × named fault plan (the
//! [`PLAN_CATALOG`] grid) through the full stack with the online
//! invariant oracle armed, and checks on every run that the reliability
//! layer kept its promises:
//!
//! * **exactly-once**: the loss counters balance
//!   (`delivered + gave_up == sends`) and the application's own internal
//!   assertions held (a duplicate grant or lost diff would trip them);
//! * **oracle cleanliness**: zero findings from the protocol oracle;
//! * **graceful degradation**: retry exhaustion surfaces as a degraded
//!   report, never a panic.
//!
//! The campaign emits `BENCH_faults.json` plus markdown degradation
//! tables (slowdown vs the fault-free plan, repair-work totals per
//! plan). Like the sweep, every run's seed is a pure function of its
//! grid coordinates via [`workq::seed_split`], and results are keyed by
//! grid index — the report is **byte-identical at any worker count**.

use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use cvm_apps::{build_app, AppId, Scale};
use cvm_dsm::{CvmBuilder, CvmConfig, FindingSink, ProtocolKind, RunReport};
use cvm_net::{FaultPlan, PLAN_CATALOG};
use cvm_sim::json::JsonValue;
use cvm_sim::workq;

use crate::bench::slug;

/// The campaign report file name.
pub const FILE_NAME: &str = "BENCH_faults.json";

/// What to run: the campaign grid.
#[derive(Debug, Clone)]
pub struct FaultsConfig {
    /// Problem scale.
    pub scale: Scale,
    /// Applications (paper order).
    pub apps: Vec<AppId>,
    /// Coherence protocols.
    pub protocols: Vec<ProtocolKind>,
    /// Named fault plans from [`PLAN_CATALOG`].
    pub plans: Vec<&'static str>,
    /// Processors.
    pub nodes: usize,
    /// Threads per node.
    pub threads: usize,
    /// Worker threads (0 = one per available core).
    pub workers: usize,
    /// Master seed; each grid cell splits its own seed off this.
    pub seed: u64,
}

impl Default for FaultsConfig {
    fn default() -> Self {
        FaultsConfig {
            scale: Scale::Small,
            apps: AppId::ALL.to_vec(),
            protocols: ProtocolKind::ALL.to_vec(),
            plans: PLAN_CATALOG.to_vec(),
            nodes: 4,
            threads: 2,
            workers: 0,
            seed: 0xFA17_5EED,
        }
    }
}

/// One cell of the campaign grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Application under test.
    pub app: AppId,
    /// Coherence protocol.
    pub protocol: ProtocolKind,
    /// Named fault plan.
    pub plan: &'static str,
    /// Processors.
    pub nodes: usize,
    /// Threads per node.
    pub threads: usize,
    /// Problem scale.
    pub scale: Scale,
    /// Seed (split off the campaign master).
    pub seed: u64,
}

impl FaultsConfig {
    /// The grid cells this campaign will run, in report order.
    ///
    /// # Panics
    ///
    /// Panics if a plan name is not in [`PLAN_CATALOG`].
    pub fn specs(&self) -> Vec<FaultSpec> {
        let mut specs = Vec::new();
        for &protocol in &self.protocols {
            for &app in &self.apps {
                for &plan in &self.plans {
                    assert!(
                        PLAN_CATALOG.contains(&plan),
                        "unknown fault plan {plan:?} (see PLAN_CATALOG)"
                    );
                    specs.push(FaultSpec {
                        app,
                        protocol,
                        plan,
                        nodes: self.nodes,
                        threads: self.threads,
                        scale: self.scale,
                        seed: workq::seed_split(self.seed, cell_salt(protocol, app, plan)),
                    });
                }
            }
        }
        specs
    }

    /// The effective worker count.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism().map_or(1, usize::from)
        }
    }
}

/// A stable per-cell salt: only the grid coordinates may matter, never
/// the worker that runs the cell.
fn cell_salt(protocol: ProtocolKind, app: AppId, plan: &str) -> u64 {
    let proto_idx = ProtocolKind::ALL
        .iter()
        .position(|&p| p == protocol)
        .expect("protocol registered") as u64;
    let app_idx = AppId::ALL
        .iter()
        .position(|&a| a == app)
        .expect("app registered") as u64;
    let plan_idx = PLAN_CATALOG
        .iter()
        .position(|&p| p == plan)
        .expect("plan in catalog") as u64;
    (proto_idx << 32) | (app_idx << 16) | plan_idx
}

/// One completed (or aborted) cell.
#[derive(Debug)]
pub struct FaultOutcome {
    /// The cell that produced this run.
    pub spec: FaultSpec,
    /// The run report (`None` when the run panicked).
    pub report: Option<RunReport>,
    /// Panic message, if the run aborted.
    pub panic: Option<String>,
    /// Violations of the campaign's promises (empty = cell passed; a
    /// degraded-but-honest report is *not* a violation).
    pub violations: Vec<String>,
}

impl FaultOutcome {
    /// True when the cell upheld every promise.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// True when the run completed but abandoned traffic at retry
    /// exhaustion.
    pub fn degraded(&self) -> bool {
        self.report.as_ref().is_some_and(RunReport::degraded)
    }
}

/// Runs one cell: the application over the named fault plan, online
/// oracle armed, panics caught and reported as violations.
pub fn run_cell(spec: FaultSpec) -> FaultOutcome {
    let sink = FindingSink::new();
    let run_sink = sink.clone();
    let outcome = catch_unwind(AssertUnwindSafe(move || {
        let mut cfg = CvmConfig::small(spec.nodes, spec.threads);
        cfg.protocol = spec.protocol;
        cfg.seed = spec.seed;
        cfg.verify = true;
        cfg.verify_sink = run_sink;
        cfg.faults = Some(FaultPlan::named(spec.plan, spec.nodes).expect("plan in catalog"));
        let mut builder = CvmBuilder::new(cfg);
        let body = build_app(&mut builder, spec.app, spec.scale);
        builder.run(body)
    }));
    let mut violations = Vec::new();
    let (report, panic) = match outcome {
        Ok(report) => (Some(report), None),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            violations.push(format!("panicked: {msg}"));
            (None, Some(msg))
        }
    };
    if let Some(r) = &report {
        if !r.loss.balanced() {
            violations.push(format!(
                "loss counters unbalanced: {} sent, {} delivered, {} abandoned",
                r.loss.sends, r.loss.delivered, r.loss.gave_up
            ));
        }
        for f in &r.findings {
            violations.push(format!("oracle: {f}"));
        }
    }
    // Findings recorded before a panic still count.
    if panic.is_some() {
        for f in sink.snapshot() {
            violations.push(format!("oracle: {f}"));
        }
    }
    FaultOutcome {
        spec,
        report,
        panic,
        violations,
    }
}

/// The aggregated campaign result.
#[derive(Debug)]
pub struct FaultsReport {
    /// The campaign's configuration.
    pub config: FaultsConfig,
    /// One outcome per grid cell, in [`FaultsConfig::specs`] order.
    pub outcomes: Vec<FaultOutcome>,
    /// Host wall-clock, milliseconds (diagnostic only — never
    /// serialized).
    pub host_wall_ms: f64,
}

/// Runs the campaign on the worker pool, results in grid order.
pub fn run_campaign(config: FaultsConfig) -> FaultsReport {
    let specs = config.specs();
    let workers = config.effective_workers();
    eprintln!("[faults] {} cells on {} worker(s)", specs.len(), workers);
    let started = Instant::now();
    let outcomes = workq::run_indexed(workers, specs, |_, spec| {
        let t0 = Instant::now();
        let outcome = run_cell(spec);
        let status = if !outcome.clean() {
            "VIOLATION"
        } else if outcome.degraded() {
            "degraded"
        } else {
            "ok"
        };
        eprintln!(
            "[faults] {} [{}] plan={} {status} in {:.2}s host",
            spec.app,
            spec.protocol.slug(),
            spec.plan,
            t0.elapsed().as_secs_f64()
        );
        outcome
    });
    let host_wall_ms = started.elapsed().as_secs_f64() * 1e3;
    eprintln!(
        "[faults] complete: {} cells in {:.2}s host wall-clock",
        outcomes.len(),
        host_wall_ms / 1e3
    );
    FaultsReport {
        config,
        outcomes,
        host_wall_ms,
    }
}

impl FaultsReport {
    /// True when every cell upheld every promise.
    pub fn clean(&self) -> bool {
        self.outcomes.iter().all(FaultOutcome::clean)
    }

    /// The fault-free baseline for `(protocol, app)` — the `none` plan's
    /// outcome, when the campaign included it.
    fn baseline(&self, protocol: ProtocolKind, app: AppId) -> Option<&FaultOutcome> {
        self.outcomes
            .iter()
            .find(|o| o.spec.protocol == protocol && o.spec.app == app && o.spec.plan == "none")
    }

    /// The whole campaign as one JSON document (`BENCH_faults.json`).
    /// Host timings are excluded by design.
    pub fn to_json(&self) -> JsonValue {
        let mut obj = JsonValue::object();
        obj.set("schema", "cvm-faults");
        obj.set("version", 1u64);
        obj.set("scale", self.config.scale.slug());
        obj.set("seed", self.config.seed);
        obj.set("nodes", self.config.nodes);
        obj.set("threads", self.config.threads);
        let mut plans = JsonValue::array();
        for &p in &self.config.plans {
            plans.push(p);
        }
        obj.set("plans", plans);
        let mut cells = JsonValue::array();
        for o in &self.outcomes {
            cells.push(self.cell_json(o));
        }
        obj.set("cells", cells);
        obj.set("clean", self.clean());
        obj
    }

    /// One grid cell's summary row.
    fn cell_json(&self, o: &FaultOutcome) -> JsonValue {
        let mut row = JsonValue::object();
        row.set("app", slug(o.spec.app));
        row.set("protocol", o.spec.protocol.slug());
        row.set("plan", o.spec.plan);
        row.set("seed", o.spec.seed);
        if let Some(r) = &o.report {
            row.set("total_ns", r.total_time.as_ns());
            if let Some(b) = self.baseline(o.spec.protocol, o.spec.app) {
                if let Some(base) = &b.report {
                    row.set(
                        "slowdown_vs_none",
                        r.total_time.as_ns() as f64 / base.total_time.as_ns() as f64,
                    );
                }
            }
            let l = &r.loss;
            let mut loss = JsonValue::object();
            loss.set("sends", l.sends);
            loss.set("delivered", l.delivered);
            loss.set("gave_up", l.gave_up);
            loss.set("dropped", l.dropped);
            loss.set("ack_drops", l.ack_drops);
            loss.set("corrupt_drops", l.corrupt_drops);
            loss.set("partition_drops", l.partition_drops);
            loss.set("duplicates_injected", l.duplicates_injected);
            loss.set("reorders_injected", l.reorders_injected);
            loss.set("retransmissions", l.retransmissions);
            loss.set("duplicates_suppressed", l.duplicates_suppressed);
            loss.set("acks_sent", l.acks_sent);
            row.set("loss", loss);
            row.set("degraded", r.degraded());
            if r.degraded() {
                row.set("unfinished_threads", r.unfinished_threads);
                row.set("abandoned", r.failures.len());
            }
        }
        if let Some(p) = &o.panic {
            row.set("panic", p.as_str());
        }
        if !o.violations.is_empty() {
            let mut v = JsonValue::array();
            for s in &o.violations {
                v.push(s.as_str());
            }
            row.set("violations", v);
        }
        row
    }

    /// Slowdown table: per (app, protocol) row, total time under each
    /// plan normalized to the fault-free (`none`) run of the same cell.
    pub fn slowdown_table(&self) -> String {
        let mut out = String::from("## Degradation under faults (slowdown vs fault-free)\n\n");
        out.push_str("| app | protocol |");
        for &p in &self.config.plans {
            let _ = write!(out, " {p} |");
        }
        out.push_str("\n|---|---|");
        for _ in &self.config.plans {
            out.push_str("---:|");
        }
        out.push('\n');
        for &protocol in &self.config.protocols {
            for &app in &self.config.apps {
                let _ = write!(out, "| {} | {} |", app.name(), protocol.slug());
                for &plan in &self.config.plans {
                    let cell = self.outcomes.iter().find(|o| {
                        o.spec.protocol == protocol && o.spec.app == app && o.spec.plan == plan
                    });
                    match cell {
                        Some(o) => match (&o.report, self.baseline(protocol, app)) {
                            (Some(r), Some(b)) => match &b.report {
                                Some(base) => {
                                    let s = r.total_time.as_ns() as f64
                                        / base.total_time.as_ns() as f64;
                                    let mark = if o.degraded() { "†" } else { "" };
                                    let _ = write!(out, " {s:.2}x{mark} |");
                                }
                                None => out.push_str(" ? |"),
                            },
                            (Some(_), None) => out.push_str(" - |"),
                            _ => out.push_str(" panic |"),
                        },
                        None => out.push_str(" - |"),
                    }
                }
                out.push('\n');
            }
        }
        out.push_str("\n† degraded: traffic abandoned at retry exhaustion.\n");
        out
    }

    /// Repair-work table: per plan, the reliability layer's totals summed
    /// over every (app, protocol) cell.
    pub fn repair_table(&self) -> String {
        let mut out = String::from(
            "## Reliability-layer repair work (summed over apps and protocols)\n\n\
             | plan | sends | dropped | ack drops | corrupt | partition | dups injected \
             | dup-kills | reorders | retransmits | abandoned | degraded cells |\n\
             |---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n",
        );
        for &plan in &self.config.plans {
            let mut sums = cvm_net::LossStats::default();
            let mut degraded = 0u64;
            for o in self.outcomes.iter().filter(|o| o.spec.plan == plan) {
                if let Some(r) = &o.report {
                    let l = &r.loss;
                    sums.sends += l.sends;
                    sums.dropped += l.dropped;
                    sums.ack_drops += l.ack_drops;
                    sums.corrupt_drops += l.corrupt_drops;
                    sums.partition_drops += l.partition_drops;
                    sums.duplicates_injected += l.duplicates_injected;
                    sums.duplicates_suppressed += l.duplicates_suppressed;
                    sums.reorders_injected += l.reorders_injected;
                    sums.retransmissions += l.retransmissions;
                    sums.gave_up += l.gave_up;
                    degraded += u64::from(r.degraded());
                }
            }
            let _ = writeln!(
                out,
                "| {plan} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {degraded} |",
                sums.sends,
                sums.dropped,
                sums.ack_drops,
                sums.corrupt_drops,
                sums.partition_drops,
                sums.duplicates_injected,
                sums.duplicates_suppressed,
                sums.reorders_injected,
                sums.retransmissions,
                sums.gave_up,
            );
        }
        out
    }

    /// Violations section — empty string when the campaign is clean.
    pub fn violations_section(&self) -> String {
        if self.clean() {
            return String::new();
        }
        let mut out = String::from("## Violations\n\n");
        for o in self.outcomes.iter().filter(|o| !o.clean()) {
            for v in &o.violations {
                let _ = writeln!(
                    out,
                    "- {} [{}] plan={} seed={:#x}: {v}",
                    o.spec.app,
                    o.spec.protocol.slug(),
                    o.spec.plan,
                    o.spec.seed
                );
            }
        }
        out
    }

    /// All markdown tables, in presentation order.
    pub fn render_tables(&self) -> String {
        let mut out = format!("{}\n{}", self.slowdown_table(), self.repair_table());
        let v = self.violations_section();
        if !v.is_empty() {
            out.push('\n');
            out.push_str(&v);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(workers: usize) -> FaultsConfig {
        FaultsConfig {
            apps: vec![AppId::Sor],
            protocols: vec![ProtocolKind::LazyMultiWriter],
            plans: vec!["none", "loss-10", "dup"],
            nodes: 2,
            threads: 2,
            workers,
            ..FaultsConfig::default()
        }
    }

    #[test]
    fn cell_seeds_are_stable_and_distinct() {
        let a = tiny_config(1).specs();
        let b = tiny_config(4).specs();
        assert_eq!(
            a.iter().map(|s| s.seed).collect::<Vec<_>>(),
            b.iter().map(|s| s.seed).collect::<Vec<_>>(),
            "worker count must not shift seeds"
        );
        let mut seeds: Vec<u64> = a.iter().map(|s| s.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), a.len(), "every cell gets its own seed");
    }

    #[test]
    #[should_panic(expected = "unknown fault plan")]
    fn unknown_plan_rejected() {
        let cfg = FaultsConfig {
            plans: vec!["gremlins"],
            ..tiny_config(1)
        };
        let _ = cfg.specs();
    }

    #[test]
    fn campaign_is_clean_and_reports_repair_work() {
        let report = run_campaign(tiny_config(2));
        assert_eq!(report.outcomes.len(), 3);
        assert!(report.clean(), "{}", report.violations_section());
        let j = report.to_json();
        assert_eq!(j.get("schema").unwrap().as_str(), Some("cvm-faults"));
        assert_eq!(j.get("clean").unwrap().as_bool(), Some(true));
        let cells = j.get("cells").unwrap().as_array().unwrap();
        assert_eq!(cells.len(), 3);
        // The lossy cell did real repair work and still balanced.
        let lossy = cells
            .iter()
            .find(|c| c.get("plan").unwrap().as_str() == Some("loss-10"))
            .unwrap();
        let loss = lossy.get("loss").unwrap();
        assert!(loss.get("dropped").unwrap().as_u64().unwrap() > 0);
        assert!(loss.get("retransmissions").unwrap().as_u64().unwrap() > 0);
        let tables = report.render_tables();
        for needle in ["slowdown vs fault-free", "loss-10", "dup-kills"] {
            assert!(tables.contains(needle), "missing {needle}");
        }
        assert!(!tables.contains("## Violations"));
    }

    #[test]
    fn campaign_reports_match_across_worker_counts() {
        let serial = run_campaign(tiny_config(1));
        let parallel = run_campaign(tiny_config(3));
        assert_eq!(
            serial.to_json().to_pretty(),
            parallel.to_json().to_pretty(),
            "campaign JSON must be byte-identical at any worker count"
        );
    }
}
