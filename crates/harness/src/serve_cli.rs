//! `cvm serve` — the serving-workload command-line front end.
//!
//! The positional argument names a scenario: a builtin
//! ([`ServeScenario::BUILTINS`]) or a path to an INI scenario file
//! (anything containing a path separator or a dot is treated as a path).
//! Flags override the file; the artifact gates against a committed
//! baseline exactly like `cvm bench --baseline`.

use cvm_apps::kv::scenario::ServeScenario;

use crate::cli::{load_json, parse_u64, usage};
use crate::serve::{run_serve, ServeConfig, FILE_NAME};

/// Resolves the positional scenario argument: builtin name or file path.
fn load_scenario(arg: &str) -> ServeScenario {
    if let Some(sc) = ServeScenario::builtin(arg) {
        return sc;
    }
    if !arg.contains('/') && !arg.contains('.') {
        eprintln!(
            "unknown scenario {arg:?}; builtins: {} (or pass a file path)",
            ServeScenario::BUILTINS.join(", ")
        );
        std::process::exit(2);
    }
    let text = std::fs::read_to_string(arg).unwrap_or_else(|e| {
        eprintln!("cannot read {arg}: {e}");
        std::process::exit(1);
    });
    let stem = std::path::Path::new(arg)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or(arg);
    ServeScenario::parse(stem, &text).unwrap_or_else(|e| {
        eprintln!("{arg}: {e}");
        std::process::exit(1);
    })
}

pub(crate) fn run_serve_cmd(args: &[String]) {
    let mut scenario_arg: Option<String> = None;
    let mut workers = 0usize;
    let mut shards = 1usize;
    let mut json = false;
    let mut out_path: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut gate_pct = 5.0f64;
    let mut rate: Option<f64> = None;
    let mut sweep: Option<Vec<f64>> = None;
    let mut cap: Option<u32> = None;
    let mut seed: Option<u64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--out" => out_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--baseline" => baseline = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--gate" => {
                gate_pct = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|p: &f64| *p > 0.0)
                    .unwrap_or_else(|| usage());
            }
            "--workers" => {
                workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--shards" => {
                shards = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&s: &usize| s > 0)
                    .unwrap_or_else(|| usage());
            }
            "--rate" => {
                rate = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|r: &f64| *r > 0.0);
                if rate.is_none() {
                    usage();
                }
            }
            "--sweep" => {
                let list = it.next().map_or_else(|| usage(), String::as_str);
                let rates: Option<Vec<f64>> = list
                    .split(',')
                    .map(|s| s.trim().parse().ok().filter(|r: &f64| *r > 0.0))
                    .collect();
                sweep = rates.filter(|r| !r.is_empty());
                if sweep.is_none() {
                    usage();
                }
            }
            "--cap" => {
                cap = it.next().and_then(|v| v.parse().ok());
                if cap.is_none() {
                    usage();
                }
            }
            "--seed" => {
                seed = it.next().and_then(|v| parse_u64(v));
                if seed.is_none() {
                    usage();
                }
            }
            s if !s.starts_with('-') && scenario_arg.is_none() => {
                scenario_arg = Some(s.to_owned());
            }
            _ => usage(),
        }
    }
    let mut scenario = load_scenario(scenario_arg.as_deref().unwrap_or("session"));
    if let Some(r) = rate {
        scenario.kv.rate_rps = r;
    }
    if let Some(rates) = sweep {
        scenario.sweep = rates;
    }
    if let Some(c) = cap {
        scenario.local_grant_cap = c;
    }
    if let Some(s) = seed {
        scenario.seed = s;
    }
    scenario.kv.validate();

    let report = run_serve(ServeConfig {
        scenario,
        workers,
        shards,
    });
    print!("{}", report.render_summary());
    if json || out_path.is_some() {
        let path = out_path.unwrap_or_else(|| FILE_NAME.to_owned());
        std::fs::write(&path, report.to_json().to_pretty()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("[serve] wrote {path}");
    }
    if let Some(base_path) = &baseline {
        let outcome = crate::gate::compare(&load_json(base_path), &report.to_json(), gate_pct);
        print!("{}", outcome.render(gate_pct));
        if outcome.failed() {
            std::process::exit(1);
        }
    }
}
