//! `cvm serve` — the open-loop serving experiment.
//!
//! Runs the [`cvm_apps::kv`] session store under a declarative
//! [`ServeScenario`]: a single rate, or a saturation ladder (`sweep`)
//! whose cells run concurrently on host worker threads. Each cell reports
//! offered vs. achieved throughput and the request-latency tail
//! (p50/p99/p999) alongside the usual DSM breakdown, and the ladder
//! locates the **knee** — the first offered rate the store fails to keep
//! up with. On this system that knee is a coherence phenomenon, not a CPU
//! one: the generator threads are mostly idle there while lock-lease and
//! page-fault traffic eats the service path (the JSON's per-cell
//! breakdown shows exactly that).
//!
//! Determinism: each cell's seed is split from the scenario seed by its
//! *rate index* ([`workq::seed_split`]), never by the worker that ran it,
//! and results are returned in ladder order — so `BENCH_serve.json` is
//! byte-identical at any `--workers` and any event-core `--shards` count.
//! Host wall-clock goes to stderr only.

use std::fmt::Write as _;
use std::time::Instant;

use cvm_apps::kv::scenario::ServeScenario;
use cvm_apps::kv::{self};
use cvm_dsm::{hist_json, CvmConfig, RunReport};
use cvm_net::MsgClass;
use cvm_sim::json::JsonValue;
use cvm_sim::workq;

/// The serve report file name.
pub const FILE_NAME: &str = "BENCH_serve.json";

/// A cell keeps up when its measured makespan overhangs the arrival
/// window by at most this fraction; the first cell past the threshold is
/// the saturation knee. Overhang is the open-loop saturation signal:
/// every arrival lands inside the window, so a store that keeps up
/// finishes soon after the window closes, while a saturated one is still
/// draining backlog long past it.
pub const KEEPUP_OVERHANG: f64 = 0.25;

/// One serve invocation: the scenario plus host-side execution knobs
/// (which, by construction, never change the artifact's bytes).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// What to run.
    pub scenario: ServeScenario,
    /// Host worker threads for the rate ladder (0 = one per core).
    pub workers: usize,
    /// Event-core shards for every cell; any value produces a
    /// byte-identical report.
    pub shards: usize,
}

impl ServeConfig {
    /// A single-rate config with default execution knobs.
    pub fn new(scenario: ServeScenario) -> Self {
        ServeConfig {
            scenario,
            workers: 0,
            shards: 1,
        }
    }

    /// The offered-rate ladder: the sweep list, or the scenario's base
    /// rate when no sweep was given.
    pub fn rates(&self) -> Vec<f64> {
        if self.scenario.sweep.is_empty() {
            vec![self.scenario.kv.rate_rps]
        } else {
            self.scenario.sweep.clone()
        }
    }
}

/// One rate cell's outcome.
#[derive(Debug, Clone)]
pub struct ServeCell {
    /// Offered arrival rate, requests per virtual second.
    pub rate_rps: f64,
    /// Arrival-window length, virtual milliseconds (scenario echo).
    pub window_ms: u64,
    /// The cell's split seed (a pure function of the rate index).
    pub seed: u64,
    /// Requests served (all arrivals are eventually served).
    pub served: u64,
    /// Final table checksum — must match across topologies and reruns.
    pub table_sum: u64,
    /// The full DSM report for the measured region.
    pub report: RunReport,
}

impl ServeCell {
    /// Achieved service rate: requests over the measured makespan. A
    /// store that keeps up finishes close to the arrival window; one that
    /// saturates overhangs it, and the overhang drops this below the
    /// offered rate.
    pub fn achieved_rps(&self) -> f64 {
        let secs = self.report.total_time.as_ns() as f64 / 1e9;
        if secs > 0.0 {
            self.served as f64 / secs
        } else {
            0.0
        }
    }

    /// Makespan past the end of the arrival window, as a fraction of the
    /// window (0 = finished inside it).
    pub fn overhang(&self) -> f64 {
        let window_ns = self.window_ms as f64 * 1e6;
        (self.report.total_time.as_ns() as f64 - window_ns).max(0.0) / window_ns
    }

    /// True when the cell overhung its window past [`KEEPUP_OVERHANG`].
    pub fn saturated(&self) -> bool {
        self.overhang() > KEEPUP_OVERHANG
    }
}

/// The whole experiment: every ladder cell, in offered-rate order.
#[derive(Debug)]
pub struct ServeReport {
    /// The config that produced this report.
    pub config: ServeConfig,
    /// One cell per ladder rate, in [`ServeConfig::rates`] order.
    pub cells: Vec<ServeCell>,
    /// Host wall-clock, milliseconds (stderr diagnostics only — never
    /// serialized).
    pub host_wall_ms: f64,
}

/// Runs one ladder cell.
fn run_cell(sc: &ServeScenario, shards: usize, idx: usize, rate: f64) -> ServeCell {
    let mut kv_cfg = sc.kv;
    kv_cfg.rate_rps = rate;
    kv_cfg.validate();
    let seed = workq::seed_split(sc.seed, idx as u64);
    let mut dsm = CvmConfig::paper(sc.nodes, sc.threads);
    dsm.seed = seed;
    dsm.shards = shards;
    dsm.local_grant_cap = sc.local_grant_cap;
    let (table_sum, served, report) = kv::serve_of_config(&kv_cfg, dsm);
    ServeCell {
        rate_rps: rate,
        window_ms: kv_cfg.duration_ms,
        seed,
        served,
        table_sum,
        report,
    }
}

/// Runs the scenario's ladder on the worker pool.
pub fn run_serve(config: ServeConfig) -> ServeReport {
    let rates = config.rates();
    let workers = if config.workers > 0 {
        config.workers
    } else {
        std::thread::available_parallelism().map_or(1, usize::from)
    };
    eprintln!(
        "[serve] scenario {:?}: {} rate cell(s) on {} worker(s)",
        config.scenario.name,
        rates.len(),
        workers
    );
    let started = Instant::now();
    let sc = config.scenario.clone();
    let shards = config.shards;
    let jobs: Vec<(usize, f64)> = rates.into_iter().enumerate().collect();
    let cells = workq::run_indexed(workers, jobs, |_, (idx, rate)| {
        let t0 = Instant::now();
        let cell = run_cell(&sc, shards, idx, rate);
        eprintln!(
            "[serve] rate {:.0} rps: {} served in {:.1} virtual ms ({:.2}s host)",
            rate,
            cell.served,
            cell.report.total_ms(),
            t0.elapsed().as_secs_f64()
        );
        cell
    });
    let host_wall_ms = started.elapsed().as_secs_f64() * 1e3;
    ServeReport {
        config,
        cells,
        host_wall_ms,
    }
}

impl ServeReport {
    /// The saturation knee: the first ladder cell that failed to keep up,
    /// if any.
    pub fn knee(&self) -> Option<(usize, &ServeCell)> {
        self.cells.iter().enumerate().find(|(_, c)| c.saturated())
    }

    /// The whole experiment as one JSON document (`BENCH_serve.json`).
    /// Virtual-time numerics only: host timings, worker counts and shard
    /// counts are deliberately excluded so the bytes are identical across
    /// machines, `--workers` and `--shards`.
    pub fn to_json(&self) -> JsonValue {
        let sc = &self.config.scenario;
        let mut obj = JsonValue::object();
        obj.set("schema", "cvm-serve");
        obj.set("version", 1u64);
        let mut scenario = JsonValue::object();
        scenario.set("name", sc.name.as_str());
        scenario.set("keys", sc.kv.keys);
        scenario.set("shards", sc.kv.shards);
        scenario.set("theta", sc.kv.theta);
        scenario.set("write_mix", sc.kv.write_mix);
        scenario.set("service_flops", sc.kv.service_flops);
        scenario.set("duration_ms", sc.kv.duration_ms);
        scenario.set("nodes", sc.nodes);
        scenario.set("threads", sc.threads);
        scenario.set("local_grant_cap", u64::from(sc.local_grant_cap));
        scenario.set("seed", sc.seed);
        obj.set("scenario", scenario);
        let mut cells = JsonValue::array();
        for c in &self.cells {
            cells.push(self.cell_json(c));
        }
        obj.set("cells", cells);
        match self.knee() {
            Some((idx, cell)) => {
                let mut knee = JsonValue::object();
                knee.set("cell", idx as u64);
                knee.set("rate_rps", cell.rate_rps);
                knee.set("achieved_rps", cell.achieved_rps());
                obj.set("knee", knee);
            }
            None => {
                obj.set("knee", JsonValue::Null);
            }
        }
        obj
    }

    /// One ladder cell's JSON row.
    fn cell_json(&self, c: &ServeCell) -> JsonValue {
        let r = &c.report;
        let mut row = JsonValue::object();
        row.set("rate_rps", c.rate_rps);
        row.set("seed", c.seed);
        row.set("served", c.served);
        row.set("table_sum", c.table_sum);
        row.set("total_ms", r.total_ms());
        row.set("achieved_rps", c.achieved_rps());
        row.set("overhang", c.overhang());
        row.set("saturated", c.saturated());
        // The request-latency histogram carries the serving story:
        // p50/p99/p999 in nanoseconds of virtual time.
        row.set("latency", hist_json(&r.hist.request_ns, "ns"));
        let sum = r.breakdown_sum();
        let mut breakdown = JsonValue::object();
        breakdown.set("user_ns", sum.user.as_ns());
        breakdown.set("barrier_ns", sum.barrier.as_ns());
        breakdown.set("fault_ns", sum.fault.as_ns());
        breakdown.set("lock_ns", sum.lock.as_ns());
        breakdown.set("idle_ns", sum.idle.as_ns());
        row.set("breakdown", breakdown);
        let mut msgs = JsonValue::object();
        msgs.set("lock", r.net.class_count(MsgClass::Lock));
        msgs.set("diff", r.net.class_count(MsgClass::Diff));
        msgs.set("total", r.net.total_count());
        row.set("msgs", msgs);
        let mut bytes = JsonValue::object();
        bytes.set("total", r.net.total_bytes());
        row.set("bytes", bytes);
        let mut stats = JsonValue::object();
        stats.set("remote_faults", r.stats.remote_faults);
        stats.set("remote_locks", r.stats.remote_locks);
        row.set("stats", stats);
        row
    }

    /// Markdown summary: one row per ladder cell, plus the knee verdict.
    pub fn render_summary(&self) -> String {
        let mut out = String::from(
            "## Serving: offered vs achieved\n\n\
             | rate rps | served | achieved rps | p50 µs | p99 µs | p999 µs | lock % | fault % | idle % | state |\n\
             |---:|---:|---:|---:|---:|---:|---:|---:|---:|---|\n",
        );
        for c in &self.cells {
            let h = &c.report.hist.request_ns;
            let _ = writeln!(
                out,
                "| {:.0} | {} | {:.0} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} | {} |",
                c.rate_rps,
                c.served,
                c.achieved_rps(),
                h.p50() as f64 / 1e3,
                h.p99() as f64 / 1e3,
                h.p999() as f64 / 1e3,
                c.report.fraction(|n| n.lock) * 100.0,
                c.report.fraction(|n| n.fault) * 100.0,
                c.report.fraction(|n| n.idle) * 100.0,
                if c.saturated() {
                    "SATURATED"
                } else {
                    "keeping up"
                },
            );
        }
        match self.knee() {
            Some((idx, cell)) => {
                let _ = writeln!(
                    out,
                    "\nknee: cell {idx} — offered {:.0} rps, achieved {:.0} rps \
                     (first cell overhanging its arrival window by more than {:.0}%)",
                    cell.rate_rps,
                    cell.achieved_rps(),
                    KEEPUP_OVERHANG * 100.0
                );
            }
            None => out.push_str("\nknee: none — every cell kept up\n"),
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvm_apps::kv::KvConfig;

    /// A host-cheap scenario: small table, short window.
    fn tiny_scenario() -> ServeScenario {
        let mut sc = ServeScenario::builtin("smoke").expect("builtin");
        sc.name = "tiny".into();
        sc.kv = KvConfig {
            keys: 2048,
            shards: 4,
            theta: 0.9,
            write_mix: 0.3,
            rate_rps: 5_000.0,
            duration_ms: 40,
            service_flops: 100,
        };
        sc.nodes = 2;
        sc.threads = 2;
        sc
    }

    #[test]
    fn serve_json_is_identical_across_workers_shards_and_reruns() {
        let base = ServeConfig {
            scenario: tiny_scenario(),
            workers: 1,
            shards: 1,
        };
        let mut fanned = base.clone();
        fanned.workers = 3;
        fanned.shards = 4;
        let a = run_serve(base.clone()).to_json().to_pretty();
        let b = run_serve(fanned).to_json().to_pretty();
        let c = run_serve(base).to_json().to_pretty();
        assert_eq!(a, b, "serve JSON must not depend on --workers/--shards");
        assert_eq!(a, c, "serve JSON must be stable across reruns");
    }

    #[test]
    fn sweep_ladder_finds_a_knee_under_overload() {
        let mut sc = tiny_scenario();
        // A trickle, then an offer far past what lock leases can serve.
        sc.sweep = vec![2_000.0, 400_000.0];
        let report = run_serve(ServeConfig::new(sc));
        assert_eq!(report.cells.len(), 2);
        assert!(
            !report.cells[0].saturated(),
            "a trickle must keep up: achieved {:.0} of {:.0}",
            report.cells[0].achieved_rps(),
            report.cells[0].rate_rps
        );
        let (idx, cell) = report.knee().expect("overload must saturate");
        assert_eq!(idx, 1);
        assert!(cell.achieved_rps() < cell.rate_rps);
        let j = report.to_json();
        assert_eq!(
            j.get("knee")
                .and_then(|k| k.get("cell"))
                .and_then(JsonValue::as_u64),
            Some(1),
            "knee must be serialized"
        );
        let text = report.render_summary();
        assert!(text.contains("SATURATED"), "{text}");
        assert!(text.contains("knee: cell 1"), "{text}");
    }

    #[test]
    fn cell_seeds_follow_rate_index_not_worker() {
        let mut sc = tiny_scenario();
        sc.sweep = vec![1_000.0, 2_000.0];
        let cfg = ServeConfig::new(sc.clone());
        let report = run_serve(cfg);
        for (i, c) in report.cells.iter().enumerate() {
            assert_eq!(c.seed, workq::seed_split(sc.seed, i as u64));
        }
    }

    #[test]
    fn latency_json_carries_the_full_tail() {
        let report = run_serve(ServeConfig::new(tiny_scenario()));
        let j = report.to_json();
        let lat = j
            .get("cells")
            .and_then(JsonValue::as_array)
            .and_then(|c| c.first())
            .and_then(|c| c.get("latency"))
            .expect("cell latency");
        for key in ["p50", "p99", "p999", "count"] {
            assert!(lat.get(key).is_some(), "missing {key}");
        }
    }
}
