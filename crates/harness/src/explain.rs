//! `cvm explain` — render causal span trees from a run report.
//!
//! Consumes the `spans` section of a `cvm run --spans --json FILE`
//! report and answers "where did the time go" interactively: the
//! whole-run critical path first, then indented causal trees — each
//! span with its wire/handler/protocol-wait/backoff split and its
//! per-hop timings, children nested under parents, retransmission
//! bursts as first-class nodes. Three selection modes:
//!
//! * `--slowest N` — the N slowest root spans (default 5),
//! * `--span ID` — one span, with its ancestor chain for context,
//! * `--resource page:17` — every root span about one resource.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use cvm_sim::json::JsonValue;

/// Which spans to render.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mode {
    /// The N slowest root spans.
    Slowest(usize),
    /// One span by id, with its ancestor chain.
    Span(u64),
    /// Every root span whose resource label matches (e.g. `page:17`).
    Resource(String),
}

/// One span row lifted out of the report JSON.
#[derive(Debug, Clone)]
struct Row {
    id: u64,
    parent: u64,
    kind: String,
    node: u64,
    resource: String,
    open_ns: u64,
    closed: bool,
    duration_ns: u64,
    hop_count: u64,
    wire_ns: u64,
    handler_ns: u64,
    wait_ns: u64,
    backoff_ns: u64,
    hops: Vec<Hop>,
}

#[derive(Debug, Clone)]
struct Hop {
    src: u64,
    dst: u64,
    kind: String,
    sent_ns: u64,
    tx_ns: u64,
    arrived_ns: u64,
    serviced_ns: u64,
    retries: u64,
}

/// The loaded forest: rows plus id and child indexes.
struct Forest {
    rows: Vec<Row>,
    by_id: BTreeMap<u64, usize>,
    children: BTreeMap<u64, Vec<u64>>,
}

fn get_u64(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("span record missing numeric '{key}'"))
}

fn get_str(v: &JsonValue, key: &str) -> Result<String, String> {
    Ok(v.get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("span record missing string '{key}'"))?
        .to_owned())
}

impl Forest {
    fn load(spans: &JsonValue) -> Result<Forest, String> {
        let records = spans
            .get("records")
            .and_then(JsonValue::as_array)
            .ok_or("report has no spans.records — was the run made with --spans?")?;
        let mut rows = Vec::with_capacity(records.len());
        let mut by_id = BTreeMap::new();
        let mut children: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for rec in records {
            let seg = rec.get("segments").ok_or("span record missing segments")?;
            let mut hops = Vec::new();
            for h in rec.get("hops").and_then(JsonValue::as_array).unwrap_or(&[]) {
                hops.push(Hop {
                    src: get_u64(h, "src")?,
                    dst: get_u64(h, "dst")?,
                    kind: get_str(h, "kind")?,
                    sent_ns: get_u64(h, "sent_ns")?,
                    tx_ns: get_u64(h, "tx_ns")?,
                    arrived_ns: get_u64(h, "arrived_ns")?,
                    serviced_ns: get_u64(h, "serviced_ns")?,
                    retries: get_u64(h, "retries")?,
                });
            }
            let row = Row {
                id: get_u64(rec, "id")?,
                parent: get_u64(rec, "parent")?,
                kind: get_str(rec, "kind")?,
                node: get_u64(rec, "node")?,
                resource: get_str(rec, "resource")?,
                open_ns: get_u64(rec, "open_ns")?,
                closed: rec.get("closed").and_then(JsonValue::as_bool) == Some(true),
                duration_ns: get_u64(rec, "duration_ns")?,
                hop_count: get_u64(rec, "hop_count")?,
                wire_ns: get_u64(seg, "wire_ns")?,
                handler_ns: get_u64(seg, "handler_ns")?,
                wait_ns: get_u64(seg, "wait_ns")?,
                backoff_ns: get_u64(seg, "backoff_ns")?,
                hops,
            };
            by_id.insert(row.id, rows.len());
            if row.parent != 0 {
                children.entry(row.parent).or_default().push(row.id);
            }
            rows.push(row);
        }
        Ok(Forest {
            rows,
            by_id,
            children,
        })
    }

    fn row(&self, id: u64) -> Option<&Row> {
        self.by_id.get(&id).map(|&i| &self.rows[i])
    }

    /// Root ancestor chain of `id`, outermost first, `id` excluded.
    fn ancestors(&self, id: u64) -> Vec<u64> {
        let mut chain = Vec::new();
        let mut cur = self.row(id).map_or(0, |r| r.parent);
        while cur != 0 {
            chain.push(cur);
            if chain.len() > self.rows.len() {
                break; // Defensive: corrupt parent links must not loop.
            }
            cur = self.row(cur).map_or(0, |r| r.parent);
        }
        chain.reverse();
        chain
    }

    fn render_tree(&self, out: &mut String, id: u64, depth: usize) {
        let Some(r) = self.row(id) else { return };
        let pad = "  ".repeat(depth);
        let state = if r.closed { "" } else { "  [still open]" };
        let hopinfo = match (r.kind.as_str(), r.hop_count) {
            ("lock_acquire", n) if n > 0 => format!("  {n}-hop"),
            ("retransmit", n) if n > 0 => format!("  {n} retries"),
            _ => String::new(),
        };
        let _ = writeln!(
            out,
            "{pad}span {} {} {} node {} @{}: {}{}{}",
            r.id,
            r.kind,
            r.resource,
            r.node,
            fmt_ns(r.open_ns),
            fmt_ns(r.duration_ns),
            hopinfo,
            state,
        );
        let _ = writeln!(
            out,
            "{pad}  = wire {} + handler {} + wait {} + backoff {}",
            fmt_ns(r.wire_ns),
            fmt_ns(r.handler_ns),
            fmt_ns(r.wait_ns),
            fmt_ns(r.backoff_ns),
        );
        for h in &r.hops {
            let retry = if h.retries > 0 {
                format!(
                    "  ({} retries, backoff {})",
                    h.retries,
                    fmt_ns(h.tx_ns - h.sent_ns)
                )
            } else {
                String::new()
            };
            let _ = writeln!(
                out,
                "{pad}  hop {} {}->{} sent @{}: wire {} + handler {}{}",
                h.kind,
                h.src,
                h.dst,
                fmt_ns(h.sent_ns),
                fmt_ns(h.arrived_ns.saturating_sub(h.tx_ns)),
                fmt_ns(h.serviced_ns.saturating_sub(h.arrived_ns)),
                retry,
            );
        }
        if let Some(kids) = self.children.get(&id) {
            for &kid in kids {
                self.render_tree(out, kid, depth + 1);
            }
        }
    }
}

/// Formats nanoseconds with a unit that keeps 3-4 significant digits.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn render_critical_path(out: &mut String, spans: &JsonValue) {
    let Some(cp) = spans.get("critical_path") else {
        return;
    };
    let total = cp.get("total_ns").and_then(JsonValue::as_u64).unwrap_or(0);
    let compute = cp
        .get("compute_ns")
        .and_then(JsonValue::as_u64)
        .unwrap_or(0);
    let _ = writeln!(out, "critical path over {} wall time:", fmt_ns(total));
    let pct = |ns: u64| {
        if total == 0 {
            0.0
        } else {
            ns as f64 / total as f64 * 100.0
        }
    };
    if let Some(JsonValue::Object(kinds)) = cp.get("kinds") {
        for (kind, ns) in kinds {
            let ns = ns.as_u64().unwrap_or(0);
            if ns > 0 {
                let _ = writeln!(out, "  {kind:<14} {:>10}  ({:.1}%)", fmt_ns(ns), pct(ns));
            }
        }
    }
    let _ = writeln!(
        out,
        "  {:<14} {:>10}  ({:.1}%)",
        "compute",
        fmt_ns(compute),
        pct(compute)
    );
}

/// Renders the explanation for one report document.
pub fn explain(report: &JsonValue, mode: &Mode) -> Result<String, String> {
    let spans = report
        .get("spans")
        .ok_or("report has no spans section — re-run with --spans")?;
    let forest = Forest::load(spans)?;
    let mut out = String::new();
    render_critical_path(&mut out, spans);
    let _ = writeln!(out);
    match mode {
        Mode::Slowest(n) => {
            let mut roots: Vec<&Row> = forest.rows.iter().filter(|r| r.parent == 0).collect();
            roots.sort_by(|a, b| b.duration_ns.cmp(&a.duration_ns).then(a.id.cmp(&b.id)));
            roots.truncate(*n);
            if roots.is_empty() {
                let _ = writeln!(out, "no spans recorded");
            } else {
                let _ = writeln!(out, "slowest {} root spans:", roots.len());
            }
            let ids: Vec<u64> = roots.iter().map(|r| r.id).collect();
            for id in ids {
                forest.render_tree(&mut out, id, 0);
                let _ = writeln!(out);
            }
        }
        Mode::Span(id) => {
            if forest.row(*id).is_none() {
                return Err(format!("no span with id {id} in this report"));
            }
            let chain = forest.ancestors(*id);
            for (depth, anc) in chain.iter().enumerate() {
                let r = forest.row(*anc).expect("ancestor ids resolve");
                let pad = "  ".repeat(depth);
                let _ = writeln!(
                    out,
                    "{pad}under span {} {} {} node {} ({})",
                    r.id,
                    r.kind,
                    r.resource,
                    r.node,
                    fmt_ns(r.duration_ns)
                );
            }
            forest.render_tree(&mut out, *id, chain.len());
        }
        Mode::Resource(label) => {
            let ids: Vec<u64> = forest
                .rows
                .iter()
                .filter(|r| r.parent == 0 && r.resource == *label)
                .map(|r| r.id)
                .collect();
            if ids.is_empty() {
                let _ = writeln!(out, "no root spans about {label}");
            } else {
                let _ = writeln!(out, "{} root spans about {label}:", ids.len());
            }
            for id in ids {
                forest.render_tree(&mut out, id, 0);
                let _ = writeln!(out);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvm_apps::{build_app, AppId, Scale};
    use cvm_dsm::{CvmBuilder, CvmConfig};

    fn report_json(app: AppId, nodes: usize) -> JsonValue {
        let mut cfg = CvmConfig::paper(nodes, 2);
        cfg.spans = true;
        let mut b = CvmBuilder::new(cfg);
        let body = build_app(&mut b, app, Scale::Small);
        b.run(body).to_json(10)
    }

    #[test]
    fn slowest_renders_critical_path_and_trees() {
        let doc = report_json(AppId::Sor, 2);
        let text = explain(&doc, &Mode::Slowest(3)).unwrap();
        assert!(text.contains("critical path over"));
        assert!(text.contains("slowest"));
        assert!(
            text.contains("= wire"),
            "every span shows its segment split"
        );
    }

    #[test]
    fn span_mode_shows_ancestor_chain() {
        let doc = report_json(AppId::Sor, 2);
        // Find a child span (a pull under a fault) in the records.
        let recs = doc
            .get("spans")
            .unwrap()
            .get("records")
            .unwrap()
            .as_array()
            .unwrap();
        let child = recs
            .iter()
            .find(|r| r.get("parent").unwrap().as_u64().unwrap() != 0)
            .expect("a real run has child spans");
        let id = child.get("id").unwrap().as_u64().unwrap();
        let text = explain(&doc, &Mode::Span(id)).unwrap();
        assert!(text.contains("under span"), "ancestors are printed first");
        assert!(text.contains(&format!("span {id} ")));
    }

    #[test]
    fn resource_mode_filters_by_label() {
        let doc = report_json(AppId::Sor, 2);
        let recs = doc
            .get("spans")
            .unwrap()
            .get("records")
            .unwrap()
            .as_array()
            .unwrap();
        let label = recs
            .iter()
            .find(|r| {
                r.get("resource")
                    .unwrap()
                    .as_str()
                    .unwrap()
                    .starts_with("page:")
            })
            .map(|r| r.get("resource").unwrap().as_str().unwrap().to_owned())
            .expect("a real run faults on some page");
        let text = explain(&doc, &Mode::Resource(label.clone())).unwrap();
        assert!(text.contains(&format!("about {label}")));
        assert!(text.contains(&label));
    }

    #[test]
    fn missing_spans_section_is_a_clear_error() {
        let mut cfg = CvmConfig::paper(2, 2);
        cfg.spans = false;
        let mut b = CvmBuilder::new(cfg);
        let body = build_app(&mut b, AppId::Sor, Scale::Small);
        let doc = b.run(body).to_json(10);
        let err = explain(&doc, &Mode::Slowest(5)).unwrap_err();
        assert!(err.contains("--spans"));
    }

    #[test]
    fn unknown_span_id_errors() {
        let doc = report_json(AppId::Sor, 2);
        assert!(explain(&doc, &Mode::Span(9_999_999)).is_err());
    }
}
