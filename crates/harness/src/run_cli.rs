//! `cvm run` — single-run driver: one app, one configuration, optional
//! report/trace artifacts, and the DPOR counterexample replayer.

use crate::cli::{app_by_name, load_json, usage};
use crate::{AppId, Scale};

pub(crate) fn run_single(args: &[String]) {
    use cvm_apps::build_app;
    use cvm_dsm::{CvmBuilder, CvmConfig, ProtocolKind};
    let mut app = None;
    let mut nodes = 8usize;
    let mut threads = 2usize;
    let mut scale = Scale::Small;
    let mut protocol = ProtocolKind::LazyMultiWriter;
    let mut lifo = false;
    let mut memsim = false;
    let mut verify = false;
    let mut trace = 0usize;
    let mut spans = false;
    let mut shards = 1usize;
    let mut json_path: Option<String> = None;
    let mut chrome_path: Option<String> = None;
    let mut replay_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--nodes" => {
                nodes = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--threads" => {
                threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--paper-scale" => scale = Scale::Paper,
            "--protocol" => {
                protocol = it
                    .next()
                    .and_then(|v| ProtocolKind::parse(v))
                    .unwrap_or_else(|| usage());
            }
            "--eager" => protocol = ProtocolKind::EagerUpdate,
            "--lifo" => lifo = true,
            "--memsim" => memsim = true,
            "--verify" => verify = true,
            "--trace" => {
                trace = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--spans" => spans = true,
            "--shards" => {
                shards = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&s: &usize| s > 0)
                    .unwrap_or_else(|| usage());
            }
            "--json" => json_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--chrome-trace" => chrome_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--replay" => replay_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            name if app.is_none() => {
                app = app_by_name(name).or_else(|| usage());
            }
            _ => usage(),
        }
    }
    if let Some(path) = &replay_path {
        run_replay(app, path);
    }
    let Some(app) = app else { usage() };
    if !app.supports_threads(threads) {
        eprintln!("{app} does not support {threads} threads per node");
        std::process::exit(2);
    }
    let mut cfg = CvmConfig::paper(nodes, threads);
    cfg.protocol = protocol;
    cfg.lifo_schedule = lifo;
    cfg.memsim_enabled = memsim;
    cfg.verify = verify;
    cfg.spans = spans;
    cfg.shards = shards;
    cfg.trace_capacity = trace;
    if (chrome_path.is_some() || verify) && trace == 0 {
        // The timeline export and the offline race replay need events;
        // default to a generous buffer.
        cfg.trace_capacity = 1 << 20;
    }
    let mut b = CvmBuilder::new(cfg);
    let body = build_app(&mut b, app, scale);
    eprintln!("[harness] running {app} P={nodes} T={threads} protocol={protocol} shards={shards}");
    let report = b.run(body);
    println!("{report}");
    println!(
        "twins {} | local-lock acquires {} handoffs {} | barriers {} local {} reduces {}",
        report.stats.twins_created,
        report.stats.local_lock_acquires,
        report.stats.local_lock_handoffs,
        report.stats.barriers_crossed,
        report.stats.local_barriers,
        report.stats.global_reduces,
    );
    if report.stats.updates_pushed > 0 || report.stats.copies_dropped > 0 {
        println!(
            "pushes {} | copies dropped {}",
            report.stats.updates_pushed, report.stats.copies_dropped
        );
    }
    if shards > 1 {
        // Host-side planner observability; deliberately on stderr so
        // stdout stays byte-identical to the sequential run.
        eprintln!(
            "[harness] planner pre-executed {} bursts (overlap saved {} ns of {} ns burst time)",
            report.planned_bursts, report.overlap_saved_ns, report.burst_total_ns
        );
    }
    if let Some(t) = &report.trace {
        if trace > 0 {
            println!("\nprotocol trace (first {trace} events):");
            print!("{}", t.render(trace));
        }
        // Always account for what the capacity dropped, so a truncated
        // trace is never mistaken for a complete one.
        println!(
            "trace: {} events recorded, {} dropped ({} total)",
            t.len(),
            t.overflow(),
            t.events_total()
        );
    }
    if let Some(sf) = &report.spans {
        let cp = sf.critical_path(report.total_time);
        let ms = |ns: u64| ns as f64 / 1e6;
        println!(
            "spans: {} recorded ({} open); critical path: compute {:.3}ms",
            sf.len(),
            sf.open_count(),
            ms(cp.compute)
        );
        for (kind, ns) in &cp.by_kind {
            if *ns > 0 {
                println!("  {:<14} {:>10.3}ms", kind.name(), ms(*ns));
            }
        }
    }
    if let Some(path) = &json_path {
        let doc = report.to_json(crate::bench::TOP_N);
        std::fs::write(path, doc.to_pretty()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("[harness] wrote {path}");
    }
    if let Some(path) = &chrome_path {
        let Some(t) = &report.trace else {
            eprintln!("--chrome-trace needs tracing (internal error)");
            std::process::exit(1);
        };
        let doc = cvm_dsm::chrome_trace_with_spans(t, nodes, report.spans.as_ref());
        std::fs::write(path, doc.to_string()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!(
            "[harness] wrote {path} ({} trace events) — load in chrome://tracing or ui.perfetto.dev",
            t.len()
        );
    }
    if verify {
        let mut findings = report.findings.clone();
        match &report.trace {
            Some(t) if t.overflow() == 0 => {
                findings.extend(cvm_verify::replay_race_check(t, nodes));
            }
            _ => eprintln!("[harness] trace truncated; offline race replay skipped"),
        }
        if findings.is_empty() {
            println!("verify: 0 findings");
        } else {
            for f in &findings {
                println!("verify: {f}");
            }
            std::process::exit(1);
        }
    }
}

/// `cvm run [APP] --replay FILE`: re-execute a DPOR counterexample
/// byte-identically from its schedule file. Exit 0 iff the recorded
/// terminal-state fingerprint and findings reproduce exactly.
fn run_replay(app: Option<AppId>, path: &str) -> ! {
    let sched = cvm_verify::schedule_from_json(&load_json(path)).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(2);
    });
    if let Some(a) = app {
        if a != sched.plan.app {
            eprintln!(
                "{path} records a schedule for {}, not {}",
                sched.plan.app.slug(),
                a.slug()
            );
            std::process::exit(2);
        }
    }
    let plan = sched.plan;
    eprintln!(
        "[harness] replaying {} pinned pick(s) for {} P={} T={} protocol={}",
        sched.choices.len(),
        plan.app.slug(),
        plan.nodes,
        plan.threads,
        plan.protocol
    );
    let result = cvm_verify::run_scripted(plan, &sched.choices);
    for f in &result.findings {
        println!("finding: {f}");
    }
    if let Some(p) = &result.panic {
        println!("panic: {p}");
    }
    println!(
        "state hash {:016x} (recorded {:016x})",
        result.state_hash, sched.state_hash
    );
    if result.state_hash == sched.state_hash {
        println!("replay: byte-identical to the recorded counterexample");
        std::process::exit(0);
    }
    eprintln!("replay: DIVERGED from the recorded schedule");
    std::process::exit(1);
}
