//! `harness bench` — run the whole application suite once per app under
//! the standard configuration and emit machine-readable reports.
//!
//! Each app produces one `BENCH_<app>.json` file: the full
//! [`RunReport`](cvm_dsm::RunReport) JSON (histograms, hot-resource
//! attribution, per-node breakdowns, traffic) wrapped with the run's
//! configuration, so regression tooling can diff runs without parsing
//! console text.

use cvm_apps::{AppId, Scale};
use cvm_sim::json::JsonValue;

use crate::runner::{run_app, RunOutcome, RunSpec};

/// Hot-resource table depth used in bench reports.
pub const TOP_N: usize = 10;

/// File-name slug for an app (`SOR` → `sor`, `Water-Nsq` → `water_nsq`).
pub fn slug(app: AppId) -> String {
    app.name().to_lowercase().replace('-', "_")
}

/// The report file name for one app: `BENCH_<app>.json`.
pub fn file_name(app: AppId) -> String {
    format!("BENCH_{}.json", slug(app))
}

/// The span-summary artifact name, one file for the whole suite.
pub const OBS_FILE: &str = "BENCH_obs.json";

/// Runs every application once at `nodes`×`threads` (skipping apps that
/// reject the thread count) and returns the outcomes in suite order.
pub fn run_suite(scale: Scale, nodes: usize, threads: usize) -> Vec<RunOutcome> {
    run_suite_with(scale, nodes, threads, false)
}

/// [`run_suite`] with span recording switched on or off.
pub fn run_suite_with(scale: Scale, nodes: usize, threads: usize, spans: bool) -> Vec<RunOutcome> {
    AppId::ALL
        .into_iter()
        .filter(|app| app.supports_threads(threads))
        .map(|app| {
            let mut spec = RunSpec::new(app, scale, nodes, threads);
            spec.spans = spans;
            run_app(spec)
        })
        .collect()
}

/// The suite's span summaries as one `BENCH_obs.json` document: per-app
/// span aggregates (p50/p99/p999 per kind) and the whole-run critical
/// path, without the per-span records — small enough to commit as a
/// baseline and diff with `cvm bench --baseline`.
pub fn obs_json(outcomes: &[RunOutcome]) -> JsonValue {
    let mut obj = JsonValue::object();
    obj.set("schema", "cvm-obs");
    let mut apps = JsonValue::array();
    for o in outcomes {
        let Some(spans) = &o.report.spans else {
            continue;
        };
        let mut row = JsonValue::object();
        row.set("app", slug(o.spec.app));
        row.set("nodes", o.spec.nodes);
        row.set("threads", o.spec.threads);
        row.set("seed", o.spec.seed);
        row.set("total_ns", o.report.total_time.as_ns());
        row.set("spans", spans.summary_json(o.report.total_time));
        apps.push(row);
    }
    obj.set("apps", apps);
    obj
}

/// One outcome as a bench JSON document: configuration + full report.
pub fn to_json(outcome: &RunOutcome) -> JsonValue {
    let mut obj = JsonValue::object();
    obj.set("app", slug(outcome.spec.app));
    obj.set("nodes", outcome.spec.nodes);
    obj.set("threads", outcome.spec.threads);
    obj.set("scale", outcome.spec.scale.slug());
    obj.set("seed", outcome.spec.seed);
    obj.set("report", outcome.report.to_json(TOP_N));
    obj
}

/// Renders the one-line-per-app console summary.
pub fn render_summary(outcomes: &[RunOutcome]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>10} {:>8} {:>8} {:>10} {:>12} {:>12}",
        "app", "time ms", "faults", "locks", "msgs", "fault p90", "barrier p90"
    );
    for o in outcomes {
        let _ = writeln!(
            out,
            "{:<10} {:>10.3} {:>8} {:>8} {:>10} {:>10}ns {:>10}ns",
            slug(o.spec.app),
            o.time_ms(),
            o.report.stats.remote_faults,
            o.report.stats.remote_locks,
            o.report.net.total_count(),
            o.report.hist.fault_fetch_ns.p90(),
            o.report.hist.barrier_stall_ns.p90(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slugs_are_filesystem_safe() {
        for app in AppId::ALL {
            let s = slug(app);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
        assert_eq!(file_name(AppId::WaterNsq), "BENCH_water_nsq.json");
    }

    #[test]
    fn bench_json_wraps_report() {
        let outcome = run_app(RunSpec::new(AppId::Sor, Scale::Small, 2, 2));
        let j = to_json(&outcome);
        assert_eq!(j.get("app").unwrap().as_str(), Some("sor"));
        assert_eq!(j.get("nodes").unwrap().as_u64(), Some(2));
        let report = j.get("report").unwrap();
        assert_eq!(
            report.get("schema").unwrap().as_str(),
            Some("cvm-run-report")
        );
        assert!(report.get("hist").is_some());
    }

    #[test]
    fn summary_lists_every_outcome() {
        let outcomes = vec![run_app(RunSpec::new(AppId::Sor, Scale::Small, 2, 1))];
        let text = render_summary(&outcomes);
        assert!(text.contains("sor"));
        assert!(text.contains("fault p90"));
    }
}
