//! `cvm bench` — suite benchmarking, the regression gate, and the
//! `--scale` ladder of the parallel event core.

use crate::cli::{load_json, parse_list, usage};
use crate::{bench, scale_bench, Scale};

pub(crate) fn run_bench(args: &[String]) {
    let mut json = false;
    let mut spans = false;
    let mut scale_mode = false;
    let mut nodes = 8usize;
    let mut scale_nodes: Option<Vec<usize>> = None;
    let mut threads: Option<usize> = None;
    let mut shards = scale_bench::DEFAULT_SHARDS;
    let mut scale = Scale::Small;
    let mut baseline: Option<String> = None;
    let mut current: Option<String> = None;
    let mut gate_pct = 5.0f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--spans" => spans = true,
            "--scale" => scale_mode = true,
            "--baseline" => baseline = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--current" => current = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--gate" => {
                gate_pct = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|p: &f64| *p > 0.0)
                    .unwrap_or_else(|| usage());
            }
            "--nodes" => {
                // Scale mode ladders over a comma-separated list; the
                // suite takes a single count. Both arrive here.
                let v = it.next().cloned().unwrap_or_else(|| usage());
                scale_nodes = parse_list(&v);
                if scale_nodes.is_none() {
                    usage();
                }
            }
            "--threads" => {
                threads = it.next().and_then(|v| v.parse().ok());
                if threads.is_none() {
                    usage();
                }
            }
            "--shards" => {
                shards = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&s: &usize| s > 0)
                    .unwrap_or_else(|| usage());
            }
            "--paper-scale" => scale = Scale::Paper,
            _ => usage(),
        }
    }
    // File-vs-file mode: gate two committed artifacts, no runs at all.
    if let (Some(base_path), Some(cur_path)) = (&baseline, &current) {
        let outcome = crate::gate::compare(&load_json(base_path), &load_json(cur_path), gate_pct);
        print!("{}", outcome.render(gate_pct));
        std::process::exit(i32::from(outcome.failed()));
    }
    if current.is_some() {
        eprintln!("--current needs --baseline");
        usage();
    }
    if scale_mode {
        run_scale(scale_nodes, threads, shards, json, baseline, gate_pct);
        return;
    }
    // A gate run always needs the span summary to compare.
    let record_spans = spans || baseline.is_some();
    let threads = threads.unwrap_or(2);
    match scale_nodes.as_deref() {
        Some([n]) => nodes = *n,
        Some(_) => usage(), // a node *ladder* is a --scale option
        None => {}
    }
    eprintln!("[harness] bench suite P={nodes} T={threads}");
    let outcomes = bench::run_suite_with(scale, nodes, threads, record_spans);
    print!("{}", bench::render_summary(&outcomes));
    if json {
        for o in &outcomes {
            let path = bench::file_name(o.spec.app);
            let doc = bench::to_json(o);
            std::fs::write(&path, doc.to_pretty()).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("[harness] wrote {path}");
        }
        if record_spans {
            let doc = bench::obs_json(&outcomes);
            std::fs::write(bench::OBS_FILE, doc.to_pretty()).unwrap_or_else(|e| {
                eprintln!("cannot write {}: {e}", bench::OBS_FILE);
                std::process::exit(1);
            });
            eprintln!("[harness] wrote {}", bench::OBS_FILE);
        }
    }
    if let Some(base_path) = &baseline {
        let outcome =
            crate::gate::compare(&load_json(base_path), &bench::obs_json(&outcomes), gate_pct);
        print!("{}", outcome.render(gate_pct));
        if outcome.failed() {
            std::process::exit(1);
        }
    }
}

/// `cvm bench --scale`: run the ladder, optionally write and gate
/// `BENCH_scale.json`.
fn run_scale(
    nodes: Option<Vec<usize>>,
    threads: Option<usize>,
    shards: usize,
    json: bool,
    baseline: Option<String>,
    gate_pct: f64,
) {
    let mut cfg = scale_bench::ScaleConfig::default();
    if let Some(nodes) = nodes {
        cfg.nodes = nodes;
    }
    if let Some(t) = threads {
        cfg.threads = t;
    }
    cfg.shards = shards;
    let rungs = scale_bench::run_ladder(&cfg);
    print!("{}", scale_bench::render_summary(&cfg, &rungs));
    let doc = scale_bench::to_json(&cfg, &rungs);
    if json {
        let path = scale_bench::FILE_NAME;
        std::fs::write(path, doc.to_pretty()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("[harness] wrote {path}");
    }
    if let Some(base_path) = &baseline {
        let outcome = crate::gate::compare(&load_json(base_path), &doc, gate_pct);
        print!("{}", outcome.render(gate_pct));
        if outcome.failed() {
            std::process::exit(1);
        }
    }
}
