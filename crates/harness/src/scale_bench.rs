//! `cvm bench --scale` — the node-count scaling ladder for the parallel
//! event core.
//!
//! Each ladder rung runs the same reduced-input application twice: once
//! on the sequential event loop (`--shards 1`) and once sharded. The two
//! reports must be **byte-identical** — that is the contract the rung
//! asserts before it reports anything — so every simulated observable in
//! `BENCH_scale.json` comes from a run whose results the sequential loop
//! vouches for.
//!
//! # What gates and what doesn't
//!
//! The committed `BENCH_scale.json` is compared by `cvm bench --baseline`
//! with the numeric-leaf gate ([`crate::gate`]). Two kinds of metric are
//! emitted accordingly:
//!
//! - **Deterministic** metrics — virtual time, traffic, peak memory,
//!   planner engagement and the modelled burst speedup — are JSON
//!   *numbers*. They are pure functions of `(app, scale, nodes, threads,
//!   shards, seed)` and gate normally.
//! - **Host** wall-clock measurements are JSON *strings* (the gate never
//!   compares strings), because they depend on the machine the bench ran
//!   on. A one-core CI runner shows a host speedup near 1.0× while the
//!   modelled speedup is unchanged; both are reported honestly.
//!
//! The modelled speedup is the factor by which aggregate application
//! burst time shrinks when each lookahead window costs `max(bursts)`
//! instead of `sum(bursts)` — the host-time model of a machine with one
//! core per shard. It is computed from the driver's overlap ledger
//! ([`RunReport::overlap_saved_ns`]), not from wall clocks.

use std::time::Instant;

use cvm_apps::{AppId, Scale};
use cvm_sim::json::JsonValue;

use crate::bench::slug;
use crate::runner::{run_app, RunOutcome, RunSpec};

/// The committed scale artifact.
pub const FILE_NAME: &str = "BENCH_scale.json";

/// Default ladder: 8 → 64 nodes (the CI rungs; 128/256 run on demand).
pub const DEFAULT_NODES: &[usize] = &[8, 16, 32, 64];

/// Default shard count for the parallel run of each rung.
pub const DEFAULT_SHARDS: usize = 8;

/// Ladder configuration.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Application under test (default Barnes — the paper's most
    /// communication-heavy tree code).
    pub app: AppId,
    /// Problem scale (default tiny: the ladder varies *nodes*, and the
    /// reduced input keeps 256-node rungs tractable).
    pub scale: Scale,
    /// Node counts, one rung each.
    pub nodes: Vec<usize>,
    /// Threads per node.
    pub threads: usize,
    /// Shard count of the parallel run (clamped to the node count).
    pub shards: usize,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            app: AppId::Barnes,
            scale: Scale::Tiny,
            nodes: DEFAULT_NODES.to_vec(),
            threads: 4,
            shards: DEFAULT_SHARDS,
        }
    }
}

/// One ladder rung: the sharded run's outcome plus the determinism proof
/// and both host wall-clocks.
#[derive(Debug)]
pub struct Rung {
    /// Node count of this rung.
    pub nodes: usize,
    /// The sharded run (its report is byte-identical to the sequential
    /// one, so it stands for both).
    pub outcome: RunOutcome,
    /// Planner engagement of the sequential control run (always 0).
    pub seq_planned: u64,
    /// Host wall-clock of the sequential run, seconds.
    pub host_seq_s: f64,
    /// Host wall-clock of the sharded run, seconds.
    pub host_par_s: f64,
}

impl Rung {
    /// Modelled burst speedup ×1000 (integer so the JSON leaf is exact):
    /// aggregate burst time over its critical-path remainder after the
    /// planner's overlap windows are costed at `max` instead of `sum`.
    pub fn burst_speedup_milli(&self) -> u64 {
        let total = self.outcome.report.burst_total_ns;
        let serial = total - self.outcome.report.overlap_saved_ns;
        (total * 1000).checked_div(serial).unwrap_or(1000)
    }
}

/// Runs one rung: sequential then sharded, asserts byte-identity of the
/// full report JSON, returns the rung.
pub fn run_rung(cfg: &ScaleConfig, nodes: usize) -> Rung {
    let mut seq = RunSpec::new(cfg.app, cfg.scale, nodes, cfg.threads);
    seq.shards = 1;
    let mut par = seq;
    par.shards = cfg.shards;
    let t0 = Instant::now();
    let seq_out = run_app(seq);
    let host_seq_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let par_out = run_app(par);
    let host_par_s = t1.elapsed().as_secs_f64();
    let seq_doc = seq_out.report.to_json(crate::bench::TOP_N).to_pretty();
    let par_doc = par_out.report.to_json(crate::bench::TOP_N).to_pretty();
    assert_eq!(
        seq_doc, par_doc,
        "shards={} diverged from the sequential loop at {} nodes",
        cfg.shards, nodes
    );
    Rung {
        nodes,
        outcome: par_out,
        seq_planned: seq_out.report.planned_bursts,
        host_seq_s,
        host_par_s,
    }
}

/// Runs the whole ladder in rung order.
pub fn run_ladder(cfg: &ScaleConfig) -> Vec<Rung> {
    cfg.nodes
        .iter()
        .map(|&nodes| {
            eprintln!(
                "[scale] {} P={nodes} T={} shards {{1,{}}}",
                cfg.app, cfg.threads, cfg.shards
            );
            run_rung(cfg, nodes)
        })
        .collect()
}

/// The ladder as the committed `BENCH_scale.json` document.
pub fn to_json(cfg: &ScaleConfig, rungs: &[Rung]) -> JsonValue {
    let mut obj = JsonValue::object();
    obj.set("schema", "cvm-scale");
    obj.set("app", slug(cfg.app));
    obj.set("threads", cfg.threads);
    obj.set("shards", cfg.shards);
    let mut arr = JsonValue::array();
    for r in rungs {
        let rep = &r.outcome.report;
        let mut row = JsonValue::object();
        row.set("nodes", r.nodes);
        row.set("total_ns", rep.total_time.as_ns());
        row.set("msgs", rep.net.total_count());
        row.set("bytes", rep.net.total_bytes());
        row.set("twin_peak", rep.mem_peaks.twin_global_peak);
        row.set("cache_peak", rep.mem_peaks.cache_global_peak);
        row.set("parked_peak", rep.mem_peaks.parked_global_peak);
        row.set("worst_node_bytes", rep.mem_peaks.worst_node_bytes());
        row.set("burst_total_ns", rep.burst_total_ns);
        row.set("overlap_saved_ns", rep.overlap_saved_ns);
        row.set("planned_bursts", rep.planned_bursts);
        row.set("burst_speedup_milli", r.burst_speedup_milli());
        // Host measurements: strings, so the baseline gate (numeric
        // leaves only) never fails on another machine's clock.
        row.set("host_seq_s", format!("{:.3}", r.host_seq_s));
        row.set("host_par_s", format!("{:.3}", r.host_par_s));
        row.set(
            "host_speedup",
            format!("{:.2}", r.host_seq_s / r.host_par_s.max(1e-9)),
        );
        arr.push(row);
    }
    obj.set("rungs", arr);
    obj
}

/// Console table for the ladder.
pub fn render_summary(cfg: &ScaleConfig, rungs: &[Rung]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "scale ladder: {} tiny ×{}T, shards {} vs 1 (reports byte-identical)",
        cfg.app, cfg.threads, cfg.shards
    );
    let _ = writeln!(
        out,
        "{:>6} {:>12} {:>10} {:>12} {:>10} {:>9} {:>9} {:>9}",
        "nodes", "vtime ms", "msgs", "peak KiB", "planned", "model x", "seq s", "par s"
    );
    for r in rungs {
        let rep = &r.outcome.report;
        let peak_kib = (rep.mem_peaks.twin_global_peak
            + rep.mem_peaks.cache_global_peak
            + rep.mem_peaks.parked_global_peak)
            / 1024;
        let _ = writeln!(
            out,
            "{:>6} {:>12.3} {:>10} {:>12} {:>10} {:>9.2} {:>9.3} {:>9.3}",
            r.nodes,
            rep.total_ms(),
            rep.net.total_count(),
            peak_kib,
            rep.planned_bursts,
            r.burst_speedup_milli() as f64 / 1000.0,
            r.host_seq_s,
            r.host_par_s,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_rung_is_deterministic_and_engages_the_planner() {
        let cfg = ScaleConfig {
            nodes: vec![8],
            ..ScaleConfig::default()
        };
        // run_rung asserts byte-identity internally.
        let rung = run_rung(&cfg, 8);
        assert_eq!(rung.seq_planned, 0, "sequential loop must never plan");
        assert!(
            rung.outcome.report.planned_bursts > 0,
            "sharded run never engaged the window planner"
        );
        assert!(rung.burst_speedup_milli() > 1000, "no overlap was won");
        let doc = to_json(&cfg, &[rung]);
        let text = doc.to_pretty();
        assert!(text.contains("\"burst_speedup_milli\""));
        // Host clocks must be strings (the gate ignores strings).
        assert!(text.contains("\"host_seq_s\": \""));
    }
}
