//! Uniform run driver used by all table/figure emitters.

use cvm_apps::{build_app, registry::build_water_nsq_variant, AppId, Scale, WaterNsqOpt};
use cvm_dsm::{CvmBuilder, CvmConfig, ProtocolKind, RunReport};
use cvm_net::MsgClass;

/// One experiment configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSpec {
    /// Application under test.
    pub app: AppId,
    /// Problem scale.
    pub scale: Scale,
    /// Nodes (processors).
    pub nodes: usize,
    /// Threads per node.
    pub threads: usize,
    /// Enable the cache/TLB simulator (Figure 2 runs).
    pub memsim: bool,
    /// Per-node barrier arrival aggregation (ablation switch).
    pub aggregate_barriers: bool,
    /// Memory-conscious LIFO scheduling (paper §5 future-work switch).
    pub lifo: bool,
    /// Coherence protocol under test.
    pub protocol: ProtocolKind,
    /// Network jitter bound in microseconds (0 disables).
    pub jitter_us: u64,
    /// Release-prefers-local-waiters lock policy (ablation switch).
    pub prefer_local_locks: bool,
    /// Record the causal span forest (`cvm … --spans`).
    pub spans: bool,
    /// Event-core shards (`--shards`); 1 is the sequential path. Any
    /// value produces a byte-identical report.
    pub shards: usize,
    /// Master seed.
    pub seed: u64,
}

impl RunSpec {
    /// A standard spec with the defaults used throughout the evaluation.
    pub fn new(app: AppId, scale: Scale, nodes: usize, threads: usize) -> Self {
        RunSpec {
            app,
            scale,
            nodes,
            threads,
            memsim: false,
            aggregate_barriers: true,
            lifo: false,
            protocol: ProtocolKind::LazyMultiWriter,
            prefer_local_locks: true,
            jitter_us: 0,
            spans: false,
            shards: 1,
            seed: 0x5EED_CAFE,
        }
    }
}

/// A completed run plus convenience accessors for the table columns.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The spec that produced this run.
    pub spec: RunSpec,
    /// The full report.
    pub report: RunReport,
}

impl RunOutcome {
    /// Total execution time in milliseconds.
    pub fn time_ms(&self) -> f64 {
        self.report.total_ms()
    }

    /// Messages in a Table 2 class.
    pub fn msgs(&self, class: MsgClass) -> u64 {
        self.report.net.class_count(class)
    }

    /// Total messages.
    pub fn total_msgs(&self) -> u64 {
        self.report.net.total_count()
    }

    /// Total bandwidth in kilobytes.
    pub fn bw_kb(&self) -> u64 {
        self.report.net.total_bytes() / 1024
    }

    /// Non-overlapped delay of one class, in milliseconds (summed over
    /// nodes — the paper's Total Delay columns).
    pub fn delay_ms(&self, class: MsgClass) -> f64 {
        match class {
            MsgClass::Barrier => self.report.stats.wait_barrier.as_ms_f64(),
            MsgClass::Lock => self.report.stats.wait_lock.as_ms_f64(),
            MsgClass::Diff => self.report.stats.wait_fault.as_ms_f64(),
            MsgClass::Other => 0.0,
        }
    }
}

fn config_for(spec: &RunSpec) -> CvmConfig {
    let mut cfg = CvmConfig::paper(spec.nodes, spec.threads);
    cfg.memsim_enabled = spec.memsim;
    cfg.aggregate_barriers = spec.aggregate_barriers;
    cfg.lifo_schedule = spec.lifo;
    cfg.protocol = spec.protocol;
    cfg.jitter_max = cvm_sim::SimDuration::from_us(spec.jitter_us);
    cfg.prefer_local_lock_waiters = spec.prefer_local_locks;
    cfg.spans = spec.spans;
    cfg.shards = spec.shards;
    cfg.seed = spec.seed;
    cfg
}

/// Runs one experiment.
pub fn run_app(spec: RunSpec) -> RunOutcome {
    let mut builder = CvmBuilder::new(config_for(&spec));
    let body = build_app(&mut builder, spec.app, spec.scale);
    let report = builder.run(body);
    RunOutcome { spec, report }
}

/// Runs a specific Water-Nsq variant (Table 5).
pub fn run_water_nsq_variant(spec: RunSpec, opt: WaterNsqOpt) -> RunOutcome {
    let mut builder = CvmBuilder::new(config_for(&spec));
    let body = build_water_nsq_variant(&mut builder, spec.scale, opt);
    let report = builder.run(body);
    RunOutcome { spec, report }
}

/// Percentage change helper for Table 4 (`+12%` style rounding).
pub fn pct_change(base: u64, new: u64) -> f64 {
    if base == 0 {
        0.0
    } else {
        (new as f64 - base as f64) / base as f64 * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_change_handles_zero_base() {
        assert_eq!(pct_change(0, 10), 0.0);
        assert_eq!(pct_change(100, 112), 12.0);
        assert_eq!(pct_change(100, 88), -12.0);
    }
}
