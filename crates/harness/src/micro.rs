//! §4.1 microbenchmarks: measures the primitive costs end-to-end inside
//! the simulation and compares them with the paper's reported numbers.

use cvm_dsm::{CvmBuilder, CvmConfig};
use cvm_sim::SimDuration;

/// One microbenchmark row.
#[derive(Debug, Clone)]
pub struct MicroRow {
    /// Operation name.
    pub name: &'static str,
    /// The paper's measured cost in microseconds.
    pub paper_us: f64,
    /// Our measured cost in microseconds.
    pub measured_us: f64,
}

impl MicroRow {
    /// Relative deviation from the paper.
    pub fn deviation(&self) -> f64 {
        (self.measured_us - self.paper_us) / self.paper_us
    }
}

/// Measures a 2-hop lock acquire: the manager is the last owner.
fn lock_two_hop() -> f64 {
    // Lock 1 is managed by node 1 (1 % 2); node 0 acquires it: request to
    // manager + grant back = 2 hops.
    let b = CvmBuilder::new(CvmConfig::paper(2, 1));
    let report = b.run(move |ctx| {
        ctx.startup_done();
        if ctx.global_id() == 0 {
            ctx.acquire(1);
            ctx.release(1);
        }
        ctx.barrier();
    });
    report.stats.wait_lock.as_us_f64()
}

/// Measures a 3-hop lock acquire: manager forwards to a third node.
fn lock_three_hop() -> f64 {
    // Lock 0 is managed by node 0. Node 1 takes it first (2-hop); then,
    // after the protocol settles, node 2 must go request -> manager(0) ->
    // forward(1) -> grant = 3 hops. The idle spin lets barrier handler
    // occupancy drain so the measurement isolates the lock path.
    let b = CvmBuilder::new(CvmConfig::paper(3, 1));
    let report = b.run(move |ctx| {
        ctx.startup_done();
        if ctx.node() == 1 {
            ctx.acquire(0);
            ctx.release(0);
        }
        ctx.barrier();
        if ctx.node() == 2 {
            // Spacer so other nodes' barrier traffic has drained and the
            // manager's handler is idle when the request lands.
            ctx.work(cvm_sim::SimDuration::from_ms(50));
            ctx.acquire(0);
            ctx.release(0);
        }
        ctx.barrier();
    });
    // Only node 2 waits on a lock after the spacer.
    report.nodes[2].lock.as_us_f64()
}

/// Measures a simple remote page fault (full-page fetch).
fn page_fault() -> f64 {
    let mut b = CvmBuilder::new(CvmConfig::paper(2, 1));
    let v = b.alloc::<f64>(1024);
    let report = b.run(move |ctx| {
        if ctx.global_id() == 0 {
            for i in 0..1024 {
                v.write(ctx, i, 1.0);
            }
        }
        ctx.startup_done();
        // Node 1 writes (invalidating node 0 at the barrier), then node 0
        // faults once on the page.
        if ctx.node() == 1 {
            v.write(ctx, 0, 2.0);
        }
        ctx.barrier();
        if ctx.node() == 0 {
            let _ = v.read(ctx, 0);
        }
        ctx.barrier();
    });
    report.stats.wait_fault.as_us_f64()
}

/// Measures a minimal barrier across `nodes` single-threaded nodes: the
/// longest any node waits, i.e. first-arrival to last-release.
fn barrier_cost(nodes: usize) -> f64 {
    let b = CvmBuilder::new(CvmConfig::paper(nodes, 1));
    let report = b.run(move |ctx| {
        ctx.startup_done();
        ctx.barrier();
    });
    report
        .nodes
        .iter()
        .map(|n| n.barrier.as_us_f64())
        .fold(0.0, f64::max)
}

/// Measures one thread switch.
fn thread_switch() -> f64 {
    let b = CvmBuilder::new(CvmConfig::paper(1, 2));
    let report = b.run(move |ctx| {
        ctx.startup_done();
        for _ in 0..100 {
            ctx.yield_now();
        }
    });
    // 2 threads alternate: total time ≈ switches * 8 µs (plus negligible
    // startup); divide by observed switch count.
    let switches = report.stats.thread_switches.max(1);
    report.total_time.as_us_f64() / switches as f64
}

/// Produces the full §4.1 comparison.
pub fn report() -> Vec<MicroRow> {
    vec![
        MicroRow {
            name: "2-hop lock acquire",
            paper_us: 937.0,
            measured_us: lock_two_hop(),
        },
        MicroRow {
            name: "3-hop lock acquire",
            paper_us: 1382.0,
            measured_us: lock_three_hop(),
        },
        MicroRow {
            name: "remote page fault",
            paper_us: 1100.0,
            measured_us: page_fault(),
        },
        MicroRow {
            name: "8-processor barrier",
            paper_us: 2470.0,
            measured_us: barrier_cost(8),
        },
        MicroRow {
            name: "thread switch",
            paper_us: 8.0,
            measured_us: thread_switch(),
        },
        MicroRow {
            name: "mprotect",
            paper_us: 49.0,
            measured_us: CvmConfig::paper(2, 1).mprotect.as_us_f64(),
        },
        MicroRow {
            name: "signal handling",
            paper_us: 98.0,
            measured_us: CvmConfig::paper(2, 1).signal.as_us_f64(),
        },
    ]
}

/// Renders the table as text.
pub fn render(rows: &[MicroRow]) -> String {
    let mut out = String::from(
        "== Section 4.1 microbenchmarks (paper vs measured) ==\n\
         operation              paper(us)  measured(us)  deviation\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<22} {:>9.0} {:>13.1} {:>9.1}%\n",
            r.name,
            r.paper_us,
            r.measured_us,
            r.deviation() * 100.0
        ));
    }
    out
}

/// A convenience duration for docs/tests.
pub fn switch_cost() -> SimDuration {
    CvmConfig::paper(1, 1).thread_switch
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_hop_lock_within_five_percent() {
        let us = lock_two_hop();
        assert!((us - 937.0).abs() / 937.0 < 0.05, "2-hop lock = {us}");
    }

    #[test]
    fn page_fault_within_ten_percent() {
        let us = page_fault();
        assert!((us - 1100.0).abs() / 1100.0 < 0.10, "fault = {us}");
    }

    #[test]
    fn barrier_within_fifteen_percent() {
        let us = barrier_cost(8);
        assert!((us - 2470.0).abs() / 2470.0 < 0.15, "barrier = {us}");
    }

    #[test]
    fn render_mentions_all_rows() {
        let rows = vec![MicroRow {
            name: "x",
            paper_us: 1.0,
            measured_us: 1.0,
        }];
        assert!(render(&rows).contains('x'));
    }
}
