//! Table and figure emitters.
//!
//! Each function regenerates one artifact of the paper's evaluation
//! section as formatted text (machine-readable CSV lines are embedded
//! where useful). Runs are cached in a [`Suite`] so artifacts sharing
//! configurations (Figure 1, Tables 2 and 3) reuse them.

use std::collections::HashMap;
use std::fmt::Write as _;

use cvm_apps::{AppId, Scale, WaterNsqOpt};
use cvm_net::MsgClass;

use crate::runner::{pct_change, run_app, run_water_nsq_variant, RunOutcome, RunSpec};

/// Thread levels evaluated by the paper.
pub const THREADS: [usize; 4] = [1, 2, 3, 4];

/// A memoized collection of runs.
#[derive(Debug, Default)]
pub struct Suite {
    scale: Scale,
    runs: HashMap<(AppId, usize, usize, bool), RunOutcome>,
    nsq: HashMap<(WaterNsqOpt, usize), RunOutcome>,
}

impl Suite {
    /// Creates an empty suite at the given scale.
    pub fn new(scale: Scale) -> Self {
        Suite {
            scale,
            ..Default::default()
        }
    }

    /// The problem scale in force.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// Fetches (running on demand) one configuration.
    pub fn run(&mut self, app: AppId, nodes: usize, threads: usize, memsim: bool) -> &RunOutcome {
        let key = (app, nodes, threads, memsim);
        let scale = self.scale;
        self.runs.entry(key).or_insert_with(|| {
            let mut spec = RunSpec::new(app, scale, nodes, threads);
            spec.memsim = memsim;
            eprintln!("[harness] running {app} P={nodes} T={threads} memsim={memsim}");
            run_app(spec)
        })
    }

    /// Fetches (running on demand) one Water-Nsq variant at 8 processors.
    pub fn run_nsq(&mut self, opt: WaterNsqOpt, threads: usize) -> &RunOutcome {
        let scale = self.scale;
        self.nsq.entry((opt, threads)).or_insert_with(|| {
            let spec = RunSpec::new(AppId::WaterNsq, scale, 8, threads);
            eprintln!("[harness] running Water-Nsq {opt:?} P=8 T={threads}");
            run_water_nsq_variant(spec, opt)
        })
    }
}

/// Table 1: application specifics.
pub fn table1(scale: Scale) -> String {
    let mut out = String::from(
        "== Table 1: Application specifics ==\n\
         app        input set            sync type       modifications\n",
    );
    for id in AppId::ALL {
        let m = id.meta();
        let input = match scale {
            Scale::Paper => m.input_paper,
            // The tiny checker kernels are cut-down variants of the
            // laptop-scale inputs; Table 1 lists the latter.
            Scale::Tiny | Scale::Small => m.input_small,
        };
        let _ = writeln!(
            out,
            "{:<10} {:<20} {:<15} {}",
            m.name, input, m.sync, m.modifications
        );
    }
    out
}

/// Figure 1: normalized execution time on 4 and 8 processors, split into
/// user / barrier / fault / lock components (each bar normalized to the
/// single-threaded run of the same processor count).
pub fn fig1(suite: &mut Suite) -> String {
    let mut out = String::from(
        "== Figure 1: Normalized execution time (user/barrier/fault/lock) ==\n\
         app          P  T   total   user  barrier  fault   lock\n",
    );
    for app in AppId::ALL {
        for nodes in [4usize, 8] {
            let base = suite.run(app, nodes, 1, false).time_ms();
            for t in THREADS {
                if !app.supports_threads(t) {
                    continue;
                }
                let o = suite.run(app, nodes, t, false);
                let total = o.time_ms() / base;
                let scale = o.time_ms() / base; // bar height
                let user = o.report.fraction(|n| n.user) * scale;
                let barrier = o.report.fraction(|n| n.barrier) * scale;
                let fault = o.report.fraction(|n| n.fault) * scale;
                let lock = o.report.fraction(|n| n.lock) * scale;
                let _ = writeln!(
                    out,
                    "{:<12} {:>2} {:>2}  {:>6.3}  {:>5.3}  {:>6.3}  {:>5.3}  {:>5.3}",
                    app.name(),
                    nodes,
                    t,
                    total,
                    user,
                    barrier,
                    fault,
                    lock
                );
            }
        }
    }
    out
}

/// Table 2: communication performance on 8 processors.
pub fn table2(suite: &mut Suite) -> String {
    let mut out = String::from(
        "== Table 2: Communication performance (P=8) ==\n\
         app          T  delay_barrier(ms) delay_lock(ms) delay_diff(ms) \
         msgs_barrier msgs_lock msgs_diff msgs_total bw_kbytes\n",
    );
    for app in AppId::ALL {
        for t in THREADS {
            if !app.supports_threads(t) {
                continue;
            }
            let o = suite.run(app, 8, t, false);
            let _ = writeln!(
                out,
                "{:<12} {:>2} {:>17.0} {:>14.0} {:>14.0} {:>12} {:>9} {:>9} {:>10} {:>9}",
                app.name(),
                t,
                o.delay_ms(MsgClass::Barrier),
                o.delay_ms(MsgClass::Lock),
                o.delay_ms(MsgClass::Diff),
                o.msgs(MsgClass::Barrier),
                o.msgs(MsgClass::Lock),
                o.msgs(MsgClass::Diff),
                o.total_msgs(),
                o.bw_kb()
            );
        }
    }
    out
}

/// Table 3: DSM actions on 8 processors.
pub fn table3(suite: &mut Suite) -> String {
    let mut out = String::from(
        "== Table 3: DSM actions (P=8) ==\n\
         app          T  switches rem_faults rem_locks out_faults out_locks \
         bs_page bs_lock diffs_created diffs_used\n",
    );
    for app in AppId::ALL {
        for t in THREADS {
            if !app.supports_threads(t) {
                continue;
            }
            let o = suite.run(app, 8, t, false);
            let s = &o.report.stats;
            let _ = writeln!(
                out,
                "{:<12} {:>2} {:>9} {:>10} {:>9} {:>10} {:>9} {:>7} {:>7} {:>13} {:>10}",
                app.name(),
                t,
                s.thread_switches,
                s.remote_faults,
                s.remote_locks,
                s.outstanding_faults,
                s.outstanding_locks,
                s.block_same_page,
                s.block_same_lock,
                s.diffs_created,
                s.diffs_used
            );
        }
    }
    out
}

/// Figure 2: memory-system misses on 8 processors (SP-2 configuration).
pub fn fig2(suite: &mut Suite) -> String {
    let mut out = String::from(
        "== Figure 2: Memory-system misses vs threads (P=8, SP-2 config) ==\n\
         app          T     dcache_misses  dtlb_misses  itlb_misses\n",
    );
    for app in AppId::ALL {
        for t in THREADS {
            if !app.supports_threads(t) {
                continue;
            }
            let o = suite.run(app, 8, t, true);
            let m = o.report.mem;
            let _ = writeln!(
                out,
                "{:<12} {:>2} {:>17} {:>12} {:>12}",
                app.name(),
                t,
                m.dcache,
                m.dtlb,
                m.itlb
            );
        }
    }
    out
}

/// Table 4: scalability — relative change (vs one thread) of traffic and
/// protocol work at 4, 8 and 16 processors. Barnes is excluded, as in the
/// paper ("Barnes will not run with our default input size on sixteen
/// processors").
pub fn table4(suite: &mut Suite) -> String {
    let apps = [
        AppId::Fft,
        AppId::Ocean,
        AppId::Sor,
        AppId::Swm750,
        AppId::WaterSp,
        AppId::WaterNsq,
    ];
    let mut out = String::from(
        "== Table 4: Scalability (change vs 1 thread) ==\n\
         app          P  T  total_msgs bw_kbytes rem_faults diffs_created\n",
    );
    for app in apps {
        for nodes in [4usize, 8, 16] {
            let (bm, bb, bf, bd) = {
                let base = suite.run(app, nodes, 1, false);
                (
                    base.total_msgs(),
                    base.bw_kb(),
                    base.report.stats.remote_faults,
                    base.report.stats.diffs_created,
                )
            };
            for t in [2usize, 4] {
                if !app.supports_threads(t) {
                    continue;
                }
                let o = suite.run(app, nodes, t, false);
                let _ = writeln!(
                    out,
                    "{:<12} {:>2} {:>2} {:>9.0}% {:>8.0}% {:>9.0}% {:>12.0}%",
                    app.name(),
                    nodes,
                    t,
                    pct_change(bm, o.total_msgs()),
                    pct_change(bb, o.bw_kb()),
                    pct_change(bf, o.report.stats.remote_faults),
                    pct_change(bd, o.report.stats.diffs_created)
                );
            }
        }
    }
    out
}

/// Table 5: the Water-Nsq source-modification case study on 8 processors.
pub fn table5(suite: &mut Suite) -> String {
    let mut out = String::from(
        "== Table 5: Water-Nsq optimizations (P=8) ==\n\
         variant       T  speedup  switches rem_faults rem_locks out_faults \
         out_locks bs_page bs_lock diffs_created diffs_used\n",
    );
    for opt in [
        WaterNsqOpt::NoOpts,
        WaterNsqOpt::LocalBarrier,
        WaterNsqOpt::BothOpts,
    ] {
        let base = suite.run_nsq(opt, 1).time_ms();
        for t in THREADS {
            let o = suite.run_nsq(opt, t);
            let s = &o.report.stats;
            let speedup = (base - o.time_ms()) / base * 100.0;
            let name = match opt {
                WaterNsqOpt::NoOpts => "NoOpts",
                WaterNsqOpt::LocalBarrier => "LocalBarrier",
                WaterNsqOpt::BothOpts => "BothOpts",
            };
            let _ = writeln!(
                out,
                "{:<13} {:>2} {:>7.1}% {:>8} {:>10} {:>9} {:>10} {:>9} {:>7} {:>7} {:>13} {:>10}",
                name,
                t,
                speedup,
                s.thread_switches,
                s.remote_faults,
                s.remote_locks,
                s.outstanding_faults,
                s.outstanding_locks,
                s.block_same_page,
                s.block_same_lock,
                s.diffs_created,
                s.diffs_used
            );
        }
    }
    out
}

/// Ablation study: switch off the paper's two multi-threading mechanisms
/// one at a time (P=8, T=4) and report the damage. Regenerates the design
/// rationale of §3: barrier-arrival aggregation and the local-queue lock
/// release policy.
pub fn ablation(scale: Scale) -> String {
    use crate::runner::{run_app, run_water_nsq_variant};
    let mut out = String::from(
        "== Ablation: the paper's multi-threading mechanisms (P=8, T=4) ==\n\
         app        variant                 time(ms)  barrier_msgs lock_msgs total_msgs  wait_lock(ms) wait_barrier(ms)\n",
    );
    let emit = |app: AppId, name: &str, agg: bool, pref: bool, out: &mut String| {
        let mut spec = RunSpec::new(app, scale, 8, 4);
        spec.aggregate_barriers = agg;
        spec.prefer_local_locks = pref;
        eprintln!("[harness] ablation {app} {name}");
        // Water-Nsq runs its unoptimized variant here: only transparently
        // multi-threaded code has the local lock contention that the
        // release policy exists to exploit.
        let o = if app == AppId::WaterNsq {
            run_water_nsq_variant(spec, WaterNsqOpt::NoOpts)
        } else {
            run_app(spec)
        };
        let _ = writeln!(
            out,
            "{:<10} {:<22} {:>9.1} {:>13} {:>9} {:>10} {:>14.0} {:>16.0}",
            app.name(),
            name,
            o.time_ms(),
            o.msgs(MsgClass::Barrier),
            o.msgs(MsgClass::Lock),
            o.total_msgs(),
            o.delay_ms(MsgClass::Lock),
            o.delay_ms(MsgClass::Barrier),
        );
    };
    for app in [AppId::Sor, AppId::Ocean, AppId::WaterNsq] {
        emit(app, "full system", true, true, &mut out);
        emit(app, "no barrier aggregation", false, true, &mut out);
        emit(app, "no local-first release", true, false, &mut out);
    }
    out.push_str("\n-- Ocean with/without the `r` reduction modification, P=8 T=4 --\n");
    out.push_str("variant                time(ms)  lock_msgs  bs_lock  wait_lock(ms)\n");
    for (name, use_reduction) in [("local-barrier (r)", true), ("transparent MT", false)] {
        let mut b = cvm_dsm::CvmBuilder::new({
            let mut c = cvm_dsm::CvmConfig::paper(8, 4);
            c.seed = 0x5EED_CAFE;
            c
        });
        let body = cvm_apps::registry::build_ocean_variant(&mut b, scale, use_reduction);
        eprintln!("[harness] reduction ablation Ocean {name}");
        let o = b.run(body);
        let _ = writeln!(
            out,
            "{:<22} {:>8.1} {:>10} {:>8} {:>13.0}",
            name,
            o.total_ms(),
            o.net.class_count(MsgClass::Lock),
            o.stats.block_same_lock,
            o.stats.wait_lock.as_ms_f64(),
        );
    }
    out.push_str(
        "\n-- FIFO vs LIFO scheduling (the paper's missing memory-conscious policy), P=8 T=4, memsim on --\n",
    );
    out.push_str("app        policy   time(ms)  dcache_misses  dtlb_misses  itlb_misses\n");
    for app in [AppId::Barnes, AppId::Ocean] {
        for (name, lifo) in [("FIFO", false), ("LIFO", true)] {
            let mut spec = RunSpec::new(app, scale, 8, 4);
            spec.memsim = true;
            spec.lifo = lifo;
            eprintln!("[harness] scheduler ablation {app} {name}");
            let o = run_app(spec);
            let m = o.report.mem;
            let _ = writeln!(
                out,
                "{:<10} {:<8} {:>8.1} {:>14} {:>12} {:>12}",
                app.name(),
                name,
                o.time_ms(),
                m.dcache,
                m.dtlb,
                m.itlb
            );
        }
    }
    out
}

/// Protocol comparison: the paper's lazy multi-writer protocol against
/// the eager-update alternative (CVM was "created specifically as a
/// platform for protocol experimentation"). Lazy invalidate trades fault
/// latency for bandwidth; eager update removes most read faults but
/// multiplies traffic with the copyset size — the classic result that
/// motivated lazy release consistency.
pub fn protocols(scale: Scale) -> String {
    use crate::runner::run_app;
    use cvm_dsm::ProtocolKind;
    let mut out = String::from("== Protocol comparison (P=8, T=2) ==\n");
    out.push_str(
        "app        protocol            time(ms) rem_faults diff_msgs  pushes  drops bw_kbytes\n",
    );
    for app in [AppId::Sor, AppId::Ocean, AppId::WaterNsq] {
        for proto in ProtocolKind::ALL {
            let mut spec = RunSpec::new(app, scale, 8, 2);
            spec.protocol = proto;
            eprintln!("[harness] protocol {app} {proto}");
            let o = run_app(spec);
            let _ = writeln!(
                out,
                "{:<10} {:<18} {:>9.1} {:>10} {:>9} {:>7} {:>6} {:>9}",
                app.name(),
                proto.name(),
                o.time_ms(),
                o.report.stats.remote_faults,
                o.msgs(MsgClass::Diff),
                o.report.stats.updates_pushed,
                o.report.stats.copies_dropped,
                o.bw_kb()
            );
        }
    }
    out
}

/// Latency percentiles: p50/p99/p999/max of every latency-bearing
/// protocol histogram, one markdown table over the whole suite at
/// P=8 T=2. The log₂ histograms behind the sweep's p90 columns carry
/// the full distribution; this renders the tail the mean hides.
pub fn latency(suite: &mut Suite) -> String {
    let mut out = String::from("== Latency percentiles (P=8, T=2) ==\n\n");
    out.push_str("| app | metric | count | p50 | p99 | p999 | max |\n");
    out.push_str("|---|---|---:|---:|---:|---:|---:|\n");
    for app in AppId::ALL {
        if !app.supports_threads(2) {
            continue;
        }
        let o = suite.run(app, 8, 2, false);
        let h = o.report.hist.clone();
        for (metric, hist) in [
            ("fault fetch (ns)", &h.fault_fetch_ns),
            ("lock 2-hop (ns)", &h.lock_2hop_ns),
            ("lock 3-hop (ns)", &h.lock_3hop_ns),
            ("barrier stall (ns)", &h.barrier_stall_ns),
            ("diff size (bytes)", &h.diff_bytes),
        ] {
            if hist.count() == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {} | {} |",
                app.name(),
                metric,
                hist.count(),
                hist.p50(),
                hist.p99(),
                hist.p999(),
                hist.max()
            );
        }
    }
    out
}

/// Perturbation study: the paper lists "application perturbation —
/// multi-threading changes the order that events occur... a
/// non-deterministic effect on performance" among its limiting factors.
/// Our runs are deterministic per seed, so the perturbation becomes
/// measurable: run each application with seeded ±50 µs wire jitter (which
/// reorders message deliveries exactly like real-network variance) and
/// report the spread of total time and key protocol actions.
pub fn perturb(scale: Scale, seeds: usize) -> String {
    use crate::runner::run_app;
    let mut out = String::from("== Perturbation across seeds (P=8, T=4) ==\n");
    out.push_str(
        "app          seeds  time_min(ms) time_med(ms) time_max(ms) spread  faults_min faults_max\n",
    );
    for app in AppId::ALL {
        if !app.supports_threads(4) {
            continue;
        }
        let mut times = Vec::new();
        let mut faults = Vec::new();
        for s in 0..seeds {
            let mut spec = RunSpec::new(app, scale, 8, 4);
            spec.seed = 0x5EED_0000 + s as u64;
            spec.jitter_us = 50;
            eprintln!("[harness] perturb {app} seed {s}");
            let o = run_app(spec);
            times.push(o.time_ms());
            faults.push(o.report.stats.remote_faults);
        }
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        faults.sort_unstable();
        let med = times[times.len() / 2];
        let spread = (times[times.len() - 1] - times[0]) / med * 100.0;
        let _ = writeln!(
            out,
            "{:<12} {:>5} {:>13.1} {:>12.1} {:>12.1} {:>6.1}% {:>10} {:>10}",
            app.name(),
            seeds,
            times[0],
            med,
            times[times.len() - 1],
            spread,
            faults[0],
            faults[faults.len() - 1],
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_all_apps() {
        let t = table1(Scale::Small);
        for id in AppId::ALL {
            assert!(t.contains(id.name()), "missing {id}");
        }
    }

    #[test]
    fn latency_table_renders_markdown_percentiles() {
        let mut suite = Suite::new(Scale::Small);
        let t = latency(&mut suite);
        assert!(t.contains("| app | metric | count | p50 | p99 | p999 | max |"));
        assert!(t.contains("fault fetch (ns)"));
        // Every body row is a well-formed markdown table row.
        for line in t.lines().filter(|l| l.starts_with("| ")) {
            assert_eq!(line.matches('|').count(), 8, "bad row: {line}");
        }
    }
}
