//! `cvm` — tables, single runs, benches and the verification checker
//! (`cvm check`); see [`cvm_harness::cli`] for commands.

fn main() {
    cvm_harness::cli::run();
}
