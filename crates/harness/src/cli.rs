//! Command-line driver shared by the `harness` and `cvm` binaries.
//!
//! `harness` keeps its historical name; `cvm` is the same tool under the
//! system's name, and is what the verification workflow documents
//! (`cvm check`). Each subcommand's implementation lives in a sibling
//! module — [`run_cli`](crate::run_cli), [`bench_cli`](crate::bench_cli),
//! [`sweep_cli`](crate::sweep_cli), [`check_cli`](crate::check_cli) —
//! this module keeps the shared argument helpers, the usage text and the
//! dispatcher.

use crate::tables::{self, Suite};
use crate::{micro, AppId, Scale};

pub(crate) fn usage() -> ! {
    eprintln!(
        "usage: cvm <micro|table1|fig1|table2|table3|fig2|table4|table5|latency|ablation|protocols|perturb|all> [--paper-scale]\n         \n         or:    cvm run <barnes|fft|ocean|sor|swm|water-sp|water-nsq>\n         or:    cvm bench [--json] [--nodes N] [--threads T] [--paper-scale]\n         or:    cvm bench --scale [--json] [--nodes LIST] [--threads T] [--shards S]\n         or:    cvm sweep [--json] [--workers N] [--nodes LIST] [--threads LIST]\n         or:    cvm serve [SCENARIO] [--sweep LIST] [--json] [--baseline FILE]\n         or:    cvm faults [--json] [--plan NAME]... [--workers N]\n         or:    cvm check [--dpor] [--app NAME]... [--schedules N] [--faults NAME]\n         or:    cvm explain --run FILE [--span ID | --slowest N | --resource R]\n         \n         run options:\n           --nodes N        processors (default 8)\n           --threads T      threads per node (default 2)\n           --paper-scale    the paper's input sizes\n           --protocol NAME  coherence protocol: lazy-mw | eager-update |\n                            home-lazy (default lazy-mw)\n           --eager          shorthand for --protocol eager-update\n           --lifo           memory-conscious LIFO scheduling\n           --memsim         enable the cache/TLB simulator\n           --shards S       event-core shards (default 1, the sequential\n                            loop); any S produces a byte-identical report,\n                            S > 1 pre-executes independent bursts\n                            concurrently on the host\n           --verify         run the online invariant oracle; findings are\n                            printed and make the exit status nonzero\n           --trace N        record and print the first N protocol events\n           --spans          record the causal span forest; the report JSON\n                            gains a 'spans' section for cvm explain\n           --json FILE      write the full run report as JSON to FILE\n           --chrome-trace FILE\n                            write the protocol trace as Chrome trace-event\n                            JSON (load in chrome://tracing or Perfetto);\n                            with --spans, nested span tracks and flow\n                            events are included\n           --replay FILE    re-execute a cvm-schedule-*.json counterexample\n                            (from cvm check --dpor) byte-identically; the\n                            positional app may be omitted, the exit status\n                            is 0 iff the recorded terminal state and\n                            findings reproduce exactly\n         \n         bench options:\n           --json           additionally write one BENCH_<app>.json per app\n                            (and BENCH_obs.json when --spans is on)\n           --spans          record span forests and emit the span summary\n           --scale          run the node-scaling ladder instead of the\n                            suite: each rung runs shards {{1,S}}, asserts\n                            byte-identical reports, and reports peak\n                            memory and the modelled burst speedup;\n                            --json writes BENCH_scale.json\n           --nodes LIST     (--scale) comma-separated rungs\n                            (default 8,16,32,64)\n           --shards S       (--scale) shard count of the parallel run\n                            (default 8)\n           --baseline FILE  compare against a committed baseline artifact;\n                            exit 1 on regression beyond twice the gate\n           --current FILE   compare FILE against the baseline instead of\n                            running the suite (works for any BENCH_*.json)\n           --gate PCT       regression gate percentage (default 5):\n                            warn above PCT, fail above 2*PCT\n         \n         explain options:\n           --run FILE       report JSON from cvm run --spans --json FILE\n           --slowest N      the N slowest root spans (default 5)\n           --span ID        one span with its ancestor chain\n           --resource R     root spans about one resource (page:17, lock:3,\n                            barrier:2)\n         \n         sweep options:\n           --json           write the aggregated report to BENCH_sweep.json\n           --spans          record span forests in every cell\n           --out FILE       write the aggregated report to FILE instead\n           --md FILE        write the markdown tables to FILE as well\n           --workers N      simulation worker threads (default: one per core);\n                            any value produces byte-identical reports\n           --nodes LIST     comma-separated processor counts (default 4,8,16)\n           --threads LIST   comma-separated threads/node levels (default 1,2,3,4)\n           --shards S       event-core shards for every cell (default 1);\n                            any value produces byte-identical reports\n           --app NAME       restrict to one app (repeatable; default: all 7)\n           --protocol LIST  comma-separated protocols to cross (default\n                            lazy-mw); several add a comparison table\n           --seed S         master seed; each configuration splits its own\n           --paper-scale    the paper's input sizes\n         \n         serve options:\n           SCENARIO         builtin (smoke | session) or a path to an INI\n                            scenario file ([store]/[traffic]/[system]);\n                            default session\n           --rate R         override the offered rate (requests/s)\n           --sweep LIST     comma-separated rate ladder; the summary and\n                            JSON mark the saturation knee\n           --cap N          consecutive-local-grant cap for shard leases\n                            (0 = unbounded local preference)\n           --seed S         master seed; each ladder cell splits its own\n           --workers N      host threads for ladder cells (default: one\n                            per core); byte-identical at any count\n           --shards S       event-core shards per cell (default 1);\n                            byte-identical at any count\n           --json           write BENCH_serve.json\n           --out FILE       write the JSON to FILE instead\n           --baseline FILE  gate against a committed baseline artifact\n           --gate PCT       regression gate percentage (default 5)\n         \n         faults options:\n           --json           write the campaign report to BENCH_faults.json\n           --out FILE       write the campaign report to FILE instead\n           --md FILE        write the markdown degradation tables to FILE\n           --workers N      simulation worker threads (default: one per core);\n                            any value produces byte-identical reports\n           --app NAME       restrict to one app (repeatable; default: all 7)\n           --protocol LIST  comma-separated protocols (default: all 3)\n           --plan NAME      fault plan from the catalog (repeatable;\n                            default: the whole catalog)\n           --nodes N        processors (default 4)\n           --threads T      threads per node (default 2)\n           --seed S         master seed; each cell splits its own\n           --paper-scale    the paper's input sizes\n           exit status is nonzero if any cell violated exactly-once\n           delivery or oracle cleanliness\n         \n         check options:\n           --app NAME       application to check (repeatable; default: all)\n           --protocol NAME  coherence protocol to explore (default lazy-mw)\n           --nodes N        processors (default 2)\n           --threads T      threads per node (default 2)\n           --schedules N    perturbed schedules per app (default 8); an\n                            unperturbed baseline always runs first\n           --seed S         base exploration seed (schedule 0 uses it\n                            verbatim, so reported seeds replay directly)\n           --budget N       scheduler decisions each schedule may perturb\n                            (default 64)\n           --faults NAME    layer a fault plan from the catalog under the\n                            explored schedules (loss, dup, reorder, ...)\n           --mutate KIND[:nth]\n                            inject a protocol mutation (oracle self-test):\n                            drop-notice | reorder-diff | skip-invalidate |\n                            skip-watermark | drop-grant-notice;\n                            exit status then inverts (0 = caught)\n           --trace-capacity N\n                            trace buffer per run (default 4000000)\n           --dpor           exhaustive DPOR exploration of every\n                            inequivalent interleaving instead of seeded\n                            shaking (defaults the scale to tiny; refuses\n                            --faults); failures are minimized into\n                            cvm-schedule-<app>.json replay files\n           --max-traces N   DPOR execution cap (default 20000); hitting it\n                            downgrades the verdict to non-exhaustive\n           --scale NAME     problem size: tiny | small | paper\n           --json           write the report to BENCH_check.json\n           --out FILE       write the report to FILE instead\n           --paper-scale    the paper's input sizes"
    );
    std::process::exit(2);
}

pub(crate) fn app_by_name(name: &str) -> Option<AppId> {
    Some(match name {
        "barnes" => AppId::Barnes,
        "fft" => AppId::Fft,
        "ocean" => AppId::Ocean,
        "sor" => AppId::Sor,
        "swm" | "swm750" => AppId::Swm750,
        "water-sp" => AppId::WaterSp,
        "water-nsq" => AppId::WaterNsq,
        _ => return None,
    })
}

pub(crate) fn parse_u64(s: &str) -> Option<u64> {
    s.strip_prefix("0x")
        .map_or_else(|| s.parse().ok(), |hex| u64::from_str_radix(hex, 16).ok())
}

pub(crate) fn parse_list(s: &str) -> Option<Vec<usize>> {
    let parts: Vec<usize> = s
        .split(',')
        .map(|p| p.trim().parse().ok())
        .collect::<Option<Vec<_>>>()?;
    (!parts.is_empty()).then_some(parts)
}

pub(crate) fn load_json(path: &str) -> cvm_sim::json::JsonValue {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    cvm_sim::json::JsonValue::parse(&text).unwrap_or_else(|e| {
        eprintln!("{path} is not valid JSON: {e}");
        std::process::exit(1);
    })
}

pub(crate) fn plan_by_name(name: &str) -> Option<&'static str> {
    cvm_net::PLAN_CATALOG.iter().find(|p| **p == name).copied()
}

fn run_explain(args: &[String]) {
    use crate::explain::{explain, Mode};
    let mut run_path: Option<String> = None;
    let mut mode = Mode::Slowest(5);
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--run" => run_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--slowest" => {
                let n = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                mode = Mode::Slowest(n);
            }
            "--span" => {
                let id = it
                    .next()
                    .and_then(|v| parse_u64(v))
                    .unwrap_or_else(|| usage());
                mode = Mode::Span(id);
            }
            "--resource" => {
                mode = Mode::Resource(it.next().cloned().unwrap_or_else(|| usage()));
            }
            _ => usage(),
        }
    }
    let Some(path) = run_path else { usage() };
    match explain(&load_json(&path), &mode) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("cvm explain: {e}");
            std::process::exit(1);
        }
    }
}

/// Entry point shared by both binaries: parses `std::env::args` and
/// dispatches.
pub fn run() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("run") {
        crate::run_cli::run_single(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("bench") {
        crate::bench_cli::run_bench(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("sweep") {
        crate::sweep_cli::run_sweep_cmd(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("serve") {
        crate::serve_cli::run_serve_cmd(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("faults") {
        crate::sweep_cli::run_faults_cmd(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("check") {
        crate::check_cli::run_check(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("explain") {
        run_explain(&args[1..]);
        return;
    }
    let mut cmd: Option<String> = None;
    let mut scale = Scale::Small;
    for a in &args {
        match a.as_str() {
            "--paper-scale" => scale = Scale::Paper,
            "--small" => scale = Scale::Small,
            s if !s.starts_with('-') && cmd.is_none() => cmd = Some(s.to_owned()),
            _ => usage(),
        }
    }
    let cmd = cmd.unwrap_or_else(|| usage());
    let mut suite = Suite::new(scale);
    match cmd.as_str() {
        "micro" => print!("{}", micro::render(&micro::report())),
        "table1" => print!("{}", tables::table1(scale)),
        "fig1" => print!("{}", tables::fig1(&mut suite)),
        "table2" => print!("{}", tables::table2(&mut suite)),
        "table3" => print!("{}", tables::table3(&mut suite)),
        "fig2" => print!("{}", tables::fig2(&mut suite)),
        "table4" => print!("{}", tables::table4(&mut suite)),
        "table5" => print!("{}", tables::table5(&mut suite)),
        "latency" => print!("{}", tables::latency(&mut suite)),
        "ablation" => print!("{}", tables::ablation(scale)),
        "protocols" => print!("{}", tables::protocols(scale)),
        "perturb" => print!("{}", tables::perturb(scale, 5)),
        "all" => {
            print!("{}", micro::render(&micro::report()));
            println!();
            print!("{}", tables::table1(scale));
            println!();
            print!("{}", tables::fig1(&mut suite));
            println!();
            print!("{}", tables::table2(&mut suite));
            println!();
            print!("{}", tables::table3(&mut suite));
            println!();
            print!("{}", tables::fig2(&mut suite));
            println!();
            print!("{}", tables::table4(&mut suite));
            println!();
            print!("{}", tables::table5(&mut suite));
            println!();
            print!("{}", tables::latency(&mut suite));
            println!();
            print!("{}", tables::ablation(scale));
            println!();
            print!("{}", tables::protocols(scale));
        }
        _ => usage(),
    }
}
