//! Command-line driver shared by the `harness` and `cvm` binaries.
//!
//! `harness` keeps its historical name; `cvm` is the same tool under the
//! system's name, and is what the verification workflow documents
//! (`cvm check`).

use crate::tables::{self, Suite};
use crate::{bench, micro, AppId, Scale};

pub(crate) fn usage() -> ! {
    eprintln!(
        "usage: cvm <micro|table1|fig1|table2|table3|fig2|table4|table5|latency|ablation|protocols|perturb|all> [--paper-scale]\n         \n         or:    cvm run <barnes|fft|ocean|sor|swm|water-sp|water-nsq>\n         or:    cvm bench [--json] [--nodes N] [--threads T] [--paper-scale]\n         or:    cvm sweep [--json] [--workers N] [--nodes LIST] [--threads LIST]\n         or:    cvm faults [--json] [--plan NAME]... [--workers N]\n         or:    cvm check [--dpor] [--app NAME]... [--schedules N] [--faults NAME]\n         or:    cvm explain --run FILE [--span ID | --slowest N | --resource R]\n         \n         run options:\n           --nodes N        processors (default 8)\n           --threads T      threads per node (default 2)\n           --paper-scale    the paper's input sizes\n           --protocol NAME  coherence protocol: lazy-mw | eager-update |\n                            home-lazy (default lazy-mw)\n           --eager          shorthand for --protocol eager-update\n           --lifo           memory-conscious LIFO scheduling\n           --memsim         enable the cache/TLB simulator\n           --verify         run the online invariant oracle; findings are\n                            printed and make the exit status nonzero\n           --trace N        record and print the first N protocol events\n           --spans          record the causal span forest; the report JSON\n                            gains a 'spans' section for cvm explain\n           --json FILE      write the full run report as JSON to FILE\n           --chrome-trace FILE\n                            write the protocol trace as Chrome trace-event\n                            JSON (load in chrome://tracing or Perfetto);\n                            with --spans, nested span tracks and flow\n                            events are included\n           --replay FILE    re-execute a cvm-schedule-*.json counterexample\n                            (from cvm check --dpor) byte-identically; the\n                            positional app may be omitted, the exit status\n                            is 0 iff the recorded terminal state and\n                            findings reproduce exactly\n         \n         bench options:\n           --json           additionally write one BENCH_<app>.json per app\n                            (and BENCH_obs.json when --spans is on)\n           --spans          record span forests and emit the span summary\n           --baseline FILE  compare against a committed baseline artifact;\n                            exit 1 on regression beyond twice the gate\n           --current FILE   compare FILE against the baseline instead of\n                            running the suite (works for any BENCH_*.json)\n           --gate PCT       regression gate percentage (default 5):\n                            warn above PCT, fail above 2*PCT\n         \n         explain options:\n           --run FILE       report JSON from cvm run --spans --json FILE\n           --slowest N      the N slowest root spans (default 5)\n           --span ID        one span with its ancestor chain\n           --resource R     root spans about one resource (page:17, lock:3,\n                            barrier:2)\n         \n         sweep options:\n           --json           write the aggregated report to BENCH_sweep.json\n           --spans          record span forests in every cell\n           --out FILE       write the aggregated report to FILE instead\n           --md FILE        write the markdown tables to FILE as well\n           --workers N      simulation worker threads (default: one per core);\n                            any value produces byte-identical reports\n           --nodes LIST     comma-separated processor counts (default 4,8,16)\n           --threads LIST   comma-separated threads/node levels (default 1,2,3,4)\n           --app NAME       restrict to one app (repeatable; default: all 7)\n           --protocol LIST  comma-separated protocols to cross (default\n                            lazy-mw); several add a comparison table\n           --seed S         master seed; each configuration splits its own\n           --paper-scale    the paper's input sizes\n         \n         faults options:\n           --json           write the campaign report to BENCH_faults.json\n           --out FILE       write the campaign report to FILE instead\n           --md FILE        write the markdown degradation tables to FILE\n           --workers N      simulation worker threads (default: one per core);\n                            any value produces byte-identical reports\n           --app NAME       restrict to one app (repeatable; default: all 7)\n           --protocol LIST  comma-separated protocols (default: all 3)\n           --plan NAME      fault plan from the catalog (repeatable;\n                            default: the whole catalog)\n           --nodes N        processors (default 4)\n           --threads T      threads per node (default 2)\n           --seed S         master seed; each cell splits its own\n           --paper-scale    the paper's input sizes\n           exit status is nonzero if any cell violated exactly-once\n           delivery or oracle cleanliness\n         \n         check options:\n           --app NAME       application to check (repeatable; default: all)\n           --protocol NAME  coherence protocol to explore (default lazy-mw)\n           --nodes N        processors (default 2)\n           --threads T      threads per node (default 2)\n           --schedules N    perturbed schedules per app (default 8); an\n                            unperturbed baseline always runs first\n           --seed S         base exploration seed (schedule 0 uses it\n                            verbatim, so reported seeds replay directly)\n           --budget N       scheduler decisions each schedule may perturb\n                            (default 64)\n           --faults NAME    layer a fault plan from the catalog under the\n                            explored schedules (loss, dup, reorder, ...)\n           --mutate KIND[:nth]\n                            inject a protocol mutation (oracle self-test):\n                            drop-notice | reorder-diff | skip-invalidate |\n                            skip-watermark | drop-grant-notice;\n                            exit status then inverts (0 = caught)\n           --trace-capacity N\n                            trace buffer per run (default 4000000)\n           --dpor           exhaustive DPOR exploration of every\n                            inequivalent interleaving instead of seeded\n                            shaking (defaults the scale to tiny; refuses\n                            --faults); failures are minimized into\n                            cvm-schedule-<app>.json replay files\n           --max-traces N   DPOR execution cap (default 20000); hitting it\n                            downgrades the verdict to non-exhaustive\n           --scale NAME     problem size: tiny | small | paper\n           --json           write the report to BENCH_check.json\n           --out FILE       write the report to FILE instead\n           --paper-scale    the paper's input sizes"
    );
    std::process::exit(2);
}

pub(crate) fn app_by_name(name: &str) -> Option<AppId> {
    Some(match name {
        "barnes" => AppId::Barnes,
        "fft" => AppId::Fft,
        "ocean" => AppId::Ocean,
        "sor" => AppId::Sor,
        "swm" | "swm750" => AppId::Swm750,
        "water-sp" => AppId::WaterSp,
        "water-nsq" => AppId::WaterNsq,
        _ => return None,
    })
}

pub(crate) fn parse_u64(s: &str) -> Option<u64> {
    s.strip_prefix("0x")
        .map_or_else(|| s.parse().ok(), |hex| u64::from_str_radix(hex, 16).ok())
}

fn run_single(args: &[String]) {
    use cvm_apps::build_app;
    use cvm_dsm::{CvmBuilder, CvmConfig, ProtocolKind};
    let mut app = None;
    let mut nodes = 8usize;
    let mut threads = 2usize;
    let mut scale = Scale::Small;
    let mut protocol = ProtocolKind::LazyMultiWriter;
    let mut lifo = false;
    let mut memsim = false;
    let mut verify = false;
    let mut trace = 0usize;
    let mut spans = false;
    let mut json_path: Option<String> = None;
    let mut chrome_path: Option<String> = None;
    let mut replay_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--nodes" => {
                nodes = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--threads" => {
                threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--paper-scale" => scale = Scale::Paper,
            "--protocol" => {
                protocol = it
                    .next()
                    .and_then(|v| ProtocolKind::parse(v))
                    .unwrap_or_else(|| usage());
            }
            "--eager" => protocol = ProtocolKind::EagerUpdate,
            "--lifo" => lifo = true,
            "--memsim" => memsim = true,
            "--verify" => verify = true,
            "--trace" => {
                trace = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--spans" => spans = true,
            "--json" => json_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--chrome-trace" => chrome_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--replay" => replay_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            name if app.is_none() => {
                app = app_by_name(name).or_else(|| usage());
            }
            _ => usage(),
        }
    }
    if let Some(path) = &replay_path {
        run_replay(app, path);
    }
    let Some(app) = app else { usage() };
    if !app.supports_threads(threads) {
        eprintln!("{app} does not support {threads} threads per node");
        std::process::exit(2);
    }
    let mut cfg = CvmConfig::paper(nodes, threads);
    cfg.protocol = protocol;
    cfg.lifo_schedule = lifo;
    cfg.memsim_enabled = memsim;
    cfg.verify = verify;
    cfg.spans = spans;
    cfg.trace_capacity = trace;
    if (chrome_path.is_some() || verify) && trace == 0 {
        // The timeline export and the offline race replay need events;
        // default to a generous buffer.
        cfg.trace_capacity = 1 << 20;
    }
    let mut b = CvmBuilder::new(cfg);
    let body = build_app(&mut b, app, scale);
    eprintln!("[harness] running {app} P={nodes} T={threads} protocol={protocol}");
    let report = b.run(body);
    println!("{report}");
    println!(
        "twins {} | local-lock acquires {} handoffs {} | barriers {} local {} reduces {}",
        report.stats.twins_created,
        report.stats.local_lock_acquires,
        report.stats.local_lock_handoffs,
        report.stats.barriers_crossed,
        report.stats.local_barriers,
        report.stats.global_reduces,
    );
    if report.stats.updates_pushed > 0 || report.stats.copies_dropped > 0 {
        println!(
            "pushes {} | copies dropped {}",
            report.stats.updates_pushed, report.stats.copies_dropped
        );
    }
    if let Some(t) = &report.trace {
        if trace > 0 {
            println!("\nprotocol trace (first {trace} events):");
            print!("{}", t.render(trace));
        }
        // Always account for what the capacity dropped, so a truncated
        // trace is never mistaken for a complete one.
        println!(
            "trace: {} events recorded, {} dropped ({} total)",
            t.len(),
            t.overflow(),
            t.events_total()
        );
    }
    if let Some(sf) = &report.spans {
        let cp = sf.critical_path(report.total_time);
        let ms = |ns: u64| ns as f64 / 1e6;
        println!(
            "spans: {} recorded ({} open); critical path: compute {:.3}ms",
            sf.len(),
            sf.open_count(),
            ms(cp.compute)
        );
        for (kind, ns) in &cp.by_kind {
            if *ns > 0 {
                println!("  {:<14} {:>10.3}ms", kind.name(), ms(*ns));
            }
        }
    }
    if let Some(path) = &json_path {
        let doc = report.to_json(crate::bench::TOP_N);
        std::fs::write(path, doc.to_pretty()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("[harness] wrote {path}");
    }
    if let Some(path) = &chrome_path {
        let Some(t) = &report.trace else {
            eprintln!("--chrome-trace needs tracing (internal error)");
            std::process::exit(1);
        };
        let doc = cvm_dsm::chrome_trace_with_spans(t, nodes, report.spans.as_ref());
        std::fs::write(path, doc.to_string()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!(
            "[harness] wrote {path} ({} trace events) — load in chrome://tracing or ui.perfetto.dev",
            t.len()
        );
    }
    if verify {
        let mut findings = report.findings.clone();
        match &report.trace {
            Some(t) if t.overflow() == 0 => {
                findings.extend(cvm_verify::replay_race_check(t, nodes));
            }
            _ => eprintln!("[harness] trace truncated; offline race replay skipped"),
        }
        if findings.is_empty() {
            println!("verify: 0 findings");
        } else {
            for f in &findings {
                println!("verify: {f}");
            }
            std::process::exit(1);
        }
    }
}

/// `cvm run [APP] --replay FILE`: re-execute a DPOR counterexample
/// byte-identically from its schedule file. Exit 0 iff the recorded
/// terminal-state fingerprint and findings reproduce exactly.
fn run_replay(app: Option<AppId>, path: &str) -> ! {
    let sched = cvm_verify::schedule_from_json(&load_json(path)).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(2);
    });
    if let Some(a) = app {
        if a != sched.plan.app {
            eprintln!(
                "{path} records a schedule for {}, not {}",
                sched.plan.app.slug(),
                a.slug()
            );
            std::process::exit(2);
        }
    }
    let plan = sched.plan;
    eprintln!(
        "[harness] replaying {} pinned pick(s) for {} P={} T={} protocol={}",
        sched.choices.len(),
        plan.app.slug(),
        plan.nodes,
        plan.threads,
        plan.protocol
    );
    let result = cvm_verify::run_scripted(plan, &sched.choices);
    for f in &result.findings {
        println!("finding: {f}");
    }
    if let Some(p) = &result.panic {
        println!("panic: {p}");
    }
    println!(
        "state hash {:016x} (recorded {:016x})",
        result.state_hash, sched.state_hash
    );
    if result.state_hash == sched.state_hash {
        println!("replay: byte-identical to the recorded counterexample");
        std::process::exit(0);
    }
    eprintln!("replay: DIVERGED from the recorded schedule");
    std::process::exit(1);
}

fn load_json(path: &str) -> cvm_sim::json::JsonValue {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    cvm_sim::json::JsonValue::parse(&text).unwrap_or_else(|e| {
        eprintln!("{path} is not valid JSON: {e}");
        std::process::exit(1);
    })
}

fn run_bench(args: &[String]) {
    let mut json = false;
    let mut spans = false;
    let mut nodes = 8usize;
    let mut threads = 2usize;
    let mut scale = Scale::Small;
    let mut baseline: Option<String> = None;
    let mut current: Option<String> = None;
    let mut gate_pct = 5.0f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--spans" => spans = true,
            "--baseline" => baseline = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--current" => current = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--gate" => {
                gate_pct = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|p: &f64| *p > 0.0)
                    .unwrap_or_else(|| usage());
            }
            "--nodes" => {
                nodes = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--threads" => {
                threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--paper-scale" => scale = Scale::Paper,
            _ => usage(),
        }
    }
    // File-vs-file mode: gate two committed artifacts, no runs at all.
    if let (Some(base_path), Some(cur_path)) = (&baseline, &current) {
        let outcome = crate::gate::compare(&load_json(base_path), &load_json(cur_path), gate_pct);
        print!("{}", outcome.render(gate_pct));
        std::process::exit(i32::from(outcome.failed()));
    }
    if current.is_some() {
        eprintln!("--current needs --baseline");
        usage();
    }
    // A gate run always needs the span summary to compare.
    let record_spans = spans || baseline.is_some();
    eprintln!("[harness] bench suite P={nodes} T={threads}");
    let outcomes = bench::run_suite_with(scale, nodes, threads, record_spans);
    print!("{}", bench::render_summary(&outcomes));
    if json {
        for o in &outcomes {
            let path = bench::file_name(o.spec.app);
            let doc = bench::to_json(o);
            std::fs::write(&path, doc.to_pretty()).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("[harness] wrote {path}");
        }
        if record_spans {
            let doc = bench::obs_json(&outcomes);
            std::fs::write(bench::OBS_FILE, doc.to_pretty()).unwrap_or_else(|e| {
                eprintln!("cannot write {}: {e}", bench::OBS_FILE);
                std::process::exit(1);
            });
            eprintln!("[harness] wrote {}", bench::OBS_FILE);
        }
    }
    if let Some(base_path) = &baseline {
        let outcome =
            crate::gate::compare(&load_json(base_path), &bench::obs_json(&outcomes), gate_pct);
        print!("{}", outcome.render(gate_pct));
        if outcome.failed() {
            std::process::exit(1);
        }
    }
}

fn run_explain(args: &[String]) {
    use crate::explain::{explain, Mode};
    let mut run_path: Option<String> = None;
    let mut mode = Mode::Slowest(5);
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--run" => run_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--slowest" => {
                let n = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                mode = Mode::Slowest(n);
            }
            "--span" => {
                let id = it
                    .next()
                    .and_then(|v| parse_u64(v))
                    .unwrap_or_else(|| usage());
                mode = Mode::Span(id);
            }
            "--resource" => {
                mode = Mode::Resource(it.next().cloned().unwrap_or_else(|| usage()));
            }
            _ => usage(),
        }
    }
    let Some(path) = run_path else { usage() };
    match explain(&load_json(&path), &mode) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("cvm explain: {e}");
            std::process::exit(1);
        }
    }
}

fn parse_list(s: &str) -> Option<Vec<usize>> {
    let parts: Vec<usize> = s
        .split(',')
        .map(|p| p.trim().parse().ok())
        .collect::<Option<Vec<_>>>()?;
    (!parts.is_empty()).then_some(parts)
}

fn run_sweep_cmd(args: &[String]) {
    use crate::sweep::{run_sweep, SweepConfig, FILE_NAME};
    let mut cfg = SweepConfig::default();
    let mut json = false;
    let mut out_path: Option<String> = None;
    let mut md_path: Option<String> = None;
    let mut apps: Vec<crate::AppId> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--spans" => cfg.spans = true,
            "--out" => out_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--md" => md_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--workers" => {
                cfg.workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--nodes" => {
                cfg.nodes = it
                    .next()
                    .and_then(|v| parse_list(v))
                    .unwrap_or_else(|| usage());
            }
            "--threads" => {
                cfg.threads = it
                    .next()
                    .and_then(|v| parse_list(v))
                    .unwrap_or_else(|| usage());
            }
            "--app" => {
                let name = it.next().map_or_else(|| usage(), String::as_str);
                apps.push(app_by_name(name).unwrap_or_else(|| usage()));
            }
            "--protocol" => {
                let list = it.next().map_or_else(|| usage(), String::as_str);
                cfg.protocols = list
                    .split(',')
                    .map(|s| cvm_dsm::ProtocolKind::parse(s.trim()))
                    .collect::<Option<Vec<_>>>()
                    .unwrap_or_else(|| usage());
                if cfg.protocols.is_empty() {
                    usage();
                }
            }
            "--seed" => {
                cfg.seed = it
                    .next()
                    .and_then(|v| parse_u64(v))
                    .unwrap_or_else(|| usage());
            }
            "--paper-scale" => cfg.scale = Scale::Paper,
            _ => usage(),
        }
    }
    if !apps.is_empty() {
        cfg.apps = apps;
    }
    let report = run_sweep(cfg);
    print!("{}", report.render_tables());
    if let Some(path) = &md_path {
        std::fs::write(path, report.render_tables()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("[sweep] wrote {path}");
    }
    if json || out_path.is_some() {
        let path = out_path.unwrap_or_else(|| FILE_NAME.to_owned());
        std::fs::write(&path, report.to_json().to_pretty()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("[sweep] wrote {path}");
    }
}

pub(crate) fn plan_by_name(name: &str) -> Option<&'static str> {
    cvm_net::PLAN_CATALOG.iter().find(|p| **p == name).copied()
}

fn run_faults_cmd(args: &[String]) {
    use crate::faults::{run_campaign, FaultsConfig, FILE_NAME};
    let mut cfg = FaultsConfig::default();
    let mut json = false;
    let mut out_path: Option<String> = None;
    let mut md_path: Option<String> = None;
    let mut apps: Vec<crate::AppId> = Vec::new();
    let mut plans: Vec<&'static str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--out" => out_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--md" => md_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--workers" => {
                cfg.workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--app" => {
                let name = it.next().map_or_else(|| usage(), String::as_str);
                apps.push(app_by_name(name).unwrap_or_else(|| usage()));
            }
            "--protocol" => {
                let list = it.next().map_or_else(|| usage(), String::as_str);
                cfg.protocols = list
                    .split(',')
                    .map(|s| cvm_dsm::ProtocolKind::parse(s.trim()))
                    .collect::<Option<Vec<_>>>()
                    .unwrap_or_else(|| usage());
                if cfg.protocols.is_empty() {
                    usage();
                }
            }
            "--plan" => {
                let name = it.next().map_or_else(|| usage(), String::as_str);
                plans.push(plan_by_name(name).unwrap_or_else(|| {
                    eprintln!(
                        "unknown fault plan {name:?}; catalog: {}",
                        cvm_net::PLAN_CATALOG.join(", ")
                    );
                    std::process::exit(2);
                }));
            }
            "--nodes" => {
                cfg.nodes = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--threads" => {
                cfg.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--seed" => {
                cfg.seed = it
                    .next()
                    .and_then(|v| parse_u64(v))
                    .unwrap_or_else(|| usage());
            }
            "--paper-scale" => cfg.scale = Scale::Paper,
            _ => usage(),
        }
    }
    if !apps.is_empty() {
        cfg.apps = apps;
    }
    if !plans.is_empty() {
        cfg.plans = plans;
    }
    cfg.apps.retain(|a| a.supports_threads(cfg.threads));
    let report = run_campaign(cfg);
    print!("{}", report.render_tables());
    if let Some(path) = &md_path {
        std::fs::write(path, report.render_tables()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("[faults] wrote {path}");
    }
    if json || out_path.is_some() {
        let path = out_path.unwrap_or_else(|| FILE_NAME.to_owned());
        std::fs::write(&path, report.to_json().to_pretty()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("[faults] wrote {path}");
    }
    if !report.clean() {
        eprintln!("[faults] FAIL: the campaign found violations");
        std::process::exit(1);
    }
}

/// Entry point shared by both binaries: parses `std::env::args` and
/// dispatches.
pub fn run() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("run") {
        run_single(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("bench") {
        run_bench(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("sweep") {
        run_sweep_cmd(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("faults") {
        run_faults_cmd(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("check") {
        crate::check_cli::run_check(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("explain") {
        run_explain(&args[1..]);
        return;
    }
    let mut cmd: Option<String> = None;
    let mut scale = Scale::Small;
    for a in &args {
        match a.as_str() {
            "--paper-scale" => scale = Scale::Paper,
            "--small" => scale = Scale::Small,
            s if !s.starts_with('-') && cmd.is_none() => cmd = Some(s.to_owned()),
            _ => usage(),
        }
    }
    let cmd = cmd.unwrap_or_else(|| usage());
    let mut suite = Suite::new(scale);
    match cmd.as_str() {
        "micro" => print!("{}", micro::render(&micro::report())),
        "table1" => print!("{}", tables::table1(scale)),
        "fig1" => print!("{}", tables::fig1(&mut suite)),
        "table2" => print!("{}", tables::table2(&mut suite)),
        "table3" => print!("{}", tables::table3(&mut suite)),
        "fig2" => print!("{}", tables::fig2(&mut suite)),
        "table4" => print!("{}", tables::table4(&mut suite)),
        "table5" => print!("{}", tables::table5(&mut suite)),
        "latency" => print!("{}", tables::latency(&mut suite)),
        "ablation" => print!("{}", tables::ablation(scale)),
        "protocols" => print!("{}", tables::protocols(scale)),
        "perturb" => print!("{}", tables::perturb(scale, 5)),
        "all" => {
            print!("{}", micro::render(&micro::report()));
            println!();
            print!("{}", tables::table1(scale));
            println!();
            print!("{}", tables::fig1(&mut suite));
            println!();
            print!("{}", tables::table2(&mut suite));
            println!();
            print!("{}", tables::table3(&mut suite));
            println!();
            print!("{}", tables::fig2(&mut suite));
            println!();
            print!("{}", tables::table4(&mut suite));
            println!();
            print!("{}", tables::table5(&mut suite));
            println!();
            print!("{}", tables::latency(&mut suite));
            println!();
            print!("{}", tables::ablation(scale));
            println!();
            print!("{}", tables::protocols(scale));
        }
        _ => usage(),
    }
}
