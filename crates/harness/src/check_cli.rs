//! The `cvm check` subcommand: flag parsing, dispatch into the verify
//! crate, and artifact output (the `BENCH_check.json` baseline and the
//! replayable `cvm-schedule-<app>.json` counterexample files).

use cvm_verify::check::schedule_file_name;
use cvm_verify::{schedule_to_json, CheckOptions};

use crate::cli::{app_by_name, parse_u64, plan_by_name, usage};
use crate::{AppId, Scale};

/// Default output file for `cvm check --json` (committed under
/// `baselines/` so the PR gate covers the exploration statistics).
pub const FILE_NAME: &str = "BENCH_check.json";

/// Parses and runs `cvm check ARGS`. Exits the process: 0 when every app
/// is clean (or, under `--mutate`, when the mutation was caught), nonzero
/// otherwise.
pub fn run_check(args: &[String]) {
    use cvm_dsm::InjectFault;
    let mut options = CheckOptions::default();
    let mut apps: Vec<AppId> = Vec::new();
    let mut json = false;
    let mut out_path: Option<String> = None;
    let mut scale_given = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--app" => {
                let name = it.next().map_or_else(|| usage(), String::as_str);
                if name == "all" {
                    apps.extend(AppId::ALL);
                } else {
                    apps.push(app_by_name(name).unwrap_or_else(|| usage()));
                }
            }
            "--protocol" => {
                options.protocol = it
                    .next()
                    .and_then(|v| cvm_dsm::ProtocolKind::parse(v))
                    .unwrap_or_else(|| usage());
            }
            "--nodes" => {
                options.nodes = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--threads" => {
                options.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--schedules" => {
                options.schedules = it
                    .next()
                    .and_then(|v| parse_u64(v))
                    .unwrap_or_else(|| usage());
            }
            "--seed" => {
                options.seed = it
                    .next()
                    .and_then(|v| parse_u64(v))
                    .unwrap_or_else(|| usage());
            }
            "--budget" => {
                options.budget = it
                    .next()
                    .and_then(|v| parse_u64(v))
                    .unwrap_or_else(|| usage());
            }
            "--mutate" => {
                let spec = it.next().map_or_else(|| usage(), String::as_str);
                options.inject = Some(InjectFault::parse(spec).unwrap_or_else(|| usage()));
            }
            "--faults" => {
                let name = it.next().map_or_else(|| usage(), String::as_str);
                options.faults = Some(plan_by_name(name).unwrap_or_else(|| {
                    eprintln!(
                        "unknown fault plan {name:?}; catalog: {}",
                        cvm_net::PLAN_CATALOG.join(", ")
                    );
                    std::process::exit(2);
                }));
            }
            "--trace-capacity" => {
                options.trace_capacity = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--dpor" => options.dpor = true,
            "--max-traces" => {
                options.max_traces = it
                    .next()
                    .and_then(|v| parse_u64(v))
                    .unwrap_or_else(|| usage());
            }
            "--json" => json = true,
            "--out" => out_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--scale" => {
                options.scale = it
                    .next()
                    .and_then(|v| Scale::parse(v))
                    .unwrap_or_else(|| usage());
                scale_given = true;
            }
            "--paper-scale" => {
                options.scale = Scale::Paper;
                scale_given = true;
            }
            _ => usage(),
        }
    }
    if options.dpor {
        if options.faults.is_some() {
            // DPOR's soundness rests on deterministic re-execution; a
            // seeded fault plan perturbs the wire between traces.
            eprintln!("cvm check: --dpor requires a deterministic wire; drop --faults");
            std::process::exit(2);
        }
        if !scale_given {
            // Exhaustion only terminates on the reduced kernels.
            options.scale = Scale::Tiny;
        }
    }
    if !apps.is_empty() {
        options.apps = apps;
    }
    options.apps.retain(|a| a.supports_threads(options.threads));
    let mutation = options
        .inject
        .map_or(String::new(), |f| format!(", mutation {f}"));
    if options.dpor {
        eprintln!(
            "[cvm check] {} app(s), {}x{}, {}, {}, DPOR (cap {} traces){mutation}",
            options.apps.len(),
            options.nodes,
            options.threads,
            options.protocol,
            options.scale.slug(),
            options.max_traces
        );
    } else {
        eprintln!(
            "[cvm check] {} app(s), {}x{}, {}, 1+{} schedules, budget {}{mutation}",
            options.apps.len(),
            options.nodes,
            options.threads,
            options.protocol,
            options.schedules,
            options.budget
        );
    }
    let report = cvm_verify::check::run_check(&options);
    print!("{}", report.render());
    // Every DPOR counterexample becomes a schedule file `cvm run --replay`
    // re-executes byte-identically (the render already points at it).
    for app in &report.apps {
        let Some(fail) = &app.failure else { continue };
        let Some(cx) = &fail.script else { continue };
        let path = schedule_file_name(app.app);
        let doc = schedule_to_json(&options.plan(app.app), cx);
        std::fs::write(&path, doc.to_pretty()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("[cvm check] wrote {path}");
    }
    if json || out_path.is_some() {
        let path = out_path.unwrap_or_else(|| FILE_NAME.to_owned());
        std::fs::write(&path, report.to_json().to_pretty()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("[cvm check] wrote {path}");
    }
    let ok = if options.inject.is_some() {
        // Self-test: the mutation must be *caught*.
        if report.clean() {
            eprintln!("[cvm check] FAIL: injected mutation went undetected");
        }
        !report.clean()
    } else {
        report.clean()
    };
    std::process::exit(i32::from(!ok));
}
