//! `harness` — the historical name of the [`cvm`](../cvm/index.html)
//! driver; see [`cvm_harness::cli`] for commands.

fn main() {
    cvm_harness::cli::run();
}
