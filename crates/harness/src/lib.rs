//! Experiment harness: regenerates every table and figure of the paper.
//!
//! | artifact | function | paper content |
//! |---|---|---|
//! | §4.1 micro | [`micro::report`] | lock/fault/barrier/switch costs |
//! | Table 1 | [`tables::table1`] | application specifics |
//! | Figure 1 | [`tables::fig1`] | normalized execution time, 4/8 procs × 1–4 threads, user/barrier/fault/lock split |
//! | Table 2 | [`tables::table2`] | communication delays, message counts, bandwidth |
//! | Table 3 | [`tables::table3`] | DSM actions (switches, faults, outstanding, block-same, diffs) |
//! | Figure 2 | [`tables::fig2`] | D-cache / D-TLB / I-TLB misses vs threads |
//! | Table 4 | [`tables::table4`] | scalability deltas at 4/8/16 processors |
//! | Table 5 | [`tables::table5`] | Water-Nsq optimization case study |
//!
//! Runs use the paper's latency constants ([`cvm_net::LatencyModel::paper`])
//! and default to laptop-scale inputs; pass [`Scale::Paper`] for the
//! paper's sizes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
pub mod bench;
pub mod bench_cli;
pub mod check_cli;
pub mod cli;
pub mod explain;
pub mod faults;
pub mod gate;
pub mod micro;
pub mod run_cli;
pub mod runner;
pub mod scale_bench;
pub mod serve;
pub mod serve_cli;
pub mod sweep;
pub mod sweep_cli;
pub mod tables;

pub use runner::{run_app, run_water_nsq_variant, RunOutcome, RunSpec};

pub use cvm_apps::{AppId, Scale, WaterNsqOpt};
