//! `cvm sweep` and `cvm faults` — the cross-product sweep and the
//! fault-injection campaign drivers.

use crate::cli::{app_by_name, parse_list, parse_u64, plan_by_name, usage};
use crate::Scale;

pub(crate) fn run_sweep_cmd(args: &[String]) {
    use crate::sweep::{run_sweep, SweepConfig, FILE_NAME};
    let mut cfg = SweepConfig::default();
    let mut json = false;
    let mut out_path: Option<String> = None;
    let mut md_path: Option<String> = None;
    let mut apps: Vec<crate::AppId> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--spans" => cfg.spans = true,
            "--out" => out_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--md" => md_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--workers" => {
                cfg.workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--nodes" => {
                cfg.nodes = it
                    .next()
                    .and_then(|v| parse_list(v))
                    .unwrap_or_else(|| usage());
            }
            "--threads" => {
                cfg.threads = it
                    .next()
                    .and_then(|v| parse_list(v))
                    .unwrap_or_else(|| usage());
            }
            "--shards" => {
                cfg.shards = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&s: &usize| s > 0)
                    .unwrap_or_else(|| usage());
            }
            "--app" => {
                let name = it.next().map_or_else(|| usage(), String::as_str);
                apps.push(app_by_name(name).unwrap_or_else(|| usage()));
            }
            "--protocol" => {
                let list = it.next().map_or_else(|| usage(), String::as_str);
                cfg.protocols = list
                    .split(',')
                    .map(|s| cvm_dsm::ProtocolKind::parse(s.trim()))
                    .collect::<Option<Vec<_>>>()
                    .unwrap_or_else(|| usage());
                if cfg.protocols.is_empty() {
                    usage();
                }
            }
            "--seed" => {
                cfg.seed = it
                    .next()
                    .and_then(|v| parse_u64(v))
                    .unwrap_or_else(|| usage());
            }
            "--paper-scale" => cfg.scale = Scale::Paper,
            _ => usage(),
        }
    }
    if !apps.is_empty() {
        cfg.apps = apps;
    }
    let report = run_sweep(cfg);
    print!("{}", report.render_tables());
    if let Some(path) = &md_path {
        std::fs::write(path, report.render_tables()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("[sweep] wrote {path}");
    }
    if json || out_path.is_some() {
        let path = out_path.unwrap_or_else(|| FILE_NAME.to_owned());
        std::fs::write(&path, report.to_json().to_pretty()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("[sweep] wrote {path}");
    }
}

pub(crate) fn run_faults_cmd(args: &[String]) {
    use crate::faults::{run_campaign, FaultsConfig, FILE_NAME};
    let mut cfg = FaultsConfig::default();
    let mut json = false;
    let mut out_path: Option<String> = None;
    let mut md_path: Option<String> = None;
    let mut apps: Vec<crate::AppId> = Vec::new();
    let mut plans: Vec<&'static str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--out" => out_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--md" => md_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--workers" => {
                cfg.workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--app" => {
                let name = it.next().map_or_else(|| usage(), String::as_str);
                apps.push(app_by_name(name).unwrap_or_else(|| usage()));
            }
            "--protocol" => {
                let list = it.next().map_or_else(|| usage(), String::as_str);
                cfg.protocols = list
                    .split(',')
                    .map(|s| cvm_dsm::ProtocolKind::parse(s.trim()))
                    .collect::<Option<Vec<_>>>()
                    .unwrap_or_else(|| usage());
                if cfg.protocols.is_empty() {
                    usage();
                }
            }
            "--plan" => {
                let name = it.next().map_or_else(|| usage(), String::as_str);
                plans.push(plan_by_name(name).unwrap_or_else(|| {
                    eprintln!(
                        "unknown fault plan {name:?}; catalog: {}",
                        cvm_net::PLAN_CATALOG.join(", ")
                    );
                    std::process::exit(2);
                }));
            }
            "--nodes" => {
                cfg.nodes = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--threads" => {
                cfg.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--seed" => {
                cfg.seed = it
                    .next()
                    .and_then(|v| parse_u64(v))
                    .unwrap_or_else(|| usage());
            }
            "--paper-scale" => cfg.scale = Scale::Paper,
            _ => usage(),
        }
    }
    if !apps.is_empty() {
        cfg.apps = apps;
    }
    if !plans.is_empty() {
        cfg.plans = plans;
    }
    cfg.apps.retain(|a| a.supports_threads(cfg.threads));
    let report = run_campaign(cfg);
    print!("{}", report.render_tables());
    if let Some(path) = &md_path {
        std::fs::write(path, report.render_tables()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("[faults] wrote {path}");
    }
    if json || out_path.is_some() {
        let path = out_path.unwrap_or_else(|| FILE_NAME.to_owned());
        std::fs::write(&path, report.to_json().to_pretty()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("[faults] wrote {path}");
    }
    if !report.clean() {
        eprintln!("[faults] FAIL: the campaign found violations");
        std::process::exit(1);
    }
}
