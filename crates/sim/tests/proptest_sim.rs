//! Randomized property tests on the simulation kernel, driven by the
//! crate's own deterministic [`SimRng`] so every run explores the same
//! cases and failures reproduce exactly.

use cvm_sim::{EventQueue, SimRng, VirtualTime};

const CASES: usize = 256;

/// The event queue is a stable priority queue: pops come out sorted by
/// time, and equal-time events preserve insertion order.
#[test]
fn event_queue_is_stable_sorted() {
    let mut rng = SimRng::seed_from(0xE4E4_0001);
    for _ in 0..CASES {
        let n = rng.below(300) as usize;
        let mut q = EventQueue::new();
        for i in 0..n {
            q.push(VirtualTime::from_us(rng.below(1000)), i);
        }
        let mut last: Option<(VirtualTime, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                assert!(t >= lt, "time order violated");
                if t == lt {
                    assert!(i > li, "stability violated at equal times");
                }
            }
            last = Some((t, i));
        }
        assert!(q.is_empty());
    }
}

/// Seeded RNG streams are reproducible and independent of call batching.
#[test]
fn rng_reproducible() {
    let mut meta = SimRng::seed_from(0xE4E4_0002);
    for _ in 0..CASES {
        let seed = meta.next_u64();
        let n = 1 + meta.below(99) as usize;
        let mut a = SimRng::seed_from(seed);
        let mut b = SimRng::seed_from(seed);
        let va: Vec<u64> = (0..n).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..n).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
    }
}

/// Shuffle is a permutation for arbitrary inputs.
#[test]
fn shuffle_permutes() {
    let mut meta = SimRng::seed_from(0xE4E4_0003);
    for _ in 0..CASES {
        let seed = meta.next_u64();
        let n = meta.below(200) as usize;
        let mut xs: Vec<u32> = (0..n).map(|_| meta.below(1000) as u32).collect();
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        SimRng::seed_from(seed).shuffle(&mut xs);
        xs.sort_unstable();
        assert_eq!(xs, sorted);
    }
}
