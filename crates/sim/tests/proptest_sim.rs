//! Property-based tests on the simulation kernel.

use cvm_sim::{EventQueue, SimRng, VirtualTime};
use proptest::prelude::*;

proptest! {
    /// The event queue is a stable priority queue: pops come out sorted
    /// by time, and equal-time events preserve insertion order.
    #[test]
    fn event_queue_is_stable_sorted(times in proptest::collection::vec(0u64..1000, 0..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(VirtualTime::from_us(t), i);
        }
        let mut last: Option<(VirtualTime, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t >= lt, "time order violated");
                if t == lt {
                    prop_assert!(i > li, "stability violated at equal times");
                }
            }
            last = Some((t, i));
        }
        prop_assert!(q.is_empty());
    }

    /// Seeded RNG streams are reproducible and independent of call
    /// batching.
    #[test]
    fn rng_reproducible(seed in any::<u64>(), n in 1usize..100) {
        let mut a = SimRng::seed_from(seed);
        let mut b = SimRng::seed_from(seed);
        let va: Vec<u64> = (0..n).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..n).map(|_| b.next_u64()).collect();
        prop_assert_eq!(va, vb);
    }

    /// Shuffle is a permutation for arbitrary inputs.
    #[test]
    fn shuffle_permutes(seed in any::<u64>(), mut xs in proptest::collection::vec(0u32..1000, 0..200)) {
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        SimRng::seed_from(seed).shuffle(&mut xs);
        xs.sort_unstable();
        prop_assert_eq!(xs, sorted);
    }
}
