//! Counters and accumulators shared by the simulation layers.
//!
//! All statistics the paper reports reduce to three shapes: event counts
//! (e.g. *Diffs Created*), running sums (e.g. *Outstanding Faults*, which
//! accumulates the number of already-outstanding requests each time a new
//! request is initiated), and time accumulators (e.g. non-overlapped lock
//! wait). [`Counter`] and [`TimeAccum`] cover these; [`Histogram`] adds a
//! distribution view used by diagnostics and tests.

use std::fmt;

use crate::time::SimDuration;

/// A monotonically increasing event counter.
///
/// # Example
///
/// ```
/// use cvm_sim::stats::Counter;
/// let mut faults = Counter::default();
/// faults.add(3);
/// faults.incr();
/// assert_eq!(faults.get(), 4);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Adds one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Accumulates virtual-time durations.
///
/// # Example
///
/// ```
/// use cvm_sim::stats::TimeAccum;
/// use cvm_sim::SimDuration;
/// let mut wait = TimeAccum::default();
/// wait.add(SimDuration::from_us(10));
/// wait.add(SimDuration::from_us(5));
/// assert_eq!(wait.total(), SimDuration::from_us(15));
/// assert_eq!(wait.count(), 2);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TimeAccum {
    total: SimDuration,
    count: u64,
}

impl TimeAccum {
    /// Records one duration sample.
    pub fn add(&mut self, d: SimDuration) {
        self.total += d;
        self.count += 1;
    }

    /// Sum of all samples.
    pub fn total(self) -> SimDuration {
        self.total
    }

    /// Number of samples.
    pub fn count(self) -> u64 {
        self.count
    }

    /// Mean sample, or zero when empty.
    pub fn mean(self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            self.total / self.count
        }
    }
}

impl fmt::Display for TimeAccum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} over {} samples", self.total, self.count)
    }
}

/// A small fixed-bucket histogram of non-negative integer samples.
///
/// Bucket `i < n-1` counts samples equal to `i`; the last bucket counts all
/// larger samples. Used for distributions such as "how many requests were
/// outstanding when a new one was issued".
///
/// # Example
///
/// ```
/// use cvm_sim::stats::Histogram;
/// let mut h = Histogram::new(4);
/// h.record(0);
/// h.record(1);
/// h.record(9); // overflows into the last bucket
/// assert_eq!(h.bucket(0), 1);
/// assert_eq!(h.bucket(3), 1);
/// assert_eq!(h.samples(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    samples: u64,
    sum: u64,
}

impl Histogram {
    /// Creates a histogram with `n` buckets.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "histogram needs at least one bucket");
        Histogram {
            buckets: vec![0; n],
            samples: 0,
            sum: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = (value as usize).min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
        self.samples += 1;
        self.sum += value;
    }

    /// Count in bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Number of buckets.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// True if the histogram has no buckets (never true for constructed
    /// histograms).
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Total samples recorded.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Sum of all sample values (the paper's "outstanding" totals are this
    /// running sum).
    pub fn sum(&self) -> u64 {
        self.sum
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "hist[{} samples, sum {}]", self.samples, self.sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::default();
        for _ in 0..10 {
            c.incr();
        }
        c.add(5);
        assert_eq!(c.get(), 15);
    }

    #[test]
    fn time_accum_mean() {
        let mut t = TimeAccum::default();
        assert_eq!(t.mean(), SimDuration::ZERO);
        t.add(SimDuration::from_us(4));
        t.add(SimDuration::from_us(8));
        assert_eq!(t.mean(), SimDuration::from_us(6));
    }

    #[test]
    fn histogram_overflow_bucket() {
        let mut h = Histogram::new(3);
        h.record(0);
        h.record(2);
        h.record(5);
        h.record(100);
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(1), 0);
        assert_eq!(h.bucket(2), 3);
        assert_eq!(h.sum(), 107);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_bucket_histogram_panics() {
        let _ = Histogram::new(0);
    }
}
