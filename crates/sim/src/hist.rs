//! Log₂-bucketed histograms for latency and size distributions.
//!
//! The paper's tables report aggregate counters; tuning work (hot-page
//! analysis, protocol comparisons) additionally needs *distributions* —
//! a 3-hop lock acquire hiding behind a cheap mean is exactly what the
//! histogram exposes. [`Log2Hist`] keeps one bucket per power of two, so
//! recording is O(1), memory is constant, and merging across nodes is a
//! component-wise add. Percentiles are resolved to the upper bound of the
//! containing bucket (a ≤ 2× overestimate by construction — the standard
//! HdrHistogram-style tradeoff at 1-bucket-per-octave resolution).
//!
//! # Example
//!
//! ```
//! use cvm_sim::hist::Log2Hist;
//! let mut h = Log2Hist::new();
//! for v in [3, 5, 9, 1000] {
//!     h.record(v);
//! }
//! assert_eq!(h.count(), 4);
//! assert_eq!(h.min(), 3);
//! assert_eq!(h.max(), 1000);
//! assert!(h.percentile(50.0) >= 5);
//! ```

use std::fmt;

/// Number of buckets: one for zero plus one per bit of a `u64`.
pub const BUCKETS: usize = 65;

/// A fixed-size log₂ histogram of `u64` samples.
///
/// Bucket 0 counts exact zeros; bucket `i >= 1` counts samples in
/// `[2^(i-1), 2^i)`. Exact `count`, `sum`, `min` and `max` are tracked
/// alongside the buckets.
#[derive(Clone, PartialEq, Eq)]
pub struct Log2Hist {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Log2Hist {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Hist {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Log2Hist {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index a value falls into.
    pub fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Inclusive lower bound of bucket `i`.
    pub fn bucket_lo(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Inclusive upper bound of bucket `i`.
    pub fn bucket_hi(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Count in bucket `i` (see type docs for bucket bounds).
    ///
    /// # Panics
    ///
    /// Panics if `i >= BUCKETS`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// The value at-or-below which `p` percent of samples fall, resolved
    /// to the containing bucket's upper bound (clamped to the observed
    /// max). Returns 0 when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `0.0..=100.0`.
    pub fn percentile(&self, p: f64) -> u64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_hi(i).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Median (see [`percentile`](Self::percentile) semantics).
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 90th percentile (see [`percentile`](Self::percentile) semantics).
    pub fn p90(&self) -> u64 {
        self.percentile(90.0)
    }

    /// 99th percentile (see [`percentile`](Self::percentile) semantics).
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// 99.9th percentile (see [`percentile`](Self::percentile)
    /// semantics).
    pub fn p999(&self) -> u64 {
        self.percentile(99.9)
    }

    /// Adds every sample of `other` into this histogram.
    pub fn merge(&mut self, other: &Log2Hist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Non-empty buckets as `(lo, hi, count)` triples, in ascending order.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_lo(i), Self::bucket_hi(i), c))
            .collect()
    }

    /// Clears all samples.
    pub fn reset(&mut self) {
        *self = Self::new();
    }
}

impl fmt::Debug for Log2Hist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Log2Hist[n={} min={} p50={} p90={} max={}]",
            self.count,
            self.min(),
            self.p50(),
            self.p90(),
            self.max()
        )
    }
}

impl fmt::Display for Log2Hist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return write!(f, "n=0");
        }
        write!(
            f,
            "n={} min={} p50={} p90={} max={}",
            self.count,
            self.min(),
            self.p50(),
            self.p90(),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_partition_u64() {
        assert_eq!(Log2Hist::bucket_of(0), 0);
        assert_eq!(Log2Hist::bucket_of(1), 1);
        assert_eq!(Log2Hist::bucket_of(2), 2);
        assert_eq!(Log2Hist::bucket_of(3), 2);
        assert_eq!(Log2Hist::bucket_of(4), 3);
        assert_eq!(Log2Hist::bucket_of(u64::MAX), 64);
        for i in 0..BUCKETS {
            let lo = Log2Hist::bucket_lo(i);
            let hi = Log2Hist::bucket_hi(i);
            assert!(lo <= hi);
            assert_eq!(Log2Hist::bucket_of(lo), i);
            assert_eq!(Log2Hist::bucket_of(hi), i);
        }
    }

    #[test]
    fn exact_aggregates() {
        let mut h = Log2Hist::new();
        for v in [0, 1, 7, 8, 1023] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1039);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1023);
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(3), 1);
        assert_eq!(h.bucket(4), 1);
        assert_eq!(h.bucket(10), 1);
    }

    #[test]
    fn percentile_within_one_octave() {
        let mut h = Log2Hist::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.p50();
        assert!((500..=1000).contains(&p50), "p50 = {p50}");
        let p90 = h.p90();
        assert!((900..=1000).contains(&p90), "p90 = {p90}");
        let p999 = h.p999();
        assert!((999..=1000).contains(&p999), "p999 = {p999}");
        assert_eq!(h.percentile(100.0), 1000);
    }

    #[test]
    fn empty_histogram_is_calm() {
        let h = Log2Hist::new();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn merge_matches_combined_recording() {
        let mut a = Log2Hist::new();
        let mut b = Log2Hist::new();
        let mut c = Log2Hist::new();
        for v in [1u64, 5, 100] {
            a.record(v);
            c.record(v);
        }
        for v in [0u64, 900, 70_000] {
            b.record(v);
            c.record(v);
        }
        a.merge(&b);
        assert_eq!(a, c);
    }

    #[test]
    fn single_sample_percentiles_are_exact() {
        let mut h = Log2Hist::new();
        h.record(937);
        assert_eq!(h.p50(), 937);
        assert_eq!(h.p90(), 937);
        assert_eq!(h.max(), 937);
    }
}
