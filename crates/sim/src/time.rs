//! Virtual time for the discrete-event simulation.
//!
//! Time is kept in integer nanoseconds so that all arithmetic is exact and
//! the event order is reproducible. The paper reports costs in microseconds
//! (e.g. a 937 µs 2-hop lock acquire); nanosecond resolution lets the memory
//! system charge sub-microsecond costs (cache hits of a few CPU cycles)
//! without rounding drift.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute point in virtual time, in nanoseconds since simulation start.
///
/// # Example
///
/// ```
/// use cvm_sim::{SimDuration, VirtualTime};
/// let t = VirtualTime::ZERO + SimDuration::from_us(3);
/// assert_eq!(t.as_us_f64(), 3.0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtualTime(u64);

/// A span of virtual time, in nanoseconds.
///
/// # Example
///
/// ```
/// use cvm_sim::SimDuration;
/// let d = SimDuration::from_us(2) + SimDuration::from_ns(500);
/// assert_eq!(d.as_ns(), 2_500);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl VirtualTime {
    /// The origin of simulated time.
    pub const ZERO: VirtualTime = VirtualTime(0);

    /// The far future (useful as a "no limit" sentinel).
    pub const MAX: VirtualTime = VirtualTime(u64::MAX);

    /// Constructs a time from raw nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        VirtualTime(ns)
    }

    /// Constructs a time from microseconds.
    pub const fn from_us(us: u64) -> Self {
        VirtualTime(us * 1_000)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Time since start, in microseconds (floating point).
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Time since start, in milliseconds (floating point).
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Elapsed duration since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    pub fn since(self, earlier: VirtualTime) -> SimDuration {
        debug_assert!(earlier.0 <= self.0, "time went backwards");
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two times.
    pub fn max(self, other: VirtualTime) -> VirtualTime {
        VirtualTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Constructs a duration from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Constructs a duration from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Constructs a duration from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Constructs a duration from fractional microseconds, rounding to the
    /// nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `us` is negative or not finite.
    pub fn from_us_f64(us: f64) -> Self {
        assert!(us.is_finite() && us >= 0.0, "invalid duration: {us}");
        SimDuration((us * 1_000.0).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Duration in microseconds (floating point).
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Duration in milliseconds (floating point).
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// True if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for VirtualTime {
    type Output = VirtualTime;
    fn add(self, rhs: SimDuration) -> VirtualTime {
        VirtualTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for VirtualTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<VirtualTime> for VirtualTime {
    type Output = SimDuration;
    fn sub(self, rhs: VirtualTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(rhs.0 <= self.0, "negative duration");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}us", self.as_us_f64())
    }
}

impl fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = VirtualTime::from_us(10);
        let d = SimDuration::from_us(3);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d).as_ns(), 13_000);
    }

    #[test]
    fn duration_from_fractional_us_rounds() {
        assert_eq!(SimDuration::from_us_f64(1.5).as_ns(), 1_500);
        assert_eq!(SimDuration::from_us_f64(0.0004).as_ns(), 0);
        assert_eq!(SimDuration::from_us_f64(0.0006).as_ns(), 1);
    }

    #[test]
    fn ordering_is_by_instant() {
        assert!(VirtualTime::from_us(1) < VirtualTime::from_us(2));
        assert!(SimDuration::from_ns(999) < SimDuration::from_us(1));
    }

    #[test]
    fn saturating_sub_never_underflows() {
        let a = SimDuration::from_us(1);
        let b = SimDuration::from_us(2);
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", VirtualTime::ZERO).is_empty());
        assert!(!format!("{:?}", SimDuration::ZERO).is_empty());
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_us).sum();
        assert_eq!(total, SimDuration::from_us(10));
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_us_f64(-1.0);
    }
}
