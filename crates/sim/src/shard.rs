//! Sharded event queue for the parallel discrete-event core.
//!
//! Scaling the simulator to hundreds of nodes means the driver can no
//! longer treat the event set as one monolithic heap: the parallel engine
//! partitions nodes across *shards*, keeps one heap per shard, and merges
//! shard heads on demand. The merge key is the same global `(time, seq)`
//! pair a single [`EventQueue`](crate::EventQueue) would use — sequence
//! numbers are assigned at push time from one shared counter — so the
//! drained order is **identical to a single queue at any shard count**,
//! and identical no matter in which order shards complete their work.
//! That invariance is what lets the driver overlap shard-local work in
//! real time while the simulated execution stays byte-for-byte
//! deterministic.
//!
//! Two pieces live here:
//!
//! * [`ShardMap`] — a balanced, strided partition of node ids onto
//!   shards (`O(1)` lookup, no hashing). The stride matters for burst
//!   overlap: event wavefronts (a barrier releasing every node at one
//!   instant) are pushed — and therefore popped — in ascending node
//!   order, so `node % shards` places each consecutive wave of `shards`
//!   events on *distinct* shards. The window planner can then keep one
//!   burst per shard in flight continuously through the wave, where a
//!   contiguous block map would leave it starved behind the one shard
//!   whose block the wavefront is currently draining.
//! * [`ShardedEventQueue`] — per-shard heaps with a global-order merge
//!   `pop` and per-shard head peeks for the driver's window planner.

use crate::event::EventQueue;
use crate::time::VirtualTime;

/// A balanced strided partition of `nodes` node ids onto `shards`
/// shards: node `n` belongs to shard `n % shards`, so any run of
/// `shards` consecutive node ids covers every shard once. Both the
/// forward map (`nodes_of`) and the reverse map (`shard_of`) are closed
/// form — no per-node table.
///
/// # Example
///
/// ```
/// use cvm_sim::shard::ShardMap;
///
/// let m = ShardMap::new(10, 4); // shard sizes 3, 3, 2, 2
/// assert_eq!(m.shard_of(0), 0);
/// assert_eq!(m.shard_of(2), 2);
/// assert_eq!(m.shard_of(5), 1);
/// assert_eq!(m.shard_of(9), 1);
/// assert_eq!(m.nodes_of(1).collect::<Vec<_>>(), [1, 5, 9]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    nodes: usize,
    shards: usize,
}

impl ShardMap {
    /// Creates a partition of `nodes` node ids onto `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(nodes: usize, shards: usize) -> Self {
        assert!(shards > 0, "shard count must be positive");
        let shards = shards.min(nodes.max(1));
        ShardMap { nodes, shards }
    }

    /// Number of shards (clamped to the node count).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Number of nodes partitioned.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The shard owning `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn shard_of(&self, node: usize) -> usize {
        assert!(node < self.nodes, "node {node} out of range");
        node % self.shards
    }

    /// The node ids owned by `shard`, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn nodes_of(&self, shard: usize) -> impl ExactSizeIterator<Item = usize> {
        assert!(shard < self.shards, "shard {shard} out of range");
        (shard..self.nodes).step_by(self.shards)
    }
}

/// Per-shard event heaps merged in global `(time, seq)` order.
///
/// Functionally identical to one [`EventQueue`](crate::EventQueue): `push`
/// stamps a single global sequence number and routes the event to its
/// node's shard heap; `pop` scans the shard heads (`O(shards)`) for the
/// globally earliest `(time, seq)` key. The per-shard heads are also
/// exposed directly ([`shard_head`](Self::shard_head)) so a conservative
/// window planner can inspect each shard's next event without paying for
/// a full merge.
#[derive(Debug)]
pub struct ShardedEventQueue<E> {
    shards: Vec<EventQueue<E>>,
    map: ShardMap,
    seq: u64,
    len: usize,
}

impl<E> ShardedEventQueue<E> {
    /// Creates a queue partitioned by `map`, pre-sizing each shard heap
    /// for `per_node_cap` events per owned node (the warm-up burst pushes
    /// up to node×thread events before anything pops).
    pub fn new(map: ShardMap, per_node_cap: usize) -> Self {
        let shards = (0..map.shards())
            .map(|s| EventQueue::with_capacity(map.nodes_of(s).len() * per_node_cap))
            .collect();
        ShardedEventQueue {
            shards,
            map,
            seq: 0,
            len: 0,
        }
    }

    /// The node partition this queue routes by.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Schedules `event` for `node` at `time`, in global push order.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn push(&mut self, time: VirtualTime, node: usize, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.len += 1;
        self.shards[self.map.shard_of(node)].push_with_seq(time, seq, event);
    }

    /// Removes and returns the globally earliest event, if any — the
    /// exact event a single queue with the same push history would pop.
    pub fn pop(&mut self) -> Option<(VirtualTime, E)> {
        let best = self.earliest_shard()?;
        self.len -= 1;
        self.shards[best].pop()
    }

    /// The firing time of the globally earliest pending event.
    pub fn peek_time(&self) -> Option<VirtualTime> {
        self.earliest_shard()
            .and_then(|s| self.shards[s].peek_time())
    }

    /// The earliest pending event of one shard, without removing it.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard_head(&self, shard: usize) -> Option<(VirtualTime, &E)> {
        self.shards[shard].peek()
    }

    /// Number of pending events across all shards.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending anywhere.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of events ever pushed (liveness metric).
    pub fn pushed_total(&self) -> u64 {
        self.seq
    }

    /// Index of the shard holding the globally earliest `(time, seq)`.
    fn earliest_shard(&self) -> Option<usize> {
        let mut best: Option<(VirtualTime, u64, usize)> = None;
        for (s, q) in self.shards.iter().enumerate() {
            if let Some((t, seq)) = q.peek_key() {
                if best.is_none_or(|(bt, bs, _)| (t, seq) < (bt, bs)) {
                    best = Some((t, seq, s));
                }
            }
        }
        best.map(|(_, _, s)| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn shard_map_is_a_partition() {
        for nodes in [1usize, 2, 3, 7, 10, 64, 257] {
            for shards in [1usize, 2, 3, 4, 8, 64] {
                let m = ShardMap::new(nodes, shards);
                let mut owner = vec![usize::MAX; nodes];
                for s in 0..m.shards() {
                    for n in m.nodes_of(s) {
                        assert_eq!(owner[n], usize::MAX, "node {n} owned twice");
                        owner[n] = s;
                    }
                }
                for (n, &s) in owner.iter().enumerate() {
                    assert_ne!(s, usize::MAX, "node {n} unowned");
                    assert_eq!(m.shard_of(n), s, "maps disagree at node {n}");
                }
            }
        }
    }

    #[test]
    fn shard_map_balance_is_within_one() {
        let m = ShardMap::new(10, 4);
        let sizes: Vec<usize> = (0..4).map(|s| m.nodes_of(s).len()).collect();
        assert_eq!(sizes, [3, 3, 2, 2]);
    }

    #[test]
    fn more_shards_than_nodes_clamps() {
        let m = ShardMap::new(3, 16);
        assert_eq!(m.shards(), 3);
        assert_eq!(m.shard_of(2), 2);
    }

    #[test]
    fn merge_matches_single_queue() {
        // Property: for random pushes across shard counts, the drained
        // order equals a single EventQueue's order exactly.
        let mut rng = SimRng::seed_from(0xD15C);
        for shards in [1usize, 2, 3, 4, 7] {
            let nodes = 12;
            let mut reference = EventQueue::new();
            let mut sharded = ShardedEventQueue::new(ShardMap::new(nodes, shards), 2);
            for i in 0..500u64 {
                let t = VirtualTime::from_us(rng.below(50));
                let node = rng.below(nodes as u64) as usize;
                reference.push(t, i);
                sharded.push(t, node, i);
            }
            assert_eq!(sharded.len(), 500);
            let want: Vec<(VirtualTime, u64)> = std::iter::from_fn(|| reference.pop()).collect();
            let got: Vec<(VirtualTime, u64)> = std::iter::from_fn(|| sharded.pop()).collect();
            assert_eq!(got, want, "shards={shards} diverged from single queue");
        }
    }

    #[test]
    fn merge_matches_single_queue_under_interleaved_drains() {
        // Property: interleaving pops with pushes (the driver's real
        // access pattern) cannot break the global order either — a
        // mirrored single queue pops the same events at every step.
        let mut rng = SimRng::seed_from(0xFACE);
        let mut reference = EventQueue::new();
        let mut sharded = ShardedEventQueue::new(ShardMap::new(8, 4), 2);
        let mut popped = 0usize;
        for round in 0..200u64 {
            for k in 0..3 {
                let t = VirtualTime::from_us(round + rng.below(20));
                let e = round * 3 + k;
                reference.push(t, e);
                sharded.push(t, rng.below(8) as usize, e);
            }
            if round % 2 == 0 {
                assert_eq!(sharded.pop(), reference.pop());
                popped += 1;
            }
        }
        while let Some(got) = sharded.pop() {
            assert_eq!(Some(got), reference.pop());
            popped += 1;
        }
        assert!(reference.pop().is_none());
        assert_eq!(popped, 600);
    }

    #[test]
    fn shard_heads_expose_per_shard_minima() {
        let mut q = ShardedEventQueue::new(ShardMap::new(4, 2), 1);
        q.push(VirtualTime::from_us(9), 0, 'a'); // shard 0
        q.push(VirtualTime::from_us(5), 2, 'b'); // shard 0, earlier
        q.push(VirtualTime::from_us(7), 3, 'c'); // shard 1
        assert_eq!(q.shard_head(0), Some((VirtualTime::from_us(5), &'b')));
        assert_eq!(q.shard_head(1), Some((VirtualTime::from_us(7), &'c')));
        assert_eq!(q.peek_time(), Some(VirtualTime::from_us(5)));
        assert_eq!(q.pop(), Some((VirtualTime::from_us(5), 'b')));
        assert_eq!(q.shard_head(0), Some((VirtualTime::from_us(9), &'a')));
    }
}
