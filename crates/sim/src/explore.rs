//! Seeded schedule exploration: perturbing the cooperative scheduler's
//! switch decisions.
//!
//! The cooperative scheduler normally picks the next ready thread by a
//! fixed FIFO (or LIFO) policy, so one seed yields one interleaving. To
//! check protocol invariants *under adversarial schedules*, an
//! [`ExploreSchedule`] derived from an [`ExploreSpec`] overrides a bounded
//! number of those pick decisions with seeded-random choices among the
//! ready set, then falls back to the default policy. Because both the
//! random stream and the budget are functions of `(seed, budget)` alone,
//! any failing schedule is replayable from those two integers — the
//! checker prints them as the reproduction seed and minimizes by shrinking
//! the budget.

use crate::rng::SimRng;

/// A replayable description of one explored schedule: the random seed and
/// how many scheduler decisions to perturb before reverting to the
/// default policy. Small budgets make minimized failures readable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreSpec {
    /// Seed for the decision stream.
    pub seed: u64,
    /// Number of pick decisions to perturb; after these, the scheduler's
    /// default policy resumes.
    pub budget: u64,
}

/// Live state while a perturbed run executes: the decision stream plus a
/// count of decisions taken (reported back for minimization diagnostics).
#[derive(Debug, Clone)]
pub struct ExploreSchedule {
    rng: SimRng,
    remaining: u64,
    decisions: u64,
}

impl ExploreSchedule {
    /// Starts the decision stream for `spec`.
    pub fn new(spec: ExploreSpec) -> Self {
        ExploreSchedule {
            rng: SimRng::seed_from(spec.seed).derive(0x5C4E_D01E),
            remaining: spec.budget,
            decisions: 0,
        }
    }

    /// Picks an index into a ready queue of length `len`, or `None` to
    /// defer to the scheduler's default policy (budget exhausted, or the
    /// choice is forced). Counts only real decisions against the budget.
    pub fn pick(&mut self, len: usize) -> Option<usize> {
        if len < 2 || self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.decisions += 1;
        Some(self.rng.below(len as u64) as usize)
    }

    /// Perturbation decisions actually taken so far.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_spec_same_decisions() {
        let spec = ExploreSpec {
            seed: 42,
            budget: 16,
        };
        let mut a = ExploreSchedule::new(spec);
        let mut b = ExploreSchedule::new(spec);
        for len in [2usize, 5, 3, 7, 2, 9, 4, 6] {
            assert_eq!(a.pick(len), b.pick(len));
        }
        assert_eq!(a.decisions(), b.decisions());
    }

    #[test]
    fn budget_bounds_decisions_and_forced_picks_are_free() {
        let mut s = ExploreSchedule::new(ExploreSpec { seed: 7, budget: 3 });
        assert_eq!(s.pick(1), None, "singleton queue is forced");
        assert_eq!(s.decisions(), 0);
        for _ in 0..3 {
            let pick = s.pick(4).expect("within budget");
            assert!(pick < 4);
        }
        assert_eq!(s.pick(4), None, "budget exhausted");
        assert_eq!(s.decisions(), 3);
    }

    #[test]
    fn zero_budget_never_perturbs() {
        let mut s = ExploreSchedule::new(ExploreSpec { seed: 9, budget: 0 });
        assert_eq!(s.pick(8), None);
        assert_eq!(s.decisions(), 0);
    }

    #[test]
    fn picks_stay_in_range() {
        let mut s = ExploreSchedule::new(ExploreSpec {
            seed: 0xDEAD,
            budget: 1000,
        });
        for len in 2..50usize {
            for _ in 0..4 {
                let p = s.pick(len).unwrap();
                assert!(p < len, "pick {p} out of range for len {len}");
            }
        }
    }
}
