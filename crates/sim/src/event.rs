//! The global event queue.
//!
//! Events are ordered by `(time, sequence)`: two events scheduled for the
//! same instant fire in the order they were pushed. This total order is what
//! makes the whole simulation deterministic — no wall-clock or thread
//! scheduling effect can reorder event processing.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::VirtualTime;

/// A deterministic priority queue of timed events.
///
/// # Example
///
/// ```
/// use cvm_sim::{EventQueue, VirtualTime};
///
/// let mut q = EventQueue::new();
/// q.push(VirtualTime::from_us(2), 'b');
/// q.push(VirtualTime::from_us(1), 'a');
/// q.push(VirtualTime::from_us(2), 'c'); // same instant as 'b', pushed later
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['a', 'b', 'c']);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
}

#[derive(Debug)]
struct Scheduled<E> {
    time: VirtualTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest (time, seq) pops first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    pub fn push(&mut self, time: VirtualTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(VirtualTime, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// The firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<VirtualTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// The earliest pending event and its firing time, without removing it.
    /// Lets a caller decide whether the head is still meaningful (e.g. a
    /// cancelled timer) before popping it.
    pub fn peek(&self) -> Option<(VirtualTime, &E)> {
        self.heap.peek().map(|s| (s.time, &s.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever pushed (used as a liveness metric).
    pub fn pushed_total(&self) -> u64 {
        self.seq
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for us in [5u64, 1, 4, 2, 3] {
            q.push(VirtualTime::from_us(us), us);
        }
        let mut got = Vec::new();
        while let Some((t, e)) = q.pop() {
            assert_eq!(t, VirtualTime::from_us(e));
            got.push(e);
        }
        assert_eq!(got, [1, 2, 3, 4, 5]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = VirtualTime::from_us(7);
        for i in 0..100 {
            q.push(t, i);
        }
        let got: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert!(q.peek_time().is_none());
        q.push(VirtualTime::from_us(3), ());
        q.push(VirtualTime::from_us(1), ());
        assert_eq!(q.peek_time(), Some(VirtualTime::from_us(1)));
        q.pop();
        assert_eq!(q.peek_time(), Some(VirtualTime::from_us(3)));
    }

    #[test]
    fn len_and_pushed_total_track() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(VirtualTime::ZERO, ());
        q.push(VirtualTime::ZERO, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.pushed_total(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.pushed_total(), 2);
    }
}
