//! The global event queue.
//!
//! Events are ordered by `(time, sequence)`: two events scheduled for the
//! same instant fire in the order they were pushed. This total order is what
//! makes the whole simulation deterministic — no wall-clock or thread
//! scheduling effect can reorder event processing.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::VirtualTime;

/// A deterministic priority queue of timed events.
///
/// # Example
///
/// ```
/// use cvm_sim::{EventQueue, VirtualTime};
///
/// let mut q = EventQueue::new();
/// q.push(VirtualTime::from_us(2), 'b');
/// q.push(VirtualTime::from_us(1), 'a');
/// q.push(VirtualTime::from_us(2), 'c'); // same instant as 'b', pushed later
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['a', 'b', 'c']);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
}

#[derive(Debug)]
struct Scheduled<E> {
    time: VirtualTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest (time, seq) pops first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Creates an empty queue whose heap can hold `cap` events before
    /// reallocating. Sized from the config's node×thread count, the heap
    /// never grows during the warm-up burst.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
        }
    }

    /// Number of events the heap can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Schedules `event` to fire at `time`.
    pub fn push(&mut self, time: VirtualTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Schedules `event` at `time` with an externally assigned sequence
    /// number (the sharded queue stamps one global sequence across all
    /// shard heaps so the merged order matches a single queue).
    pub(crate) fn push_with_seq(&mut self, time: VirtualTime, seq: u64, event: E) {
        self.seq = self.seq.max(seq + 1);
        self.heap.push(Scheduled { time, seq, event });
    }

    /// The `(time, seq)` key of the earliest pending event (the merge key
    /// used by the sharded queue).
    pub(crate) fn peek_key(&self) -> Option<(VirtualTime, u64)> {
        self.heap.peek().map(|s| (s.time, s.seq))
    }

    /// Visits every pending event in no particular order (used to compute
    /// conservative per-destination time floors without draining).
    pub fn iter(&self) -> impl Iterator<Item = (VirtualTime, &E)> {
        self.heap.iter().map(|s| (s.time, &s.event))
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(VirtualTime, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// The firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<VirtualTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// The earliest pending event and its firing time, without removing it.
    /// Lets a caller decide whether the head is still meaningful (e.g. a
    /// cancelled timer) before popping it.
    pub fn peek(&self) -> Option<(VirtualTime, &E)> {
        self.heap.peek().map(|s| (s.time, &s.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever pushed (used as a liveness metric).
    pub fn pushed_total(&self) -> u64 {
        self.seq
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for us in [5u64, 1, 4, 2, 3] {
            q.push(VirtualTime::from_us(us), us);
        }
        let mut got = Vec::new();
        while let Some((t, e)) = q.pop() {
            assert_eq!(t, VirtualTime::from_us(e));
            got.push(e);
        }
        assert_eq!(got, [1, 2, 3, 4, 5]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = VirtualTime::from_us(7);
        for i in 0..100 {
            q.push(t, i);
        }
        let got: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert!(q.peek_time().is_none());
        q.push(VirtualTime::from_us(3), ());
        q.push(VirtualTime::from_us(1), ());
        assert_eq!(q.peek_time(), Some(VirtualTime::from_us(1)));
        q.pop();
        assert_eq!(q.peek_time(), Some(VirtualTime::from_us(3)));
    }

    #[test]
    fn presized_heap_never_reallocates_within_capacity() {
        let mut q = EventQueue::with_capacity(64);
        let cap = q.capacity();
        assert!(cap >= 64);
        for i in 0..64u64 {
            q.push(VirtualTime::from_us(i), i);
            debug_assert!(q.len() <= q.capacity(), "heap grew past its pre-size");
        }
        assert_eq!(q.capacity(), cap, "64 pushes fit the pre-sized heap");
        let got: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(got, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn iter_visits_all_pending_events() {
        let mut q = EventQueue::new();
        for us in [5u64, 1, 4] {
            q.push(VirtualTime::from_us(us), us);
        }
        let mut seen: Vec<u64> = q.iter().map(|(_, &e)| e).collect();
        seen.sort_unstable();
        assert_eq!(seen, [1, 4, 5]);
    }

    #[test]
    fn len_and_pushed_total_track() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(VirtualTime::ZERO, ());
        q.push(VirtualTime::ZERO, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.pushed_total(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.pushed_total(), 2);
    }
}
