//! Dependency-free JSON document model, writer, and parser.
//!
//! Reports and trace exports must be machine-readable and *byte-stable*:
//! two identical runs must serialize to identical bytes so perf diffs and
//! golden tests work. [`JsonValue`] keeps object keys in insertion order,
//! writes integers exactly, and formats floats with a fixed shortest-
//! round-trip scheme, so serialization is a pure function of the value.
//!
//! The parser accepts strict JSON (no comments, no trailing commas) and
//! exists so round-trip tests don't need an external crate.
//!
//! # Example
//!
//! ```
//! use cvm_sim::json::JsonValue;
//! let mut obj = JsonValue::object();
//! obj.set("app", JsonValue::from("sor"));
//! obj.set("nodes", JsonValue::from(4u64));
//! let text = obj.to_string();
//! assert_eq!(text, r#"{"app":"sor","nodes":4}"#);
//! let back = JsonValue::parse(&text).unwrap();
//! assert_eq!(back.get("nodes").unwrap().as_u64(), Some(4));
//! ```

use std::fmt;

/// A JSON document: null, bool, number (int or float), string, array, or
/// object with insertion-ordered keys.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer, written exactly.
    UInt(u64),
    /// A signed integer, written exactly.
    Int(i64),
    /// A finite float (NaN/inf are rejected at construction).
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object; keys keep insertion order for byte-stable output.
    Object(Vec<(String, JsonValue)>),
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}
impl From<u64> for JsonValue {
    fn from(n: u64) -> Self {
        JsonValue::UInt(n)
    }
}
impl From<u32> for JsonValue {
    fn from(n: u32) -> Self {
        JsonValue::UInt(n as u64)
    }
}
impl From<usize> for JsonValue {
    fn from(n: usize) -> Self {
        JsonValue::UInt(n as u64)
    }
}
impl From<i64> for JsonValue {
    fn from(n: i64) -> Self {
        JsonValue::Int(n)
    }
}
impl From<f64> for JsonValue {
    fn from(x: f64) -> Self {
        assert!(x.is_finite(), "JSON numbers must be finite, got {x}");
        JsonValue::Float(x)
    }
}
impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::Str(s.to_owned())
    }
}
impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::Str(s)
    }
}
impl<T: Into<JsonValue>> From<Vec<T>> for JsonValue {
    fn from(xs: Vec<T>) -> Self {
        JsonValue::Array(xs.into_iter().map(Into::into).collect())
    }
}

impl JsonValue {
    /// An empty object.
    pub fn object() -> Self {
        JsonValue::Object(Vec::new())
    }

    /// An empty array.
    pub fn array() -> Self {
        JsonValue::Array(Vec::new())
    }

    /// Inserts or replaces `key` on an object.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn set(&mut self, key: &str, value: impl Into<JsonValue>) -> &mut Self {
        let JsonValue::Object(fields) = self else {
            panic!("set on non-object JsonValue");
        };
        let value = value.into();
        if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            fields.push((key.to_owned(), value));
        }
        self
    }

    /// Appends to an array.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an array.
    pub fn push(&mut self, value: impl Into<JsonValue>) -> &mut Self {
        let JsonValue::Array(items) = self else {
            panic!("push on non-array JsonValue");
        };
        items.push(value.into());
        self
    }

    /// Looks up `key` on an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements if `self` is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents if `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            JsonValue::UInt(n) => Some(n),
            JsonValue::Int(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }

    /// The value as `f64` if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            JsonValue::UInt(n) => Some(n as f64),
            JsonValue::Int(n) => Some(n as f64),
            JsonValue::Float(x) => Some(x),
            _ => None,
        }
    }

    /// The value as `bool` if it is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            JsonValue::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Serializes to compact JSON (no whitespace).
    pub fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::UInt(n) => {
                out.push_str(itoa_buf(*n).as_str());
            }
            JsonValue::Int(n) => {
                if *n < 0 {
                    out.push('-');
                    out.push_str(itoa_buf(n.unsigned_abs()).as_str());
                } else {
                    out.push_str(itoa_buf(*n as u64).as_str());
                }
            }
            JsonValue::Float(x) => write_f64(*x, out),
            JsonValue::Str(s) => write_escaped(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Serializes with two-space indentation (for humans and diffs).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            JsonValue::Array(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            JsonValue::Object(fields) if !fields.is_empty() => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            _ => self.write(out),
        }
    }

    /// Parses strict JSON text.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(value)
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn itoa_buf(n: u64) -> String {
    n.to_string()
}

/// Writes a finite float deterministically: integral values get a `.0`
/// suffix so they stay recognizably floats; others use Rust's shortest
/// round-trip formatting, which is platform-independent.
fn write_f64(x: f64, out: &mut String) {
    if x == x.trunc() && x.abs() < 1e15 {
        out.push_str(&format!("{x:.1}"));
    } else {
        out.push_str(&format!("{x}"));
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Error from [`JsonValue::parse`], with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input where it went wrong.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => {
                            s.push('"');
                            self.pos += 1;
                        }
                        Some(b'\\') => {
                            s.push('\\');
                            self.pos += 1;
                        }
                        Some(b'/') => {
                            s.push('/');
                            self.pos += 1;
                        }
                        Some(b'n') => {
                            s.push('\n');
                            self.pos += 1;
                        }
                        Some(b'r') => {
                            s.push('\r');
                            self.pos += 1;
                        }
                        Some(b't') => {
                            s.push('\t');
                            self.pos += 1;
                        }
                        Some(b'b') => {
                            s.push('\u{0008}');
                            self.pos += 1;
                        }
                        Some(b'f') => {
                            s.push('\u{000C}');
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("bad surrogate pair"));
                                    }
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                        .ok_or_else(|| self.err("bad surrogate pair"))?
                                } else {
                                    return Err(self.err("lone surrogate"));
                                }
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("bad \\u escape"))?
                            };
                            s.push(c);
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    /// Reads 4 hex digits, leaving `pos` just past them.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let d = self
                .peek()
                .and_then(|b| (b as char).to_digit(16))
                .ok_or_else(|| self.err("expected hex digit"))?;
            cp = cp * 16 + d;
            self.pos += 1;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(JsonValue::Float)
                .map_err(|_| self.err("invalid number"))
        } else if let Ok(n) = text.parse::<u64>() {
            Ok(JsonValue::UInt(n))
        } else if let Ok(n) = text.parse::<i64>() {
            Ok(JsonValue::Int(n))
        } else {
            text.parse::<f64>()
                .map(JsonValue::Float)
                .map_err(|_| self.err("invalid number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_output_is_canonical() {
        let mut obj = JsonValue::object();
        obj.set("b", 1u64);
        obj.set("a", JsonValue::from(vec![1u64, 2, 3]));
        obj.set("s", "hi\n\"there\"");
        assert_eq!(
            obj.to_string(),
            r#"{"b":1,"a":[1,2,3],"s":"hi\n\"there\""}"#
        );
    }

    #[test]
    fn round_trip_preserves_structure() {
        let mut inner = JsonValue::object();
        inner.set("x", 3.5f64);
        inner.set("y", -7i64);
        inner.set("flag", true);
        let mut obj = JsonValue::object();
        obj.set("inner", inner);
        obj.set("null", JsonValue::Null);
        obj.set("big", u64::MAX);
        let text = obj.to_string();
        let back = JsonValue::parse(&text).unwrap();
        assert_eq!(back, obj);
        assert_eq!(back.to_string(), text);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("nul").is_err());
        assert!(JsonValue::parse("{} trailing").is_err());
        assert!(JsonValue::parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn floats_serialize_deterministically() {
        assert_eq!(JsonValue::from(2.0f64).to_string(), "2.0");
        assert_eq!(JsonValue::from(0.5f64).to_string(), "0.5");
        assert_eq!(JsonValue::from(-1.25f64).to_string(), "-1.25");
    }

    #[test]
    fn escapes_round_trip() {
        let s = "tab\tnewline\ncontrol\u{0001}quote\"";
        let v = JsonValue::from(s);
        let back = JsonValue::parse(&v.to_string()).unwrap();
        assert_eq!(back.as_str(), Some(s));
    }

    #[test]
    fn pretty_output_parses_back() {
        let mut obj = JsonValue::object();
        obj.set("list", JsonValue::from(vec![1u64, 2]));
        let mut sub = JsonValue::object();
        sub.set("k", "v");
        obj.set("sub", sub);
        obj.set("empty", JsonValue::array());
        let pretty = obj.to_pretty();
        assert_eq!(JsonValue::parse(&pretty).unwrap(), obj);
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = JsonValue::parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
        let esc = JsonValue::parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(esc.as_str(), Some("\u{1F600}"));
        assert!(JsonValue::parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn get_and_accessors() {
        let v = JsonValue::parse(r#"{"n":42,"x":1.5,"s":"hey","b":false}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("x").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("s").unwrap().as_str(), Some("hey"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
        assert!(v.get("missing").is_none());
    }
}
