//! Deterministic discrete-event simulation kernel for the CVM reproduction.
//!
//! This crate provides the substrate on which the simulated cluster runs:
//!
//! * [`VirtualTime`] / [`SimDuration`] — nanosecond-resolution virtual time.
//! * [`EventQueue`] — a totally ordered (time, sequence) event heap, which
//!   makes every simulation run deterministic for a given seed.
//! * [`SimRng`] — a seeded random-number generator wrapper.
//! * [`coop`] — the cooperative ("baton") thread engine used to run
//!   application threads as real OS threads while guaranteeing that exactly
//!   one simulated thread executes at a time, preserving determinism and the
//!   non-preemptive scheduling model of the paper.
//! * [`stats`] — counters, accumulators and histograms shared by the higher
//!   layers.
//! * [`hist`] — log₂-bucketed latency/size histograms for the
//!   observability layer.
//! * [`json`] — a dependency-free, byte-stable JSON model used by report
//!   serialization and the Chrome-trace exporter.
//! * [`sync`] — thin `parking_lot`-style wrappers over [`std::sync`].
//! * [`explore`] — seeded perturbation of scheduler pick decisions for
//!   the schedule-exploration checker.
//! * [`script`] — scripted (replayable) scheduler decisions plus
//!   per-step footprint records and state hashing for the stateless
//!   model checker.
//! * [`shard`] — per-shard event heaps merged in global `(time, seq)`
//!   order, the substrate of the parallel event core: identical pop
//!   order at any shard count.
//! * [`workq`] — deterministic fan-out of independent jobs (the sweep
//!   engine's worker pool): results keyed by item index, seeds split per
//!   item, so any worker count produces identical output.
//!
//! # Example
//!
//! ```
//! use cvm_sim::{EventQueue, SimDuration, VirtualTime};
//!
//! let mut q: EventQueue<&str> = EventQueue::new();
//! q.push(VirtualTime::ZERO + SimDuration::from_us(5), "later");
//! q.push(VirtualTime::ZERO, "now");
//! assert_eq!(q.pop().map(|(_, e)| e), Some("now"));
//! assert_eq!(q.pop().map(|(_, e)| e), Some("later"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
pub mod coop;
pub mod event;
pub mod explore;
pub mod hist;
pub mod json;
pub mod rng;
pub mod script;
pub mod shard;
pub mod stats;
pub mod sync;
pub mod time;
pub mod workq;

pub use coop::{Burst, CoopScheduler, CoopThreadId, Yielder};
pub use event::EventQueue;
pub use explore::{ExploreSchedule, ExploreSpec};
pub use hist::Log2Hist;
pub use json::JsonValue;
pub use rng::{SimRng, Zipf};
pub use script::{Fnv64, ScheduleScript, ScriptCursor, StepLog, StepRecord, SyncOp};
pub use shard::{ShardMap, ShardedEventQueue};
pub use time::{SimDuration, VirtualTime};
