//! Deterministic fan-out of independent jobs over scoped OS threads.
//!
//! The sweep engine runs many *independent* simulations concurrently. Two
//! properties make the fan-out safe for a determinism-obsessed codebase:
//!
//! * **Results are keyed by item index**, not by completion order: the
//!   output vector is identical for any worker count, so a parallel sweep
//!   produces byte-for-byte the same report as a serial one.
//! * **Randomness is split per item**, not per worker: each job derives its
//!   seed from the master seed and a caller-chosen salt via [`seed_split`],
//!   a pure function — which worker happens to pick the job up cannot
//!   change what the job computes.
//!
//! Workers are plain scoped OS threads pulling indices from a shared
//! counter (work stealing degenerates to round-robin under uniform cost);
//! the workspace stays free of external crates.
//!
//! # Example
//!
//! ```
//! use cvm_sim::workq;
//!
//! let squares = workq::run_indexed(4, (0u64..100).collect(), |i, x| {
//!     assert_eq!(i as u64, x);
//!     x * x
//! });
//! assert_eq!(squares[9], 81);
//! assert_eq!(squares, workq::run_indexed(1, (0u64..100).collect(), |_, x| x * x));
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::sync::Mutex;

/// Derives an independent 64-bit seed from a master seed and a salt.
///
/// Unlike [`SimRng::derive`](crate::SimRng::derive) this is a pure
/// function of its inputs — no generator state advances — so any party
/// that knows `(master, salt)` reconstructs the same child seed. Distinct
/// salts give decorrelated streams (SplitMix64 finalizer).
pub fn seed_split(master: u64, salt: u64) -> u64 {
    let mut z = master ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs `f(index, item)` for every item on up to `workers` scoped threads
/// and returns the results **in item order**, regardless of the worker
/// count or OS scheduling.
///
/// `workers` is clamped to `[1, items.len()]`; with one worker the items
/// run inline on the calling thread (no spawn). A panic in any job
/// propagates to the caller after the scope unwinds.
///
/// # Panics
///
/// Panics if a job panicked (the first worker failure is propagated).
pub fn run_indexed<I, R, F>(workers: usize, items: Vec<I>, f: F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(usize, I) -> R + Sync,
{
    let n = items.len();
    let workers = workers.clamp(1, n.max(1));
    if workers <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, x)| f(i, x))
            .collect();
    }
    // One slot per item for both input hand-off and result delivery. The
    // per-slot mutexes are never contended: the index counter gives each
    // slot to exactly one worker.
    let inputs: Vec<Mutex<Option<I>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    return;
                }
                let item = inputs[i].lock().take().expect("item claimed once");
                *slots[i].lock() = Some(f(i, item));
            }));
        }
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.lock().take().expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_split_is_pure_and_salt_sensitive() {
        assert_eq!(seed_split(42, 7), seed_split(42, 7));
        assert_ne!(seed_split(42, 7), seed_split(42, 8));
        assert_ne!(seed_split(42, 7), seed_split(43, 7));
    }

    #[test]
    fn seed_split_spreads_small_salts() {
        // Consecutive salts must not produce correlated low bits.
        let seeds: Vec<u64> = (0..64).map(|s| seed_split(1, s)).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seeds.len(), "collision among 64 salts");
    }

    #[test]
    fn results_keep_item_order() {
        for workers in [1, 2, 3, 8, 100] {
            let out = run_indexed(workers, (0..57u64).collect(), |_, x| x * 3);
            assert_eq!(out, (0..57u64).map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn worker_count_does_not_change_results() {
        // Jobs with deliberately skewed costs still land in their slots.
        let slow = |i: usize, x: u64| {
            if i.is_multiple_of(7) {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            x.wrapping_mul(0x9E37_79B9).rotate_left(i as u32)
        };
        let serial = run_indexed(1, (0..40u64).collect(), slow);
        let parallel = run_indexed(4, (0..40u64).collect(), slow);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_single_inputs() {
        let out: Vec<u64> = run_indexed(8, Vec::<u64>::new(), |_, x| x);
        assert!(out.is_empty());
        assert_eq!(run_indexed(8, vec![5u64], |_, x| x + 1), vec![6]);
    }

    #[test]
    fn jobs_see_their_own_index() {
        let out = run_indexed(3, vec![10u64; 20], |i, x| i as u64 * 100 + x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 * 100 + 10);
        }
    }
}
