//! Minimal synchronization primitives with a `parking_lot`-style surface.
//!
//! The simulator holds locks only for short, panic-free critical sections,
//! so poisoning adds no information; these thin wrappers over [`std::sync`]
//! recover the guard on poison and return guards directly from
//! [`Mutex::lock`] (no `Result`), keeping call sites clean and the
//! workspace free of external dependencies.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`]; unlocks on drop.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a lock around `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. A poisoned lock (a
    /// panic while held) is recovered rather than propagated.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.as_ref().expect("guard held").fmt(f)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

/// A condition variable usable with [`MutexGuard`] by mutable reference.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a condition variable.
    pub fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically releases the guarded lock and waits for a notification,
    /// reacquiring before returning. Spurious wakeups are possible; wait
    /// in a predicate loop.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(PoisonError::into_inner));
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_guards_mutation() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn condvar_handoff_between_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            *done = true;
            drop(done);
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        drop(done);
        t.join().unwrap();
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 7, "value survives a panicking holder");
    }
}
