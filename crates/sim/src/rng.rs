//! Seeded randomness for deterministic simulations.
//!
//! Every stochastic decision in the simulator (workload generation, optional
//! network jitter) draws from a [`SimRng`] derived from the run's master
//! seed, so a run is fully reproducible from its seed.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random-number generator.
///
/// # Example
///
/// ```
/// use cvm_sim::SimRng;
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator; `salt` distinguishes
    /// children of the same parent (e.g. one stream per node).
    pub fn derive(&mut self, salt: u64) -> SimRng {
        let base = self.inner.next_u64();
        SimRng::seed_from(base ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.inner.random_range(0..bound)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is not finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad range");
        self.inner.random_range(lo..hi)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derived_streams_differ_by_salt() {
        let mut root1 = SimRng::seed_from(7);
        let mut root2 = SimRng::seed_from(7);
        let mut c1 = root1.derive(1);
        let mut c2 = root2.derive(2);
        // Not a strict guarantee for all seeds, but deterministic here.
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::seed_from(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn shuffle_is_permutation_and_deterministic() {
        let mut r1 = SimRng::seed_from(11);
        let mut r2 = SimRng::seed_from(11);
        let mut a: Vec<u32> = (0..50).collect();
        let mut b: Vec<u32> = (0..50).collect();
        r1.shuffle(&mut a);
        r2.shuffle(&mut b);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_panics() {
        SimRng::seed_from(0).below(0);
    }
}
