//! Seeded randomness for deterministic simulations.
//!
//! Every stochastic decision in the simulator (workload generation, optional
//! network jitter) draws from a [`SimRng`] derived from the run's master
//! seed, so a run is fully reproducible from its seed.
//!
//! The generator is a self-contained xoshiro256++ seeded through SplitMix64
//! (the reference seeding procedure), so the simulation has no external
//! randomness dependency and the stream is stable across toolchains.

/// A deterministic random-number generator.
///
/// # Example
///
/// ```
/// use cvm_sim::SimRng;
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

/// SplitMix64 step used to expand a 64-bit seed into generator state.
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut x = seed;
        let s = [
            splitmix64(&mut x),
            splitmix64(&mut x),
            splitmix64(&mut x),
            splitmix64(&mut x),
        ];
        SimRng { s }
    }

    /// Derives an independent child generator; `salt` distinguishes
    /// children of the same parent (e.g. one stream per node).
    pub fn derive(&mut self, salt: u64) -> SimRng {
        let base = self.next_u64();
        SimRng::seed_from(base ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit value (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's multiply-shift reduction; the modulo bias is at most
        // bound / 2^64, far below anything the simulation can observe.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        // 53 high bits give the full double mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is not finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad range");
        lo + self.unit_f64() * (hi - lo)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Exponentially distributed value with the given mean (inverse-CDF
    /// method) — the inter-arrival time of a Poisson process, the standard
    /// open-loop traffic model.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not finite and positive.
    pub fn exp_f64(&mut self, mean: f64) -> f64 {
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
        // unit_f64 is in [0, 1): flip it so the log argument is in (0, 1].
        -mean * (1.0 - self.unit_f64()).ln()
    }
}

/// A Zipf-distributed key sampler over `0..n` with skew parameter `theta`,
/// using the YCSB/Gray et al. rejection-free inversion: rank-`k`
/// popularity ∝ `1 / (k+1)^theta`.
///
/// Construction precomputes the generalized harmonic number `zeta(n,
/// theta)` in O(n); sampling is O(1) and draws exactly one value from the
/// provided [`SimRng`], keeping streams easy to reason about for
/// determinism.
///
/// # Example
///
/// ```
/// use cvm_sim::{SimRng, Zipf};
/// let z = Zipf::new(1000, 0.99);
/// let mut rng = SimRng::seed_from(42);
/// let key = z.sample(&mut rng);
/// assert!(key < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipf {
    /// Builds a sampler over `0..n` with skew `theta` (YCSB's default is
    /// 0.99; larger is more skewed; must be in `(0, 1)`).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is outside `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "need at least one key");
        assert!(
            theta > 0.0 && theta < 1.0,
            "theta must be in (0, 1), got {theta}"
        );
        let mut zetan = 0.0;
        for k in 1..=n {
            zetan += 1.0 / (k as f64).powf(theta);
        }
        let zeta2 = 1.0 + 1.0 / 2f64.powf(theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    /// Number of keys in the sampled range.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draws one rank in `[0, n)`; rank 0 is the most popular.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let u = rng.unit_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derived_streams_differ_by_salt() {
        let mut root1 = SimRng::seed_from(7);
        let mut root2 = SimRng::seed_from(7);
        let mut c1 = root1.derive(1);
        let mut c2 = root2.derive(2);
        // Not a strict guarantee for all seeds, but deterministic here.
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::seed_from(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn unit_f64_stays_in_range() {
        let mut r = SimRng::seed_from(5);
        for _ in 0..1000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_permutation_and_deterministic() {
        let mut r1 = SimRng::seed_from(11);
        let mut r2 = SimRng::seed_from(11);
        let mut a: Vec<u32> = (0..50).collect();
        let mut b: Vec<u32> = (0..50).collect();
        r1.shuffle(&mut a);
        r2.shuffle(&mut b);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_panics() {
        SimRng::seed_from(0).below(0);
    }

    #[test]
    fn exp_f64_matches_mean() {
        let mut r = SimRng::seed_from(9);
        let n = 20_000;
        let mean = 250.0;
        let sum: f64 = (0..n).map(|_| r.exp_f64(mean)).sum();
        let observed = sum / n as f64;
        assert!(
            (observed - mean).abs() < mean * 0.05,
            "sample mean {observed} too far from {mean}"
        );
    }

    #[test]
    fn zipf_stays_in_range_and_is_seed_stable() {
        let z = Zipf::new(100, 0.99);
        let mut a = SimRng::seed_from(21);
        let mut b = SimRng::seed_from(21);
        for _ in 0..10_000 {
            let ka = z.sample(&mut a);
            assert!(ka < 100);
            assert_eq!(ka, z.sample(&mut b), "same seed, same key stream");
        }
    }

    /// Rank-frequency sanity: for Zipf(theta) the frequency of rank k is
    /// ∝ 1/(k+1)^theta, so log-frequency against log-rank is a line of
    /// slope −theta. Check the empirical slope between two well-populated
    /// ranks is within tolerance.
    #[test]
    fn zipf_rank_frequency_slope_near_theta() {
        let theta = 0.99;
        let z = Zipf::new(1000, theta);
        let mut r = SimRng::seed_from(7);
        let mut counts = vec![0u64; 1000];
        for _ in 0..200_000 {
            counts[z.sample(&mut r) as usize] += 1;
        }
        assert!(counts[0] > counts[9], "head must dominate");
        // Slope between rank 1 and rank 32 (1-indexed ranks 2 and 33):
        // log(f_a / f_b) / log(b / a) ≈ theta.
        let (a, b) = (1usize, 32usize);
        let slope = ((counts[a] as f64) / (counts[b] as f64)).ln()
            / (((b + 1) as f64) / ((a + 1) as f64)).ln();
        assert!(
            (slope - theta).abs() < 0.15,
            "empirical slope {slope} too far from theta {theta}"
        );
    }

    #[test]
    fn zipf_most_popular_rank_has_expected_mass() {
        // P(rank 0) = 1/zeta(n, theta); with n=100, theta=0.99 that is
        // roughly 1/5.2 ≈ 0.19. Check the empirical share is close.
        let z = Zipf::new(100, 0.99);
        let mut r = SimRng::seed_from(3);
        let n = 100_000;
        let zeros = (0..n).filter(|_| z.sample(&mut r) == 0).count();
        let share = zeros as f64 / n as f64;
        assert!(
            (0.15..0.25).contains(&share),
            "rank-0 share {share} outside the expected band"
        );
    }
}
