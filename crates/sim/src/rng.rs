//! Seeded randomness for deterministic simulations.
//!
//! Every stochastic decision in the simulator (workload generation, optional
//! network jitter) draws from a [`SimRng`] derived from the run's master
//! seed, so a run is fully reproducible from its seed.
//!
//! The generator is a self-contained xoshiro256++ seeded through SplitMix64
//! (the reference seeding procedure), so the simulation has no external
//! randomness dependency and the stream is stable across toolchains.

/// A deterministic random-number generator.
///
/// # Example
///
/// ```
/// use cvm_sim::SimRng;
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

/// SplitMix64 step used to expand a 64-bit seed into generator state.
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut x = seed;
        let s = [
            splitmix64(&mut x),
            splitmix64(&mut x),
            splitmix64(&mut x),
            splitmix64(&mut x),
        ];
        SimRng { s }
    }

    /// Derives an independent child generator; `salt` distinguishes
    /// children of the same parent (e.g. one stream per node).
    pub fn derive(&mut self, salt: u64) -> SimRng {
        let base = self.next_u64();
        SimRng::seed_from(base ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit value (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's multiply-shift reduction; the modulo bias is at most
        // bound / 2^64, far below anything the simulation can observe.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        // 53 high bits give the full double mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is not finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad range");
        lo + self.unit_f64() * (hi - lo)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derived_streams_differ_by_salt() {
        let mut root1 = SimRng::seed_from(7);
        let mut root2 = SimRng::seed_from(7);
        let mut c1 = root1.derive(1);
        let mut c2 = root2.derive(2);
        // Not a strict guarantee for all seeds, but deterministic here.
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::seed_from(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn unit_f64_stays_in_range() {
        let mut r = SimRng::seed_from(5);
        for _ in 0..1000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_permutation_and_deterministic() {
        let mut r1 = SimRng::seed_from(11);
        let mut r2 = SimRng::seed_from(11);
        let mut a: Vec<u32> = (0..50).collect();
        let mut b: Vec<u32> = (0..50).collect();
        r1.shuffle(&mut a);
        r2.shuffle(&mut b);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_panics() {
        SimRng::seed_from(0).below(0);
    }
}
