//! Cooperative ("baton") thread engine.
//!
//! The paper's CVM runs *non-preemptive, user-level* threads: at most one
//! application thread executes per node, and control changes hands only at
//! well-defined points (remote requests, misplaced replies, explicit
//! yields). We reproduce exactly that model — and keep the whole simulation
//! deterministic — by running each simulated application thread on a real OS
//! thread but passing a *baton* between the simulator and the currently
//! scheduled thread.
//!
//! A scheduled thread runs a *burst*: it executes application code until its
//! next blocking DSM call, then reports a caller-defined reason (`R`) back
//! to the driver and parks. Every hand-off is an explicit rendezvous through
//! per-thread gates.
//!
//! The driver has two ways to run a burst:
//!
//! * [`resume`](CoopScheduler::resume) — the classic baton: start the burst
//!   and wait for it, so exactly one of {driver, one thread} runs at a time.
//! * [`start`](CoopScheduler::start) + [`wait`](CoopScheduler::wait) — the
//!   split form used by the parallel event core: the driver may start
//!   several threads' bursts (on *different* nodes, per its own safety
//!   analysis) and collect each burst's outcome later. Because each thread
//!   reports into its own slot and gates, overlapping bursts never contend
//!   on engine state; determinism is then the *driver's* obligation — it
//!   must only overlap bursts whose effects are disjoint.
//!
//! # Example
//!
//! ```
//! use cvm_sim::coop::{Burst, CoopScheduler};
//!
//! let mut sched: CoopScheduler<&'static str> = CoopScheduler::new();
//! let tid = sched.spawn(|y| {
//!     y.block("first stop");
//!     y.block("second stop");
//! });
//! assert_eq!(sched.resume(tid), Burst::Blocked("first stop"));
//! // The split form: start the burst, do other work, then collect it.
//! sched.start(tid);
//! assert_eq!(sched.wait(tid), Burst::Blocked("second stop"));
//! assert_eq!(sched.resume(tid), Burst::Finished);
//! ```

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::sync::{Condvar, Mutex};

/// Identifier of a cooperative thread within one [`CoopScheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoopThreadId(pub usize);

impl fmt::Display for CoopThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "coop#{}", self.0)
    }
}

/// Outcome of one execution burst of a cooperative thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Burst<R> {
    /// The thread called [`Yielder::block`] with the given reason.
    Blocked(R),
    /// The thread's entry function returned.
    Finished,
}

/// A binary rendezvous gate: one side waits, the other opens.
#[derive(Debug, Default)]
struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn open(&self) {
        let mut g = self.open.lock();
        *g = true;
        self.cv.notify_one();
    }

    fn wait(&self) {
        let mut g = self.open.lock();
        while !*g {
            self.cv.wait(&mut g);
        }
        *g = false;
    }
}

struct Report<R> {
    burst: Burst<R>,
}

/// Handle given to a cooperative thread's body for yielding back to the
/// simulation driver.
pub struct Yielder<R> {
    my_gate: Arc<Gate>,
    done_gate: Arc<Gate>,
    report: Arc<Mutex<Option<Report<R>>>>,
    shutdown: Arc<AtomicBool>,
}

impl<R> fmt::Debug for Yielder<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Yielder").finish_non_exhaustive()
    }
}

/// Zero-sized panic payload used to unwind application threads when the
/// scheduler is dropped mid-run.
struct ShutdownSignal;

impl<R: Send + 'static> Yielder<R> {
    /// Suspends the calling thread, reporting `reason` to the driver.
    /// Returns when the driver next resumes this thread.
    ///
    /// # Panics
    ///
    /// Unwinds (with an internal payload caught by the engine) if the
    /// scheduler is shut down while this thread is suspended.
    pub fn block(&self, reason: R) {
        {
            let mut slot = self.report.lock();
            debug_assert!(slot.is_none(), "report slot should be drained");
            *slot = Some(Report {
                burst: Burst::Blocked(reason),
            });
        }
        self.done_gate.open();
        self.my_gate.wait();
        if self.shutdown.load(Ordering::SeqCst) {
            std::panic::panic_any(ShutdownSignal);
        }
    }
}

struct ThreadSlot<R> {
    gate: Arc<Gate>,
    done_gate: Arc<Gate>,
    report: Arc<Mutex<Option<Report<R>>>>,
    join: Option<JoinHandle<()>>,
    finished: bool,
    running: bool,
}

/// Owner and driver of a set of cooperative threads.
///
/// In baton mode ([`resume`](Self::resume)) exactly one of {driver, some
/// thread} runs at a time; the split [`start`](Self::start)/[`wait`](Self::wait)
/// form lets the driver overlap bursts it knows to be independent. Dropping
/// the scheduler cleanly unwinds any still-suspended threads.
pub struct CoopScheduler<R> {
    threads: Vec<ThreadSlot<R>>,
    shutdown: Arc<AtomicBool>,
    panic_slot: Arc<Mutex<Option<String>>>,
}

impl<R> fmt::Debug for CoopScheduler<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CoopScheduler")
            .field("threads", &self.threads.len())
            .finish_non_exhaustive()
    }
}

impl<R: Send + 'static> CoopScheduler<R> {
    /// Creates a scheduler with no threads.
    pub fn new() -> Self {
        CoopScheduler {
            threads: Vec::new(),
            shutdown: Arc::new(AtomicBool::new(false)),
            panic_slot: Arc::new(Mutex::new(None)),
        }
    }

    /// Spawns a new cooperative thread running `f`. The thread does not
    /// execute until its first [`resume`](Self::resume) / [`start`](Self::start).
    pub fn spawn<F>(&mut self, f: F) -> CoopThreadId
    where
        F: FnOnce(&Yielder<R>) + Send + 'static,
    {
        let gate = Arc::new(Gate::default());
        let done_gate = Arc::new(Gate::default());
        let report: Arc<Mutex<Option<Report<R>>>> = Arc::new(Mutex::new(None));
        let yielder = Yielder {
            my_gate: Arc::clone(&gate),
            done_gate: Arc::clone(&done_gate),
            report: Arc::clone(&report),
            shutdown: Arc::clone(&self.shutdown),
        };
        let shutdown = Arc::clone(&self.shutdown);
        let thread_report = Arc::clone(&report);
        let thread_done = Arc::clone(&done_gate);
        let my_gate = Arc::clone(&gate);
        let panic_slot = Arc::clone(&self.panic_slot);
        let join = std::thread::Builder::new()
            .name(format!("coop-{}", self.threads.len()))
            .spawn(move || {
                my_gate.wait();
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let result = catch_unwind(AssertUnwindSafe(|| f(&yielder)));
                match result {
                    Ok(()) => {
                        *thread_report.lock() = Some(Report {
                            burst: Burst::Finished,
                        });
                        thread_done.open();
                    }
                    Err(payload) => {
                        if payload.downcast_ref::<ShutdownSignal>().is_some() {
                            // Clean shutdown: exit silently; the driver is
                            // not waiting on us.
                        } else {
                            // Re-raise on the driver side: leave the report
                            // empty, stash the message, and wake the driver;
                            // wait() will panic with it.
                            let msg = panic_message(payload.as_ref());
                            *thread_report.lock() = None;
                            *panic_slot.lock() = Some(msg);
                            thread_done.open();
                        }
                    }
                }
            })
            .expect("spawn coop thread");
        let id = CoopThreadId(self.threads.len());
        self.threads.push(ThreadSlot {
            gate,
            done_gate,
            report,
            join: Some(join),
            finished: false,
            running: false,
        });
        id
    }

    /// Number of threads ever spawned.
    pub fn len(&self) -> usize {
        self.threads.len()
    }

    /// True if no threads have been spawned.
    pub fn is_empty(&self) -> bool {
        self.threads.is_empty()
    }

    /// True if the thread's entry function has returned.
    ///
    /// # Panics
    ///
    /// Panics if `tid` was not produced by this scheduler.
    pub fn is_finished(&self, tid: CoopThreadId) -> bool {
        self.threads[tid.0].finished
    }

    /// True if a burst of this thread has been started but not yet
    /// collected with [`wait`](Self::wait).
    ///
    /// # Panics
    ///
    /// Panics if `tid` was not produced by this scheduler.
    pub fn is_running(&self, tid: CoopThreadId) -> bool {
        self.threads[tid.0].running
    }

    /// Starts a burst of thread `tid` without waiting for it. The burst
    /// runs concurrently with the caller until collected by
    /// [`wait`](Self::wait).
    ///
    /// # Panics
    ///
    /// Panics if the thread already finished or already has a burst in
    /// flight.
    pub fn start(&mut self, tid: CoopThreadId) {
        let slot = &mut self.threads[tid.0];
        assert!(!slot.finished, "start of finished thread {tid}");
        assert!(!slot.running, "burst of {tid} already in flight");
        slot.running = true;
        slot.gate.open();
    }

    /// Waits for the in-flight burst of thread `tid` and returns its
    /// outcome.
    ///
    /// # Panics
    ///
    /// Panics if no burst is in flight for `tid`, or propagates the panic
    /// if the application thread panicked during the burst.
    pub fn wait(&mut self, tid: CoopThreadId) -> Burst<R> {
        let slot = &mut self.threads[tid.0];
        assert!(slot.running, "wait without a started burst on {tid}");
        slot.running = false;
        slot.done_gate.wait();
        let rep = slot.report.lock().take();
        match rep {
            Some(Report { burst }) => {
                if matches!(burst, Burst::Finished) {
                    slot.finished = true;
                    if let Some(j) = slot.join.take() {
                        let _ = j.join();
                    }
                }
                burst
            }
            None => {
                let msg = self
                    .panic_slot
                    .lock()
                    .take()
                    .unwrap_or_else(|| "coop thread panicked".to_owned());
                slot.finished = true;
                if let Some(j) = slot.join.take() {
                    let _ = j.join();
                }
                panic!("application thread {tid} panicked: {msg}");
            }
        }
    }

    /// Runs thread `tid` until its next block point and returns the burst
    /// outcome (the baton form: [`start`](Self::start) then immediately
    /// [`wait`](Self::wait)).
    ///
    /// # Panics
    ///
    /// Panics if the thread already finished, or propagates the panic if the
    /// application thread panicked during the burst.
    pub fn resume(&mut self, tid: CoopThreadId) -> Burst<R> {
        self.start(tid);
        self.wait(tid)
    }
}

impl<R: Send + 'static> Default for CoopScheduler<R> {
    fn default() -> Self {
        Self::new()
    }
}

impl<R> Drop for CoopScheduler<R> {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for slot in &mut self.threads {
            if let Some(join) = slot.join.take() {
                slot.gate.open();
                let _ = join.join();
            }
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_burst_sequence() {
        let mut s: CoopScheduler<u32> = CoopScheduler::new();
        let t = s.spawn(|y| {
            for i in 0..5 {
                y.block(i);
            }
        });
        for i in 0..5 {
            assert_eq!(s.resume(t), Burst::Blocked(i));
        }
        assert_eq!(s.resume(t), Burst::Finished);
        assert!(s.is_finished(t));
    }

    #[test]
    fn interleaving_is_driver_controlled() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut s: CoopScheduler<()> = CoopScheduler::new();
        let mk = |tag: char, log: Arc<Mutex<Vec<char>>>| {
            move |y: &Yielder<()>| {
                for _ in 0..3 {
                    log.lock().push(tag);
                    y.block(());
                }
            }
        };
        let a = s.spawn(mk('a', Arc::clone(&log)));
        let b = s.spawn(mk('b', Arc::clone(&log)));
        // Drive: a, a, b, a, b, b
        s.resume(a);
        s.resume(a);
        s.resume(b);
        s.resume(a);
        s.resume(b);
        s.resume(b);
        assert_eq!(*log.lock(), vec!['a', 'a', 'b', 'a', 'b', 'b']);
    }

    #[test]
    fn split_start_wait_matches_resume() {
        let mut s: CoopScheduler<u32> = CoopScheduler::new();
        let t = s.spawn(|y| {
            y.block(1);
            y.block(2);
        });
        s.start(t);
        assert!(s.is_running(t));
        assert_eq!(s.wait(t), Burst::Blocked(1));
        assert!(!s.is_running(t));
        assert_eq!(s.resume(t), Burst::Blocked(2));
        assert_eq!(s.resume(t), Burst::Finished);
    }

    #[test]
    fn overlapped_bursts_report_into_their_own_slots() {
        let mut s: CoopScheduler<usize> = CoopScheduler::new();
        let tids: Vec<_> = (0..8).map(|i| s.spawn(move |y| y.block(i))).collect();
        // Start all eight bursts before collecting any: each thread's
        // report lands in its own slot, so collection order is free.
        for &t in &tids {
            s.start(t);
        }
        for (i, &t) in tids.iter().enumerate().rev() {
            assert_eq!(s.wait(t), Burst::Blocked(i));
        }
        for &t in &tids {
            assert_eq!(s.resume(t), Burst::Finished);
        }
    }

    #[test]
    #[should_panic(expected = "already in flight")]
    fn double_start_panics() {
        let mut s: CoopScheduler<()> = CoopScheduler::new();
        let t = s.spawn(|y| y.block(()));
        s.start(t);
        s.start(t);
    }

    #[test]
    fn drop_mid_run_unwinds_cleanly() {
        let mut s: CoopScheduler<()> = CoopScheduler::new();
        let t = s.spawn(|y| loop {
            y.block(());
        });
        s.resume(t);
        drop(s); // must not hang or leak the OS thread
    }

    #[test]
    fn unstarted_threads_shut_down() {
        let mut s: CoopScheduler<()> = CoopScheduler::new();
        let _t = s.spawn(|y| y.block(()));
        drop(s);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn app_panic_propagates_to_driver() {
        let mut s: CoopScheduler<()> = CoopScheduler::new();
        let t = s.spawn(|_| panic!("boom"));
        s.resume(t);
    }

    #[test]
    fn many_threads_round_robin() {
        let mut s: CoopScheduler<usize> = CoopScheduler::new();
        let n = 16;
        let tids: Vec<_> = (0..n).map(|i| s.spawn(move |y| y.block(i))).collect();
        for (i, &t) in tids.iter().enumerate() {
            assert_eq!(s.resume(t), Burst::Blocked(i));
        }
        for &t in &tids {
            assert_eq!(s.resume(t), Burst::Finished);
        }
    }
}
