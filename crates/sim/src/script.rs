//! Scripted scheduler decisions and per-step observation records: the
//! seam the stateless model checker (`cvm check --dpor`) drives.
//!
//! The only nondeterminism in a CVM run is *which ready thread a node
//! resumes* at each scheduling point — message deliveries, lock grants
//! and timer events are all deterministic functions of virtual time,
//! which is itself a deterministic function of the pick sequence. A
//! [`ScheduleScript`] therefore pins an entire execution: entry `i` is
//! the index into the node-local ready queue taken at the `i`-th pick
//! (across all nodes, in global scheduling order); past the end of the
//! script the configured FIFO/LIFO policy resumes. Re-running the same
//! script reproduces the run byte for byte.
//!
//! With step recording enabled the driver logs a [`StepRecord`] per
//! pick: the enabled set, the chosen index, and the burst's footprint
//! (shared pages read/written plus the synchronization operation that
//! ended it). The DPOR explorer's independence relation is computed
//! from exactly these footprints.

use crate::json::JsonValue;

/// A fixed sequence of scheduler pick decisions replayed verbatim.
///
/// Entry `i` is clamped into the ready queue's range at the `i`-th
/// scheduling point (so `0` always means "the default FIFO pick");
/// beyond the script the normal policy resumes. The empty script is
/// observationally identical to an unscripted run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScheduleScript {
    /// Pick indices, one per scheduling point from the start of the run.
    pub choices: Vec<u32>,
}

impl ScheduleScript {
    /// Wraps a raw choice sequence.
    #[must_use]
    pub fn new(choices: Vec<u32>) -> Self {
        ScheduleScript { choices }
    }

    /// Number of scripted picks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.choices.len()
    }

    /// Whether the script pins no picks at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.choices.is_empty()
    }

    /// How many entries deviate from the default FIFO pick (index 0) —
    /// the size measure counterexample minimization shrinks.
    #[must_use]
    pub fn perturbations(&self) -> usize {
        self.choices.iter().filter(|&&c| c != 0).count()
    }
}

/// Consumes a [`ScheduleScript`] one scheduling point at a time.
#[derive(Debug, Clone)]
pub struct ScriptCursor {
    choices: Vec<u32>,
    pos: usize,
}

impl ScriptCursor {
    /// Starts replaying `script` from its first entry.
    #[must_use]
    pub fn new(script: ScheduleScript) -> Self {
        ScriptCursor {
            choices: script.choices,
            pos: 0,
        }
    }

    /// The scripted pick for the next scheduling point with `len` ready
    /// threads, or `None` once the script is exhausted (the caller's
    /// default policy then applies). Out-of-range entries clamp to the
    /// last queue slot so every serialized script stays replayable.
    pub fn next(&mut self, len: usize) -> Option<usize> {
        let c = *self.choices.get(self.pos)?;
        self.pos += 1;
        Some((c as usize).min(len.saturating_sub(1)))
    }
}

/// The synchronization operation that ended a thread burst — the
/// non-page channel through which two steps can conflict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncOp {
    /// Page fault on `page` (`write` distinguishes the access mode). The
    /// faulted page joins the burst's footprint in that mode.
    Fault {
        /// Faulted page index.
        page: u32,
        /// Whether the faulting access was a write.
        write: bool,
    },
    /// Blocked acquiring `lock`.
    Acquire {
        /// Lock index.
        lock: u32,
    },
    /// Released `lock` (publishes this node's write notices to the next
    /// holder).
    Release {
        /// Lock index.
        lock: u32,
    },
    /// Arrived at a global barrier (closes the node's interval and
    /// publishes notices to everyone).
    Barrier,
    /// Arrived at a node-local barrier with no reduction.
    LocalBarrier,
    /// Arrived at a barrier carrying a floating-point reduction, whose
    /// accumulation order is arrival order.
    Reduce,
    /// A startup/end-of-measurement rendezvous (global-barrier class).
    Rendezvous,
    /// Voluntarily yielded the processor.
    Yield,
    /// The thread ran to completion.
    Finish,
}

/// One scheduling point as the driver executed it: who was runnable,
/// who ran, and what the burst touched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepRecord {
    /// Node the pick happened on.
    pub node: u32,
    /// Global thread id that ran.
    pub thread: u32,
    /// The ready queue (global thread ids) in queue order, before the
    /// pick — the enabled set of this transition.
    pub enabled: Vec<u32>,
    /// Index into `enabled` that was chosen.
    pub chosen: u32,
    /// Shared pages read during the burst (deduplicated, insertion
    /// order).
    pub reads: Vec<u32>,
    /// Shared pages written during the burst (deduplicated, insertion
    /// order).
    pub writes: Vec<u32>,
    /// How the burst ended.
    pub sync: SyncOp,
}

/// A capacity-bounded log of [`StepRecord`]s; overflow is counted, not
/// silently dropped, so exhaustiveness claims stay honest.
#[derive(Debug, Clone, Default)]
pub struct StepLog {
    steps: Vec<StepRecord>,
    cap: usize,
    dropped: u64,
}

impl StepLog {
    /// An empty log holding at most `cap` records.
    #[must_use]
    pub fn new(cap: usize) -> Self {
        StepLog {
            steps: Vec::new(),
            cap,
            dropped: 0,
        }
    }

    /// Appends a record, or bumps the drop counter once full.
    pub fn record(&mut self, step: StepRecord) {
        if self.steps.len() < self.cap {
            self.steps.push(step);
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded steps, in execution order.
    #[must_use]
    pub fn steps(&self) -> &[StepRecord] {
        &self.steps
    }

    /// Number of records discarded because the log was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of records kept.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Summary for the run-report JSON (never the full step list — a
    /// deep exploration would dwarf the report).
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let mut o = JsonValue::object();
        o.set("recorded", JsonValue::from(self.steps.len() as u64));
        o.set("dropped", JsonValue::from(self.dropped));
        o
    }
}

/// FNV-1a 64-bit hasher: the deterministic, dependency-free fingerprint
/// used for terminal-state hashing and duplicate detection.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// The FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// Folds a byte slice into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Folds a little-endian `u64` into the hash.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The current hash value.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cursor_clamps_and_exhausts() {
        let mut c = ScriptCursor::new(ScheduleScript::new(vec![0, 2, 9]));
        assert_eq!(c.next(3), Some(0));
        assert_eq!(c.next(2), Some(1)); // 2 clamped into a 2-slot queue
        assert_eq!(c.next(4), Some(3)); // 9 clamped
        assert_eq!(c.next(4), None); // exhausted: default policy resumes
        assert_eq!(c.next(1), None);
    }

    #[test]
    fn perturbations_counts_nonzero_entries() {
        assert_eq!(ScheduleScript::new(vec![0, 0, 0]).perturbations(), 0);
        assert_eq!(ScheduleScript::new(vec![0, 1, 0, 2]).perturbations(), 2);
        assert!(ScheduleScript::default().is_empty());
    }

    #[test]
    fn step_log_caps_and_counts_drops() {
        let step = StepRecord {
            node: 0,
            thread: 0,
            enabled: vec![0],
            chosen: 0,
            reads: vec![],
            writes: vec![],
            sync: SyncOp::Finish,
        };
        let mut log = StepLog::new(2);
        log.record(step.clone());
        log.record(step.clone());
        log.record(step);
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 1);
    }

    #[test]
    fn fnv_matches_reference_vector() {
        // FNV-1a("a") from the published reference tables.
        let mut h = Fnv64::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        // Order sensitivity.
        let (mut x, mut y) = (Fnv64::new(), Fnv64::new());
        x.write(b"ab");
        y.write(b"ba");
        assert_ne!(x.finish(), y.finish());
    }
}
