//! FFT — a transpose-based Fast Fourier Transform.
//!
//! The paper's 3-D FFT "uses matrix transposition to reduce communication";
//! the communication structure is the classic SPLASH one: each thread
//! computes 1-D FFTs over its contiguous block of rows entirely locally,
//! then participates in an all-to-all matrix transpose that makes every
//! thread fault on every other node's pages. We organize the `m × m`
//! complex dataset as a row matrix (the paper's 64³ volume maps to a
//! 512×512 row view) and run FFT → transpose → FFT → transpose — three
//! barrier-separated phases whose traffic matches the paper's (flat diff
//! counts across thread levels, with the famous spike at three threads
//! caused by page-misaligned row blocks).

use cvm_dsm::{CvmBuilder, SharedVec, ThreadCtx};

use crate::common::{charge_flops, chunk};
use crate::AppBody;

/// FFT configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FftConfig {
    /// Matrix dimension (a power of two); the dataset is `m × m` complex.
    pub m: usize,
}

impl FftConfig {
    /// Model-checker kernel (16×16): exhaustive-enumeration sized.
    pub fn tiny() -> Self {
        FftConfig { m: 16 }
    }

    /// Laptop-scale default (128×128 complex).
    pub fn small() -> Self {
        FftConfig { m: 128 }
    }

    /// The paper's 64×64×64 volume, viewed as a 512×512 row matrix.
    pub fn paper() -> Self {
        FftConfig { m: 512 }
    }
}

/// Builds the FFT body.
///
/// # Panics
///
/// Panics if `m` is not a power of two.
pub fn build(b: &mut CvmBuilder, cfg: FftConfig) -> AppBody {
    assert!(cfg.m.is_power_of_two(), "FFT size must be a power of two");
    build_inner(b, cfg)
}

fn build_inner(b: &mut CvmBuilder, cfg: FftConfig) -> AppBody {
    let re = b.alloc::<f64>(cfg.m * cfg.m);
    let im = b.alloc::<f64>(cfg.m * cfg.m);
    let tre = b.alloc::<f64>(cfg.m * cfg.m);
    let tim = b.alloc::<f64>(cfg.m * cfg.m);
    let sink = b.alloc::<f64>(2);
    Box::new(move |ctx: &mut ThreadCtx<'_>| run(ctx, &cfg, [re, im, tre, tim], sink))
}

fn input_value(i: usize, m: usize) -> (f64, f64) {
    let x = (i % m) as f64;
    let y = (i / m) as f64;
    (
        (x * 0.37).sin() + (y * 0.11).cos(),
        (x * 0.05).cos() * (y * 0.23).sin(),
    )
}

/// In-place radix-2 Cooley-Tukey on a local buffer; returns flop count.
fn fft_row(re: &mut [f64], im: &mut [f64]) -> u64 {
    let n = re.len();
    let mut flops = 0u64;
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let (mut cr, mut ci) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let (ur, ui) = (re[i + k], im[i + k]);
                let (vr0, vi0) = (re[i + k + len / 2], im[i + k + len / 2]);
                let vr = vr0 * cr - vi0 * ci;
                let vi = vr0 * ci + vi0 * cr;
                re[i + k] = ur + vr;
                im[i + k] = ui + vi;
                re[i + k + len / 2] = ur - vr;
                im[i + k + len / 2] = ui - vi;
                let ncr = cr * wr - ci * wi;
                ci = cr * wi + ci * wr;
                cr = ncr;
                flops += 16;
            }
            i += len;
        }
        len <<= 1;
    }
    flops
}

fn run(
    ctx: &mut ThreadCtx<'_>,
    cfg: &FftConfig,
    arrays: [SharedVec<f64>; 4],
    sink: SharedVec<f64>,
) {
    let [re, im, tre, tim] = arrays;
    let m = cfg.m;
    if ctx.global_id() == 0 {
        for i in 0..m * m {
            let (r, iv) = input_value(i, m);
            re.write(ctx, i, r);
            im.write(ctx, i, iv);
            tre.write(ctx, i, 0.0);
            tim.write(ctx, i, 0.0);
        }
        sink.write(ctx, 0, 0.0);
        sink.write(ctx, 1, 0.0);
    }
    ctx.startup_done();

    let (rlo, rhi) = chunk(ctx.global_id(), ctx.total_threads(), m);

    // Phase 1: FFT own rows (local once pages are resident).
    fft_rows(ctx, m, rlo, rhi, re, im);
    ctx.barrier();
    // Phase 2: transpose re/im -> tre/tim (all-to-all reads).
    transpose(ctx, m, rlo, rhi, re, im, tre, tim);
    ctx.barrier();
    // Phase 3: FFT transposed rows (completes the 2-D transform).
    fft_rows(ctx, m, rlo, rhi, tre, tim);
    ctx.barrier();
    // Phase 4: transpose back so results land in natural order.
    transpose(ctx, m, rlo, rhi, tre, tim, re, im);
    ctx.barrier();

    ctx.end_measured();

    // Energy checksum for validation (Parseval against the oracle).
    let mut local = 0.0;
    for r in rlo..rhi {
        for c in 0..m {
            let i = r * m + c;
            let (a, b) = (re.read(ctx, i), im.read(ctx, i));
            local += a * a + b * b;
        }
    }
    ctx.acquire(1);
    let acc = sink.read(ctx, 0);
    sink.write(ctx, 0, acc + local);
    ctx.release(1);
    ctx.barrier();
    if ctx.global_id() == 0 {
        let total = sink.read(ctx, 0);
        assert!(total.is_finite() && total > 0.0, "FFT energy degenerate");
        sink.write(ctx, 1, total);
    }
}

fn fft_rows(
    ctx: &mut ThreadCtx<'_>,
    m: usize,
    rlo: usize,
    rhi: usize,
    re: SharedVec<f64>,
    im: SharedVec<f64>,
) {
    let mut br = vec![0.0f64; m];
    let mut bi = vec![0.0f64; m];
    for r in rlo..rhi {
        for c in 0..m {
            br[c] = re.read(ctx, r * m + c);
            bi[c] = im.read(ctx, r * m + c);
        }
        let flops = fft_row(&mut br, &mut bi);
        charge_flops(ctx, flops);
        for c in 0..m {
            re.write(ctx, r * m + c, br[c]);
            im.write(ctx, r * m + c, bi[c]);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn transpose(
    ctx: &mut ThreadCtx<'_>,
    m: usize,
    rlo: usize,
    rhi: usize,
    sre: SharedVec<f64>,
    sim: SharedVec<f64>,
    dre: SharedVec<f64>,
    dim: SharedVec<f64>,
) {
    // Write own destination rows, reading the corresponding source column
    // — strided reads that fault across every other node's pages.
    for r in rlo..rhi {
        for c in 0..m {
            let vr = sre.read(ctx, c * m + r);
            dre.write(ctx, r * m + c, vr);
            let vi = sim.read(ctx, c * m + r);
            dim.write(ctx, r * m + c, vi);
        }
    }
}

/// Sequential oracle: total signal energy of the 2-D FFT of the same
/// input, computed with the same radix-2 kernel.
pub fn oracle(cfg: &FftConfig) -> f64 {
    let m = cfg.m;
    let mut re = vec![0.0f64; m * m];
    let mut im = vec![0.0f64; m * m];
    for i in 0..m * m {
        let (r, iv) = input_value(i, m);
        re[i] = r;
        im[i] = iv;
    }
    // FFT rows.
    for r in 0..m {
        fft_row(&mut re[r * m..(r + 1) * m], &mut im[r * m..(r + 1) * m]);
    }
    // Transpose.
    let (mut tre, mut tim) = (vec![0.0; m * m], vec![0.0; m * m]);
    for r in 0..m {
        for c in 0..m {
            tre[r * m + c] = re[c * m + r];
            tim[r * m + c] = im[c * m + r];
        }
    }
    // FFT columns (as rows of the transpose).
    for r in 0..m {
        fft_row(&mut tre[r * m..(r + 1) * m], &mut tim[r * m..(r + 1) * m]);
    }
    tre.iter().zip(&tim).map(|(a, b)| a * a + b * b).sum()
}

/// Runs the app and returns the checksum (tests).
pub fn checksum_of_run(cfg: &FftConfig, nodes: usize, threads: usize) -> f64 {
    checksum_of_config(cfg, cvm_dsm::CvmConfig::small(nodes, threads)).0
}

/// Like [`checksum_of_run`], but over an arbitrary system configuration
/// (protocol under test, jitter, …); also returns the run's report.
pub fn checksum_of_config(cfg: &FftConfig, dsm: cvm_dsm::CvmConfig) -> (f64, cvm_dsm::RunReport) {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    let mut b = CvmBuilder::new(dsm);
    let re = b.alloc::<f64>(cfg.m * cfg.m);
    let im = b.alloc::<f64>(cfg.m * cfg.m);
    let tre = b.alloc::<f64>(cfg.m * cfg.m);
    let tim = b.alloc::<f64>(cfg.m * cfg.m);
    let sink = b.alloc::<f64>(2);
    let out = Arc::new(AtomicU64::new(0));
    let out2 = Arc::clone(&out);
    let cfg = *cfg;
    let report = b.run(move |ctx| {
        run(ctx, &cfg, [re, im, tre, tim], sink);
        if ctx.global_id() == 0 {
            out2.store(sink.read(ctx, 1).to_bits(), Ordering::SeqCst);
        }
    });
    (f64::from_bits(out.load(Ordering::SeqCst)), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::assert_close;

    #[test]
    fn kernel_matches_dft_on_small_signal() {
        let n = 8;
        let mut re: Vec<f64> = (0..n).map(|i| (i as f64 * 0.9).sin()).collect();
        let mut im = vec![0.0; n];
        let (re0, im0) = (re.clone(), im.clone());
        fft_row(&mut re, &mut im);
        for k in 0..n {
            let (mut sr, mut si) = (0.0, 0.0);
            for t in 0..n {
                let ang = -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
                sr += re0[t] * ang.cos() - im0[t] * ang.sin();
                si += re0[t] * ang.sin() + im0[t] * ang.cos();
            }
            assert_close(re[k], sr, 1e-9, "DFT real");
            assert_close(im[k], si, 1e-9, "DFT imag");
        }
    }

    #[test]
    fn parallel_matches_oracle() {
        let cfg = FftConfig { m: 32 };
        let want = oracle(&cfg);
        for (nodes, threads) in [(1, 1), (2, 2), (4, 3)] {
            let got = checksum_of_run(&cfg, nodes, threads);
            assert_close(got, want, 1e-9, "FFT energy");
        }
    }
}
