//! Water-Nsq — the O(N²) molecular-dynamics simulation, and the paper's
//! §4.5 source-modification case study (Table 5).
//!
//! As in SPLASH-2 Water, each molecule has three atoms, so the position
//! state every thread reads during the force phase spans several coherence
//! pages even at modest molecule counts. Each thread owns a contiguous
//! molecule range and computes the half-shell of pair interactions,
//! reading *all* molecule positions ("all threads usually read all
//! molecules at some point during each iteration"). Cross-partition force
//! contributions are flushed to the shared force array under a fixed set
//! of per-section locks. Three build variants reproduce Table 5:
//!
//! * [`WaterNsqOpt::NoOpts`] — transparent multi-threading (`g` only):
//!   every thread flushes every touched section itself. Co-located threads
//!   pile up on the same locks and pages (huge *Block Same Lock* / *Block
//!   Same Page*), and diffs multiply.
//! * [`WaterNsqOpt::LocalBarrier`] — the `r` modification: contributions
//!   aggregate into a per-node scratch region behind a CVM local barrier;
//!   the node's threads then cooperate in applying sections of the global
//!   array, wrapping around from their node's own region, so each section
//!   lock is taken **once per node** and no two local threads ever block
//!   on the same lock.
//! * [`WaterNsqOpt::BothOpts`] — additionally the `s` read-reordering:
//!   co-located threads traverse the molecule array from opposing ends,
//!   delaying overlapping reads of the same page (fewer *Block Same
//!   Page*). This is the version used in the rest of the paper.

use cvm_dsm::{CvmBuilder, ReduceOp, SharedVec, ThreadCtx};

use crate::common::{charge_flops, chunk};
use crate::AppBody;

/// Which of the paper's Table 5 source variants to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WaterNsqOpt {
    /// Transparent multi-threading, no source optimization.
    NoOpts,
    /// Per-node local-barrier aggregation of force updates (`r`).
    LocalBarrier,
    /// Local barrier + opposing-end read ordering (`r` + `s`).
    BothOpts,
}

/// Water-Nsq configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaterNsqConfig {
    /// Number of molecules (each with three atoms).
    pub n: usize,
    /// Timesteps.
    pub steps: usize,
    /// Integration step.
    pub dt: f64,
    /// Interaction cutoff radius squared (on molecule centers).
    pub cutoff2: f64,
    /// Source variant.
    pub opt: WaterNsqOpt,
}

impl WaterNsqConfig {
    /// Model-checker kernel: 16 molecules, one step — keeps the
    /// lock-per-molecule acquire/release pattern while staying
    /// enumerable.
    pub fn tiny() -> Self {
        WaterNsqConfig {
            n: 16,
            steps: 1,
            dt: 0.002,
            cutoff2: 0.25,
            opt: WaterNsqOpt::BothOpts,
        }
    }

    /// Laptop-scale default (paper molecule count; fewer steps).
    pub fn small() -> Self {
        WaterNsqConfig {
            n: 512,
            steps: 2,
            dt: 0.002,
            cutoff2: 0.25,
            opt: WaterNsqOpt::BothOpts,
        }
    }

    /// The paper's 512-molecule input.
    pub fn paper() -> Self {
        WaterNsqConfig {
            n: 512,
            steps: 3,
            dt: 0.002,
            cutoff2: 0.35,
            opt: WaterNsqOpt::BothOpts,
        }
    }
}

const PE_LOCK: usize = 90;
const PART_LOCK_BASE: usize = 100;
/// Fixed number of force-array sections (and section locks), independent
/// of the threading level — like SPLASH Water's per-molecule-group locks.
pub const SECTIONS: usize = 64;

struct Arrays {
    /// Molecule centers, `3n`.
    cpos: SharedVec<f64>,
    /// Atom positions, `9n` (3 atoms × 3 dims, rigid offsets).
    apos: SharedVec<f64>,
    vel: SharedVec<f64>,
    force: SharedVec<f64>,
    /// Per-node aggregation buffers, `nodes × 3n`.
    scratch: SharedVec<f64>,
    pe: SharedVec<f64>,
    sink: SharedVec<f64>,
}

fn alloc_arrays(b: &mut CvmBuilder, n: usize) -> Arrays {
    let nodes = b.config().nodes;
    Arrays {
        cpos: b.alloc::<f64>(3 * n),
        apos: b.alloc::<f64>(9 * n),
        vel: b.alloc::<f64>(3 * n),
        force: b.alloc::<f64>(3 * n),
        scratch: b.alloc::<f64>(nodes * 3 * n),
        pe: b.alloc::<f64>(1),
        sink: b.alloc::<f64>(2),
    }
}

/// Builds the Water-Nsq body.
pub fn build(b: &mut CvmBuilder, cfg: WaterNsqConfig) -> AppBody {
    let a = alloc_arrays(b, cfg.n);
    Box::new(move |ctx: &mut ThreadCtx<'_>| run(ctx, &cfg, &a))
}

/// Deterministic lattice + jitter initial configuration.
fn init_mol(i: usize, n: usize) -> ([f64; 3], [f64; 3]) {
    let side = (n as f64).cbrt().ceil() as usize;
    let x = (i % side) as f64;
    let y = ((i / side) % side) as f64;
    let z = (i / (side * side)) as f64;
    let jit = |s: usize| (((i * 2654435761 + s * 40503) % 1000) as f64 / 1000.0 - 0.5) * 0.1;
    let scale = 1.0 / side as f64;
    (
        [
            (x + 0.5) * scale + jit(1) * scale,
            (y + 0.5) * scale + jit(2) * scale,
            (z + 0.5) * scale + jit(3) * scale,
        ],
        [jit(4) * 0.01, jit(5) * 0.01, jit(6) * 0.01],
    )
}

/// Rigid atom offsets (an "H-O-H" triangle scaled to the box), fixed per
/// atom index.
fn atom_offset(k: usize) -> [f64; 3] {
    match k {
        0 => [0.0, 0.0, 0.0],
        1 => [0.008, 0.006, 0.0],
        _ => [-0.008, 0.006, 0.0],
    }
}

/// Soft Lennard-Jones-style atom-pair force; returns (force, potential).
fn atom_force(pi: [f64; 3], pj: [f64; 3]) -> ([f64; 3], f64) {
    let d = [pi[0] - pj[0], pi[1] - pj[1], pi[2] - pj[2]];
    let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2] + 1e-4;
    let s2 = 0.01 / r2;
    let s6 = s2 * s2 * s2;
    let mag = 24.0 * (2.0 * s6 * s6 - s6) / r2 / 9.0;
    (
        [d[0] * mag, d[1] * mag, d[2] * mag],
        4.0 * (s6 * s6 - s6) / 9.0,
    )
}

/// Molecule-pair force over all 3×3 atom pairs; `None` outside the cutoff.
fn pair_force(
    ci: [f64; 3],
    cj: [f64; 3],
    ai: &[[f64; 3]; 3],
    aj: &[[f64; 3]; 3],
    cutoff2: f64,
) -> Option<([f64; 3], f64)> {
    let d = [ci[0] - cj[0], ci[1] - cj[1], ci[2] - cj[2]];
    let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
    if r2 >= cutoff2 || r2 == 0.0 {
        return None;
    }
    let mut f = [0.0f64; 3];
    let mut pe = 0.0;
    for pi in ai {
        for pj in aj {
            let (af, apot) = atom_force(*pi, *pj);
            for k in 0..3 {
                f[k] += af[k];
            }
            pe += apot;
        }
    }
    Some((f, pe))
}

/// Enumerates the half-shell pair partners of molecule `i`.
fn half_shell(i: usize, n: usize) -> impl Iterator<Item = usize> {
    (1..=n / 2).filter_map(move |k| {
        let j = (i + k) % n;
        if k == n / 2 && n.is_multiple_of(2) && i >= n / 2 {
            None // avoid double-counting the antipodal pair
        } else {
            Some(j)
        }
    })
}

/// The force-array section containing molecule `m`.
fn section_of(m: usize, n: usize) -> usize {
    let s = m * SECTIONS / n.max(1);
    let s = s.min(SECTIONS - 1);
    // chunk() distributes remainders to low owners; walk to the exact one.
    let mut o = s;
    loop {
        let (lo, hi) = chunk(o, SECTIONS, n);
        if m < lo {
            o -= 1;
        } else if m >= hi {
            o += 1;
        } else {
            return o;
        }
    }
}

fn read_mol(ctx: &mut ThreadCtx<'_>, a: &Arrays, m: usize) -> ([f64; 3], [[f64; 3]; 3]) {
    let c = [
        a.cpos.read(ctx, 3 * m),
        a.cpos.read(ctx, 3 * m + 1),
        a.cpos.read(ctx, 3 * m + 2),
    ];
    let mut atoms = [[0.0f64; 3]; 3];
    for (k, atom) in atoms.iter_mut().enumerate() {
        for d in 0..3 {
            atom[d] = a.apos.read(ctx, 9 * m + 3 * k + d);
        }
    }
    (c, atoms)
}

fn run(ctx: &mut ThreadCtx<'_>, cfg: &WaterNsqConfig, a: &Arrays) {
    let n = cfg.n;
    if ctx.global_id() == 0 {
        for i in 0..n {
            let (p, v) = init_mol(i, n);
            for d in 0..3 {
                a.cpos.write(ctx, 3 * i + d, p[d]);
                a.vel.write(ctx, 3 * i + d, v[d]);
                a.force.write(ctx, 3 * i + d, 0.0);
            }
            for k in 0..3 {
                let o = atom_offset(k);
                for d in 0..3 {
                    a.apos.write(ctx, 9 * i + 3 * k + d, p[d] + o[d]);
                }
            }
        }
        for i in 0..a.scratch.len() {
            a.scratch.write(ctx, i, 0.0);
        }
        a.pe.write(ctx, 0, 0.0);
        a.sink.write(ctx, 0, 0.0);
        a.sink.write(ctx, 1, 0.0);
    }
    ctx.startup_done();

    let me = ctx.global_id();
    let parts = ctx.total_threads();
    let (lo, hi) = chunk(me, parts, n);

    for _step in 0..cfg.steps {
        // Predict: half-kick + drift for owned molecules (center + rigid
        // atoms), and zero own force slots.
        for i in lo..hi {
            for d in 0..3 {
                let f = a.force.read(ctx, 3 * i + d);
                let v = a.vel.read(ctx, 3 * i + d) + 0.5 * cfg.dt * f;
                a.vel.write(ctx, 3 * i + d, v);
                let p = a.cpos.read(ctx, 3 * i + d) + cfg.dt * v;
                a.cpos.write(ctx, 3 * i + d, p);
                a.force.write(ctx, 3 * i + d, 0.0);
                charge_flops(ctx, 4);
            }
            for k in 0..3 {
                let o = atom_offset(k);
                for d in 0..3 {
                    let c = a.cpos.read(ctx, 3 * i + d);
                    a.apos.write(ctx, 9 * i + 3 * k + d, c + o[d]);
                }
            }
        }
        ctx.barrier();

        // Force computation over the half-shell; contributions accumulate
        // privately, then flush per the build variant.
        let mut f_local = vec![0.0f64; 3 * n];
        let mut touched = [false; SECTIONS];
        let mut pe_local = 0.0;
        // `s` modification: co-located threads traverse from opposing
        // ends, delaying overlapping reads of the same pages.
        let reversed = cfg.opt == WaterNsqOpt::BothOpts && ctx.local_id() % 2 == 1;
        let owned: Vec<usize> = if reversed {
            (lo..hi).rev().collect()
        } else {
            (lo..hi).collect()
        };
        for i in owned {
            let (ci, ai) = read_mol(ctx, a, i);
            for j in half_shell(i, n) {
                let (cj, aj) = read_mol(ctx, a, j);
                charge_flops(ctx, 10);
                if let Some((f, pe)) = pair_force(ci, cj, &ai, &aj, cfg.cutoff2) {
                    charge_flops(ctx, 9 * 20);
                    for d in 0..3 {
                        f_local[3 * i + d] += f[d];
                        f_local[3 * j + d] -= f[d];
                    }
                    touched[section_of(i, n)] = true;
                    touched[section_of(j, n)] = true;
                    pe_local += pe;
                }
            }
        }

        match cfg.opt {
            WaterNsqOpt::NoOpts => {
                // Every thread flushes every touched section itself.
                for s in 0..SECTIONS {
                    if !touched[s] {
                        continue;
                    }
                    let (slo, shi) = chunk(s, SECTIONS, n);
                    ctx.acquire(PART_LOCK_BASE + s);
                    for m in slo..shi {
                        for d in 0..3 {
                            let idx = 3 * m + d;
                            if f_local[idx] != 0.0 {
                                let cur = a.force.read(ctx, idx);
                                a.force.write(ctx, idx, cur + f_local[idx]);
                            }
                        }
                    }
                    ctx.release(PART_LOCK_BASE + s);
                }
                ctx.acquire(PE_LOCK);
                let e = a.pe.read(ctx, 0);
                a.pe.write(ctx, 0, e + pe_local);
                ctx.release(PE_LOCK);
            }
            WaterNsqOpt::LocalBarrier | WaterNsqOpt::BothOpts => {
                // `r` modification: aggregate into the node's scratch
                // region (local pages), serialized by local barriers.
                let sbase = ctx.node() * 3 * n;
                for turn in 0..ctx.threads_per_node() {
                    if ctx.local_id() == turn {
                        for (idx, &fv) in f_local.iter().enumerate() {
                            if fv != 0.0 {
                                let cur = a.scratch.read(ctx, sbase + idx);
                                a.scratch.write(ctx, sbase + idx, cur + fv);
                            }
                        }
                    }
                    ctx.local_barrier();
                }
                // Cooperatively apply sections: each section lock is taken
                // once per NODE; local threads own disjoint section sets
                // and start at their node's own region, wrapping around
                // (the paper's crude load balancing).
                let t = ctx.threads_per_node();
                let k = ctx.local_id();
                let start = section_of(lo.min(n - 1), n);
                let mut sections: Vec<usize> = (0..SECTIONS).filter(|s| s % t == k).collect();
                if let Some(pivot) = sections.iter().position(|&s| s >= start) {
                    sections.rotate_left(pivot);
                }
                for s in sections {
                    let (slo, shi) = chunk(s, SECTIONS, n);
                    ctx.acquire(PART_LOCK_BASE + s);
                    for m in slo..shi {
                        for d in 0..3 {
                            let idx = 3 * m + d;
                            let sv = a.scratch.read(ctx, sbase + idx);
                            if sv != 0.0 {
                                let cur = a.force.read(ctx, idx);
                                a.force.write(ctx, idx, cur + sv);
                            }
                        }
                    }
                    ctx.release(PART_LOCK_BASE + s);
                }
                // Aggregate potential energy: one remote update per node.
                let node_pe = ctx.local_reduce(ReduceOp::Sum, pe_local);
                if ctx.local_id() == 0 {
                    ctx.acquire(PE_LOCK);
                    let e = a.pe.read(ctx, 0);
                    a.pe.write(ctx, 0, e + node_pe);
                    ctx.release(PE_LOCK);
                }
                // Zero the scratch for the next step (split locally).
                ctx.local_barrier();
                let (zlo, zhi) = chunk(ctx.local_id(), t, 3 * n);
                for idx in zlo..zhi {
                    if a.scratch.read(ctx, sbase + idx) != 0.0 {
                        a.scratch.write(ctx, sbase + idx, 0.0);
                    }
                }
            }
        }
        ctx.barrier();

        // Correct: second half-kick from the completed force array.
        for i in lo..hi {
            for d in 0..3 {
                let f = a.force.read(ctx, 3 * i + d);
                let v = a.vel.read(ctx, 3 * i + d) + 0.5 * cfg.dt * f;
                a.vel.write(ctx, 3 * i + d, v);
                charge_flops(ctx, 3);
            }
        }
        ctx.barrier();
    }

    ctx.end_measured();

    // Validation checksum.
    let mut local = 0.0;
    for i in lo..hi {
        for d in 0..3 {
            local += a.cpos.read(ctx, 3 * i + d).abs() + a.vel.read(ctx, 3 * i + d).abs();
        }
    }
    ctx.acquire(PE_LOCK);
    let acc = a.sink.read(ctx, 0);
    a.sink.write(ctx, 0, acc + local);
    ctx.release(PE_LOCK);
    ctx.barrier();
    if ctx.global_id() == 0 {
        let total = a.sink.read(ctx, 0);
        let pe = a.pe.read(ctx, 0);
        assert!(total.is_finite() && pe.is_finite(), "Water-Nsq diverged");
        a.sink.write(ctx, 1, total);
    }
}

/// Sequential oracle for the final checksum.
pub fn oracle(cfg: &WaterNsqConfig) -> f64 {
    let n = cfg.n;
    let mut cpos = vec![[0.0f64; 3]; n];
    let mut vel = vec![[0.0f64; 3]; n];
    let mut force = vec![[0.0f64; 3]; n];
    for i in 0..n {
        let (p, v) = init_mol(i, n);
        cpos[i] = p;
        vel[i] = v;
    }
    let atoms = |c: [f64; 3]| -> [[f64; 3]; 3] {
        let mut out = [[0.0; 3]; 3];
        for (k, a) in out.iter_mut().enumerate() {
            let o = atom_offset(k);
            for d in 0..3 {
                a[d] = c[d] + o[d];
            }
        }
        out
    };
    for _ in 0..cfg.steps {
        for i in 0..n {
            for d in 0..3 {
                vel[i][d] += 0.5 * cfg.dt * force[i][d];
                cpos[i][d] += cfg.dt * vel[i][d];
                force[i][d] = 0.0;
            }
        }
        for i in 0..n {
            let ai = atoms(cpos[i]);
            for j in half_shell(i, n) {
                let aj = atoms(cpos[j]);
                if let Some((f, _)) = pair_force(cpos[i], cpos[j], &ai, &aj, cfg.cutoff2) {
                    for d in 0..3 {
                        force[i][d] += f[d];
                        force[j][d] -= f[d];
                    }
                }
            }
        }
        for i in 0..n {
            for d in 0..3 {
                vel[i][d] += 0.5 * cfg.dt * force[i][d];
            }
        }
    }
    let mut sum = 0.0;
    for i in 0..n {
        for d in 0..3 {
            sum += cpos[i][d].abs() + vel[i][d].abs();
        }
    }
    sum
}

/// Runs the app and returns the checksum (tests).
pub fn checksum_of_run(cfg: &WaterNsqConfig, nodes: usize, threads: usize) -> f64 {
    checksum_of_config(cfg, cvm_dsm::CvmConfig::small(nodes, threads)).0
}

/// Like [`checksum_of_run`], but over an arbitrary system configuration
/// (protocol under test, jitter, …); also returns the run's report.
pub fn checksum_of_config(
    cfg: &WaterNsqConfig,
    dsm: cvm_dsm::CvmConfig,
) -> (f64, cvm_dsm::RunReport) {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    let mut b = CvmBuilder::new(dsm);
    let a = alloc_arrays(&mut b, cfg.n);
    let out = Arc::new(AtomicU64::new(0));
    let out2 = Arc::clone(&out);
    let cfg = *cfg;
    let report = b.run(move |ctx| {
        run(ctx, &cfg, &a);
        if ctx.global_id() == 0 {
            out2.store(a.sink.read(ctx, 1).to_bits(), Ordering::SeqCst);
        }
    });
    (f64::from_bits(out.load(Ordering::SeqCst)), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::assert_close;

    fn tiny(opt: WaterNsqOpt) -> WaterNsqConfig {
        WaterNsqConfig {
            n: 27,
            steps: 2,
            dt: 0.002,
            cutoff2: 0.35,
            opt,
        }
    }

    #[test]
    fn half_shell_counts_each_pair_once() {
        for n in [8usize, 9, 27, 32] {
            let mut seen = std::collections::HashSet::new();
            for i in 0..n {
                for j in half_shell(i, n) {
                    let key = (i.min(j), i.max(j));
                    assert!(seen.insert(key), "pair {key:?} duplicated (n={n})");
                }
            }
            assert_eq!(seen.len(), n * (n - 1) / 2, "all pairs covered (n={n})");
        }
    }

    #[test]
    fn sections_partition_molecules() {
        for n in [27usize, 64, 100, 512] {
            for m in 0..n {
                let s = section_of(m, n);
                let (lo, hi) = chunk(s, SECTIONS, n);
                assert!(m >= lo && m < hi, "molecule {m} in section {s} (n={n})");
            }
        }
    }

    #[test]
    fn forces_are_antisymmetric() {
        let ci = [0.1, 0.2, 0.3];
        let cj = [0.15, 0.2, 0.3];
        let mk = |c: [f64; 3]| {
            let mut out = [[0.0; 3]; 3];
            for (k, a) in out.iter_mut().enumerate() {
                let o = atom_offset(k);
                for d in 0..3 {
                    a[d] = c[d] + o[d];
                }
            }
            out
        };
        let (f, _) = pair_force(ci, cj, &mk(ci), &mk(cj), 1.0).unwrap();
        let (g, _) = pair_force(cj, ci, &mk(cj), &mk(ci), 1.0).unwrap();
        for d in 0..3 {
            assert_close(f[d], -g[d], 1e-9, "Newton's third law");
        }
    }

    #[test]
    fn all_variants_match_oracle() {
        for opt in [
            WaterNsqOpt::NoOpts,
            WaterNsqOpt::LocalBarrier,
            WaterNsqOpt::BothOpts,
        ] {
            let cfg = tiny(opt);
            let want = oracle(&cfg);
            let got = checksum_of_run(&cfg, 2, 2);
            assert_close(got, want, 1e-9, "Water-Nsq checksum");
        }
    }

    #[test]
    fn single_thread_matches_oracle() {
        let cfg = tiny(WaterNsqOpt::BothOpts);
        assert_close(
            checksum_of_run(&cfg, 1, 1),
            oracle(&cfg),
            1e-9,
            "single-thread Water-Nsq",
        );
    }
}
