//! Ocean — large-scale ocean-current simulation (contiguous-partition
//! SPLASH-2 style).
//!
//! A multi-array, multi-phase solver: per timestep it computes a vorticity
//! laplacian, advances the field, pre-smooths the stream function, then
//! runs a **two-grid multigrid cycle** (restrict the residual to a
//! half-resolution grid, relax there, prolongate the correction back, and
//! post-smooth). The coarse grid is the heart of Ocean's DSM pathology: at
//! eight nodes it spans only a handful of coherence pages, so every node
//! writes and invalidates the same pages every step — the huge fault and
//! diff counts the paper reports ("Ocean performs poorly on CVM due to the
//! large number of faults... included primarily to show the effect of
//! multi-threading on applications that are anything but well-tuned").
//!
//! The residual reduction is lock-based; the paper's `r` modification
//! aggregates local contributions through a CVM local barrier into a
//! single remote update per node (switchable here for the ablation).

use cvm_dsm::{CvmBuilder, ReduceOp, SharedMat, SharedVec, ThreadCtx};

use crate::common::{charge_flops, chunk};
use crate::AppBody;

/// Ocean configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OceanConfig {
    /// Interior grid dimension, even (full grid `(n+2)²`; the paper's
    /// input is a 258×258 ocean, i.e. `n = 256`).
    pub n: usize,
    /// Timesteps.
    pub steps: usize,
    /// Pre-smoothing relaxation sweeps per step.
    pub sweeps: usize,
    /// Coarse-grid relaxation sweeps per step.
    pub coarse_sweeps: usize,
    /// Use the per-node local-barrier reduction (`r` modification).
    pub use_reduction: bool,
}

impl OceanConfig {
    /// Model-checker kernel: one step on a 16×16 grid.
    pub fn tiny() -> Self {
        OceanConfig {
            n: 16,
            steps: 1,
            sweeps: 1,
            coarse_sweeps: 1,
            use_reduction: true,
        }
    }

    /// Laptop-scale default.
    pub fn small() -> Self {
        OceanConfig {
            n: 192,
            steps: 3,
            sweeps: 1,
            coarse_sweeps: 2,
            use_reduction: true,
        }
    }

    /// The paper's 258×258 ocean.
    pub fn paper() -> Self {
        OceanConfig {
            n: 256,
            steps: 4,
            sweeps: 1,
            coarse_sweeps: 2,
            use_reduction: true,
        }
    }
}

const DT: f64 = 0.05;
const GAMMA: f64 = 0.02;
const ERR_LOCK: usize = 10;
const SUM_LOCK: usize = 11;

struct Grids {
    psi: SharedMat<f64>,
    q: SharedMat<f64>,
    lap: SharedMat<f64>,
    /// Coarse-grid restricted residual, `(n/2+2)²`.
    res_c: SharedMat<f64>,
    /// Coarse-grid correction, `(n/2+2)²`.
    err_c: SharedMat<f64>,
    err: SharedVec<f64>,
    sink: SharedVec<f64>,
}

fn alloc_grids(b: &mut CvmBuilder, n: usize) -> Grids {
    let nc = n / 2;
    Grids {
        psi: b.alloc_mat(n + 2, n + 2),
        q: b.alloc_mat(n + 2, n + 2),
        lap: b.alloc_mat(n + 2, n + 2),
        res_c: b.alloc_mat(nc + 2, nc + 2),
        err_c: b.alloc_mat(nc + 2, nc + 2),
        err: b.alloc::<f64>(1),
        sink: b.alloc::<f64>(2),
    }
}

/// Builds the Ocean body.
///
/// # Panics
///
/// Panics if `n` is odd (the coarse grid is half resolution).
pub fn build(b: &mut CvmBuilder, cfg: OceanConfig) -> AppBody {
    assert!(cfg.n.is_multiple_of(2), "Ocean grid must be even");
    let g = alloc_grids(b, cfg.n);
    Box::new(move |ctx: &mut ThreadCtx<'_>| run(ctx, &cfg, &g))
}

fn init_val(r: usize, c: usize, dim: usize) -> (f64, f64) {
    let x = r as f64 / dim as f64;
    let y = c as f64 / dim as f64;
    (
        (x * 6.1).sin() * (y * 3.3).cos(),
        (x * 2.7).cos() + (y * 5.9).sin() * 0.5,
    )
}

fn run(ctx: &mut ThreadCtx<'_>, cfg: &OceanConfig, g: &Grids) {
    let n = cfg.n;
    let nc = n / 2;
    let dim = n + 2;
    if ctx.global_id() == 0 {
        for r in 0..dim {
            for c in 0..dim {
                let (p, q) = init_val(r, c, dim);
                let boundary = r == 0 || c == 0 || r == dim - 1 || c == dim - 1;
                g.psi.write(ctx, r, c, if boundary { 0.0 } else { p });
                g.q.write(ctx, r, c, if boundary { 0.0 } else { q });
                g.lap.write(ctx, r, c, 0.0);
            }
        }
        for r in 0..nc + 2 {
            for c in 0..nc + 2 {
                g.res_c.write(ctx, r, c, 0.0);
                g.err_c.write(ctx, r, c, 0.0);
            }
        }
        g.err.write(ctx, 0, 0.0);
        g.sink.write(ctx, 0, 0.0);
        g.sink.write(ctx, 1, 0.0);
    }
    ctx.startup_done();

    let parts = ctx.total_threads();
    let (flo, fhi) = chunk(ctx.global_id(), parts, n);
    let (rlo, rhi) = (flo + 1, fhi + 1);
    let (clo, chi) = chunk(ctx.global_id(), parts, nc);
    let (crlo, crhi) = (clo + 1, chi + 1);

    for _step in 0..cfg.steps {
        // Phase 1: laplacian of psi.
        for r in rlo..rhi {
            for c in 1..=n {
                let l = g.psi.read(ctx, r - 1, c)
                    + g.psi.read(ctx, r + 1, c)
                    + g.psi.read(ctx, r, c - 1)
                    + g.psi.read(ctx, r, c + 1)
                    - 4.0 * g.psi.read(ctx, r, c);
                g.lap.write(ctx, r, c, l);
                charge_flops(ctx, 6);
            }
        }
        ctx.barrier();

        // Phase 2: advance vorticity (purely local block).
        for r in rlo..rhi {
            for c in 1..=n {
                let q0 = g.q.read(ctx, r, c);
                let l = g.lap.read(ctx, r, c);
                g.q.write(ctx, r, c, q0 + DT * (l - GAMMA * q0));
                charge_flops(ctx, 4);
            }
        }
        ctx.barrier();

        // Phase 3: pre-smooth psi toward lap(psi) = q.
        for _sweep in 0..cfg.sweeps {
            relax_fine(ctx, cfg, g, rlo, rhi);
        }

        // Phase 4: restrict the fine residual to the coarse grid. The
        // whole coarse grid spans very few pages, so this is where nodes
        // start fighting over shared pages.
        for cr in crlo..crhi {
            for cc in 1..=nc {
                let mut acc = 0.0;
                for dr in 0..2 {
                    for dc in 0..2 {
                        let r = 2 * cr - 1 + dr;
                        let c = 2 * cc - 1 + dc;
                        let s = g.psi.read(ctx, r - 1, c)
                            + g.psi.read(ctx, r + 1, c)
                            + g.psi.read(ctx, r, c - 1)
                            + g.psi.read(ctx, r, c + 1);
                        acc += s - 4.0 * g.psi.read(ctx, r, c) - g.q.read(ctx, r, c);
                        charge_flops(ctx, 8);
                    }
                }
                g.res_c.write(ctx, cr, cc, acc);
                // Zero the correction for this cycle.
                g.err_c.write(ctx, cr, cc, 0.0);
            }
        }
        ctx.barrier();

        // Phase 5: relax the coarse correction: lap(err) = res.
        for _sweep in 0..cfg.coarse_sweeps {
            for colour in 0..2usize {
                for cr in crlo..crhi {
                    for cc in 1..=nc {
                        if (cr + cc) % 2 == colour {
                            let s = g.err_c.read(ctx, cr - 1, cc)
                                + g.err_c.read(ctx, cr + 1, cc)
                                + g.err_c.read(ctx, cr, cc - 1)
                                + g.err_c.read(ctx, cr, cc + 1);
                            let rv = g.res_c.read(ctx, cr, cc);
                            g.err_c.write(ctx, cr, cc, 0.25 * (s - rv));
                            charge_flops(ctx, 6);
                        }
                    }
                }
                ctx.barrier();
            }
        }

        // Phase 6: prolongate the correction back to the fine grid
        // (injection) with a damping factor.
        for r in rlo..rhi {
            for c in 1..=n {
                let e = g.err_c.read(ctx, r.div_ceil(2), c.div_ceil(2));
                let p = g.psi.read(ctx, r, c);
                g.psi.write(ctx, r, c, p + 0.25 * e);
                charge_flops(ctx, 3);
            }
        }
        ctx.barrier();

        // Phase 7: post-smooth.
        relax_fine(ctx, cfg, g, rlo, rhi);

        // Phase 8: residual reduction — the paper's reduction bottleneck.
        let mut local = 0.0;
        for r in rlo..rhi {
            for c in 1..=n {
                let s = g.psi.read(ctx, r - 1, c)
                    + g.psi.read(ctx, r + 1, c)
                    + g.psi.read(ctx, r, c - 1)
                    + g.psi.read(ctx, r, c + 1)
                    - 4.0 * g.psi.read(ctx, r, c);
                local += (s - g.q.read(ctx, r, c)).abs();
                charge_flops(ctx, 8);
            }
        }
        if cfg.use_reduction {
            // `r` modification: one remote update per node.
            let node_sum = ctx.local_reduce(ReduceOp::Sum, local);
            if ctx.local_id() == 0 {
                ctx.acquire(ERR_LOCK);
                let e = g.err.read(ctx, 0);
                g.err.write(ctx, 0, e + node_sum);
                ctx.release(ERR_LOCK);
            }
        } else {
            // Transparent multi-threading: every thread updates the shared
            // accumulator — extra lock and diff traffic.
            ctx.acquire(ERR_LOCK);
            let e = g.err.read(ctx, 0);
            g.err.write(ctx, 0, e + local);
            ctx.release(ERR_LOCK);
        }
        ctx.barrier();
        if ctx.global_id() == 0 {
            let e = g.err.read(ctx, 0);
            assert!(e.is_finite(), "Ocean residual diverged");
            g.err.write(ctx, 0, 0.0);
        }
        ctx.barrier();
    }

    ctx.end_measured();

    // Validation checksum.
    let mut local = 0.0;
    for r in rlo..rhi {
        for c in 1..=n {
            local += g.psi.read(ctx, r, c) + 0.5 * g.q.read(ctx, r, c);
        }
    }
    ctx.acquire(SUM_LOCK);
    let acc = g.sink.read(ctx, 0);
    g.sink.write(ctx, 0, acc + local);
    ctx.release(SUM_LOCK);
    ctx.barrier();
    if ctx.global_id() == 0 {
        let total = g.sink.read(ctx, 0);
        g.sink.write(ctx, 1, total);
    }
}

fn relax_fine(ctx: &mut ThreadCtx<'_>, cfg: &OceanConfig, g: &Grids, rlo: usize, rhi: usize) {
    let n = cfg.n;
    for colour in 0..2usize {
        for r in rlo..rhi {
            for c in 1..=n {
                if (r + c) % 2 == colour {
                    let s = g.psi.read(ctx, r - 1, c)
                        + g.psi.read(ctx, r + 1, c)
                        + g.psi.read(ctx, r, c - 1)
                        + g.psi.read(ctx, r, c + 1);
                    let qv = g.q.read(ctx, r, c);
                    g.psi.write(ctx, r, c, 0.25 * (s - qv));
                    charge_flops(ctx, 6);
                }
            }
        }
        ctx.barrier();
    }
}

/// Sequential oracle for the final checksum.
pub fn oracle(cfg: &OceanConfig) -> f64 {
    let n = cfg.n;
    let nc = n / 2;
    let dim = n + 2;
    let cdim = nc + 2;
    let idx = |r: usize, c: usize| r * dim + c;
    let cidx = |r: usize, c: usize| r * cdim + c;
    let mut psi = vec![0.0f64; dim * dim];
    let mut q = vec![0.0f64; dim * dim];
    let mut lap = vec![0.0f64; dim * dim];
    let mut res_c = vec![0.0f64; cdim * cdim];
    let mut err_c = vec![0.0f64; cdim * cdim];
    for r in 0..dim {
        for c in 0..dim {
            let (p, qq) = init_val(r, c, dim);
            let boundary = r == 0 || c == 0 || r == dim - 1 || c == dim - 1;
            psi[idx(r, c)] = if boundary { 0.0 } else { p };
            q[idx(r, c)] = if boundary { 0.0 } else { qq };
        }
    }
    let relax = |psi: &mut Vec<f64>, q: &Vec<f64>| {
        for colour in 0..2usize {
            for r in 1..=n {
                for c in 1..=n {
                    if (r + c) % 2 == colour {
                        let s = psi[idx(r - 1, c)]
                            + psi[idx(r + 1, c)]
                            + psi[idx(r, c - 1)]
                            + psi[idx(r, c + 1)];
                        psi[idx(r, c)] = 0.25 * (s - q[idx(r, c)]);
                    }
                }
            }
        }
    };
    for _ in 0..cfg.steps {
        for r in 1..=n {
            for c in 1..=n {
                lap[idx(r, c)] = psi[idx(r - 1, c)]
                    + psi[idx(r + 1, c)]
                    + psi[idx(r, c - 1)]
                    + psi[idx(r, c + 1)]
                    - 4.0 * psi[idx(r, c)];
            }
        }
        for r in 1..=n {
            for c in 1..=n {
                q[idx(r, c)] += DT * (lap[idx(r, c)] - GAMMA * q[idx(r, c)]);
            }
        }
        for _ in 0..cfg.sweeps {
            relax(&mut psi, &q);
        }
        for cr in 1..=nc {
            for cc in 1..=nc {
                let mut acc = 0.0;
                for dr in 0..2 {
                    for dc in 0..2 {
                        let r = 2 * cr - 1 + dr;
                        let c = 2 * cc - 1 + dc;
                        let s = psi[idx(r - 1, c)]
                            + psi[idx(r + 1, c)]
                            + psi[idx(r, c - 1)]
                            + psi[idx(r, c + 1)];
                        acc += s - 4.0 * psi[idx(r, c)] - q[idx(r, c)];
                    }
                }
                res_c[cidx(cr, cc)] = acc;
                err_c[cidx(cr, cc)] = 0.0;
            }
        }
        for _ in 0..cfg.coarse_sweeps {
            for colour in 0..2usize {
                for cr in 1..=nc {
                    for cc in 1..=nc {
                        if (cr + cc) % 2 == colour {
                            let s = err_c[cidx(cr - 1, cc)]
                                + err_c[cidx(cr + 1, cc)]
                                + err_c[cidx(cr, cc - 1)]
                                + err_c[cidx(cr, cc + 1)];
                            err_c[cidx(cr, cc)] = 0.25 * (s - res_c[cidx(cr, cc)]);
                        }
                    }
                }
            }
        }
        for r in 1..=n {
            for c in 1..=n {
                psi[idx(r, c)] += 0.25 * err_c[cidx(r.div_ceil(2), c.div_ceil(2))];
            }
        }
        relax(&mut psi, &q);
    }
    let mut sum = 0.0;
    for r in 1..=n {
        for c in 1..=n {
            sum += psi[idx(r, c)] + 0.5 * q[idx(r, c)];
        }
    }
    sum
}

/// Runs the app and returns the checksum (tests).
pub fn checksum_of_run(cfg: &OceanConfig, nodes: usize, threads: usize) -> f64 {
    checksum_of_config(cfg, cvm_dsm::CvmConfig::small(nodes, threads)).0
}

/// Like [`checksum_of_run`], but over an arbitrary system configuration
/// (protocol under test, jitter, …); also returns the run's report.
pub fn checksum_of_config(cfg: &OceanConfig, dsm: cvm_dsm::CvmConfig) -> (f64, cvm_dsm::RunReport) {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    let mut b = CvmBuilder::new(dsm);
    let g = alloc_grids(&mut b, cfg.n);
    let out = Arc::new(AtomicU64::new(0));
    let out2 = Arc::clone(&out);
    let cfg = *cfg;
    let report = b.run(move |ctx| {
        run(ctx, &cfg, &g);
        if ctx.global_id() == 0 {
            out2.store(g.sink.read(ctx, 1).to_bits(), Ordering::SeqCst);
        }
    });
    (f64::from_bits(out.load(Ordering::SeqCst)), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::assert_close;

    fn tiny(use_reduction: bool) -> OceanConfig {
        OceanConfig {
            n: 24,
            steps: 2,
            sweeps: 1,
            coarse_sweeps: 1,
            use_reduction,
        }
    }

    #[test]
    fn parallel_matches_oracle_with_reduction() {
        let cfg = tiny(true);
        let want = oracle(&cfg);
        for (nodes, threads) in [(1, 1), (2, 2)] {
            assert_close(
                checksum_of_run(&cfg, nodes, threads),
                want,
                1e-9,
                "Ocean checksum (r)",
            );
        }
    }

    #[test]
    fn parallel_matches_oracle_without_reduction() {
        let cfg = tiny(false);
        let want = oracle(&cfg);
        assert_close(
            checksum_of_run(&cfg, 2, 2),
            want,
            1e-9,
            "Ocean checksum (no-opt)",
        );
    }

    #[test]
    fn multigrid_correction_has_effect() {
        // The coarse correction must actually change the solution (the
        // cycle is wired through): compare oracles with and without it.
        let n = 24;
        let with = OceanConfig {
            n,
            steps: 1,
            sweeps: 1,
            coarse_sweeps: 4,
            use_reduction: true,
        };
        let without = OceanConfig {
            n,
            steps: 1,
            sweeps: 1,
            coarse_sweeps: 0,
            use_reduction: true,
        };
        let a = oracle(&with);
        let b = oracle(&without);
        assert!(a.is_finite() && b.is_finite());
        assert!((a - b).abs() > 1e-12, "coarse cycle had no effect");
    }
}
