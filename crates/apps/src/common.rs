//! Helpers shared by the application kernels.

use cvm_dsm::ThreadCtx;
use cvm_sim::SimDuration;

/// Nanoseconds charged per floating-point operation (≈ a 275 MHz Alpha
/// sustaining roughly one flop per two cycles).
pub const NS_PER_FLOP: f64 = 8.0;

/// Charges `flops` floating-point operations of pure computation.
pub fn charge_flops(ctx: &mut ThreadCtx<'_>, flops: u64) {
    ctx.work(SimDuration::from_ns((flops as f64 * NS_PER_FLOP) as u64));
}

/// Relative-tolerance float comparison for result validation.
pub fn close(a: f64, b: f64, rel: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= rel * scale
}

/// Asserts two floats are close, with a helpful message.
///
/// # Panics
///
/// Panics when the values differ by more than `rel` relative tolerance.
pub fn assert_close(a: f64, b: f64, rel: f64, what: &str) {
    assert!(close(a, b, rel), "{what}: {a} vs {b} (rel tol {rel})");
}

/// Splits `len` items into the contiguous chunk owned by `who` of `parts`
/// (same scheme as `ThreadCtx::partition`, usable outside a context).
pub fn chunk(who: usize, parts: usize, len: usize) -> (usize, usize) {
    cvm_dsm::ctx::partition_for(who, parts, len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn close_tolerates_scale() {
        assert!(close(1000.0, 1000.1, 1e-3));
        assert!(!close(1.0, 2.0, 1e-3));
        assert!(close(0.0, 1e-9, 1e-6));
    }

    #[test]
    fn chunk_matches_partition() {
        assert_eq!(chunk(0, 4, 100), (0, 25));
        assert_eq!(chunk(3, 4, 100), (75, 100));
    }
}
