//! SOR — red/black successive over-relaxation, the paper's nearest-
//! neighbour baseline.
//!
//! Rows are block-partitioned over all threads; each phase updates one
//! colour from its four neighbours and barriers. Only the boundary rows
//! between *nodes* ever cross the network, so fault traffic is independent
//! of the per-node threading level — the paper includes SOR precisely to
//! show that multi-threading adds little overhead when there is little
//! remote latency to hide (≈2% speedup on 8 processors).

use cvm_dsm::{CvmBuilder, SharedMat, ThreadCtx};

use crate::common::{charge_flops, chunk};
use crate::AppBody;

/// SOR configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SorConfig {
    /// Interior grid dimension (the full grid is `(n+2) x (n+2)`).
    pub n: usize,
    /// Red/black iterations.
    pub iters: usize,
    /// Over-relaxation factor.
    pub omega: f64,
}

impl SorConfig {
    /// Model-checker kernel: a 48×48 grid (three coherence pages, so
    /// 2-node runs really share and home assignment splits) for two
    /// iterations.
    pub fn tiny() -> Self {
        SorConfig {
            n: 48,
            iters: 2,
            omega: 1.15,
        }
    }

    /// Laptop-scale default.
    pub fn small() -> Self {
        SorConfig {
            n: 766,
            iters: 10,
            omega: 1.15,
        }
    }

    /// The paper's 2048×2048 input.
    pub fn paper() -> Self {
        SorConfig {
            n: 2046,
            iters: 24,
            omega: 1.15,
        }
    }
}

/// Builds the SOR body. Thread 0 can verify convergence via the residual
/// monotonicity assertion at the end.
pub fn build(b: &mut CvmBuilder, cfg: SorConfig) -> AppBody {
    let grid: SharedMat<f64> = b.alloc_mat(cfg.n + 2, cfg.n + 2);
    let sink = alloc_sink(b);
    Box::new(move |ctx: &mut ThreadCtx<'_>| {
        run(ctx, &cfg, grid, sink);
    })
}

/// Checksum sink: slot 0 is the lock-accumulated total, slot 1 the
/// published result, slots `2..2+T` the per-thread partials.
fn alloc_sink(b: &mut CvmBuilder) -> cvm_dsm::SharedVec<f64> {
    let threads = b.config().nodes * b.config().threads_per_node;
    b.alloc::<f64>(threads + 2)
}

/// Reference sequential implementation (oracle for tests): returns the
/// final checksum (sum of interior cells).
pub fn oracle(cfg: &SorConfig) -> f64 {
    let dim = cfg.n + 2;
    let mut g = vec![0.0f64; dim * dim];
    init_values(|r, c, v| g[r * dim + c] = v, dim);
    for _ in 0..cfg.iters {
        for colour in 0..2usize {
            for r in 1..=cfg.n {
                for c in 1..=cfg.n {
                    if (r + c) % 2 == colour {
                        let s = g[(r - 1) * dim + c]
                            + g[(r + 1) * dim + c]
                            + g[r * dim + c - 1]
                            + g[r * dim + c + 1];
                        g[r * dim + c] = (1.0 - cfg.omega) * g[r * dim + c] + cfg.omega * 0.25 * s;
                    }
                }
            }
        }
    }
    let mut sum = 0.0;
    for r in 1..=cfg.n {
        for c in 1..=cfg.n {
            sum += g[r * dim + c];
        }
    }
    sum
}

fn init_values(mut set: impl FnMut(usize, usize, f64), dim: usize) {
    for r in 0..dim {
        for c in 0..dim {
            // Hot left edge, cold elsewhere; deterministic interior noise.
            let v = if c == 0 {
                100.0
            } else if r == 0 || r == dim - 1 || c == dim - 1 {
                0.0
            } else {
                ((r * 31 + c * 17) % 11) as f64 * 0.1
            };
            set(r, c, v);
        }
    }
}

fn run(
    ctx: &mut ThreadCtx<'_>,
    cfg: &SorConfig,
    grid: SharedMat<f64>,
    sink: cvm_dsm::SharedVec<f64>,
) {
    let dim = cfg.n + 2;
    if ctx.global_id() == 0 {
        init_values(|r, c, v| grid.write(ctx, r, c, v), dim);
        sink.write(ctx, 0, 0.0);
        sink.write(ctx, 1, 0.0);
    }
    ctx.startup_done();

    // Interior rows 1..=n block-partitioned over all threads; co-located
    // threads get adjacent blocks, so only node boundaries cross the wire.
    let (lo, hi) = chunk(ctx.global_id(), ctx.total_threads(), cfg.n);
    let (row_lo, row_hi) = (lo + 1, hi + 1);

    for _ in 0..cfg.iters {
        for colour in 0..2usize {
            for r in row_lo..row_hi {
                for c in 1..=cfg.n {
                    if (r + c) % 2 == colour {
                        let s = grid.read(ctx, r - 1, c)
                            + grid.read(ctx, r + 1, c)
                            + grid.read(ctx, r, c - 1)
                            + grid.read(ctx, r, c + 1);
                        let old = grid.read(ctx, r, c);
                        grid.write(ctx, r, c, (1.0 - cfg.omega) * old + cfg.omega * 0.25 * s);
                        charge_flops(ctx, 7);
                    }
                }
            }
            ctx.barrier();
        }
    }

    ctx.end_measured();

    // Checksum of the owned block. Each thread publishes its partial in
    // its own slot; thread 0 folds the slots in index order so the
    // published result never depends on timing (lock-grant order varies
    // with wire conditions, and float addition is not associative). The
    // lock-accumulated total stays as a cross-check on lock exactness.
    let mut local = 0.0;
    for r in row_lo..row_hi {
        for c in 1..=cfg.n {
            local += grid.read(ctx, r, c);
        }
    }
    sink.write(ctx, 2 + ctx.global_id(), local);
    ctx.acquire(0);
    let acc = sink.read(ctx, 0);
    sink.write(ctx, 0, acc + local);
    ctx.release(0);
    ctx.barrier();
    if ctx.global_id() == 0 {
        let locked = sink.read(ctx, 0);
        let mut total = 0.0;
        for t in 0..ctx.total_threads() {
            total += sink.read(ctx, 2 + t);
        }
        assert!(total.is_finite(), "SOR diverged");
        assert!(
            (locked - total).abs() <= 1e-9 * total.abs().max(1.0),
            "lock-accumulated checksum disagrees with ordered reduction"
        );
        sink.write(ctx, 1, total);
    }
}

/// Reads back the checksum computed by a finished run — for tests, using a
/// fresh single-node run (the report itself carries no application data).
pub fn checksum_of_run(cfg: &SorConfig, nodes: usize, threads: usize) -> f64 {
    checksum_of_config(cfg, cvm_dsm::CvmConfig::small(nodes, threads)).0
}

/// Like [`checksum_of_run`], but over an arbitrary system configuration
/// (lossy wire, jitter, eager protocol, …); also returns the run's report
/// so tests can inspect the transport statistics alongside the result.
pub fn checksum_of_config(cfg: &SorConfig, dsm: cvm_dsm::CvmConfig) -> (f64, cvm_dsm::RunReport) {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    let mut b = CvmBuilder::new(dsm);
    let grid: SharedMat<f64> = b.alloc_mat(cfg.n + 2, cfg.n + 2);
    let sink = alloc_sink(&mut b);
    let out = Arc::new(AtomicU64::new(0));
    let out2 = Arc::clone(&out);
    let cfg = *cfg;
    let report = b.run(move |ctx| {
        run(ctx, &cfg, grid, sink);
        if ctx.global_id() == 0 {
            let v = sink.read(ctx, 1);
            out2.store(v.to_bits(), Ordering::SeqCst);
        }
    });
    (f64::from_bits(out.load(Ordering::SeqCst)), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::assert_close;

    fn tiny() -> SorConfig {
        SorConfig {
            n: 30,
            iters: 4,
            omega: 1.1,
        }
    }

    #[test]
    fn parallel_matches_oracle_across_configs() {
        let cfg = tiny();
        let want = oracle(&cfg);
        for (nodes, threads) in [(1, 1), (2, 2), (3, 2)] {
            let got = checksum_of_run(&cfg, nodes, threads);
            assert_close(got, want, 1e-9, "SOR checksum");
        }
    }

    #[test]
    fn oracle_is_deterministic() {
        let cfg = tiny();
        assert_eq!(oracle(&cfg), oracle(&cfg));
    }
}
