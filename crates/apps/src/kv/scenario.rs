//! Declarative serving scenarios: workload shapes as data, not code.
//!
//! A scenario file is INI-flavoured (`[section]` headers, `key = value`
//! lines, `#` comments) in the style molecular-simulation packages use
//! for their input decks — new traffic shapes are a config file, not a
//! recompile. Three sections:
//!
//! ```text
//! [store]                 # table geometry and request cost
//! keys = 16384
//! shards = 16
//! theta = 0.99
//! write_mix = 0.2
//! service_flops = 200
//!
//! [traffic]               # the open-loop generator
//! rate_rps = 50000
//! duration_ms = 200
//! sweep = 20000, 40000, 80000   # optional saturation ladder
//!
//! [system]                # topology and policy knobs
//! nodes = 4
//! threads = 2
//! local_grant_cap = 0
//! seed = 42
//! ```
//!
//! Unknown keys are errors (a typo silently ignored is a wrong
//! experiment); missing keys keep their defaults.

use super::KvConfig;

/// A complete serving experiment: workload + topology + rate ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeScenario {
    /// Scenario name (file stem or builtin name), used in artifacts.
    pub name: String,
    /// Store shape and base offered load.
    pub kv: KvConfig,
    /// Node count.
    pub nodes: usize,
    /// Threads per node.
    pub threads: usize,
    /// Lock-fairness cap (0 = the paper's unbounded local preference).
    pub local_grant_cap: u32,
    /// Master seed.
    pub seed: u64,
    /// Saturation-sweep rate ladder (requests/s); empty = single run at
    /// `kv.rate_rps`.
    pub sweep: Vec<f64>,
}

impl ServeScenario {
    /// The named builtin, if any: `smoke` (seconds-scale) or `session`
    /// (the default session-store shape).
    pub fn builtin(name: &str) -> Option<ServeScenario> {
        match name {
            "smoke" => Some(ServeScenario {
                name: "smoke".into(),
                kv: KvConfig::smoke(),
                nodes: 2,
                threads: 2,
                local_grant_cap: 0,
                seed: 42,
                sweep: Vec::new(),
            }),
            "session" => Some(ServeScenario {
                name: "session".into(),
                kv: KvConfig::small(),
                nodes: 4,
                threads: 2,
                local_grant_cap: 0,
                seed: 42,
                // The committed saturation ladder: brackets the
                // coherence-bound knee of the 4×2 session store.
                sweep: vec![500.0, 1000.0, 1500.0, 2000.0, 3000.0, 4000.0],
            }),
            _ => None,
        }
    }

    /// Names of the builtins, for usage text.
    pub const BUILTINS: [&'static str; 2] = ["smoke", "session"];

    /// Parses a scenario file's text; `name` labels the result (callers
    /// pass the file stem).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line for malformed syntax,
    /// unknown sections/keys, or unparsable values.
    pub fn parse(name: &str, text: &str) -> Result<ServeScenario, String> {
        let mut sc = ServeScenario::builtin("session").expect("builtin exists");
        sc.name = name.to_string();
        // A file sweeps only when it says so; everything else keeps the
        // session defaults.
        sc.sweep = Vec::new();
        let mut section = String::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let at = |msg: String| format!("line {}: {msg}", idx + 1);
            if let Some(head) = line.strip_prefix('[') {
                let head = head
                    .strip_suffix(']')
                    .ok_or_else(|| at(format!("unterminated section header {line:?}")))?;
                if !["store", "traffic", "system"].contains(&head) {
                    return Err(at(format!("unknown section [{head}]")));
                }
                section = head.to_string();
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| at(format!("expected key = value, got {line:?}")))?;
            let (key, value) = (key.trim(), value.trim());
            let parse_f64 = || -> Result<f64, String> {
                value
                    .parse::<f64>()
                    .map_err(|e| at(format!("bad number {value:?} for {key}: {e}")))
            };
            let parse_usize = || -> Result<usize, String> {
                value
                    .parse::<usize>()
                    .map_err(|e| at(format!("bad integer {value:?} for {key}: {e}")))
            };
            match (section.as_str(), key) {
                ("store", "keys") => sc.kv.keys = parse_usize()?,
                ("store", "shards") => sc.kv.shards = parse_usize()?,
                ("store", "theta") => sc.kv.theta = parse_f64()?,
                ("store", "write_mix") => sc.kv.write_mix = parse_f64()?,
                ("store", "service_flops") => sc.kv.service_flops = parse_usize()? as u64,
                ("traffic", "rate_rps") => sc.kv.rate_rps = parse_f64()?,
                ("traffic", "duration_ms") => sc.kv.duration_ms = parse_usize()? as u64,
                ("traffic", "sweep") => {
                    sc.sweep = value
                        .split(',')
                        .map(|s| {
                            s.trim()
                                .parse::<f64>()
                                .map_err(|e| at(format!("bad sweep rate {s:?}: {e}")))
                        })
                        .collect::<Result<_, _>>()?;
                }
                ("system", "nodes") => sc.nodes = parse_usize()?,
                ("system", "threads") => sc.threads = parse_usize()?,
                ("system", "local_grant_cap") => sc.local_grant_cap = parse_usize()? as u32,
                ("system", "seed") => sc.seed = parse_usize()? as u64,
                ("", _) => return Err(at(format!("key {key:?} before any [section]"))),
                (s, k) => return Err(at(format!("unknown key {k:?} in section [{s}]"))),
            }
        }
        sc.kv.validate();
        assert!(sc.nodes > 0 && sc.threads > 0, "topology must be non-empty");
        Ok(sc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_validate() {
        for name in ServeScenario::BUILTINS {
            let sc = ServeScenario::builtin(name).expect("builtin");
            sc.kv.validate();
            assert_eq!(sc.name, name);
        }
        assert!(ServeScenario::builtin("nope").is_none());
    }

    #[test]
    fn full_file_round_trips() {
        let text = "\
# a comment
[store]
keys = 8192
shards = 4
theta = 0.8       # trailing comment
write_mix = 0.5
service_flops = 100

[traffic]
rate_rps = 12500
duration_ms = 75
sweep = 1000, 2000, 4000

[system]
nodes = 3
threads = 2
local_grant_cap = 4
seed = 7
";
        let sc = ServeScenario::parse("t", text).expect("parses");
        assert_eq!(sc.kv.keys, 8192);
        assert_eq!(sc.kv.shards, 4);
        assert_eq!(sc.kv.theta, 0.8);
        assert_eq!(sc.kv.write_mix, 0.5);
        assert_eq!(sc.kv.service_flops, 100);
        assert_eq!(sc.kv.rate_rps, 12500.0);
        assert_eq!(sc.kv.duration_ms, 75);
        assert_eq!(sc.sweep, vec![1000.0, 2000.0, 4000.0]);
        assert_eq!((sc.nodes, sc.threads), (3, 2));
        assert_eq!(sc.local_grant_cap, 4);
        assert_eq!(sc.seed, 7);
    }

    #[test]
    fn partial_file_keeps_defaults() {
        let sc = ServeScenario::parse("p", "[traffic]\nrate_rps = 100\n").expect("parses");
        let base = ServeScenario::builtin("session").unwrap();
        assert_eq!(sc.kv.rate_rps, 100.0);
        assert_eq!(sc.kv.keys, base.kv.keys, "unset keys keep defaults");
        assert!(sc.sweep.is_empty(), "a file sweeps only when it says so");
    }

    #[test]
    fn unknown_key_is_an_error_with_line_number() {
        let err = ServeScenario::parse("e", "[store]\nkeyz = 10\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("keyz"), "{err}");
    }

    #[test]
    fn key_outside_section_is_an_error() {
        assert!(ServeScenario::parse("e", "keys = 10\n").is_err());
    }

    #[test]
    fn unknown_section_is_an_error() {
        assert!(ServeScenario::parse("e", "[stor]\nkeys = 10\n").is_err());
    }
}
