//! A sharded KV/session store served *on top of* the DSM — the suite's
//! first open-loop workload.
//!
//! The seven reproduced kernels are closed-loop batch programs: every
//! thread issues its next operation only after the previous one finishes,
//! so offered load collapses exactly when the system slows down — the
//! regime where tail latency is invisible. Serving traffic is open-loop:
//! arrivals are scheduled by the outside world, independent of
//! completions, so queueing delay lands in the *request latency*
//! distribution instead of silently throttling the generator.
//!
//! Mapping onto the DSM:
//!
//! * **Pages as hash buckets** — the key table is one shared `u64` array;
//!   8 KB coherence pages hold 1024 contiguous slots each, so key
//!   popularity (seeded Zipf) directly shapes page-level coherence
//!   traffic.
//! * **Locks as per-shard leases** — keys are range-partitioned into
//!   shards; shard `s` is guarded by global lock `s`. The paper's unfair
//!   local-preference release policy is exactly the policy a lease cache
//!   wants — and exactly the one that starves remote shards, which is why
//!   [`CvmConfig::local_grant_cap`](cvm_dsm::CvmConfig) exists.
//! * **Reductions for global counters** — per-thread write totals fold
//!   into one global checksum via `global_reduce`, the store's
//!   correctness oracle (writes are commutative wrapping-add deltas, so
//!   the expected table sum is order-independent).
//!
//! Simulated clients are *virtual*: millions of sessions collapse onto
//! `total_threads` generator threads, each owning an independent Poisson
//! arrival stream of rate `rate_rps / total_threads`.

use cvm_dsm::{CvmBuilder, SharedVec, ThreadCtx};
use cvm_sim::Zipf;

use crate::common::charge_flops;
use crate::AppBody;

pub mod gen;
pub mod scenario;

use gen::OpenLoopGen;

/// Serving-workload shape: table geometry, skew, mix and offered load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KvConfig {
    /// Key-table slots (one `u64` each; 1024 per 8 KB coherence page).
    pub keys: usize,
    /// Shard count: keys are range-partitioned into this many lease
    /// domains, shard `s` guarded by global lock `s`.
    pub shards: usize,
    /// Zipf skew of key popularity in `(0, 1)` (YCSB's default is 0.99).
    pub theta: f64,
    /// Fraction of requests that write, in `[0, 1]`.
    pub write_mix: f64,
    /// Offered arrival rate, requests per *virtual* second, summed over
    /// all generator threads.
    pub rate_rps: f64,
    /// Length of the arrival window in virtual milliseconds. Requests
    /// arriving inside the window are always served, even past its end —
    /// that overhang is how saturation shows up.
    pub duration_ms: u64,
    /// Per-request computation (request parsing, hashing, serialization),
    /// in flops.
    pub service_flops: u64,
}

impl KvConfig {
    /// Smoke-test shape: small table, short window, moderate load.
    pub fn smoke() -> Self {
        KvConfig {
            keys: 4096,
            shards: 8,
            theta: 0.99,
            write_mix: 0.2,
            rate_rps: 2_000.0,
            duration_ms: 50,
            service_flops: 200,
        }
    }

    /// Laptop-scale default: a few coherence pages per shard, session-store
    /// read/write mix.
    pub fn small() -> Self {
        KvConfig {
            keys: 16 * 1024,
            shards: 16,
            theta: 0.99,
            write_mix: 0.2,
            rate_rps: 1_500.0,
            duration_ms: 200,
            service_flops: 200,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on zero keys/shards/duration, more shards than keys, a skew
    /// outside `(0, 1)`, a mix outside `[0, 1]`, or a non-positive rate.
    pub fn validate(&self) {
        assert!(self.keys > 0, "need at least one key");
        assert!(
            self.shards > 0 && self.shards <= self.keys,
            "shards must be in 1..=keys"
        );
        assert!(
            self.theta > 0.0 && self.theta < 1.0,
            "theta must be in (0, 1)"
        );
        assert!(
            (0.0..=1.0).contains(&self.write_mix),
            "write_mix must be in [0, 1]"
        );
        assert!(
            self.rate_rps.is_finite() && self.rate_rps > 0.0,
            "rate must be positive"
        );
        assert!(self.duration_ms > 0, "duration must be positive");
    }

    /// The shard owning `key` (contiguous key ranges, so each shard's
    /// slots occupy contiguous pages).
    pub fn shard_of(&self, key: u64) -> usize {
        (key as usize * self.shards) / self.keys
    }

    /// The commutative write delta for `key`: small and key-determined,
    /// so any interleaving of writes leaves the table sum equal to the
    /// sum of applied deltas (wrapping `u64` addition forms an abelian
    /// group) and totals stay exactly representable in the `f64`
    /// reduction for any realistic request count.
    pub fn delta_of(key: u64) -> u64 {
        key % 1024 + 1
    }
}

/// Builds the KV serving body over `b`'s shared segment.
pub fn build(b: &mut CvmBuilder, cfg: KvConfig) -> AppBody {
    cfg.validate();
    let table: SharedVec<u64> = b.alloc::<u64>(cfg.keys);
    // Slot 0: table sum published by thread 0 after verification (bits of
    // the f64); slot 1: total requests served (as f64 bits).
    let sink = b.alloc::<f64>(2);
    Box::new(move |ctx: &mut ThreadCtx<'_>| {
        run(ctx, &cfg, table, sink);
    })
}

fn run(ctx: &mut ThreadCtx<'_>, cfg: &KvConfig, table: SharedVec<u64>, sink: SharedVec<f64>) {
    if ctx.global_id() == 0 {
        sink.write(ctx, 0, 0.0);
        sink.write(ctx, 1, 0.0);
    }
    ctx.startup_done();

    // Every generator thread owns an equal slice of the offered load.
    let zipf = Zipf::new(cfg.keys as u64, cfg.theta);
    let mut arrivals = OpenLoopGen::new(
        cfg.rate_rps / ctx.total_threads() as f64,
        cfg.duration_ms,
        ctx.now_ns(),
    );
    let mut delta_total: u64 = 0;
    let mut served: u64 = 0;
    while let Some(arrival_ns) = arrivals.next(ctx.rng()) {
        // Open loop: wait for the arrival if we are ahead; if we are
        // behind, the request has been queueing and its latency says so.
        ctx.sleep_until(arrival_ns);
        let key = zipf.sample(ctx.rng());
        let write = ctx.rng().unit_f64() < cfg.write_mix;
        let shard = cfg.shard_of(key);
        ctx.acquire(shard);
        charge_flops(ctx, cfg.service_flops);
        if write {
            let delta = KvConfig::delta_of(key);
            let old = table.read(ctx, key as usize);
            table.write(ctx, key as usize, old.wrapping_add(delta));
            delta_total = delta_total.wrapping_add(delta);
        } else {
            // The read is the workload: it faults the bucket page in and
            // keeps it in this node's copyset until the next invalidation.
            let _ = table.read(ctx, key as usize);
        }
        ctx.release(shard);
        let done_ns = ctx.now_ns();
        ctx.record_request(done_ns.saturating_sub(arrival_ns));
        served += 1;
    }

    // Publish all writes before the snapshot, then close the measured
    // region: verification traffic below stays out of the report.
    ctx.barrier();
    ctx.end_measured();

    // Correctness oracle: the table sum must equal the sum of all applied
    // deltas, no matter how writes interleaved across shards and nodes.
    let expect = ctx.global_reduce(cvm_dsm::ReduceOp::Sum, delta_total as f64);
    let total_served = ctx.global_reduce(cvm_dsm::ReduceOp::Sum, served as f64);
    if ctx.global_id() == 0 {
        let mut sum: u64 = 0;
        for k in 0..cfg.keys {
            sum = sum.wrapping_add(table.read(ctx, k));
        }
        assert!(
            sum as f64 == expect,
            "KV table sum {sum} disagrees with the delta reduction {expect}"
        );
        sink.write(ctx, 0, sum as f64);
        sink.write(ctx, 1, total_served);
    }
}

/// Runs the store on a fresh system and returns `(table_sum,
/// requests_served, report)` — the test entry point.
pub fn serve_of_config(cfg: &KvConfig, dsm: cvm_dsm::CvmConfig) -> (u64, u64, cvm_dsm::RunReport) {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    let mut b = CvmBuilder::new(dsm);
    cfg.validate();
    let table: SharedVec<u64> = b.alloc::<u64>(cfg.keys);
    let sink = b.alloc::<f64>(2);
    let out_sum = Arc::new(AtomicU64::new(0));
    let out_served = Arc::new(AtomicU64::new(0));
    let (sum2, served2) = (Arc::clone(&out_sum), Arc::clone(&out_served));
    let cfg = *cfg;
    let report = b.run(move |ctx| {
        run(ctx, &cfg, table, sink);
        if ctx.global_id() == 0 {
            sum2.store(sink.read(ctx, 0) as u64, Ordering::SeqCst);
            served2.store(sink.read(ctx, 1) as u64, Ordering::SeqCst);
        }
    });
    (
        out_sum.load(Ordering::SeqCst),
        out_served.load(Ordering::SeqCst),
        report,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvm_dsm::CvmConfig;

    fn tiny() -> KvConfig {
        KvConfig {
            keys: 2048,
            shards: 4,
            theta: 0.99,
            write_mix: 0.3,
            rate_rps: 10_000.0,
            duration_ms: 10,
            service_flops: 100,
        }
    }

    #[test]
    fn store_verifies_and_serves_across_topologies() {
        let cfg = tiny();
        let mut sums = Vec::new();
        for (nodes, threads) in [(1, 4), (2, 2), (4, 1)] {
            let (sum, served, report) = serve_of_config(&cfg, CvmConfig::small(nodes, threads));
            assert!(served > 0, "open loop must serve requests");
            assert_eq!(
                report.hist.request_ns.count(),
                served,
                "every served request records one latency sample"
            );
            sums.push(sum);
        }
        // Different topologies serve different interleavings, but the
        // *per-thread* request streams are identical (seeded by global
        // thread id), so the applied delta sum — and therefore the table
        // sum — is topology-independent.
        assert!(sums.windows(2).all(|w| w[0] == w[1]), "sums: {sums:?}");
    }

    #[test]
    fn requests_expose_tail_latency() {
        let mut cfg = tiny();
        cfg.duration_ms = 40;
        let (_, _, report) = serve_of_config(&cfg, CvmConfig::small(2, 2));
        let h = &report.hist.request_ns;
        assert!(h.count() > 100);
        assert!(h.p999() >= h.p99());
        assert!(h.p99() >= h.p50());
    }

    #[test]
    fn idle_time_is_classified_when_underloaded() {
        // A trickle of requests: nodes spend nearly all time asleep on the
        // arrival clock, and that time must land in `idle`, not `barrier`.
        let mut cfg = tiny();
        cfg.rate_rps = 1_000.0;
        let (_, _, report) = serve_of_config(&cfg, CvmConfig::small(2, 1));
        let sum = report.breakdown_sum();
        assert!(
            sum.idle.as_ns() > 0,
            "underloaded open loop must report idle time"
        );
    }

    #[test]
    fn shard_map_is_contiguous_and_total() {
        let cfg = tiny();
        let mut last = 0;
        for key in 0..cfg.keys as u64 {
            let s = cfg.shard_of(key);
            assert!(s < cfg.shards);
            assert!(s >= last, "shard map must be monotone");
            last = s;
        }
        assert_eq!(last, cfg.shards - 1, "all shards populated");
    }

    #[test]
    #[should_panic(expected = "shards must be in")]
    fn validate_rejects_more_shards_than_keys() {
        let mut cfg = tiny();
        cfg.shards = cfg.keys + 1;
        cfg.validate();
    }
}
