//! The deterministic open-loop arrival generator.
//!
//! Each generator thread owns an independent Poisson process: exponential
//! inter-arrival times at its share of the offered rate, drawn from the
//! thread's seeded stream. Arrival times are *absolute virtual
//! nanoseconds*, fixed the moment the stream is drawn — they never move
//! because the server is slow. That independence is the whole point of
//! open-loop measurement: a saturated server falls behind its arrival
//! schedule and the backlog shows up as queueing delay in every
//! subsequent request's latency.

use cvm_sim::SimRng;

/// One thread's arrival schedule.
#[derive(Debug, Clone)]
pub struct OpenLoopGen {
    /// Next arrival instant, in absolute virtual ns (f64 to accumulate
    /// fractional inter-arrival gaps without drift).
    next_ns: f64,
    /// Mean inter-arrival gap for this thread, ns.
    mean_ns: f64,
    /// End of the arrival window, absolute virtual ns.
    end_ns: f64,
}

impl OpenLoopGen {
    /// A schedule of mean rate `rate_rps` (requests per virtual second)
    /// over `duration_ms`, starting at absolute time `start_ns`.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not finite and positive.
    pub fn new(rate_rps: f64, duration_ms: u64, start_ns: u64) -> Self {
        assert!(
            rate_rps.is_finite() && rate_rps > 0.0,
            "rate must be positive"
        );
        OpenLoopGen {
            next_ns: start_ns as f64,
            mean_ns: 1.0e9 / rate_rps,
            end_ns: start_ns as f64 + duration_ms as f64 * 1.0e6,
        }
    }

    /// Draws the next arrival instant, or `None` once the window closes.
    /// Consumes exactly one `rng` value per arrival.
    pub fn next(&mut self, rng: &mut SimRng) -> Option<u64> {
        self.next_ns += rng.exp_f64(self.mean_ns);
        (self.next_ns < self.end_ns).then_some(self.next_ns as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_monotone_and_bounded() {
        let mut g = OpenLoopGen::new(100_000.0, 10, 500);
        let mut rng = SimRng::seed_from(1);
        let mut prev = 0;
        let mut n = 0u64;
        while let Some(t) = g.next(&mut rng) {
            assert!(t >= prev, "arrivals must be non-decreasing");
            assert!((500..500 + 10_000_000).contains(&t));
            prev = t;
            n += 1;
        }
        // 100k rps over 10 ms ≈ 1000 arrivals.
        assert!((800..1200).contains(&n), "got {n} arrivals");
    }

    #[test]
    fn schedule_is_seed_stable() {
        let (mut g1, mut g2) = (
            OpenLoopGen::new(50_000.0, 5, 0),
            OpenLoopGen::new(50_000.0, 5, 0),
        );
        let mut r1 = SimRng::seed_from(9);
        let mut r2 = SimRng::seed_from(9);
        loop {
            let (a, b) = (g1.next(&mut r1), g2.next(&mut r2));
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn mean_rate_is_respected() {
        let mut g = OpenLoopGen::new(1_000_000.0, 100, 0);
        let mut rng = SimRng::seed_from(77);
        let mut n = 0u64;
        while g.next(&mut rng).is_some() {
            n += 1;
        }
        // 1M rps over 100 ms = 100k expected; Poisson sd ≈ 316.
        assert!(
            (98_000..102_000).contains(&n),
            "got {n} arrivals for an expected 100000"
        );
    }
}
