//! The seven-application evaluation suite from the paper (Table 1), ported
//! to the `cvm-dsm` API.
//!
//! | app | input (paper) | sync | modifications |
//! |---|---|---|---|
//! | Barnes | 10240 particles | barrier | g |
//! | FFT | 64×64×64 | barrier | – |
//! | Ocean | 258×258 | barrier, lock | g, r |
//! | SOR | 2048×2048 | barrier | – |
//! | Water-Sp | 4096 molecules | barrier, lock | g, r |
//! | SWM750 | 750×750 | barrier | – |
//! | Water-Nsq | 512 molecules | barrier, lock | g, r, s |
//!
//! Modifications (paper §4.2): `g` — globals privatized for correctness
//! under per-node multi-threading; `r` — reductions aggregated per node
//! through local barriers; `s` — intra-node work sharing / access
//! reordering to reduce local contention.
//!
//! Every application is written in the paper's location-transparent SPMD
//! model, parameterized only by the number of nodes and threads, with
//! contiguous block partitioning so co-located threads own adjacent data.
//! Problem sizes default to laptop scale; [`Scale::Paper`] restores the
//! paper's inputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The numeric kernels use explicit index loops across several parallel
// arrays (`for d in 0..3 { acc[d] += f[d]; }`); iterator rewrites obscure
// the physics without changing the generated code.
#![allow(clippy::needless_range_loop)]

pub mod barnes;
pub mod common;
pub mod fft;
pub mod kv;
pub mod ocean;
pub mod registry;
pub mod sor;
pub mod swm;
pub mod water_nsq;
pub mod water_sp;

pub use registry::{build_app, AppId, AppMeta, Scale};
pub use water_nsq::WaterNsqOpt;

use cvm_dsm::ThreadCtx;

/// A built application body, ready for [`cvm_dsm::CvmBuilder::run`].
pub type AppBody = Box<dyn Fn(&mut ThreadCtx<'_>) + Send + Sync + 'static>;
