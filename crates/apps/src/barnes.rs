//! Barnes — the gravitational N-body simulation (Barnes-Hut octree).
//!
//! This is the paper's modified SPLASH-2 Barnes: *"only barrier
//! synchronization is used; shared updates that were guarded by locks are
//! now either serialized or partitioned among the processors"*, and global
//! structures are privatized (`g`). Concretely: body state lives in shared
//! arrays; each thread reads **all** body positions every step (the
//! remote-fault traffic multi-threading hides), builds a *private* octree,
//! computes forces for its owned bodies by θ-criterion traversal, and
//! updates only its own partition — barrier-separated phases, no locks.

use cvm_dsm::{CvmBuilder, SharedVec, ThreadCtx};

use crate::common::{charge_flops, chunk};
use crate::AppBody;

/// Barnes configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BarnesConfig {
    /// Number of bodies.
    pub n: usize,
    /// Time steps.
    pub steps: usize,
    /// Opening criterion θ.
    pub theta: f64,
    /// Integration step.
    pub dt: f64,
}

impl BarnesConfig {
    /// Model-checker kernel: a handful of particles, one step — small
    /// enough for exhaustive schedule enumeration, large enough to cross
    /// a page boundary.
    pub fn tiny() -> Self {
        BarnesConfig {
            n: 64,
            steps: 1,
            theta: 0.55,
            dt: 0.01,
        }
    }

    /// Laptop-scale default.
    pub fn small() -> Self {
        BarnesConfig {
            n: 2048,
            steps: 3,
            theta: 0.55,
            dt: 0.01,
        }
    }

    /// The paper's 10240-particle input.
    pub fn paper() -> Self {
        BarnesConfig {
            n: 10240,
            steps: 4,
            theta: 0.7,
            dt: 0.01,
        }
    }
}

/// A private octree node.
#[derive(Debug, Clone)]
enum Cell {
    Empty,
    Body {
        pos: [f64; 3],
        mass: f64,
    },
    Internal {
        children: Box<[Cell; 8]>,
        com: [f64; 3],
        mass: f64,
        half: f64,
    },
}

/// A fully built private octree.
#[derive(Debug)]
pub struct Octree {
    root: Cell,
    center: [f64; 3],
    half: f64,
    inserted: usize,
}

impl Octree {
    /// Builds the tree over the given bodies.
    pub fn build(bodies: &[([f64; 3], f64)]) -> Octree {
        let mut lo = [f64::INFINITY; 3];
        let mut hi = [f64::NEG_INFINITY; 3];
        for (p, _) in bodies {
            for d in 0..3 {
                lo[d] = lo[d].min(p[d]);
                hi[d] = hi[d].max(p[d]);
            }
        }
        let mut half: f64 = 1e-6;
        let mut center = [0.0; 3];
        for d in 0..3 {
            center[d] = 0.5 * (lo[d] + hi[d]);
            half = half.max(0.5 * (hi[d] - lo[d]) + 1e-9);
        }
        let mut tree = Octree {
            root: Cell::Empty,
            center,
            half,
            inserted: 0,
        };
        for &(p, m) in bodies {
            let (center, half) = (tree.center, tree.half);
            Self::insert(&mut tree.root, center, half, p, m, 0);
            tree.inserted += 1;
        }
        Self::summarize(&mut tree.root);
        tree
    }

    /// Number of bodies inserted.
    pub fn len(&self) -> usize {
        self.inserted
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.inserted == 0
    }

    fn insert(
        cell: &mut Cell,
        center: [f64; 3],
        half: f64,
        pos: [f64; 3],
        mass: f64,
        depth: usize,
    ) {
        match cell {
            Cell::Empty => {
                *cell = Cell::Body { pos, mass };
            }
            Cell::Body {
                pos: opos,
                mass: omass,
            } => {
                if depth > 60 || (pos == *opos) {
                    // Coincident bodies: merge masses (keeps termination).
                    *cell = Cell::Body {
                        pos: *opos,
                        mass: *omass + mass,
                    };
                    return;
                }
                let (op, om) = (*opos, *omass);
                let children: Box<[Cell; 8]> = Box::new([
                    Cell::Empty,
                    Cell::Empty,
                    Cell::Empty,
                    Cell::Empty,
                    Cell::Empty,
                    Cell::Empty,
                    Cell::Empty,
                    Cell::Empty,
                ]);
                *cell = Cell::Internal {
                    children,
                    com: [0.0; 3],
                    mass: 0.0,
                    half,
                };
                Self::insert(cell, center, half, op, om, depth);
                Self::insert(cell, center, half, pos, mass, depth);
            }
            Cell::Internal { children, .. } => {
                let mut idx = 0;
                let mut ncenter = center;
                let q = half / 2.0;
                for d in 0..3 {
                    if pos[d] >= center[d] {
                        idx |= 1 << d;
                        ncenter[d] += q;
                    } else {
                        ncenter[d] -= q;
                    }
                }
                Self::insert(&mut children[idx], ncenter, q, pos, mass, depth + 1);
            }
        }
    }

    fn summarize(cell: &mut Cell) -> ([f64; 3], f64) {
        match cell {
            Cell::Empty => ([0.0; 3], 0.0),
            Cell::Body { pos, mass } => (*pos, *mass),
            Cell::Internal {
                children,
                com,
                mass,
                ..
            } => {
                let mut m = 0.0;
                let mut c = [0.0; 3];
                for ch in children.iter_mut() {
                    let (cc, cm) = Self::summarize(ch);
                    m += cm;
                    for d in 0..3 {
                        c[d] += cc[d] * cm;
                    }
                }
                if m > 0.0 {
                    for d in c.iter_mut() {
                        *d /= m;
                    }
                }
                *com = c;
                *mass = m;
                (c, m)
            }
        }
    }

    /// Gravitational acceleration on `pos` via θ-criterion traversal.
    /// Returns `(accel, interactions)`.
    pub fn force(&self, pos: [f64; 3], theta: f64) -> ([f64; 3], u64) {
        let mut acc = [0.0; 3];
        let mut count = 0;
        Self::force_walk(&self.root, pos, theta, &mut acc, &mut count);
        (acc, count)
    }

    fn force_walk(cell: &Cell, pos: [f64; 3], theta: f64, acc: &mut [f64; 3], count: &mut u64) {
        const EPS2: f64 = 1e-4;
        match cell {
            Cell::Empty => {}
            Cell::Body { pos: p, mass: m } => {
                let d = [p[0] - pos[0], p[1] - pos[1], p[2] - pos[2]];
                let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2] + EPS2;
                if r2 > EPS2 * 1.0001 || d != [0.0, 0.0, 0.0] {
                    let inv = m / (r2 * r2.sqrt());
                    for k in 0..3 {
                        acc[k] += d[k] * inv;
                    }
                    *count += 1;
                }
            }
            Cell::Internal {
                children,
                com,
                mass,
                half: chalf,
            } => {
                let d = [com[0] - pos[0], com[1] - pos[1], com[2] - pos[2]];
                let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2] + EPS2;
                let size = 2.0 * chalf;
                if size * size < theta * theta * r2 {
                    let inv = mass / (r2 * r2.sqrt());
                    for k in 0..3 {
                        acc[k] += d[k] * inv;
                    }
                    *count += 1;
                } else {
                    for ch in children.iter() {
                        Self::force_walk(ch, pos, theta, acc, count);
                    }
                }
            }
        }
    }
}

/// Deterministic Plummer-ish initial condition.
fn init_body(i: usize, n: usize) -> ([f64; 3], [f64; 3], f64) {
    let f = i as f64 / n as f64;
    let a = f * 97.0;
    let b = f * 41.0 + 1.3;
    let r = 0.2 + 0.8 * ((i * 2654435761) % 1000) as f64 / 1000.0;
    let pos = [r * a.sin() * b.cos(), r * a.sin() * b.sin(), r * a.cos()];
    let vel = [-pos[1] * 0.1, pos[0] * 0.1, 0.0];
    (pos, vel, 1.0 / n as f64)
}

struct Arrays {
    pos: SharedVec<f64>,
    vel: SharedVec<f64>,
    mass: SharedVec<f64>,
    sink: SharedVec<f64>,
}

/// Builds the Barnes body.
pub fn build(b: &mut CvmBuilder, cfg: BarnesConfig) -> AppBody {
    let arrays = Arrays {
        pos: b.alloc::<f64>(3 * cfg.n),
        vel: b.alloc::<f64>(3 * cfg.n),
        mass: b.alloc::<f64>(cfg.n),
        sink: b.alloc::<f64>(2),
    };
    Box::new(move |ctx: &mut ThreadCtx<'_>| run(ctx, &cfg, &arrays))
}

fn run(ctx: &mut ThreadCtx<'_>, cfg: &BarnesConfig, a: &Arrays) {
    let n = cfg.n;
    if ctx.global_id() == 0 {
        for i in 0..n {
            let (p, v, m) = init_body(i, n);
            for d in 0..3 {
                a.pos.write(ctx, 3 * i + d, p[d]);
                a.vel.write(ctx, 3 * i + d, v[d]);
            }
            a.mass.write(ctx, i, m);
        }
        a.sink.write(ctx, 0, 0.0);
        a.sink.write(ctx, 1, 0.0);
    }
    ctx.startup_done();

    let (lo, hi) = chunk(ctx.global_id(), ctx.total_threads(), n);

    for _step in 0..cfg.steps {
        // Phase 1: read all bodies (the remote traffic) and build a
        // private tree — the paper's privatized (`g`) tree build. Each
        // thread starts fetching at its own partition and wraps, so
        // co-located threads touch different pages at any instant and
        // their remote faults overlap instead of piling onto one page.
        let mut bodies = vec![([0.0f64; 3], 0.0f64); n];
        for k in 0..n {
            let i = (lo + k) % n;
            let p = [
                a.pos.read(ctx, 3 * i),
                a.pos.read(ctx, 3 * i + 1),
                a.pos.read(ctx, 3 * i + 2),
            ];
            bodies[i] = (p, a.mass.read(ctx, i));
        }
        let tree = Octree::build(&bodies);
        charge_flops(ctx, (n as u64) * 20); // tree construction
        ctx.barrier(); // position snapshot complete before anyone updates

        // Phase 2: forces + integration for owned bodies only.
        for i in lo..hi {
            let (acc, inter) = tree.force(bodies[i].0, cfg.theta);
            charge_flops(ctx, inter * 30);
            for d in 0..3 {
                let v = a.vel.read(ctx, 3 * i + d) + acc[d] * cfg.dt;
                a.vel.write(ctx, 3 * i + d, v);
                let p = a.pos.read(ctx, 3 * i + d) + v * cfg.dt;
                a.pos.write(ctx, 3 * i + d, p);
            }
        }
        ctx.barrier();
    }
    ctx.end_measured();

    // Validation checksum: total |p| over owned bodies, serialized through
    // a lock once at the end.
    let mut local = 0.0;
    for i in lo..hi {
        for d in 0..3 {
            local += a.pos.read(ctx, 3 * i + d).abs();
        }
    }
    ctx.acquire(2);
    let acc = a.sink.read(ctx, 0);
    a.sink.write(ctx, 0, acc + local);
    ctx.release(2);
    ctx.barrier();
    if ctx.global_id() == 0 {
        let total = a.sink.read(ctx, 0);
        assert!(total.is_finite() && total > 0.0, "Barnes diverged");
        a.sink.write(ctx, 1, total);
    }
}

/// Sequential oracle: same physics, same checksum.
pub fn oracle(cfg: &BarnesConfig) -> f64 {
    let n = cfg.n;
    let mut pos = vec![[0.0f64; 3]; n];
    let mut vel = vec![[0.0f64; 3]; n];
    let mut mass = vec![0.0f64; n];
    for i in 0..n {
        let (p, v, m) = init_body(i, n);
        pos[i] = p;
        vel[i] = v;
        mass[i] = m;
    }
    for _ in 0..cfg.steps {
        let bodies: Vec<([f64; 3], f64)> = pos.iter().copied().zip(mass.iter().copied()).collect();
        let tree = Octree::build(&bodies);
        for i in 0..n {
            let (acc, _) = tree.force(bodies[i].0, cfg.theta);
            for d in 0..3 {
                vel[i][d] += acc[d] * cfg.dt;
                pos[i][d] += vel[i][d] * cfg.dt;
            }
        }
    }
    pos.iter()
        .map(|p| p.iter().map(|x| x.abs()).sum::<f64>())
        .sum()
}

/// Runs the app and returns the checksum (tests).
pub fn checksum_of_run(cfg: &BarnesConfig, nodes: usize, threads: usize) -> f64 {
    checksum_of_config(cfg, cvm_dsm::CvmConfig::small(nodes, threads)).0
}

/// Like [`checksum_of_run`], but over an arbitrary system configuration
/// (protocol under test, jitter, …); also returns the run's report.
pub fn checksum_of_config(
    cfg: &BarnesConfig,
    dsm: cvm_dsm::CvmConfig,
) -> (f64, cvm_dsm::RunReport) {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    let mut b = CvmBuilder::new(dsm);
    let arrays = Arrays {
        pos: b.alloc::<f64>(3 * cfg.n),
        vel: b.alloc::<f64>(3 * cfg.n),
        mass: b.alloc::<f64>(cfg.n),
        sink: b.alloc::<f64>(2),
    };
    let out = Arc::new(AtomicU64::new(0));
    let out2 = Arc::clone(&out);
    let cfg = *cfg;
    let report = b.run(move |ctx| {
        run(ctx, &cfg, &arrays);
        if ctx.global_id() == 0 {
            out2.store(arrays.sink.read(ctx, 1).to_bits(), Ordering::SeqCst);
        }
    });
    (f64::from_bits(out.load(Ordering::SeqCst)), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::assert_close;

    #[test]
    fn tree_counts_bodies() {
        let bodies: Vec<([f64; 3], f64)> = (0..64)
            .map(|i| {
                let (p, _, m) = init_body(i, 64);
                (p, m)
            })
            .collect();
        let t = Octree::build(&bodies);
        assert_eq!(t.len(), 64);
        assert!(!t.is_empty());
    }

    #[test]
    fn low_theta_approaches_direct_sum() {
        let bodies: Vec<([f64; 3], f64)> = (0..32)
            .map(|i| {
                let (p, _, m) = init_body(i, 32);
                (p, m)
            })
            .collect();
        let t = Octree::build(&bodies);
        let target = bodies[5].0;
        // Direct O(N) sum.
        let mut direct = [0.0f64; 3];
        for &(p, m) in &bodies {
            let d = [p[0] - target[0], p[1] - target[1], p[2] - target[2]];
            let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2] + 1e-4;
            if d == [0.0, 0.0, 0.0] {
                continue;
            }
            let inv = m / (r2 * r2.sqrt());
            for k in 0..3 {
                direct[k] += d[k] * inv;
            }
        }
        let (approx, _) = t.force(target, 1e-9); // θ→0 = exact
        for k in 0..3 {
            assert_close(approx[k], direct[k], 1e-6, "direct-sum force");
        }
    }

    #[test]
    fn high_theta_does_fewer_interactions() {
        let bodies: Vec<([f64; 3], f64)> = (0..256)
            .map(|i| {
                let (p, _, m) = init_body(i, 256);
                (p, m)
            })
            .collect();
        let t = Octree::build(&bodies);
        let (_, exact) = t.force(bodies[0].0, 1e-9);
        let (_, approx) = t.force(bodies[0].0, 1.0);
        assert!(approx < exact, "θ=1 must prune ({approx} vs {exact})");
    }

    #[test]
    fn parallel_matches_oracle() {
        let cfg = BarnesConfig {
            n: 96,
            steps: 2,
            theta: 0.7,
            dt: 0.01,
        };
        let want = oracle(&cfg);
        for (nodes, threads) in [(1, 1), (2, 2)] {
            let got = checksum_of_run(&cfg, nodes, threads);
            assert_close(got, want, 1e-9, "Barnes checksum");
        }
    }
}
