//! The application registry: Table 1 metadata and a uniform constructor,
//! used by the harness and benches.

use std::fmt;

use cvm_dsm::CvmBuilder;

use crate::water_nsq::WaterNsqOpt;
use crate::{barnes, fft, ocean, sor, swm, water_nsq, water_sp, AppBody};

/// The seven applications of the evaluation suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppId {
    /// Barnes-Hut N-body.
    Barnes,
    /// Transpose-based FFT.
    Fft,
    /// Ocean-current simulation.
    Ocean,
    /// Red/black successive over-relaxation.
    Sor,
    /// SPEC shallow-water stencil.
    Swm750,
    /// Spatial-cell molecular dynamics.
    WaterSp,
    /// O(N²) molecular dynamics.
    WaterNsq,
}

impl AppId {
    /// All applications, in the paper's table order.
    pub const ALL: [AppId; 7] = [
        AppId::Barnes,
        AppId::Fft,
        AppId::Ocean,
        AppId::Sor,
        AppId::WaterSp,
        AppId::Swm750,
        AppId::WaterNsq,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            AppId::Barnes => "Barnes",
            AppId::Fft => "FFT",
            AppId::Ocean => "Ocean",
            AppId::Sor => "SOR",
            AppId::Swm750 => "SWM750",
            AppId::WaterSp => "Water-Sp",
            AppId::WaterNsq => "Water-Nsq",
        }
    }

    /// The paper's Table 1 row for this application.
    pub fn meta(self) -> AppMeta {
        match self {
            AppId::Barnes => AppMeta {
                name: "Barnes",
                input_paper: "10240 particles",
                input_small: "2048 particles",
                sync: "barrier",
                modifications: "g",
            },
            AppId::Fft => AppMeta {
                name: "FFT",
                input_paper: "64 x 64 x 64",
                input_small: "128 x 128 (view)",
                sync: "barrier",
                modifications: "-",
            },
            AppId::Ocean => AppMeta {
                name: "Ocean",
                input_paper: "258 x 258 ocean",
                input_small: "192 x 192 ocean",
                sync: "barrier, lock",
                modifications: "g, r",
            },
            AppId::Sor => AppMeta {
                name: "SOR",
                input_paper: "2048 x 2048",
                input_small: "766 x 766",
                sync: "barrier",
                modifications: "-",
            },
            AppId::WaterSp => AppMeta {
                name: "Water-Sp",
                input_paper: "4096 molecules",
                input_small: "4096 molecules",
                sync: "barrier, lock",
                modifications: "g, r",
            },
            AppId::Swm750 => AppMeta {
                name: "SWM750",
                input_paper: "750 x 750",
                input_small: "192 x 192",
                sync: "barrier",
                modifications: "-",
            },
            AppId::WaterNsq => AppMeta {
                name: "Water-Nsq",
                input_paper: "512 molecules",
                input_small: "512 molecules",
                sync: "barrier, lock",
                modifications: "g, r, s",
            },
        }
    }

    /// Parses the CLI slug (`sor`, `water-nsq`, `swm`/`swm750`, ...).
    pub fn parse(name: &str) -> Option<AppId> {
        Some(match name {
            "barnes" => AppId::Barnes,
            "fft" => AppId::Fft,
            "ocean" => AppId::Ocean,
            "sor" => AppId::Sor,
            "swm" | "swm750" => AppId::Swm750,
            "water-sp" | "watersp" => AppId::WaterSp,
            "water-nsq" | "waternsq" => AppId::WaterNsq,
            _ => return None,
        })
    }

    /// CLI/JSON slug (the inverse of [`parse`](Self::parse)).
    pub fn slug(self) -> &'static str {
        match self {
            AppId::Barnes => "barnes",
            AppId::Fft => "fft",
            AppId::Ocean => "ocean",
            AppId::Sor => "sor",
            AppId::Swm750 => "swm",
            AppId::WaterSp => "water-sp",
            AppId::WaterNsq => "water-nsq",
        }
    }

    /// Ocean requires a power-of-two thread level (the paper has no
    /// three-thread Ocean bar for the same reason).
    pub fn supports_threads(self, threads_per_node: usize) -> bool {
        match self {
            AppId::Ocean => threads_per_node.is_power_of_two(),
            _ => true,
        }
    }
}

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Table 1 metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppMeta {
    /// Application name.
    pub name: &'static str,
    /// The paper's input set.
    pub input_paper: &'static str,
    /// The laptop-scale default input.
    pub input_small: &'static str,
    /// Synchronization operations used.
    pub sync: &'static str,
    /// Source modifications (`g`/`r`/`s`, §4.2).
    pub modifications: &'static str,
}

/// Problem-size selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scale {
    /// Model-checker kernels: drastically reduced inputs sized so
    /// exhaustive DPOR exploration terminates in seconds.
    Tiny,
    /// Laptop-scale inputs (default).
    #[default]
    Small,
    /// The paper's input sets.
    Paper,
}

impl Scale {
    /// CLI/JSON slug.
    pub fn slug(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Paper => "paper",
        }
    }

    /// Parses the CLI/JSON slug.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }
}

/// Builds the given application (shared allocations happen on `b`).
pub fn build_app(b: &mut CvmBuilder, id: AppId, scale: Scale) -> AppBody {
    match (id, scale) {
        (AppId::Barnes, Scale::Tiny) => barnes::build(b, barnes::BarnesConfig::tiny()),
        (AppId::Fft, Scale::Tiny) => fft::build(b, fft::FftConfig::tiny()),
        (AppId::Ocean, Scale::Tiny) => ocean::build(b, ocean::OceanConfig::tiny()),
        (AppId::Sor, Scale::Tiny) => sor::build(b, sor::SorConfig::tiny()),
        (AppId::Swm750, Scale::Tiny) => swm::build(b, swm::SwmConfig::tiny()),
        (AppId::WaterSp, Scale::Tiny) => water_sp::build(b, water_sp::WaterSpConfig::tiny()),
        (AppId::WaterNsq, Scale::Tiny) => water_nsq::build(b, water_nsq::WaterNsqConfig::tiny()),
        (AppId::Barnes, Scale::Small) => barnes::build(b, barnes::BarnesConfig::small()),
        (AppId::Barnes, Scale::Paper) => barnes::build(b, barnes::BarnesConfig::paper()),
        (AppId::Fft, Scale::Small) => fft::build(b, fft::FftConfig::small()),
        (AppId::Fft, Scale::Paper) => fft::build(b, fft::FftConfig::paper()),
        (AppId::Ocean, Scale::Small) => ocean::build(b, ocean::OceanConfig::small()),
        (AppId::Ocean, Scale::Paper) => ocean::build(b, ocean::OceanConfig::paper()),
        (AppId::Sor, Scale::Small) => sor::build(b, sor::SorConfig::small()),
        (AppId::Sor, Scale::Paper) => sor::build(b, sor::SorConfig::paper()),
        (AppId::Swm750, Scale::Small) => swm::build(b, swm::SwmConfig::small()),
        (AppId::Swm750, Scale::Paper) => swm::build(b, swm::SwmConfig::paper()),
        (AppId::WaterSp, Scale::Small) => water_sp::build(b, water_sp::WaterSpConfig::small()),
        (AppId::WaterSp, Scale::Paper) => water_sp::build(b, water_sp::WaterSpConfig::paper()),
        (AppId::WaterNsq, Scale::Small) => water_nsq::build(b, water_nsq::WaterNsqConfig::small()),
        (AppId::WaterNsq, Scale::Paper) => water_nsq::build(b, water_nsq::WaterNsqConfig::paper()),
    }
}

/// Builds Ocean with or without the `r` (local-barrier reduction)
/// modification — the ablation for the paper's second limiting factor
/// ("reduction operations").
pub fn build_ocean_variant(b: &mut CvmBuilder, scale: Scale, use_reduction: bool) -> AppBody {
    let mut cfg = match scale {
        Scale::Tiny => ocean::OceanConfig::tiny(),
        Scale::Small => ocean::OceanConfig::small(),
        Scale::Paper => ocean::OceanConfig::paper(),
    };
    cfg.use_reduction = use_reduction;
    ocean::build(b, cfg)
}

/// Builds a specific Water-Nsq variant (Table 5 case study).
pub fn build_water_nsq_variant(b: &mut CvmBuilder, scale: Scale, opt: WaterNsqOpt) -> AppBody {
    let mut cfg = match scale {
        Scale::Tiny => water_nsq::WaterNsqConfig::tiny(),
        Scale::Small => water_nsq::WaterNsqConfig::small(),
        Scale::Paper => water_nsq::WaterNsqConfig::paper(),
    };
    cfg.opt = opt;
    water_nsq::build(b, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_metadata_is_complete() {
        for id in AppId::ALL {
            let m = id.meta();
            assert_eq!(m.name, id.name());
            assert!(!m.sync.is_empty());
            assert!(!m.input_paper.is_empty());
        }
    }

    #[test]
    fn ocean_rejects_three_threads() {
        assert!(AppId::Ocean.supports_threads(1));
        assert!(AppId::Ocean.supports_threads(2));
        assert!(!AppId::Ocean.supports_threads(3));
        assert!(AppId::Ocean.supports_threads(4));
        assert!(AppId::Sor.supports_threads(3));
    }

    #[test]
    fn names_are_paper_names() {
        let names: Vec<&str> = AppId::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            [
                "Barnes",
                "FFT",
                "Ocean",
                "SOR",
                "Water-Sp",
                "SWM750",
                "Water-Nsq"
            ]
        );
    }
}
