//! Water-Sp — the spatial (cell-list) molecular-dynamics simulation.
//!
//! A uniform 3-D grid of cells is imposed on the problem domain; each
//! thread owns a contiguous block of cells and computes interactions only
//! with the 27 neighbouring cells. Reading neighbour cells owned by other
//! nodes is the dominant remote traffic (the paper observes Water-Sp's
//! multi-thread gains come mostly from fault overlap, with only a small
//! fixed number of lock operations); per-cell locks are needed only when
//! molecules migrate between cells, and the potential-energy reduction
//! aggregates per node (`r` modification).

use cvm_dsm::{CvmBuilder, ReduceOp, SharedVec, ThreadCtx};

use crate::common::{charge_flops, chunk};
use crate::AppBody;

/// Water-Sp configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaterSpConfig {
    /// Number of molecules.
    pub n: usize,
    /// Cells per dimension (cells = `b³`).
    pub b: usize,
    /// Timesteps.
    pub steps: usize,
    /// Integration step.
    pub dt: f64,
}

impl WaterSpConfig {
    /// Model-checker kernel: 64 molecules in a 2×2×2 cell grid, one step.
    pub fn tiny() -> Self {
        WaterSpConfig {
            n: 64,
            b: 2,
            steps: 1,
            dt: 0.002,
        }
    }

    /// Laptop-scale default.
    pub fn small() -> Self {
        WaterSpConfig {
            n: 4096,
            b: 8,
            steps: 2,
            dt: 0.002,
        }
    }

    /// The paper's 4096-molecule input.
    pub fn paper() -> Self {
        WaterSpConfig {
            n: 4096,
            b: 8,
            steps: 3,
            dt: 0.002,
        }
    }

    /// Slot capacity per cell.
    pub fn cell_cap(&self) -> usize {
        (4 * self.n / (self.b * self.b * self.b)).max(8)
    }
}

const PE_LOCK: usize = 91;
const SINK_LOCK: usize = 92;
const CELL_LOCK_BASE: usize = 1024;

struct Arrays {
    pos: SharedVec<f64>,
    vel: SharedVec<f64>,
    force: SharedVec<f64>,
    cell_count: SharedVec<u64>,
    cell_mols: SharedVec<u64>,
    pe: SharedVec<f64>,
    sink: SharedVec<f64>,
}

fn alloc_arrays(b: &mut CvmBuilder, cfg: &WaterSpConfig) -> Arrays {
    let cells = cfg.b * cfg.b * cfg.b;
    Arrays {
        pos: b.alloc::<f64>(3 * cfg.n),
        vel: b.alloc::<f64>(3 * cfg.n),
        force: b.alloc::<f64>(3 * cfg.n),
        cell_count: b.alloc::<u64>(cells),
        cell_mols: b.alloc::<u64>(cells * cfg.cell_cap()),
        pe: b.alloc::<f64>(1),
        sink: b.alloc::<f64>(2),
    }
}

/// Builds the Water-Sp body.
///
/// # Panics
///
/// Panics if the cell count exceeds the available per-cell lock range.
pub fn build(b: &mut CvmBuilder, cfg: WaterSpConfig) -> AppBody {
    assert!(
        CELL_LOCK_BASE + cfg.b * cfg.b * cfg.b <= cvm_dsm::driver::MAX_LOCKS,
        "too many cells for the lock table"
    );
    let a = alloc_arrays(b, &cfg);
    Box::new(move |ctx: &mut ThreadCtx<'_>| run(ctx, &cfg, &a))
}

fn init_mol(i: usize, n: usize) -> ([f64; 3], [f64; 3]) {
    let side = (n as f64).cbrt().ceil() as usize;
    let x = (i % side) as f64;
    let y = ((i / side) % side) as f64;
    let z = (i / (side * side)) as f64;
    let jit = |s: usize| (((i * 1103515245 + s * 12345) % 1000) as f64 / 1000.0 - 0.5) * 0.08;
    let scale = 1.0 / side as f64;
    (
        [
            ((x + 0.5) * scale + jit(1) * scale).rem_euclid(1.0),
            ((y + 0.5) * scale + jit(2) * scale).rem_euclid(1.0),
            ((z + 0.5) * scale + jit(3) * scale).rem_euclid(1.0),
        ],
        [jit(4) * 0.02, jit(5) * 0.02, jit(6) * 0.02],
    )
}

fn cell_of(p: [f64; 3], b: usize) -> usize {
    let f = |x: f64| (((x.rem_euclid(1.0)) * b as f64) as usize).min(b - 1);
    (f(p[2]) * b + f(p[1])) * b + f(p[0])
}

/// Minimum-image pair force within the periodic unit box.
fn pair_force(pi: [f64; 3], pj: [f64; 3], cut2: f64) -> Option<([f64; 3], f64)> {
    let mut d = [0.0f64; 3];
    for k in 0..3 {
        let mut dd = pi[k] - pj[k];
        if dd > 0.5 {
            dd -= 1.0;
        } else if dd < -0.5 {
            dd += 1.0;
        }
        d[k] = dd;
    }
    let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
    if r2 >= cut2 || r2 == 0.0 {
        return None;
    }
    let s2 = 0.004 / (r2 + 1e-5);
    let s6 = s2 * s2 * s2;
    let mag = 24.0 * (2.0 * s6 * s6 - s6) / (r2 + 1e-5);
    Some(([d[0] * mag, d[1] * mag, d[2] * mag], 4.0 * (s6 * s6 - s6)))
}

fn neighbours(c: usize, b: usize) -> [usize; 27] {
    let x = c % b;
    let y = (c / b) % b;
    let z = c / (b * b);
    let mut out = [0usize; 27];
    let mut i = 0;
    for dz in [b - 1, 0, 1] {
        for dy in [b - 1, 0, 1] {
            for dx in [b - 1, 0, 1] {
                let nx = (x + dx) % b;
                let ny = (y + dy) % b;
                let nz = (z + dz) % b;
                out[i] = (nz * b + ny) * b + nx;
                i += 1;
            }
        }
    }
    out
}

fn run(ctx: &mut ThreadCtx<'_>, cfg: &WaterSpConfig, a: &Arrays) {
    let n = cfg.n;
    let b = cfg.b;
    let cells = b * b * b;
    let cap = cfg.cell_cap();
    let cut2 = (1.0 / b as f64) * (1.0 / b as f64);
    if ctx.global_id() == 0 {
        for c in 0..cells {
            a.cell_count.write(ctx, c, 0);
        }
        for i in 0..n {
            let (p, v) = init_mol(i, n);
            for d in 0..3 {
                a.pos.write(ctx, 3 * i + d, p[d]);
                a.vel.write(ctx, 3 * i + d, v[d]);
                a.force.write(ctx, 3 * i + d, 0.0);
            }
            let c = cell_of(p, b);
            let cnt = a.cell_count.read(ctx, c) as usize;
            assert!(cnt < cap, "cell overflow at init");
            a.cell_mols.write(ctx, c * cap + cnt, i as u64);
            a.cell_count.write(ctx, c, cnt as u64 + 1);
        }
        a.pe.write(ctx, 0, 0.0);
        a.sink.write(ctx, 0, 0.0);
        a.sink.write(ctx, 1, 0.0);
    }
    ctx.startup_done();

    let (clo, chi) = chunk(ctx.global_id(), ctx.total_threads(), cells);
    let read_cell = |ctx: &mut ThreadCtx<'_>, a: &Arrays, c: usize| -> Vec<usize> {
        let cnt = a.cell_count.read(ctx, c) as usize;
        (0..cnt)
            .map(|s| a.cell_mols.read(ctx, c * cap + s) as usize)
            .collect()
    };

    for _step in 0..cfg.steps {
        // Predict + zero forces for molecules in owned cells.
        for c in clo..chi {
            for m in read_cell(ctx, a, c) {
                for d in 0..3 {
                    let f = a.force.read(ctx, 3 * m + d);
                    let v = a.vel.read(ctx, 3 * m + d) + 0.5 * cfg.dt * f;
                    a.vel.write(ctx, 3 * m + d, v);
                    let p = (a.pos.read(ctx, 3 * m + d) + cfg.dt * v).rem_euclid(1.0);
                    a.pos.write(ctx, 3 * m + d, p);
                    a.force.write(ctx, 3 * m + d, 0.0);
                    charge_flops(ctx, 5);
                }
            }
        }
        ctx.barrier();

        // Forces: owned cells against their 27 neighbours. Within the own
        // cell Newton's third law is exploited; across cells each owner
        // computes its own molecules' forces in full, so no locks are
        // needed here — only page faults on neighbour data.
        let mut pe_local = 0.0;
        for c in clo..chi {
            let mine = read_cell(ctx, a, c);
            let mpos: Vec<[f64; 3]> = mine
                .iter()
                .map(|&m| {
                    [
                        a.pos.read(ctx, 3 * m),
                        a.pos.read(ctx, 3 * m + 1),
                        a.pos.read(ctx, 3 * m + 2),
                    ]
                })
                .collect();
            let mut facc = vec![[0.0f64; 3]; mine.len()];
            for nc in neighbours(c, b) {
                if nc == c {
                    for i in 0..mine.len() {
                        for j in (i + 1)..mine.len() {
                            charge_flops(ctx, 12);
                            if let Some((f, pe)) = pair_force(mpos[i], mpos[j], cut2) {
                                charge_flops(ctx, 24);
                                for d in 0..3 {
                                    facc[i][d] += f[d];
                                    facc[j][d] -= f[d];
                                }
                                pe_local += pe;
                            }
                        }
                    }
                } else {
                    for m2 in read_cell(ctx, a, nc) {
                        let p2 = [
                            a.pos.read(ctx, 3 * m2),
                            a.pos.read(ctx, 3 * m2 + 1),
                            a.pos.read(ctx, 3 * m2 + 2),
                        ];
                        for i in 0..mine.len() {
                            charge_flops(ctx, 12);
                            if let Some((f, pe)) = pair_force(mpos[i], p2, cut2) {
                                charge_flops(ctx, 24);
                                for d in 0..3 {
                                    facc[i][d] += f[d];
                                }
                                pe_local += 0.5 * pe; // counted from both sides
                            }
                        }
                    }
                }
            }
            for (i, &m) in mine.iter().enumerate() {
                for d in 0..3 {
                    let cur = a.force.read(ctx, 3 * m + d);
                    a.force.write(ctx, 3 * m + d, cur + facc[i][d]);
                }
            }
        }
        ctx.barrier();

        // Correct (second half-kick) owned molecules.
        for c in clo..chi {
            for m in read_cell(ctx, a, c) {
                for d in 0..3 {
                    let f = a.force.read(ctx, 3 * m + d);
                    let v = a.vel.read(ctx, 3 * m + d) + 0.5 * cfg.dt * f;
                    a.vel.write(ctx, 3 * m + d, v);
                    charge_flops(ctx, 3);
                }
            }
        }
        ctx.barrier();

        // Migrate molecules whose cell changed — the only lock-protected
        // phase (molecule moves between steps are rare, so lock traffic is
        // small, matching the paper's low Water-Sp lock counts).
        for c in clo..chi {
            let mine = read_cell(ctx, a, c);
            for m in mine {
                let p = [
                    a.pos.read(ctx, 3 * m),
                    a.pos.read(ctx, 3 * m + 1),
                    a.pos.read(ctx, 3 * m + 2),
                ];
                let target = cell_of(p, b);
                if target != c {
                    // Remove from c, insert into target, both under locks.
                    ctx.acquire(CELL_LOCK_BASE + c);
                    let cnt = a.cell_count.read(ctx, c) as usize;
                    let mut slot = usize::MAX;
                    for s in 0..cnt {
                        if a.cell_mols.read(ctx, c * cap + s) as usize == m {
                            slot = s;
                            break;
                        }
                    }
                    if slot != usize::MAX {
                        let last = a.cell_mols.read(ctx, c * cap + cnt - 1);
                        a.cell_mols.write(ctx, c * cap + slot, last);
                        a.cell_count.write(ctx, c, cnt as u64 - 1);
                    }
                    ctx.release(CELL_LOCK_BASE + c);
                    ctx.acquire(CELL_LOCK_BASE + target);
                    let tcnt = a.cell_count.read(ctx, target) as usize;
                    assert!(tcnt < cap, "cell overflow during migration");
                    a.cell_mols.write(ctx, target * cap + tcnt, m as u64);
                    a.cell_count.write(ctx, target, tcnt as u64 + 1);
                    ctx.release(CELL_LOCK_BASE + target);
                }
            }
        }

        // Potential-energy reduction: one remote update per node (`r`).
        let node_pe = ctx.local_reduce(ReduceOp::Sum, pe_local);
        if ctx.local_id() == 0 {
            ctx.acquire(PE_LOCK);
            let e = a.pe.read(ctx, 0);
            a.pe.write(ctx, 0, e + node_pe);
            ctx.release(PE_LOCK);
        }
        ctx.barrier();
    }

    ctx.end_measured();

    // Validation checksum over owned cells.
    let mut local = 0.0;
    let mut owned_mols = 0u64;
    for c in clo..chi {
        for m in read_cell(ctx, a, c) {
            owned_mols += 1;
            for d in 0..3 {
                local += a.pos.read(ctx, 3 * m + d).abs() + a.vel.read(ctx, 3 * m + d).abs();
            }
        }
    }
    ctx.acquire(SINK_LOCK);
    let acc = a.sink.read(ctx, 0);
    a.sink.write(ctx, 0, acc + local);
    let molacc = a.sink.read(ctx, 1);
    a.sink.write(ctx, 1, molacc + owned_mols as f64);
    ctx.release(SINK_LOCK);
    ctx.barrier();
    if ctx.global_id() == 0 {
        let mols = a.sink.read(ctx, 1);
        assert_eq!(mols as usize, n, "molecules lost during migration");
        let total = a.sink.read(ctx, 0);
        assert!(total.is_finite(), "Water-Sp diverged");
        a.sink.write(ctx, 1, total);
    }
}

/// Sequential oracle: same cell-list physics.
pub fn oracle(cfg: &WaterSpConfig) -> f64 {
    let n = cfg.n;
    let b = cfg.b;
    let cells = b * b * b;
    let cut2 = (1.0 / b as f64) * (1.0 / b as f64);
    let mut pos = vec![[0.0f64; 3]; n];
    let mut vel = vec![[0.0f64; 3]; n];
    let mut force = vec![[0.0f64; 3]; n];
    let mut cell: Vec<Vec<usize>> = vec![Vec::new(); cells];
    for i in 0..n {
        let (p, v) = init_mol(i, n);
        pos[i] = p;
        vel[i] = v;
        cell[cell_of(p, b)].push(i);
    }
    for _ in 0..cfg.steps {
        for c in 0..cells {
            for idx in 0..cell[c].len() {
                let m = cell[c][idx];
                for d in 0..3 {
                    vel[m][d] += 0.5 * cfg.dt * force[m][d];
                    pos[m][d] = (pos[m][d] + cfg.dt * vel[m][d]).rem_euclid(1.0);
                    force[m][d] = 0.0;
                }
            }
        }
        for c in 0..cells {
            let mine = cell[c].clone();
            for nc in neighbours(c, b) {
                if nc == c {
                    for i in 0..mine.len() {
                        for j in (i + 1)..mine.len() {
                            if let Some((f, _)) = pair_force(pos[mine[i]], pos[mine[j]], cut2) {
                                for d in 0..3 {
                                    force[mine[i]][d] += f[d];
                                    force[mine[j]][d] -= f[d];
                                }
                            }
                        }
                    }
                } else {
                    for &m2 in &cell[nc] {
                        for &m in &mine {
                            if let Some((f, _)) = pair_force(pos[m], pos[m2], cut2) {
                                for d in 0..3 {
                                    force[m][d] += f[d];
                                }
                            }
                        }
                    }
                }
            }
        }
        for c in 0..cells {
            let mine = cell[c].clone();
            for m in mine {
                for d in 0..3 {
                    vel[m][d] += 0.5 * cfg.dt * force[m][d];
                }
                let target = cell_of(pos[m], b);
                if target != c {
                    cell[c].retain(|&x| x != m);
                    cell[target].push(m);
                }
            }
        }
    }
    let mut sum = 0.0;
    for i in 0..n {
        for d in 0..3 {
            sum += pos[i][d].abs() + vel[i][d].abs();
        }
    }
    sum
}

/// Runs the app and returns the checksum (tests).
pub fn checksum_of_run(cfg: &WaterSpConfig, nodes: usize, threads: usize) -> f64 {
    checksum_of_config(cfg, cvm_dsm::CvmConfig::small(nodes, threads)).0
}

/// Like [`checksum_of_run`], but over an arbitrary system configuration
/// (protocol under test, jitter, …); also returns the run's report.
pub fn checksum_of_config(
    cfg: &WaterSpConfig,
    dsm: cvm_dsm::CvmConfig,
) -> (f64, cvm_dsm::RunReport) {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    let mut b = CvmBuilder::new(dsm);
    let a = alloc_arrays(&mut b, cfg);
    let out = Arc::new(AtomicU64::new(0));
    let out2 = Arc::clone(&out);
    let cfg = *cfg;
    let report = b.run(move |ctx| {
        run(ctx, &cfg, &a);
        if ctx.global_id() == 0 {
            out2.store(a.sink.read(ctx, 1).to_bits(), Ordering::SeqCst);
        }
    });
    (f64::from_bits(out.load(Ordering::SeqCst)), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::assert_close;

    #[test]
    fn cells_map_covers_box() {
        for b in [2usize, 4, 6] {
            assert_eq!(cell_of([0.0, 0.0, 0.0], b), 0);
            assert_eq!(cell_of([0.999, 0.999, 0.999], b), b * b * b - 1);
        }
    }

    #[test]
    fn neighbour_sets_have_27_wrapped_cells() {
        let ns = neighbours(0, 4);
        assert_eq!(ns.len(), 27);
        let unique: std::collections::HashSet<_> = ns.iter().collect();
        assert_eq!(unique.len(), 27);
    }

    #[test]
    fn minimum_image_is_antisymmetric() {
        let (f, _) = pair_force([0.02, 0.5, 0.5], [0.98, 0.5, 0.5], 0.05).unwrap();
        let (g, _) = pair_force([0.98, 0.5, 0.5], [0.02, 0.5, 0.5], 0.05).unwrap();
        for d in 0..3 {
            assert_close(f[d], -g[d], 1e-12, "minimum image antisymmetry");
        }
    }

    #[test]
    fn parallel_matches_oracle() {
        let cfg = WaterSpConfig {
            n: 64,
            b: 4,
            steps: 2,
            dt: 0.002,
        };
        let want = oracle(&cfg);
        for (nodes, threads) in [(1, 1), (2, 2)] {
            assert_close(
                checksum_of_run(&cfg, nodes, threads),
                want,
                1e-6,
                "Water-Sp checksum",
            );
        }
    }
}
