//! SWM750 — the SPEC shallow-water stencil benchmark.
//!
//! A two-dimensional finite-difference solver for the shallow-water
//! equations with the SPEC SWM structure: thirteen full-size field arrays
//! (`u v p`, their `new`/`old` leapfrog copies, and the intermediates
//! `cu cv z h`), three parallel loops per timestep, each ending in a
//! barrier (the paper's version was auto-parallelized by SUIF into exactly
//! this fork-join shape), and periodic boundaries via wrapped indexing.
//! The SUIF runtime's fork-join overhead — which the paper blames for
//! SWM750's increased user time under multi-threading — is charged
//! explicitly at each loop entry.

use cvm_dsm::{CvmBuilder, SharedMat, SharedVec, ThreadCtx};
use cvm_sim::SimDuration;

use crate::common::{charge_flops, chunk};
use crate::AppBody;

/// SWM configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwmConfig {
    /// Grid dimension (the paper's input is 750×750).
    pub n: usize,
    /// Timesteps.
    pub steps: usize,
}

impl SwmConfig {
    /// Model-checker kernel: one step on a 16×16 grid.
    pub fn tiny() -> Self {
        SwmConfig { n: 16, steps: 1 }
    }

    /// Laptop-scale default.
    pub fn small() -> Self {
        SwmConfig { n: 192, steps: 4 }
    }

    /// The paper's 750×750 input.
    pub fn paper() -> Self {
        SwmConfig { n: 750, steps: 6 }
    }
}

const DX: f64 = 1.0e5;
const DT: f64 = 90.0;
const ALPHA: f64 = 0.001;
/// Per-loop fork-join overhead of the SUIF runtime (per thread).
const SUIF_FORK_JOIN: SimDuration = SimDuration::from_us(40);

struct Fields {
    u: SharedMat<f64>,
    v: SharedMat<f64>,
    p: SharedMat<f64>,
    unew: SharedMat<f64>,
    vnew: SharedMat<f64>,
    pnew: SharedMat<f64>,
    uold: SharedMat<f64>,
    vold: SharedMat<f64>,
    pold: SharedMat<f64>,
    cu: SharedMat<f64>,
    cv: SharedMat<f64>,
    z: SharedMat<f64>,
    h: SharedMat<f64>,
    sink: SharedVec<f64>,
}

fn alloc_fields(b: &mut CvmBuilder, n: usize) -> Fields {
    Fields {
        u: b.alloc_mat(n, n),
        v: b.alloc_mat(n, n),
        p: b.alloc_mat(n, n),
        unew: b.alloc_mat(n, n),
        vnew: b.alloc_mat(n, n),
        pnew: b.alloc_mat(n, n),
        uold: b.alloc_mat(n, n),
        vold: b.alloc_mat(n, n),
        pold: b.alloc_mat(n, n),
        cu: b.alloc_mat(n, n),
        cv: b.alloc_mat(n, n),
        z: b.alloc_mat(n, n),
        h: b.alloc_mat(n, n),
        sink: b.alloc::<f64>(2),
    }
}

/// Builds the SWM body.
pub fn build(b: &mut CvmBuilder, cfg: SwmConfig) -> AppBody {
    let f = alloc_fields(b, cfg.n);
    Box::new(move |ctx: &mut ThreadCtx<'_>| run(ctx, &cfg, &f))
}

fn init_uvp(i: usize, j: usize, n: usize) -> (f64, f64, f64) {
    let a = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
    let b = 2.0 * std::f64::consts::PI * j as f64 / n as f64;
    (
        -50.0 * (a.sin() * b.cos()),
        50.0 * (a.cos() * b.sin()),
        5000.0 + 500.0 * (a.cos() + b.cos()),
    )
}

fn run(ctx: &mut ThreadCtx<'_>, cfg: &SwmConfig, f: &Fields) {
    let n = cfg.n;
    if ctx.global_id() == 0 {
        for i in 0..n {
            for j in 0..n {
                let (u, v, p) = init_uvp(i, j, n);
                f.u.write(ctx, i, j, u);
                f.v.write(ctx, i, j, v);
                f.p.write(ctx, i, j, p);
                f.uold.write(ctx, i, j, u);
                f.vold.write(ctx, i, j, v);
                f.pold.write(ctx, i, j, p);
                for m in [&f.unew, &f.vnew, &f.pnew, &f.cu, &f.cv, &f.z, &f.h] {
                    m.write(ctx, i, j, 0.0);
                }
            }
        }
        f.sink.write(ctx, 0, 0.0);
        f.sink.write(ctx, 1, 0.0);
    }
    ctx.startup_done();

    let (ilo, ihi) = chunk(ctx.global_id(), ctx.total_threads(), n);
    let fsdx = 4.0 / DX;
    let tdts8 = DT / 8.0;
    let tdtsdx = DT / DX;

    for _step in 0..cfg.steps {
        // Loop 100: capacities and vorticity.
        ctx.work(SUIF_FORK_JOIN);
        for i in ilo..ihi {
            let ip = (i + 1) % n;
            for j in 0..n {
                let jp = (j + 1) % n;
                let cu = 0.5 * (f.p.read(ctx, ip, j) + f.p.read(ctx, i, j)) * f.u.read(ctx, i, j);
                let cv = 0.5 * (f.p.read(ctx, i, jp) + f.p.read(ctx, i, j)) * f.v.read(ctx, i, j);
                let z = (fsdx * (f.v.read(ctx, ip, j) - f.v.read(ctx, i, j))
                    - fsdx * (f.u.read(ctx, i, jp) - f.u.read(ctx, i, j)))
                    / (f.p.read(ctx, i, j) + 1.0);
                let uu = f.u.read(ctx, i, j);
                let vv = f.v.read(ctx, i, j);
                let h = f.p.read(ctx, i, j) + 0.25 * (uu * uu + vv * vv);
                f.cu.write(ctx, i, j, cu);
                f.cv.write(ctx, i, j, cv);
                f.z.write(ctx, i, j, z);
                f.h.write(ctx, i, j, h);
                charge_flops(ctx, 16);
            }
        }
        ctx.barrier();

        // Loop 200: leapfrog advance.
        ctx.work(SUIF_FORK_JOIN);
        for i in ilo..ihi {
            let ip = (i + 1) % n;
            let im = (i + n - 1) % n;
            for j in 0..n {
                let jp = (j + 1) % n;
                let jm = (j + n - 1) % n;
                let zs = f.z.read(ctx, i, j) + f.z.read(ctx, im, jm);
                let unew = f.uold.read(ctx, i, j)
                    + tdts8 * zs * (f.cv.read(ctx, i, j) + f.cv.read(ctx, im, j))
                    - tdtsdx * (f.h.read(ctx, i, j) - f.h.read(ctx, im, j));
                let vnew = f.vold.read(ctx, i, j)
                    - tdts8 * zs * (f.cu.read(ctx, i, j) + f.cu.read(ctx, i, jm))
                    - tdtsdx * (f.h.read(ctx, i, j) - f.h.read(ctx, i, jm));
                let pnew = f.pold.read(ctx, i, j)
                    - tdtsdx * (f.cu.read(ctx, ip, j) - f.cu.read(ctx, i, j))
                    - tdtsdx * (f.cv.read(ctx, i, jp) - f.cv.read(ctx, i, j));
                f.unew.write(ctx, i, j, unew);
                f.vnew.write(ctx, i, j, vnew);
                f.pnew.write(ctx, i, j, pnew);
                charge_flops(ctx, 24);
            }
        }
        ctx.barrier();

        // Loop 300: time smoothing.
        ctx.work(SUIF_FORK_JOIN);
        for i in ilo..ihi {
            for j in 0..n {
                let (u, un, uo) = (
                    f.u.read(ctx, i, j),
                    f.unew.read(ctx, i, j),
                    f.uold.read(ctx, i, j),
                );
                let (v, vn, vo) = (
                    f.v.read(ctx, i, j),
                    f.vnew.read(ctx, i, j),
                    f.vold.read(ctx, i, j),
                );
                let (p, pn, po) = (
                    f.p.read(ctx, i, j),
                    f.pnew.read(ctx, i, j),
                    f.pold.read(ctx, i, j),
                );
                f.uold.write(ctx, i, j, u + ALPHA * (un - 2.0 * u + uo));
                f.vold.write(ctx, i, j, v + ALPHA * (vn - 2.0 * v + vo));
                f.pold.write(ctx, i, j, p + ALPHA * (pn - 2.0 * p + po));
                f.u.write(ctx, i, j, un);
                f.v.write(ctx, i, j, vn);
                f.p.write(ctx, i, j, pn);
                charge_flops(ctx, 18);
            }
        }
        ctx.barrier();
    }

    ctx.end_measured();

    // Validation checksum: mean height field + velocity magnitudes.
    let mut local = 0.0;
    for i in ilo..ihi {
        for j in 0..n {
            local += f.p.read(ctx, i, j) + f.u.read(ctx, i, j).abs() + f.v.read(ctx, i, j).abs();
        }
    }
    ctx.acquire(20);
    let acc = f.sink.read(ctx, 0);
    f.sink.write(ctx, 0, acc + local);
    ctx.release(20);
    ctx.barrier();
    if ctx.global_id() == 0 {
        let total = f.sink.read(ctx, 0);
        assert!(total.is_finite(), "SWM diverged");
        f.sink.write(ctx, 1, total);
    }
}

/// Sequential oracle for the final checksum.
pub fn oracle(cfg: &SwmConfig) -> f64 {
    let n = cfg.n;
    let at = |g: &Vec<f64>, i: usize, j: usize| g[i * n + j];
    let mut u = vec![0.0; n * n];
    let mut v = vec![0.0; n * n];
    let mut p = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            let (a, b, c) = init_uvp(i, j, n);
            u[i * n + j] = a;
            v[i * n + j] = b;
            p[i * n + j] = c;
        }
    }
    let (mut uold, mut vold, mut pold) = (u.clone(), v.clone(), p.clone());
    let mut cu = vec![0.0; n * n];
    let mut cv = vec![0.0; n * n];
    let mut z = vec![0.0; n * n];
    let mut h = vec![0.0; n * n];
    let fsdx = 4.0 / DX;
    let tdts8 = DT / 8.0;
    let tdtsdx = DT / DX;
    for _ in 0..cfg.steps {
        for i in 0..n {
            let ip = (i + 1) % n;
            for j in 0..n {
                let jp = (j + 1) % n;
                cu[i * n + j] = 0.5 * (at(&p, ip, j) + at(&p, i, j)) * at(&u, i, j);
                cv[i * n + j] = 0.5 * (at(&p, i, jp) + at(&p, i, j)) * at(&v, i, j);
                z[i * n + j] = (fsdx * (at(&v, ip, j) - at(&v, i, j))
                    - fsdx * (at(&u, i, jp) - at(&u, i, j)))
                    / (at(&p, i, j) + 1.0);
                h[i * n + j] = at(&p, i, j)
                    + 0.25 * (at(&u, i, j) * at(&u, i, j) + at(&v, i, j) * at(&v, i, j));
            }
        }
        let mut unew = vec![0.0; n * n];
        let mut vnew = vec![0.0; n * n];
        let mut pnew = vec![0.0; n * n];
        for i in 0..n {
            let ip = (i + 1) % n;
            let im = (i + n - 1) % n;
            for j in 0..n {
                let jp = (j + 1) % n;
                let jm = (j + n - 1) % n;
                let zs = at(&z, i, j) + at(&z, im, jm);
                unew[i * n + j] = at(&uold, i, j) + tdts8 * zs * (at(&cv, i, j) + at(&cv, im, j))
                    - tdtsdx * (at(&h, i, j) - at(&h, im, j));
                vnew[i * n + j] = at(&vold, i, j)
                    - tdts8 * zs * (at(&cu, i, j) + at(&cu, i, jm))
                    - tdtsdx * (at(&h, i, j) - at(&h, i, jm));
                pnew[i * n + j] = at(&pold, i, j)
                    - tdtsdx * (at(&cu, ip, j) - at(&cu, i, j))
                    - tdtsdx * (at(&cv, i, jp) - at(&cv, i, j));
            }
        }
        for i in 0..n {
            for j in 0..n {
                let k = i * n + j;
                uold[k] = u[k] + ALPHA * (unew[k] - 2.0 * u[k] + uold[k]);
                vold[k] = v[k] + ALPHA * (vnew[k] - 2.0 * v[k] + vold[k]);
                pold[k] = p[k] + ALPHA * (pnew[k] - 2.0 * p[k] + pold[k]);
                u[k] = unew[k];
                v[k] = vnew[k];
                p[k] = pnew[k];
            }
        }
    }
    let mut sum = 0.0;
    for k in 0..n * n {
        sum += p[k] + u[k].abs() + v[k].abs();
    }
    sum
}

/// Runs the app and returns the checksum (tests).
pub fn checksum_of_run(cfg: &SwmConfig, nodes: usize, threads: usize) -> f64 {
    checksum_of_config(cfg, cvm_dsm::CvmConfig::small(nodes, threads)).0
}

/// Like [`checksum_of_run`], but over an arbitrary system configuration
/// (protocol under test, jitter, …); also returns the run's report.
pub fn checksum_of_config(cfg: &SwmConfig, dsm: cvm_dsm::CvmConfig) -> (f64, cvm_dsm::RunReport) {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    let mut b = CvmBuilder::new(dsm);
    let f = alloc_fields(&mut b, cfg.n);
    let out = Arc::new(AtomicU64::new(0));
    let out2 = Arc::clone(&out);
    let cfg = *cfg;
    let report = b.run(move |ctx| {
        run(ctx, &cfg, &f);
        if ctx.global_id() == 0 {
            out2.store(f.sink.read(ctx, 1).to_bits(), Ordering::SeqCst);
        }
    });
    (f64::from_bits(out.load(Ordering::SeqCst)), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::assert_close;

    #[test]
    fn parallel_matches_oracle() {
        let cfg = SwmConfig { n: 24, steps: 2 };
        let want = oracle(&cfg);
        for (nodes, threads) in [(1, 1), (2, 2)] {
            assert_close(
                checksum_of_run(&cfg, nodes, threads),
                want,
                1e-9,
                "SWM checksum",
            );
        }
    }

    #[test]
    fn oracle_stays_finite_over_more_steps() {
        let cfg = SwmConfig { n: 16, steps: 8 };
        assert!(oracle(&cfg).is_finite());
    }
}
