//! Cross-shard determinism: the parallel event core must be invisible.
//!
//! The contract of `CvmConfig::shards` is that sharding changes host-time
//! overlap only — the simulated execution, and therefore the entire run
//! report, is **byte-identical** at any shard count. These tests pin that
//! contract for every application of the evaluation suite, on the clean
//! network and under the `loss-10` fault plan (retransmission timers are
//! the subtlest input to the planner's delivery floors).

use cvm_apps::{build_app, AppId, Scale};
use cvm_dsm::{CvmBuilder, CvmConfig, FaultPlan};

const NODES: usize = 4;
const THREADS: usize = 2;

fn report_json(app: AppId, shards: usize, faults: Option<&str>) -> String {
    // The paper's latency model: its 368.5 µs lookahead floor opens wide
    // planning windows, so multi-shard runs genuinely pre-execute bursts
    // rather than degenerating to the sequential path.
    let mut cfg = CvmConfig::paper(NODES, THREADS);
    cfg.shards = shards;
    if let Some(name) = faults {
        cfg.faults = Some(FaultPlan::named(name, NODES).expect("known plan"));
    }
    let mut b = CvmBuilder::new(cfg);
    let body = build_app(&mut b, app, Scale::Tiny);
    b.run(body).to_json(10).to_string()
}

#[test]
fn every_app_is_byte_identical_across_shard_counts() {
    for app in AppId::ALL {
        let sequential = report_json(app, 1, None);
        for shards in [2, 4] {
            let sharded = report_json(app, shards, None);
            assert_eq!(sharded, sequential, "{app} diverged at --shards {shards}");
        }
    }
}

#[test]
fn lossy_runs_are_byte_identical_across_shard_counts() {
    // Loss exercises the retransmission path: live retry timers must be
    // reflected in the delivery floors or a pre-started burst could miss
    // a redelivered wakeup.
    for app in [AppId::Sor, AppId::WaterNsq] {
        let sequential = report_json(app, 1, Some("loss-10"));
        for shards in [2, 4] {
            let sharded = report_json(app, shards, Some("loss-10"));
            assert_eq!(
                sharded, sequential,
                "{app} with loss-10 diverged at --shards {shards}"
            );
        }
    }
}

#[test]
fn oversharding_clamps_to_node_count() {
    // More shards than nodes is legal (the map clamps) and still exact.
    let sequential = report_json(AppId::Fft, 1, None);
    let oversharded = report_json(AppId::Fft, 64, None);
    assert_eq!(oversharded, sequential);
}
