//! One node's memory system: D-cache + D-TLB + I-TLB and the virtual-time
//! penalty charged for misses.

use std::fmt;

use crate::cache::{Cache, CacheConfig};
use crate::tlb::{Tlb, TlbConfig};

/// Configuration for a node's full memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemConfig {
    /// Data cache geometry.
    pub dcache: CacheConfig,
    /// Data TLB geometry.
    pub dtlb: TlbConfig,
    /// Instruction TLB geometry.
    pub itlb: TlbConfig,
    /// Miss penalties charged to virtual time.
    pub penalties: MissPenalties,
}

/// Nanosecond penalties per miss, charged to the running thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissPenalties {
    /// D-cache miss (memory fill) penalty.
    pub dcache_ns: u64,
    /// D-TLB refill penalty.
    pub dtlb_ns: u64,
    /// I-TLB refill penalty.
    pub itlb_ns: u64,
}

impl MemConfig {
    /// The SP-2-like configuration used for Figure 2 (64 KB cache, CVM
    /// forced to 8 KB coherence pages; the TLBs still translate 4 KB
    /// hardware pages).
    pub fn sp2() -> Self {
        MemConfig {
            dcache: CacheConfig::sp2_dcache(),
            dtlb: TlbConfig::sp2_dtlb(),
            itlb: TlbConfig::sp2_itlb(),
            penalties: MissPenalties {
                dcache_ns: 300,
                dtlb_ns: 150,
                itlb_ns: 150,
            },
        }
    }

    /// An Alpha 2100 4/275-like configuration (16 KB direct-mapped L1; the
    /// 4 MB L2 is approximated by a lower effective miss penalty).
    pub fn alpha() -> Self {
        MemConfig {
            dcache: CacheConfig::alpha_l1(),
            dtlb: TlbConfig::alpha_dtlb(),
            itlb: TlbConfig {
                entries: 48,
                page_bytes: 8192,
                assoc: 48,
            },
            penalties: MissPenalties {
                dcache_ns: 80,
                dtlb_ns: 120,
                itlb_ns: 120,
            },
        }
    }
}

/// Result of one data access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// True if the D-cache hit.
    pub dcache_hit: bool,
    /// True if the D-TLB hit.
    pub dtlb_hit: bool,
    /// Virtual-time cost of the access in nanoseconds (penalties only; the
    /// base instruction cost is charged by the caller).
    pub cost_ns: u64,
}

/// A node's memory system, shared by all threads on the node.
///
/// # Example
///
/// ```
/// use cvm_memsim::{MemConfig, MemSystem};
/// let mut m = MemSystem::new(MemConfig::sp2());
/// let cold = m.data_access(0x4_0000);
/// assert!(!cold.dcache_hit);
/// let warm = m.data_access(0x4_0000);
/// assert!(warm.dcache_hit && warm.cost_ns == 0);
/// ```
#[derive(Debug, Clone)]
pub struct MemSystem {
    dcache: Cache,
    dtlb: Tlb,
    itlb: Tlb,
    penalties: MissPenalties,
}

impl MemSystem {
    /// Builds a memory system.
    ///
    /// # Panics
    ///
    /// Panics if any component geometry is inconsistent.
    pub fn new(config: MemConfig) -> Self {
        MemSystem {
            dcache: Cache::new(config.dcache),
            dtlb: Tlb::new(config.dtlb),
            itlb: Tlb::new(config.itlb),
            penalties: config.penalties,
        }
    }

    /// One data reference at byte address `addr`.
    pub fn data_access(&mut self, addr: u64) -> AccessOutcome {
        let dtlb_hit = self.dtlb.access(addr);
        let dcache_hit = self.dcache.access(addr);
        let mut cost = 0;
        if !dtlb_hit {
            cost += self.penalties.dtlb_ns;
        }
        if !dcache_hit {
            cost += self.penalties.dcache_ns;
        }
        AccessOutcome {
            dcache_hit,
            dtlb_hit,
            cost_ns: cost,
        }
    }

    /// One instruction reference at (virtual) PC `pc`; returns the penalty
    /// in nanoseconds.
    pub fn inst_access(&mut self, pc: u64) -> u64 {
        if self.itlb.access(pc) {
            0
        } else {
            self.penalties.itlb_ns
        }
    }

    /// Total D-cache misses.
    pub fn dcache_misses(&self) -> u64 {
        self.dcache.misses()
    }

    /// Total D-TLB misses.
    pub fn dtlb_misses(&self) -> u64 {
        self.dtlb.misses()
    }

    /// Total I-TLB misses.
    pub fn itlb_misses(&self) -> u64 {
        self.itlb.misses()
    }

    /// Total data references observed.
    pub fn data_refs(&self) -> u64 {
        self.dcache.hits() + self.dcache.misses()
    }
}

impl fmt::Display for MemSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mem[dcache {} dtlb {} itlb {} misses]",
            self.dcache_misses(),
            self.dtlb_misses(),
            self.itlb_misses()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn misses_charge_penalties() {
        let mut m = MemSystem::new(MemConfig::sp2());
        let out = m.data_access(0x123456);
        assert!(!out.dcache_hit && !out.dtlb_hit);
        assert_eq!(out.cost_ns, 300 + 150);
        assert_eq!(m.data_access(0x123456).cost_ns, 0);
    }

    #[test]
    fn interleaved_streams_increase_misses() {
        // Two "threads" each streaming over their own 32 KB region. Run one
        // after the other vs. finely interleaved: interleaving must not
        // decrease misses, and with a thrashing pattern increases them.
        let region = 96 * 1024u64; // > 64 KB cache per thread
        let step = 128u64;
        let seq = {
            let mut m = MemSystem::new(MemConfig::sp2());
            for rep in 0..4 {
                let _ = rep;
                for a in (0..region).step_by(step as usize) {
                    m.data_access(a);
                }
                for a in (0..region).step_by(step as usize) {
                    m.data_access(0x100_0000 + a);
                }
            }
            m.dcache_misses()
        };
        let interleaved = {
            let mut m = MemSystem::new(MemConfig::sp2());
            for _rep in 0..4 {
                for a in (0..region).step_by(step as usize) {
                    m.data_access(a);
                    m.data_access(0x100_0000 + a);
                }
            }
            m.dcache_misses()
        };
        assert!(interleaved >= seq);
    }

    #[test]
    fn itlb_miss_penalty() {
        let mut m = MemSystem::new(MemConfig::sp2());
        assert!(m.inst_access(0x8000_0000) > 0);
        assert_eq!(m.inst_access(0x8000_0000), 0);
        assert_eq!(m.itlb_misses(), 1);
    }

    #[test]
    fn alpha_preset_constructs() {
        let mut m = MemSystem::new(MemConfig::alpha());
        m.data_access(1);
        assert_eq!(m.data_refs(), 1);
    }
}
