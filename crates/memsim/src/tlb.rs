//! A set-associative, LRU translation lookaside buffer model.

use std::fmt;

/// Geometry of a TLB.
///
/// # Example
///
/// ```
/// use cvm_memsim::TlbConfig;
/// let t = TlbConfig::sp2_dtlb();
/// assert!(t.entries >= 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Total entries.
    pub entries: usize,
    /// Page size in bytes (a power of two).
    pub page_bytes: usize,
    /// Associativity; use `entries` for fully associative.
    pub assoc: usize,
}

impl TlbConfig {
    /// SP-2-like data TLB: 256 entries, 2-way, 4 KB pages.
    pub fn sp2_dtlb() -> Self {
        TlbConfig {
            entries: 256,
            page_bytes: 4096,
            assoc: 2,
        }
    }

    /// SP-2-like instruction TLB: 32 entries, 2-way, 4 KB pages.
    pub fn sp2_itlb() -> Self {
        TlbConfig {
            entries: 32,
            page_bytes: 4096,
            assoc: 2,
        }
    }

    /// Alpha-like data TLB: 64 entries, fully associative, 8 KB pages.
    pub fn alpha_dtlb() -> Self {
        TlbConfig {
            entries: 64,
            page_bytes: 8192,
            assoc: 64,
        }
    }

    fn sets(&self) -> usize {
        assert!(self.entries > 0 && self.assoc > 0);
        assert!(
            self.entries.is_multiple_of(self.assoc),
            "entries % assoc != 0"
        );
        assert!(self.page_bytes.is_power_of_two(), "page size power of two");
        self.entries / self.assoc
    }
}

/// A TLB fed with byte addresses; tracks hits and misses on page
/// translations.
///
/// # Example
///
/// ```
/// use cvm_memsim::{Tlb, TlbConfig};
/// let mut t = Tlb::new(TlbConfig::sp2_dtlb());
/// assert!(!t.access(0x10_0000));
/// assert!(t.access(0x10_0fff)); // same 4 KB page
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    sets: Vec<Vec<u64>>,
    set_mask: u64,
    page_shift: u32,
    assoc: usize,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Builds a TLB with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent or the set count is not a
    /// power of two.
    pub fn new(config: TlbConfig) -> Self {
        let sets = config.sets();
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Tlb {
            sets: vec![Vec::with_capacity(config.assoc); sets],
            set_mask: sets as u64 - 1,
            page_shift: config.page_bytes.trailing_zeros(),
            assoc: config.assoc,
            hits: 0,
            misses: 0,
        }
    }

    /// Performs one translation; returns `true` on a hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let vpn = addr >> self.page_shift;
        let set = &mut self.sets[(vpn & self.set_mask) as usize];
        if let Some(pos) = set.iter().position(|&t| t == vpn) {
            let tag = set.remove(pos);
            set.push(tag);
            self.hits += 1;
            true
        } else {
            if set.len() == self.assoc {
                set.remove(0);
            }
            set.push(vpn);
            self.misses += 1;
            false
        }
    }

    /// Total hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

impl fmt::Display for Tlb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tlb[hits {} misses {}]", self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Tlb {
        Tlb::new(TlbConfig {
            entries: 4,
            page_bytes: 4096,
            assoc: 4,
        })
    }

    #[test]
    fn same_page_hits_different_page_misses() {
        let mut t = tiny();
        assert!(!t.access(0));
        assert!(t.access(4095));
        assert!(!t.access(4096));
    }

    #[test]
    fn working_set_larger_than_tlb_thrashes() {
        let mut t = tiny();
        // 5 pages round-robin against 4 fully-associative entries: every
        // access misses after warmup (LRU worst case).
        for round in 0..10u64 {
            for p in 0..5u64 {
                let hit = t.access(p * 4096);
                if round > 0 {
                    assert!(!hit, "LRU thrash should miss");
                }
            }
        }
    }

    #[test]
    fn working_set_within_tlb_all_hits() {
        let mut t = tiny();
        for p in 0..4u64 {
            t.access(p * 4096);
        }
        for _ in 0..10 {
            for p in 0..4u64 {
                assert!(t.access(p * 4096));
            }
        }
        assert_eq!(t.misses(), 4);
    }

    #[test]
    fn presets_construct() {
        let _ = Tlb::new(TlbConfig::sp2_dtlb());
        let _ = Tlb::new(TlbConfig::sp2_itlb());
        let _ = Tlb::new(TlbConfig::alpha_dtlb());
    }
}
