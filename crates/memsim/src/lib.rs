//! Cache and TLB simulators for the Figure 2 memory-system experiments.
//!
//! The paper measures total D-cache, D-TLB and I-TLB misses on an IBM SP-2
//! (64 KB per-processor caches, with CVM forced to the Alpha's 8 KB page
//! size as the coherence unit) and shows that misses generally *increase*
//! with the per-node multi-threading level, because context switches
//! interleave the threads' address streams and displace each other's
//! working sets. We reproduce that by giving every simulated node one
//! [`MemSystem`] shared by all its threads — exactly like hardware — and
//! feeding it the threads' simulated shared-data accesses plus synthetic
//! private/code streams.
//!
//! The simulators are intentionally simple and classic: set-associative,
//! LRU, single level. Figure 2's claims are about *relative* miss growth,
//! which these capture.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
pub mod cache;
pub mod system;
pub mod tlb;

pub use cache::{Cache, CacheConfig};
pub use system::{AccessOutcome, MemConfig, MemSystem, MissPenalties};
pub use tlb::{Tlb, TlbConfig};
