//! A set-associative, LRU, write-allocate cache model.

use std::fmt;

/// Geometry of a cache.
///
/// # Example
///
/// ```
/// use cvm_memsim::CacheConfig;
/// let c = CacheConfig::sp2_dcache();
/// assert_eq!(c.size_bytes, 64 * 1024);
/// assert_eq!(c.sets(), c.size_bytes / c.line_bytes / c.assoc);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line size in bytes (a power of two).
    pub line_bytes: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
}

impl CacheConfig {
    /// The SP-2-like 64 KB data cache the paper's Figure 2 was measured on.
    pub fn sp2_dcache() -> Self {
        CacheConfig {
            size_bytes: 64 * 1024,
            line_bytes: 128,
            assoc: 4,
        }
    }

    /// The Alpha 2100 4/275's 16 KB direct-mapped first-level data cache.
    pub fn alpha_l1() -> Self {
        CacheConfig {
            size_bytes: 16 * 1024,
            line_bytes: 32,
            assoc: 1,
        }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (zero sizes, size not
    /// divisible by `line_bytes * assoc`, or non-power-of-two line size).
    pub fn sets(&self) -> usize {
        assert!(self.size_bytes > 0 && self.line_bytes > 0 && self.assoc > 0);
        assert!(
            self.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let denom = self.line_bytes * self.assoc;
        assert!(
            self.size_bytes.is_multiple_of(denom),
            "size must be a multiple of line * assoc"
        );
        self.size_bytes / denom
    }
}

/// A set-associative LRU cache fed with byte addresses.
///
/// # Example
///
/// ```
/// use cvm_memsim::{Cache, CacheConfig};
/// let mut c = Cache::new(CacheConfig::sp2_dcache());
/// assert!(!c.access(0x1000)); // cold miss
/// assert!(c.access(0x1000)); // now hot
/// assert_eq!(c.misses(), 1);
/// assert_eq!(c.hits(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    // Each set holds up to `assoc` tags, most recently used last.
    sets: Vec<Vec<u64>>,
    set_mask: u64,
    line_shift: u32,
    assoc: usize,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Builds a cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent or the set count is not a
    /// power of two.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            sets: vec![Vec::with_capacity(config.assoc); sets],
            set_mask: sets as u64 - 1,
            line_shift: config.line_bytes.trailing_zeros(),
            assoc: config.assoc,
            hits: 0,
            misses: 0,
        }
    }

    /// Performs one access; returns `true` on a hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = &mut self.sets[(line & self.set_mask) as usize];
        if let Some(pos) = set.iter().position(|&t| t == line) {
            let tag = set.remove(pos);
            set.push(tag);
            self.hits += 1;
            true
        } else {
            if set.len() == self.assoc {
                set.remove(0);
            }
            set.push(line);
            self.misses += 1;
            false
        }
    }

    /// Total hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Invalidates everything (used by tests; real runs never flush —
    /// caches are physically tagged and survive context switches).
    pub fn flush(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
    }

    /// Number of lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

impl fmt::Display for Cache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cache[hits {} misses {}]", self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 16-byte lines = 128 bytes.
        Cache::new(CacheConfig {
            size_bytes: 128,
            line_bytes: 16,
            assoc: 2,
        })
    }

    #[test]
    fn sequential_fill_then_hits() {
        let mut c = tiny();
        for i in 0..8u64 {
            assert!(!c.access(i * 16));
        }
        for i in 0..8u64 {
            assert!(c.access(i * 16), "line {i} should be resident");
        }
    }

    #[test]
    fn capacity_eviction_is_lru() {
        let mut c = tiny();
        // Three lines mapping to the same set (stride = sets * line = 64).
        c.access(0);
        c.access(64);
        c.access(128); // evicts line 0 (LRU)
        assert!(!c.access(0), "line 0 was evicted");
        assert!(c.access(128));
    }

    #[test]
    fn touching_reorders_lru() {
        let mut c = tiny();
        c.access(0);
        c.access(64);
        c.access(0); // line 0 becomes MRU
        c.access(128); // evicts 64, not 0
        assert!(c.access(0));
        assert!(!c.access(64));
    }

    #[test]
    fn same_line_offsets_hit() {
        let mut c = tiny();
        c.access(0x20);
        assert!(c.access(0x2f), "same 16-byte line");
        assert!(!c.access(0x30), "next line");
    }

    #[test]
    fn resident_never_exceeds_capacity() {
        let mut c = tiny();
        for i in 0..10_000u64 {
            c.access(i * 13);
        }
        assert!(c.resident_lines() <= 8);
    }

    #[test]
    fn flush_empties() {
        let mut c = tiny();
        c.access(0);
        c.flush();
        assert_eq!(c.resident_lines(), 0);
        assert!(!c.access(0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 128,
            line_bytes: 24,
            assoc: 2,
        });
    }
}
