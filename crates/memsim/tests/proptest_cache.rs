//! Property-based tests on the cache and TLB models.

use cvm_memsim::{Cache, CacheConfig, Tlb, TlbConfig};
use proptest::prelude::*;

proptest! {
    /// Residency never exceeds capacity, and hits + misses account for
    /// every access.
    #[test]
    fn cache_accounting(addrs in proptest::collection::vec(0u64..1_000_000, 1..500)) {
        let mut c = Cache::new(CacheConfig { size_bytes: 1024, line_bytes: 32, assoc: 2 });
        for &a in &addrs {
            c.access(a);
        }
        prop_assert!(c.resident_lines() <= 32);
        prop_assert_eq!(c.hits() + c.misses(), addrs.len() as u64);
    }

    /// Temporal locality guarantee: re-accessing the same address with no
    /// intervening accesses is always a hit.
    #[test]
    fn immediate_reuse_hits(addrs in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut c = Cache::new(CacheConfig { size_bytes: 2048, line_bytes: 64, assoc: 4 });
        for &a in &addrs {
            c.access(a);
            prop_assert!(c.access(a), "immediate re-access must hit");
        }
    }

    /// A working set that fits in the cache converges to all-hits.
    #[test]
    fn small_working_set_all_hits(seed_lines in proptest::collection::vec(0u64..8, 1..50)) {
        let mut c = Cache::new(CacheConfig { size_bytes: 1024, line_bytes: 32, assoc: 32 });
        // Warm up the (at most 8 distinct) lines.
        let lines: std::collections::HashSet<u64> = seed_lines.iter().copied().collect();
        for &l in &lines {
            c.access(l * 32);
        }
        let before_miss = c.misses();
        for _ in 0..3 {
            for &l in &seed_lines {
                c.access(l * 32);
            }
        }
        prop_assert_eq!(c.misses(), before_miss, "resident set must not miss");
    }

    /// The TLB translates at page granularity: accesses within one page
    /// after the first are hits regardless of offset.
    #[test]
    fn tlb_page_granularity(page in 0u64..10_000, offsets in proptest::collection::vec(0u64..4096, 1..50)) {
        let mut t = Tlb::new(TlbConfig { entries: 8, page_bytes: 4096, assoc: 8 });
        t.access(page * 4096);
        for &o in &offsets {
            prop_assert!(t.access(page * 4096 + o));
        }
    }

    /// Miss counts are monotone under stream extension (prefix property).
    #[test]
    fn misses_monotone(addrs in proptest::collection::vec(0u64..100_000, 2..300), cut in 1usize..200) {
        let cut = cut.min(addrs.len() - 1);
        let run = |xs: &[u64]| {
            let mut c = Cache::new(CacheConfig { size_bytes: 512, line_bytes: 32, assoc: 1 });
            for &a in xs {
                c.access(a);
            }
            c.misses()
        };
        prop_assert!(run(&addrs[..cut]) <= run(&addrs));
    }
}
