//! Randomized property tests on the cache and TLB models, driven by the
//! deterministic `SimRng` so every run explores the same cases and
//! failures reproduce exactly.

use cvm_memsim::{Cache, CacheConfig, Tlb, TlbConfig};
use cvm_sim::SimRng;

const CASES: usize = 200;

fn rand_addrs(rng: &mut SimRng, bound: u64, min: usize, max: usize) -> Vec<u64> {
    let n = min + rng.below((max - min) as u64) as usize;
    (0..n).map(|_| rng.below(bound)).collect()
}

/// Residency never exceeds capacity, and hits + misses account for every
/// access.
#[test]
fn cache_accounting() {
    let mut rng = SimRng::seed_from(0xCAC4_0001);
    for _ in 0..CASES {
        let addrs = rand_addrs(&mut rng, 1_000_000, 1, 500);
        let mut c = Cache::new(CacheConfig {
            size_bytes: 1024,
            line_bytes: 32,
            assoc: 2,
        });
        for &a in &addrs {
            c.access(a);
        }
        assert!(c.resident_lines() <= 32);
        assert_eq!(c.hits() + c.misses(), addrs.len() as u64);
    }
}

/// Temporal locality guarantee: re-accessing the same address with no
/// intervening accesses is always a hit.
#[test]
fn immediate_reuse_hits() {
    let mut rng = SimRng::seed_from(0xCAC4_0002);
    for _ in 0..CASES {
        let addrs = rand_addrs(&mut rng, 1_000_000, 1, 200);
        let mut c = Cache::new(CacheConfig {
            size_bytes: 2048,
            line_bytes: 64,
            assoc: 4,
        });
        for &a in &addrs {
            c.access(a);
            assert!(c.access(a), "immediate re-access must hit");
        }
    }
}

/// A working set that fits in the cache converges to all-hits.
#[test]
fn small_working_set_all_hits() {
    let mut rng = SimRng::seed_from(0xCAC4_0003);
    for _ in 0..CASES {
        let seed_lines = rand_addrs(&mut rng, 8, 1, 50);
        let mut c = Cache::new(CacheConfig {
            size_bytes: 1024,
            line_bytes: 32,
            assoc: 32,
        });
        // Warm up the (at most 8 distinct) lines.
        let lines: std::collections::HashSet<u64> = seed_lines.iter().copied().collect();
        for &l in &lines {
            c.access(l * 32);
        }
        let before_miss = c.misses();
        for _ in 0..3 {
            for &l in &seed_lines {
                c.access(l * 32);
            }
        }
        assert_eq!(c.misses(), before_miss, "resident set must not miss");
    }
}

/// The TLB translates at page granularity: accesses within one page after
/// the first are hits regardless of offset.
#[test]
fn tlb_page_granularity() {
    let mut rng = SimRng::seed_from(0xCAC4_0004);
    for _ in 0..CASES {
        let page = rng.below(10_000);
        let offsets = rand_addrs(&mut rng, 4096, 1, 50);
        let mut t = Tlb::new(TlbConfig {
            entries: 8,
            page_bytes: 4096,
            assoc: 8,
        });
        t.access(page * 4096);
        for &o in &offsets {
            assert!(t.access(page * 4096 + o));
        }
    }
}

/// Miss counts are monotone under stream extension (prefix property).
#[test]
fn misses_monotone() {
    let mut rng = SimRng::seed_from(0xCAC4_0005);
    for _ in 0..CASES {
        let addrs = rand_addrs(&mut rng, 100_000, 2, 300);
        let cut = (1 + rng.below(199) as usize).min(addrs.len() - 1);
        let run = |xs: &[u64]| {
            let mut c = Cache::new(CacheConfig {
                size_bytes: 512,
                line_bytes: 32,
                assoc: 1,
            });
            for &a in xs {
                c.access(a);
            }
            c.misses()
        };
        assert!(run(&addrs[..cut]) <= run(&addrs));
    }
}
