//! Global barriers with per-node arrival aggregation, plus local barriers.
//!
//! The multi-threading modification from the paper: *"Barrier operations
//! were modified so that all but the last local thread will thread switch
//! upon arriving at a barrier. The last thread aggregates all local
//! arrivals into a single per-node arrival message."* The master merges the
//! per-node vector times and write notices and fans out one release per
//! node.
//!
//! Local barriers synchronize only the threads of one node (no messages)
//! and optionally carry a reduction so applications can aggregate all local
//! contributions into a single remote update.

use std::fmt;

use crate::interval::{VectorTime, WriteNotice};

/// Master-side state of the global barrier.
///
/// With per-node aggregation (the default) the master expects one arrival
/// per node; in the ablation it expects one per thread.
#[derive(Debug, Clone)]
pub struct BarrierMaster {
    nodes: usize,
    expected: usize,
    count: usize,
    epoch: u32,
    gathered_vt: VectorTime,
    gathered_notices: Vec<WriteNotice>,
}

impl BarrierMaster {
    /// Creates the master for a system of `nodes` nodes expecting
    /// `expected` arrivals per episode.
    pub fn new(nodes: usize, expected: usize) -> Self {
        BarrierMaster {
            nodes,
            expected,
            count: 0,
            epoch: 0,
            gathered_vt: VectorTime::new(nodes),
            gathered_notices: Vec::new(),
        }
    }

    /// Current episode number.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Arrivals recorded so far in the current episode.
    pub fn arrived(&self) -> usize {
        self.count
    }

    /// Arrivals expected per episode.
    pub fn expected(&self) -> usize {
        self.expected
    }

    /// Records one arrival. Returns `true` when the expected number have
    /// arrived and the barrier can release.
    ///
    /// # Panics
    ///
    /// Panics on arrivals beyond the expected count within one episode.
    pub fn arrive(&mut self, vt: &VectorTime, notices: Vec<WriteNotice>) -> bool {
        assert!(self.count < self.expected, "too many barrier arrivals");
        self.count += 1;
        self.gathered_vt.merge(vt);
        self.gathered_notices.extend(notices);
        self.count == self.expected
    }

    /// Consumes the gathered state for the release fan-out and begins the
    /// next episode.
    ///
    /// # Panics
    ///
    /// Panics if called before all expected arrivals.
    pub fn release(&mut self) -> (VectorTime, Vec<WriteNotice>) {
        assert_eq!(self.count, self.expected, "release before full");
        self.epoch += 1;
        self.count = 0;
        let vt = std::mem::replace(&mut self.gathered_vt, VectorTime::new(self.nodes));
        self.gathered_vt = vt.clone();
        let notices = std::mem::take(&mut self.gathered_notices);
        (vt, notices)
    }
}

/// Per-node barrier state: local arrival aggregation.
#[derive(Debug, Clone, Default)]
pub struct NodeBarrier {
    /// Threads (global ids) blocked at the global barrier.
    pub blocked: Vec<usize>,
    /// Interval index up to which this node's notices have been broadcast
    /// at barriers.
    pub notices_sent_upto: u32,
}

impl NodeBarrier {
    /// Records a local arrival; returns `true` if `tid` is the last local
    /// thread (which then sends the per-node arrival message).
    pub fn arrive_local(&mut self, tid: usize, threads_per_node: usize) -> bool {
        self.blocked.push(tid);
        debug_assert!(self.blocked.len() <= threads_per_node);
        self.blocked.len() == threads_per_node
    }

    /// Takes the blocked set for wake-up at release.
    pub fn take_blocked(&mut self) -> Vec<usize> {
        std::mem::take(&mut self.blocked)
    }
}

/// Per-node local (intra-node) barrier with an optional f64 reduction.
#[derive(Debug, Clone, Default)]
pub struct LocalBarrier {
    /// Threads blocked at the local barrier.
    pub blocked: Vec<usize>,
    /// Running reduction value, if any thread contributed one.
    pub reduce_acc: Option<f64>,
}

/// Reduction operators for local barriers, matching CVM's built-in simple
/// reduction types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Arithmetic sum.
    Sum,
    /// Maximum.
    Max,
    /// Minimum.
    Min,
}

impl ReduceOp {
    /// Combines two values.
    pub fn combine(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
        }
    }
}

impl LocalBarrier {
    /// Records a local arrival with an optional reduction contribution;
    /// returns `true` if `tid` completes the barrier.
    pub fn arrive(
        &mut self,
        tid: usize,
        value: Option<(ReduceOp, f64)>,
        threads_per_node: usize,
    ) -> bool {
        if let Some((op, v)) = value {
            self.reduce_acc = Some(match self.reduce_acc {
                Some(acc) => op.combine(acc, v),
                None => v,
            });
        }
        self.blocked.push(tid);
        self.blocked.len() == threads_per_node
    }

    /// Takes the blocked set and the reduced value at completion.
    pub fn complete(&mut self) -> (Vec<usize>, Option<f64>) {
        (std::mem::take(&mut self.blocked), self.reduce_acc.take())
    }
}

impl fmt::Display for BarrierMaster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "barrier[epoch {} arrived {}/{}]",
            self.epoch, self.count, self.expected
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageId;

    fn notice(w: usize, i: u32, p: usize) -> WriteNotice {
        WriteNotice {
            writer: w,
            interval: i,
            page: PageId(p),
        }
    }

    #[test]
    fn master_releases_only_when_full() {
        let mut m = BarrierMaster::new(3, 3);
        let vt = VectorTime::new(3);
        assert!(!m.arrive(&vt, vec![]));
        assert!(!m.arrive(&vt, vec![]));
        assert!(m.arrive(&vt, vec![notice(1, 1, 5)]));
        let (_, notices) = m.release();
        assert_eq!(notices.len(), 1);
        assert_eq!(m.epoch(), 1);
        // Next episode starts clean.
        assert!(!m.arrive(&vt, vec![]));
    }

    #[test]
    fn master_merges_vector_times() {
        let mut m = BarrierMaster::new(2, 2);
        let mut a = VectorTime::new(2);
        let mut b = VectorTime::new(2);
        a.advance(0, 4);
        b.advance(1, 9);
        m.arrive(&a, vec![]);
        m.arrive(&b, vec![]);
        let (vt, _) = m.release();
        assert_eq!(vt.get(0), 4);
        assert_eq!(vt.get(1), 9);
    }

    #[test]
    #[should_panic(expected = "too many barrier arrivals")]
    fn extra_arrival_panics() {
        let mut m = BarrierMaster::new(2, 2);
        let vt = VectorTime::new(2);
        m.arrive(&vt, vec![]);
        m.arrive(&vt, vec![]);
        m.arrive(&vt, vec![]);
    }

    #[test]
    fn local_aggregation_last_thread_flag() {
        let mut nb = NodeBarrier::default();
        assert!(!nb.arrive_local(10, 3));
        assert!(!nb.arrive_local(11, 3));
        assert!(nb.arrive_local(12, 3));
        assert_eq!(nb.take_blocked(), vec![10, 11, 12]);
        assert!(nb.blocked.is_empty());
    }

    #[test]
    fn local_barrier_reduces() {
        let mut lb = LocalBarrier::default();
        assert!(!lb.arrive(0, Some((ReduceOp::Sum, 1.5)), 2));
        assert!(lb.arrive(1, Some((ReduceOp::Sum, 2.5)), 2));
        let (woken, val) = lb.complete();
        assert_eq!(woken.len(), 2);
        assert_eq!(val, Some(4.0));
    }

    #[test]
    fn reduce_ops() {
        assert_eq!(ReduceOp::Sum.combine(2.0, 3.0), 5.0);
        assert_eq!(ReduceOp::Max.combine(2.0, 3.0), 3.0);
        assert_eq!(ReduceOp::Min.combine(2.0, 3.0), 2.0);
    }

    #[test]
    fn mixed_reduction_and_plain_arrivals() {
        let mut lb = LocalBarrier::default();
        lb.arrive(0, None, 2);
        lb.arrive(1, Some((ReduceOp::Max, 7.0)), 2);
        let (_, val) = lb.complete();
        assert_eq!(val, Some(7.0));
    }
}
