//! Chrome trace-event (Perfetto) export of a protocol [`Trace`].
//!
//! Converts the flat event list into the JSON the Chrome tracing UI and
//! [ui.perfetto.dev](https://ui.perfetto.dev) load directly: one track
//! (`tid`) per node, async duration spans for the protocol's three
//! latency-bearing episodes — fault → fetch-complete, lock request →
//! grant, barrier arrive → release — and instant events for the
//! remaining protocol actions.
//!
//! Spans are paired here at export time, so every emitted `"b"` has a
//! matching `"e"` with the same `cat`/`id` even when episodes on one node
//! overlap; begins left open by a truncated trace are dropped rather than
//! emitted unbalanced.
//!
//! When a causal [`SpanForest`] is supplied
//! ([`chrome_trace_with_spans`]), the export adds a second process
//! (`pid 1`, "causal spans"): every closed span becomes a nested async
//! span on its node's track carrying its id, parent and
//! wire/handler/wait/backoff split, and every cross-node hop becomes a
//! flow event (`"s"`/`"f"`) from the sender's track to the receiver's,
//! so Perfetto draws the causal arrows across nodes.

use std::collections::HashMap;

use cvm_sim::json::JsonValue;
use cvm_sim::VirtualTime;

use crate::span::SpanForest;
use crate::trace::{Trace, TraceEvent};

/// Timestamp in microseconds, the trace-event format's native unit.
fn ts_us(t: VirtualTime) -> f64 {
    t.as_ns() as f64 / 1000.0
}

fn event_base(name: &str, cat: &str, ph: &str, node: usize, at: VirtualTime) -> JsonValue {
    let mut e = JsonValue::object();
    e.set("name", name);
    e.set("cat", cat);
    e.set("ph", ph);
    e.set("pid", 0u64);
    e.set("tid", node);
    e.set("ts", ts_us(at));
    e
}

/// `process_name` / `thread_name` metadata event.
fn meta_event(what: &str, pid: u64, tid: usize, name: String) -> JsonValue {
    let mut meta = JsonValue::object();
    meta.set("name", what);
    meta.set("ph", "M");
    meta.set("pid", pid);
    meta.set("tid", tid);
    let mut args = JsonValue::object();
    args.set("name", name);
    meta.set("args", args);
    meta
}

/// A span currently open during the export walk.
struct OpenSpan {
    started: VirtualTime,
    id: u64,
    node: usize,
    name: String,
    cat: &'static str,
    args: Vec<(&'static str, u64)>,
}

/// Converts `trace` into a trace-event JSON document with one track per
/// node (`nodes` names the tracks even if some recorded no events).
pub fn chrome_trace(trace: &Trace, nodes: usize) -> JsonValue {
    chrome_trace_with_spans(trace, nodes, None)
}

/// [`chrome_trace`] plus — when `spans` is given — a second "causal
/// spans" process with nested span tracks and cross-node flow arrows.
pub fn chrome_trace_with_spans(
    trace: &Trace,
    nodes: usize,
    spans: Option<&SpanForest>,
) -> JsonValue {
    let mut events = JsonValue::array();
    // Process and track names: stable pid/tid so saved traces diff.
    events.push(meta_event("process_name", 0, 0, "cvm protocol".to_owned()));
    for n in 0..nodes {
        events.push(meta_event("thread_name", 0, n, format!("node {n}")));
    }
    if spans.is_some() {
        events.push(meta_event("process_name", 1, 0, "causal spans".to_owned()));
        for n in 0..nodes {
            events.push(meta_event("thread_name", 1, n, format!("node {n} spans")));
        }
    }

    let mut next_id = 0u64;
    // Key: (cat, node-or-usize::MAX, resource) → stack of open spans.
    let mut open: HashMap<(&'static str, usize, usize), Vec<OpenSpan>> = HashMap::new();
    let mut closed: Vec<(OpenSpan, VirtualTime)> = Vec::new();

    let mut begin = |open: &mut HashMap<(&'static str, usize, usize), Vec<OpenSpan>>,
                     cat: &'static str,
                     node: usize,
                     resource: usize,
                     name: String,
                     at: VirtualTime,
                     args: Vec<(&'static str, u64)>| {
        let id = next_id;
        next_id += 1;
        open.entry((cat, node, resource))
            .or_default()
            .push(OpenSpan {
                started: at,
                id,
                node,
                name,
                cat,
                args,
            });
    };
    let end = |open: &mut HashMap<(&'static str, usize, usize), Vec<OpenSpan>>,
               closed: &mut Vec<(OpenSpan, VirtualTime)>,
               cat: &'static str,
               node: usize,
               resource: usize,
               at: VirtualTime,
               extra: Vec<(&'static str, u64)>| {
        if let Some(stack) = open.get_mut(&(cat, node, resource)) {
            if let Some(mut span) = stack.pop() {
                span.args.extend(extra);
                closed.push((span, at));
            }
        }
    };

    let mut instants: Vec<JsonValue> = Vec::new();
    let mut instant =
        |name: String, cat: &str, node: usize, at: VirtualTime, args: Vec<(&'static str, u64)>| {
            let mut e = event_base(&name, cat, "i", node, at);
            e.set("s", "t");
            if !args.is_empty() {
                let mut a = JsonValue::object();
                for (k, v) in args {
                    a.set(k, v);
                }
                e.set("args", a);
            }
            instants.push(e);
        };

    for entry in trace.iter() {
        let at = entry.at;
        match &entry.event {
            TraceEvent::Fault { node, page, write } => {
                begin(
                    &mut open,
                    "fault",
                    *node,
                    page.0,
                    format!("fault p{}", page.0),
                    at,
                    vec![("page", page.0 as u64), ("write", u64::from(*write))],
                );
            }
            TraceEvent::FetchComplete { node, page, diffs } => {
                end(
                    &mut open,
                    &mut closed,
                    "fault",
                    *node,
                    page.0,
                    at,
                    vec![("diffs", *diffs as u64)],
                );
            }
            TraceEvent::LockRequested { node, lock } => {
                begin(
                    &mut open,
                    "lock",
                    *node,
                    *lock,
                    format!("lock L{lock}"),
                    at,
                    vec![("lock", *lock as u64)],
                );
            }
            TraceEvent::LockGranted { node, lock } => {
                end(&mut open, &mut closed, "lock", *node, *lock, at, Vec::new());
            }
            TraceEvent::BarrierArrived { node, epoch } => {
                // Non-aggregated runs arrive once per thread; only the
                // node's first arrival opens the stall span.
                let key = ("barrier", *node, *epoch as usize);
                if open.get(&key).is_none_or(Vec::is_empty) {
                    begin(
                        &mut open,
                        "barrier",
                        *node,
                        *epoch as usize,
                        format!("barrier {epoch}"),
                        at,
                        vec![("epoch", *epoch as u64)],
                    );
                }
            }
            TraceEvent::BarrierReleased { epoch, notices } => {
                // The release closes every node's span for this epoch.
                for n in 0..nodes {
                    end(
                        &mut open,
                        &mut closed,
                        "barrier",
                        n,
                        *epoch as usize,
                        at,
                        vec![("notices", *notices as u64)],
                    );
                }
            }
            TraceEvent::DiffCreated { node, page, bytes } => {
                instant(
                    format!("diff p{}", page.0),
                    "diff",
                    *node,
                    at,
                    vec![("page", page.0 as u64), ("bytes", *bytes as u64)],
                );
            }
            TraceEvent::IntervalClosed {
                node,
                interval,
                pages,
            } => {
                instant(
                    format!("interval {interval}"),
                    "interval",
                    *node,
                    at,
                    vec![("interval", *interval as u64), ("pages", *pages as u64)],
                );
            }
            TraceEvent::Invalidated { node, page, writer } => {
                instant(
                    format!("invalidate p{}", page.0),
                    "invalidate",
                    *node,
                    at,
                    vec![("page", page.0 as u64), ("writer", *writer as u64)],
                );
            }
            TraceEvent::LockLocalHandoff { node, lock } => {
                instant(
                    format!("handoff L{lock}"),
                    "lock",
                    *node,
                    at,
                    vec![("lock", *lock as u64)],
                );
            }
            TraceEvent::UpdatePushed { node, page, target } => {
                instant(
                    format!("push p{}", page.0),
                    "push",
                    *node,
                    at,
                    vec![("page", page.0 as u64), ("target", *target as u64)],
                );
            }
            TraceEvent::NoticeCreated {
                node,
                writer,
                interval,
                page,
            } => {
                instant(
                    format!("notice n{writer}.{interval}"),
                    "verify",
                    *node,
                    at,
                    vec![
                        ("writer", *writer as u64),
                        ("interval", u64::from(*interval)),
                        ("page", page.0 as u64),
                    ],
                );
            }
            TraceEvent::DiffApplied {
                node,
                page,
                writer,
                upto,
            } => {
                instant(
                    format!("apply p{}", page.0),
                    "verify",
                    *node,
                    at,
                    vec![
                        ("page", page.0 as u64),
                        ("writer", *writer as u64),
                        ("upto", u64::from(*upto)),
                    ],
                );
            }
            TraceEvent::LockTransfer { lock, from, to } => {
                instant(
                    format!("token L{lock}"),
                    "verify",
                    *to,
                    at,
                    vec![
                        ("lock", *lock as u64),
                        ("from", *from as u64),
                        ("to", *to as u64),
                    ],
                );
            }
            TraceEvent::ThreadSwitch { node, from, to } => {
                instant(
                    format!("switch t{from}->t{to}"),
                    "sched",
                    *node,
                    at,
                    vec![("from", *from as u64), ("to", *to as u64)],
                );
            }
        }
    }

    // Emit closed spans as balanced async begin/end pairs. Sort by start
    // time then id for byte-stable output.
    closed.sort_by_key(|(s, _)| (s.started, s.id));
    for (span, ended) in closed {
        let mut b = event_base(&span.name, span.cat, "b", span.node, span.started);
        b.set("id", span.id);
        let mut args = JsonValue::object();
        for (k, v) in &span.args {
            args.set(k, *v);
        }
        b.set("args", args);
        events.push(b);
        let mut e = event_base(&span.name, span.cat, "e", span.node, ended);
        e.set("id", span.id);
        events.push(e);
    }
    for i in instants {
        events.push(i);
    }

    if let Some(forest) = spans {
        emit_span_events(&mut events, forest);
    }

    let mut doc = JsonValue::object();
    doc.set("traceEvents", events);
    doc.set("displayTimeUnit", "ms");
    doc
}

/// Emits the causal forest on `pid 1`: one balanced async `"b"`/`"e"`
/// pair per closed span (id = the span's own id, so the trace
/// cross-references `cvm explain`) and one `"s"` → `"f"` flow per
/// cross-node hop.
fn emit_span_events(events: &mut JsonValue, forest: &SpanForest) {
    let mut flow_id = 0u64;
    for s in forest.iter() {
        if !s.closed {
            continue; // Balanced-pairs invariant: open spans are dropped.
        }
        let name = format!("{} {}", s.kind.name(), s.resource.label());
        let cat = s.kind.name();
        let mut b = event_base(&name, cat, "b", s.node, s.open);
        b.set("pid", 1u64);
        b.set("id", s.id);
        let seg = s.segments();
        let mut args = JsonValue::object();
        args.set("span", s.id);
        args.set("parent", s.parent);
        args.set("resource", s.resource.label().as_str());
        args.set("hops", s.hops.len());
        args.set("wire_ns", seg.wire);
        args.set("handler_ns", seg.handler);
        args.set("wait_ns", seg.protocol_wait);
        args.set("backoff_ns", seg.backoff);
        b.set("args", args);
        events.push(b);
        let mut e = event_base(&name, cat, "e", s.node, s.close);
        e.set("pid", 1u64);
        e.set("id", s.id);
        events.push(e);
        for h in &s.hops {
            if h.src == h.dst {
                continue;
            }
            let hop_name = format!("{}", h.kind);
            let mut fs = event_base(&hop_name, "flow", "s", h.src, h.tx);
            fs.set("pid", 1u64);
            fs.set("id", flow_id);
            events.push(fs);
            let mut ff = event_base(&hop_name, "flow", "f", h.dst, h.serviced);
            ff.set("pid", 1u64);
            ff.set("id", flow_id);
            ff.set("bp", "e");
            events.push(ff);
            flow_id += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageId;

    fn t(us: u64) -> VirtualTime {
        VirtualTime::from_us(us)
    }

    #[test]
    fn spans_are_balanced_pairs() {
        let mut trace = Trace::new(100);
        trace.record(
            t(1),
            TraceEvent::Fault {
                node: 0,
                page: PageId(3),
                write: true,
            },
        );
        trace.record(t(2), TraceEvent::LockRequested { node: 1, lock: 7 });
        trace.record(
            t(5),
            TraceEvent::FetchComplete {
                node: 0,
                page: PageId(3),
                diffs: 2,
            },
        );
        trace.record(t(9), TraceEvent::LockGranted { node: 1, lock: 7 });
        let doc = chrome_trace(&trace, 2);
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let begins: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("b"))
            .collect();
        let ends: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("e"))
            .collect();
        assert_eq!(begins.len(), 2);
        assert_eq!(ends.len(), 2);
        for b in &begins {
            let id = b.get("id").unwrap().as_u64().unwrap();
            assert!(
                ends.iter()
                    .any(|e| e.get("id").unwrap().as_u64() == Some(id)),
                "begin {id} without matching end"
            );
        }
    }

    #[test]
    fn truncated_trace_drops_unmatched_begin() {
        let mut trace = Trace::new(100);
        trace.record(
            t(1),
            TraceEvent::Fault {
                node: 0,
                page: PageId(3),
                write: false,
            },
        );
        // No FetchComplete — the span must not be emitted.
        let doc = chrome_trace(&trace, 1);
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert!(events
            .iter()
            .all(|e| e.get("ph").and_then(JsonValue::as_str) != Some("b")));
    }

    #[test]
    fn barrier_release_closes_all_nodes() {
        let mut trace = Trace::new(100);
        trace.record(t(1), TraceEvent::BarrierArrived { node: 0, epoch: 0 });
        trace.record(t(2), TraceEvent::BarrierArrived { node: 1, epoch: 0 });
        trace.record(
            t(3),
            TraceEvent::BarrierReleased {
                epoch: 0,
                notices: 4,
            },
        );
        let doc = chrome_trace(&trace, 2);
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let barrier_begins = events
            .iter()
            .filter(|e| {
                e.get("ph").and_then(JsonValue::as_str) == Some("b")
                    && e.get("cat").and_then(JsonValue::as_str) == Some("barrier")
            })
            .count();
        assert_eq!(barrier_begins, 2, "one stall span per node");
    }

    #[test]
    fn tracks_are_named_per_node() {
        let trace = Trace::new(100);
        let doc = chrome_trace(&trace, 3);
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let names: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("M"))
            .filter_map(|e| e.get("args")?.get("name")?.as_str())
            .collect();
        assert_eq!(names, ["cvm protocol", "node 0", "node 1", "node 2"]);
    }

    #[test]
    fn span_forest_exports_nested_spans_and_flows() {
        use crate::span::{SpanKind, SpanResource};
        use cvm_net::{DeliveryInfo, MsgKind};
        let mut f = SpanForest::new(true);
        let fault = f.open(SpanKind::RemoteFault, 0, SpanResource::Page(7), 0, t(10));
        let pull = f.open(SpanKind::PagePull, 0, SpanResource::Page(7), fault, t(11));
        f.record_hop(
            pull,
            0,
            1,
            MsgKind::PageRequest,
            DeliveryInfo {
                sent_at: t(11),
                tx_at: t(11),
                arrived_at: t(14),
                serviced_at: t(15),
                retries: 0,
            },
        );
        f.close(pull, t(20));
        f.close(fault, t(22));
        let dangling = f.open(SpanKind::Reduce, 1, SpanResource::None, 0, t(30));
        assert!(f.get(dangling).is_some_and(|s| !s.closed));
        let trace = Trace::new(100);
        let doc = chrome_trace_with_spans(&trace, 2, Some(&f));
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        // Two processes are named.
        let procs: Vec<_> = events
            .iter()
            .filter(|e| e.get("name").and_then(JsonValue::as_str) == Some("process_name"))
            .filter_map(|e| e.get("args")?.get("name")?.as_str())
            .collect();
        assert_eq!(procs, ["cvm protocol", "causal spans"]);
        // The two closed spans export balanced, the open one is dropped.
        let span_begins: Vec<u64> = events
            .iter()
            .filter(|e| {
                e.get("ph").and_then(JsonValue::as_str) == Some("b")
                    && e.get("pid").and_then(JsonValue::as_u64) == Some(1)
            })
            .map(|e| e.get("id").unwrap().as_u64().unwrap())
            .collect();
        assert_eq!(span_begins, vec![fault, pull]);
        let span_ends = events
            .iter()
            .filter(|e| {
                e.get("ph").and_then(JsonValue::as_str) == Some("e")
                    && e.get("pid").and_then(JsonValue::as_u64) == Some(1)
            })
            .count();
        assert_eq!(span_ends, 2);
        // The child's begin carries its parent id and segment split.
        let child = events
            .iter()
            .find(|e| {
                e.get("ph").and_then(JsonValue::as_str) == Some("b")
                    && e.get("id").and_then(JsonValue::as_u64) == Some(pull)
            })
            .unwrap();
        let args = child.get("args").unwrap();
        assert_eq!(args.get("parent").unwrap().as_u64(), Some(fault));
        assert_eq!(args.get("wire_ns").unwrap().as_u64(), Some(3_000));
        // The cross-node hop became one flow start + finish pair.
        let flows: Vec<&str> = events
            .iter()
            .filter(|e| e.get("cat").and_then(JsonValue::as_str) == Some("flow"))
            .map(|e| e.get("ph").and_then(JsonValue::as_str).unwrap())
            .collect();
        assert_eq!(flows, ["s", "f"]);
        // Still strict JSON.
        let text = doc.to_string();
        assert_eq!(JsonValue::parse(&text).unwrap(), doc);
    }

    #[test]
    fn export_parses_back_as_json() {
        let mut trace = Trace::new(100);
        trace.record(
            t(1),
            TraceEvent::DiffCreated {
                node: 0,
                page: PageId(1),
                bytes: 128,
            },
        );
        let doc = chrome_trace(&trace, 1);
        let text = doc.to_string();
        let back = JsonValue::parse(&text).unwrap();
        assert_eq!(back, doc);
    }
}
