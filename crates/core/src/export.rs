//! Chrome trace-event (Perfetto) export of a protocol [`Trace`].
//!
//! Converts the flat event list into the JSON the Chrome tracing UI and
//! [ui.perfetto.dev](https://ui.perfetto.dev) load directly: one track
//! (`tid`) per node, async duration spans for the protocol's three
//! latency-bearing episodes — fault → fetch-complete, lock request →
//! grant, barrier arrive → release — and instant events for the
//! remaining protocol actions.
//!
//! Spans are paired here at export time, so every emitted `"b"` has a
//! matching `"e"` with the same `cat`/`id` even when episodes on one node
//! overlap; begins left open by a truncated trace are dropped rather than
//! emitted unbalanced.

use std::collections::HashMap;

use cvm_sim::json::JsonValue;
use cvm_sim::VirtualTime;

use crate::trace::{Trace, TraceEvent};

/// Timestamp in microseconds, the trace-event format's native unit.
fn ts_us(t: VirtualTime) -> f64 {
    t.as_ns() as f64 / 1000.0
}

fn event_base(name: &str, cat: &str, ph: &str, node: usize, at: VirtualTime) -> JsonValue {
    let mut e = JsonValue::object();
    e.set("name", name);
    e.set("cat", cat);
    e.set("ph", ph);
    e.set("pid", 0u64);
    e.set("tid", node);
    e.set("ts", ts_us(at));
    e
}

/// A span currently open during the export walk.
struct OpenSpan {
    started: VirtualTime,
    id: u64,
    node: usize,
    name: String,
    cat: &'static str,
    args: Vec<(&'static str, u64)>,
}

/// Converts `trace` into a trace-event JSON document with one track per
/// node (`nodes` names the tracks even if some recorded no events).
pub fn chrome_trace(trace: &Trace, nodes: usize) -> JsonValue {
    let mut events = JsonValue::array();
    // Track names: one per node.
    for n in 0..nodes {
        let mut meta = JsonValue::object();
        meta.set("name", "thread_name");
        meta.set("ph", "M");
        meta.set("pid", 0u64);
        meta.set("tid", n);
        let mut args = JsonValue::object();
        args.set("name", format!("node {n}"));
        meta.set("args", args);
        events.push(meta);
    }

    let mut next_id = 0u64;
    // Key: (cat, node-or-usize::MAX, resource) → stack of open spans.
    let mut open: HashMap<(&'static str, usize, usize), Vec<OpenSpan>> = HashMap::new();
    let mut closed: Vec<(OpenSpan, VirtualTime)> = Vec::new();

    let mut begin = |open: &mut HashMap<(&'static str, usize, usize), Vec<OpenSpan>>,
                     cat: &'static str,
                     node: usize,
                     resource: usize,
                     name: String,
                     at: VirtualTime,
                     args: Vec<(&'static str, u64)>| {
        let id = next_id;
        next_id += 1;
        open.entry((cat, node, resource))
            .or_default()
            .push(OpenSpan {
                started: at,
                id,
                node,
                name,
                cat,
                args,
            });
    };
    let end = |open: &mut HashMap<(&'static str, usize, usize), Vec<OpenSpan>>,
               closed: &mut Vec<(OpenSpan, VirtualTime)>,
               cat: &'static str,
               node: usize,
               resource: usize,
               at: VirtualTime,
               extra: Vec<(&'static str, u64)>| {
        if let Some(stack) = open.get_mut(&(cat, node, resource)) {
            if let Some(mut span) = stack.pop() {
                span.args.extend(extra);
                closed.push((span, at));
            }
        }
    };

    let mut instants: Vec<JsonValue> = Vec::new();
    let mut instant =
        |name: String, cat: &str, node: usize, at: VirtualTime, args: Vec<(&'static str, u64)>| {
            let mut e = event_base(&name, cat, "i", node, at);
            e.set("s", "t");
            if !args.is_empty() {
                let mut a = JsonValue::object();
                for (k, v) in args {
                    a.set(k, v);
                }
                e.set("args", a);
            }
            instants.push(e);
        };

    for entry in trace.iter() {
        let at = entry.at;
        match &entry.event {
            TraceEvent::Fault { node, page, write } => {
                begin(
                    &mut open,
                    "fault",
                    *node,
                    page.0,
                    format!("fault p{}", page.0),
                    at,
                    vec![("page", page.0 as u64), ("write", u64::from(*write))],
                );
            }
            TraceEvent::FetchComplete { node, page, diffs } => {
                end(
                    &mut open,
                    &mut closed,
                    "fault",
                    *node,
                    page.0,
                    at,
                    vec![("diffs", *diffs as u64)],
                );
            }
            TraceEvent::LockRequested { node, lock } => {
                begin(
                    &mut open,
                    "lock",
                    *node,
                    *lock,
                    format!("lock L{lock}"),
                    at,
                    vec![("lock", *lock as u64)],
                );
            }
            TraceEvent::LockGranted { node, lock } => {
                end(&mut open, &mut closed, "lock", *node, *lock, at, Vec::new());
            }
            TraceEvent::BarrierArrived { node, epoch } => {
                // Non-aggregated runs arrive once per thread; only the
                // node's first arrival opens the stall span.
                let key = ("barrier", *node, *epoch as usize);
                if open.get(&key).is_none_or(Vec::is_empty) {
                    begin(
                        &mut open,
                        "barrier",
                        *node,
                        *epoch as usize,
                        format!("barrier {epoch}"),
                        at,
                        vec![("epoch", *epoch as u64)],
                    );
                }
            }
            TraceEvent::BarrierReleased { epoch, notices } => {
                // The release closes every node's span for this epoch.
                for n in 0..nodes {
                    end(
                        &mut open,
                        &mut closed,
                        "barrier",
                        n,
                        *epoch as usize,
                        at,
                        vec![("notices", *notices as u64)],
                    );
                }
            }
            TraceEvent::DiffCreated { node, page, bytes } => {
                instant(
                    format!("diff p{}", page.0),
                    "diff",
                    *node,
                    at,
                    vec![("page", page.0 as u64), ("bytes", *bytes as u64)],
                );
            }
            TraceEvent::IntervalClosed {
                node,
                interval,
                pages,
            } => {
                instant(
                    format!("interval {interval}"),
                    "interval",
                    *node,
                    at,
                    vec![("interval", *interval as u64), ("pages", *pages as u64)],
                );
            }
            TraceEvent::Invalidated { node, page, writer } => {
                instant(
                    format!("invalidate p{}", page.0),
                    "invalidate",
                    *node,
                    at,
                    vec![("page", page.0 as u64), ("writer", *writer as u64)],
                );
            }
            TraceEvent::LockLocalHandoff { node, lock } => {
                instant(
                    format!("handoff L{lock}"),
                    "lock",
                    *node,
                    at,
                    vec![("lock", *lock as u64)],
                );
            }
            TraceEvent::UpdatePushed { node, page, target } => {
                instant(
                    format!("push p{}", page.0),
                    "push",
                    *node,
                    at,
                    vec![("page", page.0 as u64), ("target", *target as u64)],
                );
            }
            TraceEvent::NoticeCreated {
                node,
                writer,
                interval,
                page,
            } => {
                instant(
                    format!("notice n{writer}.{interval}"),
                    "verify",
                    *node,
                    at,
                    vec![
                        ("writer", *writer as u64),
                        ("interval", u64::from(*interval)),
                        ("page", page.0 as u64),
                    ],
                );
            }
            TraceEvent::DiffApplied {
                node,
                page,
                writer,
                upto,
            } => {
                instant(
                    format!("apply p{}", page.0),
                    "verify",
                    *node,
                    at,
                    vec![
                        ("page", page.0 as u64),
                        ("writer", *writer as u64),
                        ("upto", u64::from(*upto)),
                    ],
                );
            }
            TraceEvent::LockTransfer { lock, from, to } => {
                instant(
                    format!("token L{lock}"),
                    "verify",
                    *to,
                    at,
                    vec![
                        ("lock", *lock as u64),
                        ("from", *from as u64),
                        ("to", *to as u64),
                    ],
                );
            }
            TraceEvent::ThreadSwitch { node, from, to } => {
                instant(
                    format!("switch t{from}->t{to}"),
                    "sched",
                    *node,
                    at,
                    vec![("from", *from as u64), ("to", *to as u64)],
                );
            }
        }
    }

    // Emit closed spans as balanced async begin/end pairs. Sort by start
    // time then id for byte-stable output.
    closed.sort_by_key(|(s, _)| (s.started, s.id));
    for (span, ended) in closed {
        let mut b = event_base(&span.name, span.cat, "b", span.node, span.started);
        b.set("id", span.id);
        let mut args = JsonValue::object();
        for (k, v) in &span.args {
            args.set(k, *v);
        }
        b.set("args", args);
        events.push(b);
        let mut e = event_base(&span.name, span.cat, "e", span.node, ended);
        e.set("id", span.id);
        events.push(e);
    }
    for i in instants {
        events.push(i);
    }

    let mut doc = JsonValue::object();
    doc.set("traceEvents", events);
    doc.set("displayTimeUnit", "ms");
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageId;

    fn t(us: u64) -> VirtualTime {
        VirtualTime::from_us(us)
    }

    #[test]
    fn spans_are_balanced_pairs() {
        let mut trace = Trace::new(100);
        trace.record(
            t(1),
            TraceEvent::Fault {
                node: 0,
                page: PageId(3),
                write: true,
            },
        );
        trace.record(t(2), TraceEvent::LockRequested { node: 1, lock: 7 });
        trace.record(
            t(5),
            TraceEvent::FetchComplete {
                node: 0,
                page: PageId(3),
                diffs: 2,
            },
        );
        trace.record(t(9), TraceEvent::LockGranted { node: 1, lock: 7 });
        let doc = chrome_trace(&trace, 2);
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let begins: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("b"))
            .collect();
        let ends: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("e"))
            .collect();
        assert_eq!(begins.len(), 2);
        assert_eq!(ends.len(), 2);
        for b in &begins {
            let id = b.get("id").unwrap().as_u64().unwrap();
            assert!(
                ends.iter()
                    .any(|e| e.get("id").unwrap().as_u64() == Some(id)),
                "begin {id} without matching end"
            );
        }
    }

    #[test]
    fn truncated_trace_drops_unmatched_begin() {
        let mut trace = Trace::new(100);
        trace.record(
            t(1),
            TraceEvent::Fault {
                node: 0,
                page: PageId(3),
                write: false,
            },
        );
        // No FetchComplete — the span must not be emitted.
        let doc = chrome_trace(&trace, 1);
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert!(events
            .iter()
            .all(|e| e.get("ph").and_then(JsonValue::as_str) != Some("b")));
    }

    #[test]
    fn barrier_release_closes_all_nodes() {
        let mut trace = Trace::new(100);
        trace.record(t(1), TraceEvent::BarrierArrived { node: 0, epoch: 0 });
        trace.record(t(2), TraceEvent::BarrierArrived { node: 1, epoch: 0 });
        trace.record(
            t(3),
            TraceEvent::BarrierReleased {
                epoch: 0,
                notices: 4,
            },
        );
        let doc = chrome_trace(&trace, 2);
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let barrier_begins = events
            .iter()
            .filter(|e| {
                e.get("ph").and_then(JsonValue::as_str) == Some("b")
                    && e.get("cat").and_then(JsonValue::as_str) == Some("barrier")
            })
            .count();
        assert_eq!(barrier_begins, 2, "one stall span per node");
    }

    #[test]
    fn tracks_are_named_per_node() {
        let trace = Trace::new(100);
        let doc = chrome_trace(&trace, 3);
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let names: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("M"))
            .filter_map(|e| e.get("args")?.get("name")?.as_str())
            .collect();
        assert_eq!(names, ["node 0", "node 1", "node 2"]);
    }

    #[test]
    fn export_parses_back_as_json() {
        let mut trace = Trace::new(100);
        trace.record(
            t(1),
            TraceEvent::DiffCreated {
                node: 0,
                page: PageId(1),
                bytes: 128,
            },
        );
        let doc = chrome_trace(&trace, 1);
        let text = doc.to_string();
        let back = JsonValue::parse(&text).unwrap();
        assert_eq!(back, doc);
    }
}
