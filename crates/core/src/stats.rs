//! DSM-level statistics — everything Tables 2, 3 and 5 report.

use std::fmt;

use cvm_sim::json::JsonValue;
use cvm_sim::SimDuration;

/// Aggregate DSM statistics for one run.
///
/// Field names follow the paper's table columns:
///
/// * `thread_switches` — "useful" switches between *different* threads.
/// * `remote_faults` / `remote_locks` — faults and lock acquires that
///   required network communication.
/// * `outstanding_faults` / `outstanding_locks` — running sums of how many
///   fault/lock requests were already outstanding each time a new remote
///   request was initiated (Table 3's overlap measure).
/// * `block_same_page` / `block_same_lock` — times a thread blocked on a
///   page or lock that already had a local request outstanding.
/// * `diffs_created` / `diffs_used` — multiple-writer protocol work.
/// * `wait_barrier` / `wait_fault` / `wait_lock` — **non-overlapped** remote
///   latency, i.e. time a node sat idle with the oldest blocked request of
///   that class (Table 2's "Total Delay" columns).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DsmStats {
    /// Switches between different application threads.
    pub thread_switches: u64,
    /// Page faults requiring network traffic.
    pub remote_faults: u64,
    /// Lock acquires requiring network traffic.
    pub remote_locks: u64,
    /// Lock acquires satisfied locally (cached token, free).
    pub local_lock_acquires: u64,
    /// Lock acquires satisfied from the local per-lock queue hand-off.
    pub local_lock_handoffs: u64,
    /// Running sum of outstanding fault requests at request initiation.
    pub outstanding_faults: u64,
    /// Running sum of outstanding lock requests at request initiation.
    pub outstanding_locks: u64,
    /// Threads that blocked on an already-requested page.
    pub block_same_page: u64,
    /// Threads that blocked on an already-requested/held lock.
    pub block_same_lock: u64,
    /// Diffs created (lazy, at first request or at invalidation of a dirty
    /// page).
    pub diffs_created: u64,
    /// Diffs applied at faulting nodes (one diff may be used by several).
    pub diffs_used: u64,
    /// Twins created by local write faults.
    pub twins_created: u64,
    /// Global barrier episodes completed.
    pub barriers_crossed: u64,
    /// Local (intra-node) barrier episodes completed.
    pub local_barriers: u64,
    /// Global reduction episodes completed.
    pub global_reduces: u64,
    /// Eager-protocol diff pushes sent.
    pub updates_pushed: u64,
    /// Eager-protocol copyset prunes.
    pub copies_dropped: u64,
    /// Non-overlapped barrier wait, summed over nodes.
    pub wait_barrier: SimDuration,
    /// Non-overlapped fault (data) wait, summed over nodes.
    pub wait_fault: SimDuration,
    /// Non-overlapped lock wait, summed over nodes.
    pub wait_lock: SimDuration,
    /// Open-loop idle (all runnable threads sleeping on the arrival
    /// clock), summed over nodes. Not remote latency: excluded from
    /// [`total_wait`](Self::total_wait).
    pub wait_idle: SimDuration,
    /// Total user time (computation + local consistency + switches),
    /// summed over nodes.
    pub user_time: SimDuration,
}

impl DsmStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets everything to zero (used at `startup_done`).
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Total non-overlapped remote latency.
    pub fn total_wait(&self) -> SimDuration {
        self.wait_barrier + self.wait_fault + self.wait_lock
    }

    /// All counters and waits as a JSON object. Waits are in virtual
    /// nanoseconds.
    pub fn to_json(&self) -> JsonValue {
        let mut obj = JsonValue::object();
        obj.set("thread_switches", self.thread_switches);
        obj.set("remote_faults", self.remote_faults);
        obj.set("remote_locks", self.remote_locks);
        obj.set("local_lock_acquires", self.local_lock_acquires);
        obj.set("local_lock_handoffs", self.local_lock_handoffs);
        obj.set("outstanding_faults", self.outstanding_faults);
        obj.set("outstanding_locks", self.outstanding_locks);
        obj.set("block_same_page", self.block_same_page);
        obj.set("block_same_lock", self.block_same_lock);
        obj.set("diffs_created", self.diffs_created);
        obj.set("diffs_used", self.diffs_used);
        obj.set("twins_created", self.twins_created);
        obj.set("barriers_crossed", self.barriers_crossed);
        obj.set("local_barriers", self.local_barriers);
        obj.set("global_reduces", self.global_reduces);
        obj.set("updates_pushed", self.updates_pushed);
        obj.set("copies_dropped", self.copies_dropped);
        obj.set("wait_barrier_ns", self.wait_barrier.as_ns());
        obj.set("wait_fault_ns", self.wait_fault.as_ns());
        obj.set("wait_lock_ns", self.wait_lock.as_ns());
        obj.set("wait_idle_ns", self.wait_idle.as_ns());
        obj.set("user_time_ns", self.user_time.as_ns());
        obj
    }
}

impl fmt::Display for DsmStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "switches {} | remote faults {} locks {} | outstanding f {} l {}",
            self.thread_switches,
            self.remote_faults,
            self.remote_locks,
            self.outstanding_faults,
            self.outstanding_locks
        )?;
        writeln!(
            f,
            "block-same page {} lock {} | diffs created {} used {} | twins {}",
            self.block_same_page,
            self.block_same_lock,
            self.diffs_created,
            self.diffs_used,
            self.twins_created
        )?;
        writeln!(
            f,
            "barriers {} local {} reduces {} | pushes {} drops {} | local locks {} handoffs {}",
            self.barriers_crossed,
            self.local_barriers,
            self.global_reduces,
            self.updates_pushed,
            self.copies_dropped,
            self.local_lock_acquires,
            self.local_lock_handoffs
        )?;
        write!(
            f,
            "waits: barrier {} fault {} lock {} idle {} | user {}",
            self.wait_barrier, self.wait_fault, self.wait_lock, self.wait_idle, self.user_time
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_zeroes() {
        let mut s = DsmStats::new();
        s.remote_faults = 10;
        s.wait_lock = SimDuration::from_us(5);
        s.reset();
        assert_eq!(s, DsmStats::default());
    }

    #[test]
    fn total_wait_sums_classes() {
        let mut s = DsmStats::new();
        s.wait_barrier = SimDuration::from_us(1);
        s.wait_fault = SimDuration::from_us(2);
        s.wait_lock = SimDuration::from_us(3);
        assert_eq!(s.total_wait(), SimDuration::from_us(6));
    }

    #[test]
    fn display_mentions_key_fields() {
        let s = DsmStats::new();
        let text = format!("{s}");
        assert!(text.contains("diffs"));
        assert!(text.contains("waits"));
        // Every counter class shows up, including the ones Display used
        // to omit.
        assert!(text.contains("barriers"));
        assert!(text.contains("reduces"));
        assert!(text.contains("pushes"));
        assert!(text.contains("drops"));
        assert!(text.contains("handoffs"));
    }

    #[test]
    fn json_covers_every_field() {
        let mut s = DsmStats::new();
        s.barriers_crossed = 3;
        s.wait_fault = SimDuration::from_us(2);
        let j = s.to_json();
        assert_eq!(j.get("barriers_crossed").unwrap().as_u64(), Some(3));
        assert_eq!(j.get("wait_fault_ns").unwrap().as_u64(), Some(2_000));
        for key in [
            "thread_switches",
            "remote_faults",
            "remote_locks",
            "local_lock_acquires",
            "local_lock_handoffs",
            "outstanding_faults",
            "outstanding_locks",
            "block_same_page",
            "block_same_lock",
            "diffs_created",
            "diffs_used",
            "twins_created",
            "barriers_crossed",
            "local_barriers",
            "global_reduces",
            "updates_pushed",
            "copies_dropped",
            "wait_barrier_ns",
            "wait_fault_ns",
            "wait_lock_ns",
            "wait_idle_ns",
            "user_time_ns",
        ] {
            assert!(j.get(key).is_some(), "missing {key}");
        }
    }
}
