//! Typed views over the shared segment.
//!
//! Applications never see raw addresses; they allocate [`SharedVec`]s and
//! [`SharedMat`]s from the [`CvmBuilder`](crate::CvmBuilder) before the run
//! and access elements through a [`ThreadCtx`], which
//! drives the page-protection state machine exactly where hardware faults
//! would occur.
//!
//! Only 8-byte element types are shareable: the multiple-writer protocol
//! diffs at 8-byte-word granularity, so smaller elements could make two
//! *race-free* writers produce overlapping diffs (word-level false
//! sharing). Page-level false sharing, which the paper's protocol is built
//! to tolerate, remains fully possible.

use std::fmt;
use std::marker::PhantomData;

use crate::ctx::ThreadCtx;
use crate::page::Addr;

mod private {
    pub trait Sealed {}
    impl Sealed for f64 {}
    impl Sealed for u64 {}
    impl Sealed for i64 {}
}

/// Types that may live in the shared segment. Sealed: exactly the 8-byte
/// primitives (`f64`, `u64`, `i64`).
pub trait Shareable: private::Sealed + Copy + Send + 'static {
    /// Size in bytes (always 8).
    const SIZE: usize;
    /// Serializes to little-endian bytes.
    fn to_bytes(self) -> [u8; 8];
    /// Deserializes from little-endian bytes.
    ///
    /// # Panics
    ///
    /// Panics if `b` is shorter than 8 bytes.
    fn from_bytes(b: &[u8]) -> Self;
}

impl Shareable for f64 {
    const SIZE: usize = 8;
    fn to_bytes(self) -> [u8; 8] {
        self.to_le_bytes()
    }
    fn from_bytes(b: &[u8]) -> Self {
        f64::from_le_bytes(b[..8].try_into().expect("8 bytes"))
    }
}

impl Shareable for u64 {
    const SIZE: usize = 8;
    fn to_bytes(self) -> [u8; 8] {
        self.to_le_bytes()
    }
    fn from_bytes(b: &[u8]) -> Self {
        u64::from_le_bytes(b[..8].try_into().expect("8 bytes"))
    }
}

impl Shareable for i64 {
    const SIZE: usize = 8;
    fn to_bytes(self) -> [u8; 8] {
        self.to_le_bytes()
    }
    fn from_bytes(b: &[u8]) -> Self {
        i64::from_le_bytes(b[..8].try_into().expect("8 bytes"))
    }
}

/// A shared one-dimensional array handle. Cheap to copy into application
/// closures.
///
/// # Example
///
/// ```
/// use cvm_dsm::{CvmBuilder, CvmConfig};
/// let mut b = CvmBuilder::new(CvmConfig::small(1, 2));
/// let v = b.alloc::<f64>(16);
/// b.run(move |ctx| {
///     ctx.startup_done();
///     if ctx.global_id() == 0 {
///         v.write(ctx, 3, 1.25);
///     }
///     ctx.barrier();
///     assert_eq!(v.read(ctx, 3), 1.25);
/// });
/// ```
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SharedVec<T: Shareable> {
    base: u64,
    len: usize,
    _marker: PhantomData<T>,
}

impl<T: Shareable> SharedVec<T> {
    pub(crate) fn from_raw(base: u64, len: usize) -> Self {
        SharedVec {
            base,
            len,
            _marker: PhantomData,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Byte address of element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn addr(&self, i: usize) -> Addr {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        Addr(self.base + (i * T::SIZE) as u64)
    }

    /// Reads element `i` through the DSM (may fault and block).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn read(&self, ctx: &mut ThreadCtx<'_>, i: usize) -> T {
        ctx.read_val(self.addr(i))
    }

    /// Writes element `i` through the DSM (may fault and block).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn write(&self, ctx: &mut ThreadCtx<'_>, i: usize, v: T) {
        ctx.write_val(self.addr(i), v);
    }
}

impl<T: Shareable> fmt::Debug for SharedVec<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SharedVec[base {:#x}, len {}]", self.base, self.len)
    }
}

/// A shared row-major two-dimensional array handle.
///
/// Rows are contiguous, so contiguous row blocks map to contiguous pages —
/// the distribution the paper's applications rely on for locality.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SharedMat<T: Shareable> {
    vec: SharedVec<T>,
    rows: usize,
    cols: usize,
}

impl<T: Shareable> SharedMat<T> {
    pub(crate) fn from_raw(base: u64, rows: usize, cols: usize) -> Self {
        SharedMat {
            vec: SharedVec::from_raw(base, rows * cols),
            rows,
            cols,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn read(&self, ctx: &mut ThreadCtx<'_>, r: usize, c: usize) -> T {
        assert!(r < self.rows && c < self.cols, "({r},{c}) out of bounds");
        self.vec.read(ctx, r * self.cols + c)
    }

    /// Writes `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn write(&self, ctx: &mut ThreadCtx<'_>, r: usize, c: usize, v: T) {
        assert!(r < self.rows && c < self.cols, "({r},{c}) out of bounds");
        self.vec.write(ctx, r * self.cols + c, v);
    }

    /// The flat view.
    pub fn as_vec(&self) -> SharedVec<T> {
        self.vec
    }
}

impl<T: Shareable> fmt::Debug for SharedMat<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SharedMat[{}x{}]", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_bytes() {
        assert_eq!(f64::from_bytes(&1.5f64.to_bytes()), 1.5);
        assert_eq!(u64::from_bytes(&42u64.to_bytes()), 42);
        assert_eq!(i64::from_bytes(&(-7i64).to_bytes()), -7);
    }

    #[test]
    fn vec_addressing() {
        let v: SharedVec<f64> = SharedVec::from_raw(8192, 10);
        assert_eq!(v.addr(0), Addr(8192));
        assert_eq!(v.addr(9), Addr(8192 + 72));
        assert_eq!(v.len(), 10);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn vec_bounds_checked() {
        let v: SharedVec<f64> = SharedVec::from_raw(0, 4);
        let _ = v.addr(4);
    }

    #[test]
    fn mat_is_row_major() {
        let m: SharedMat<u64> = SharedMat::from_raw(0, 3, 5);
        assert_eq!(m.as_vec().addr(0), Addr(0));
        // (1, 2) = element 7.
        assert_eq!(m.as_vec().addr(5 + 2), Addr(56));
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 5);
    }
}
