//! Latency and size distributions for one run.
//!
//! The paper's tables report totals and means; distributions are what make
//! remote latency *diagnosable* — a handful of 3-hop lock chains or one
//! hot page's serial fetches disappear inside an average but dominate a
//! p90. [`DsmHistograms`] collects the six distributions the protocol
//! exposes, in log₂ buckets (see [`Log2Hist`]), cheap enough to stay on in
//! every run.

use std::fmt;

use cvm_sim::json::JsonValue;
use cvm_sim::Log2Hist;

/// The run's latency/size distributions.
///
/// All latencies are in virtual nanoseconds; sizes are in bytes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DsmHistograms {
    /// Remote-fault service time: fault signal to page validated (all
    /// replies applied), per fetch.
    pub fault_fetch_ns: Log2Hist,
    /// 2-hop lock acquires (the manager owned the token): request to
    /// grant, per acquire.
    pub lock_2hop_ns: Log2Hist,
    /// 3-hop lock acquires (manager forwarded to the current owner):
    /// request to grant, per acquire.
    pub lock_3hop_ns: Log2Hist,
    /// Barrier stall: a node's first arrival to its release, per node per
    /// episode.
    pub barrier_stall_ns: Log2Hist,
    /// Modified bytes per created diff.
    pub diff_bytes: Log2Hist,
    /// End-to-end request latency (arrival to completion) for serving
    /// workloads; empty unless the application records requests via
    /// [`ThreadCtx::record_request`](crate::ThreadCtx::record_request).
    pub request_ns: Log2Hist,
}

impl DsmHistograms {
    /// Creates empty histograms.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears all samples (used at `startup_done`).
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Adds every sample of `other` into this set.
    pub fn merge(&mut self, other: &DsmHistograms) {
        self.fault_fetch_ns.merge(&other.fault_fetch_ns);
        self.lock_2hop_ns.merge(&other.lock_2hop_ns);
        self.lock_3hop_ns.merge(&other.lock_3hop_ns);
        self.barrier_stall_ns.merge(&other.barrier_stall_ns);
        self.diff_bytes.merge(&other.diff_bytes);
        self.request_ns.merge(&other.request_ns);
    }

    /// The histograms as `(name, unit, hist)` rows, in a fixed order.
    pub fn rows(&self) -> [(&'static str, &'static str, &Log2Hist); 6] {
        [
            ("fault_fetch", "ns", &self.fault_fetch_ns),
            ("lock_2hop", "ns", &self.lock_2hop_ns),
            ("lock_3hop", "ns", &self.lock_3hop_ns),
            ("barrier_stall", "ns", &self.barrier_stall_ns),
            ("diff_size", "bytes", &self.diff_bytes),
            ("request", "ns", &self.request_ns),
        ]
    }

    /// JSON form: one object per histogram with summary percentiles and
    /// the non-empty buckets.
    pub fn to_json(&self) -> JsonValue {
        let mut obj = JsonValue::object();
        for (name, unit, h) in self.rows() {
            obj.set(name, hist_json(h, unit));
        }
        obj
    }
}

/// One histogram as JSON: `{unit, count, sum, min, p50, p90, p99, p999,
/// max, mean, buckets: [{lo, hi, count}]}`.
pub fn hist_json(h: &Log2Hist, unit: &str) -> JsonValue {
    let mut obj = JsonValue::object();
    obj.set("unit", unit);
    obj.set("count", h.count());
    obj.set("sum", h.sum());
    obj.set("min", h.min());
    obj.set("p50", h.p50());
    obj.set("p90", h.p90());
    obj.set("p99", h.p99());
    obj.set("p999", h.p999());
    obj.set("max", h.max());
    obj.set("mean", h.mean());
    let mut buckets = JsonValue::array();
    for (lo, hi, count) in h.nonzero_buckets() {
        let mut b = JsonValue::object();
        b.set("lo", lo);
        b.set("hi", hi);
        b.set("count", count);
        buckets.push(b);
    }
    obj.set("buckets", buckets);
    obj
}

impl fmt::Display for DsmHistograms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<14} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}  unit",
            "latency", "n", "p50", "p90", "p99", "p999", "max"
        )?;
        for (name, unit, h) in self.rows() {
            writeln!(
                f,
                "{:<14} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}  {}",
                name,
                h.count(),
                h.p50(),
                h.p90(),
                h.p99(),
                h.p999(),
                h.max(),
                unit
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_has_all_six_histograms() {
        let mut h = DsmHistograms::new();
        h.fault_fetch_ns.record(1000);
        h.diff_bytes.record(64);
        let j = h.to_json();
        for name in [
            "fault_fetch",
            "lock_2hop",
            "lock_3hop",
            "barrier_stall",
            "diff_size",
            "request",
        ] {
            assert!(j.get(name).is_some(), "missing {name}");
        }
        assert_eq!(
            j.get("fault_fetch").unwrap().get("count").unwrap().as_u64(),
            Some(1)
        );
        assert_eq!(
            j.get("diff_size").unwrap().get("unit").unwrap().as_str(),
            Some("bytes")
        );
    }

    #[test]
    fn merge_accumulates() {
        let mut a = DsmHistograms::new();
        a.lock_2hop_ns.record(500);
        let mut b = DsmHistograms::new();
        b.lock_2hop_ns.record(700);
        b.lock_3hop_ns.record(900);
        a.merge(&b);
        assert_eq!(a.lock_2hop_ns.count(), 2);
        assert_eq!(a.lock_3hop_ns.count(), 1);
    }

    #[test]
    fn display_renders_rows() {
        let mut h = DsmHistograms::new();
        h.barrier_stall_ns.record(12345);
        let text = format!("{h}");
        assert!(text.contains("barrier_stall"));
        assert!(text.contains("fault_fetch"));
        assert!(text.contains("request"));
        assert!(text.contains("p999"), "tail column missing from the table");
    }

    /// Regression: `hist_json` used to emit p50/p90/p99 but silently drop
    /// `p999`, so JSON artifacts lacked the tail the latency table prints.
    /// A heavily skewed distribution makes the three percentiles distinct,
    /// and the assertion runs on the *parsed* document so the field must
    /// survive a serialize/parse round trip.
    #[test]
    fn p999_survives_json_round_trip() {
        let mut h = Log2Hist::default();
        // 9990 fast samples, 9 slow, 1 pathological: p50 ≪ p99 < p999.
        for _ in 0..9990 {
            h.record(1_000);
        }
        for _ in 0..9 {
            h.record(1_000_000);
        }
        h.record(1_000_000_000);
        let parsed = JsonValue::parse(&hist_json(&h, "ns").to_pretty()).expect("valid JSON");
        let p999 = parsed.get("p999").expect("p999 present").as_u64();
        assert_eq!(p999, Some(h.p999()));
        assert!(
            h.p999() > h.p99(),
            "skewed distribution must separate the percentiles: p99 {} p999 {}",
            h.p99(),
            h.p999()
        );
        assert!(h.p999() >= 1_000_000, "p999 must see the slow tail");
    }
}
