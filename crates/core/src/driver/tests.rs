use super::*;
use crate::config::CvmConfig;

/// Smoke test: two nodes, two threads each, write/barrier/read.
#[test]
fn spmd_write_barrier_read() {
    let mut b = CvmBuilder::new(CvmConfig::small(2, 2));
    let v = b.alloc::<u64>(64);
    let report = b.run(move |ctx| {
        ctx.startup_done();
        let me = ctx.global_id() as u64;
        let (lo, hi) = ctx.partition(64);
        for i in lo..hi {
            v.write(ctx, i, me + 1);
        }
        ctx.barrier();
        let mut sum = 0;
        for i in 0..64 {
            sum += v.read(ctx, i);
        }
        // 4 threads x 16 elements each, values 1..=4.
        assert_eq!(sum, 16 * (1 + 2 + 3 + 4));
    });
    assert_eq!(report.stats.barriers_crossed, 1);
    assert!(report.stats.remote_faults > 0);
    assert!(report.stats.diffs_used > 0);
}

#[test]
fn lock_protected_counter_is_exact() {
    let mut b = CvmBuilder::new(CvmConfig::small(3, 2));
    let v = b.alloc::<u64>(1);
    let report = b.run(move |ctx| {
        if ctx.global_id() == 0 {
            v.write(ctx, 0, 0);
        }
        ctx.startup_done();
        for _ in 0..5 {
            ctx.acquire(7);
            let x = v.read(ctx, 0);
            v.write(ctx, 0, x + 1);
            ctx.release(7);
        }
        ctx.barrier();
        assert_eq!(v.read(ctx, 0), 30, "6 threads x 5 increments");
    });
    assert!(report.stats.remote_locks > 0);
    assert!(report.stats.barriers_crossed >= 1);
}

#[test]
fn single_node_needs_no_messages() {
    let mut b = CvmBuilder::new(CvmConfig::small(1, 4));
    let v = b.alloc::<f64>(256);
    let report = b.run(move |ctx| {
        ctx.startup_done();
        let (lo, hi) = ctx.partition(256);
        for i in lo..hi {
            v.write(ctx, i, 1.0);
        }
        ctx.barrier();
        let total: f64 = (0..256).map(|i| v.read(ctx, i)).sum();
        assert_eq!(total, 256.0);
    });
    assert_eq!(report.net.total_count(), 0);
    assert_eq!(report.stats.remote_faults, 0);
}

#[test]
fn local_reduce_aggregates_per_node() {
    let mut b = CvmBuilder::new(CvmConfig::small(2, 3));
    let v = b.alloc::<f64>(2);
    let report = b.run(move |ctx| {
        ctx.startup_done();
        let r = ctx.local_reduce(crate::barrier::ReduceOp::Sum, 1.0);
        assert_eq!(r, 3.0, "three local threads contribute 1.0 each");
        if ctx.local_id() == 0 {
            v.write(ctx, ctx.node(), r);
        }
        ctx.barrier();
        assert_eq!(v.read(ctx, 0) + v.read(ctx, 1), 6.0);
    });
    assert_eq!(report.stats.local_barriers, 2);
}

#[test]
fn determinism_same_seed_same_report() {
    let run = || {
        let mut b = CvmBuilder::new(CvmConfig::small(2, 2));
        let v = b.alloc::<u64>(512);
        b.run(move |ctx| {
            ctx.startup_done();
            let (lo, hi) = ctx.partition(512);
            for it in 0..3 {
                for i in lo..hi {
                    v.write(ctx, i, it + i as u64);
                }
                ctx.barrier();
                let _ = v.read(ctx, (lo + 256) % 512);
                ctx.barrier();
            }
        })
    };
    let a = run();
    let b = run();
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.net, b.net);
    assert_eq!(a.total_time, b.total_time);
}

#[test]
fn global_reduce_combines_across_cluster() {
    let b = CvmBuilder::new(CvmConfig::small(3, 2));
    let report = b.run(move |ctx| {
        ctx.startup_done();
        let me = ctx.global_id() as f64;
        let sum = ctx.global_reduce(crate::barrier::ReduceOp::Sum, me + 1.0);
        assert_eq!(sum, 21.0, "1+2+...+6");
        let max = ctx.global_reduce(crate::barrier::ReduceOp::Max, me);
        assert_eq!(max, 5.0);
        let min = ctx.global_reduce(crate::barrier::ReduceOp::Min, me);
        assert_eq!(min, 0.0);
    });
    assert_eq!(report.stats.global_reduces, 3);
    // One arrival + one release per non-master node per episode.
    use cvm_net::MsgKind;
    assert_eq!(report.net.kind_count(MsgKind::BarrierArrive), 3 * 2);
    assert_eq!(report.net.kind_count(MsgKind::BarrierRelease), 3 * 2);
}

#[test]
fn lifo_schedule_is_deterministic_and_correct() {
    let run = |lifo: bool| {
        let mut cfg = CvmConfig::small(2, 3);
        cfg.lifo_schedule = lifo;
        let mut b = CvmBuilder::new(cfg);
        let v = b.alloc::<u64>(128);
        b.run(move |ctx| {
            ctx.startup_done();
            let (lo, hi) = ctx.partition(128);
            for r in 0..3u64 {
                for i in lo..hi {
                    v.write(ctx, i, r + i as u64);
                }
                ctx.barrier();
            }
            let sum: u64 = (0..128).map(|i| v.read(ctx, i)).sum();
            assert_eq!(sum, (0..128u64).map(|i| 2 + i).sum::<u64>());
        })
    };
    let fifo = run(false);
    let lifo = run(true);
    // Both complete correctly; scheduling order differs, so the exact
    // switch pattern may differ while total work matches.
    assert_eq!(fifo.stats.barriers_crossed, lifo.stats.barriers_crossed);
}

#[test]
#[should_panic(expected = "deadlock")]
fn missing_barrier_participant_deadlocks() {
    let b = CvmBuilder::new(CvmConfig::small(2, 1));
    let _ = b.run(move |ctx| {
        ctx.startup_done();
        if ctx.global_id() == 0 {
            ctx.barrier(); // node 1 never arrives
        }
    });
}

/// Each protocol runs the smoke workload to the same application result.
#[test]
fn all_protocols_complete_smoke_workload() {
    for kind in crate::protocol::ProtocolKind::ALL {
        let mut cfg = CvmConfig::small(2, 2);
        cfg.protocol = kind;
        let mut b = CvmBuilder::new(cfg);
        let v = b.alloc::<u64>(64);
        let report = b.run(move |ctx| {
            ctx.startup_done();
            let me = ctx.global_id() as u64;
            let (lo, hi) = ctx.partition(64);
            for i in lo..hi {
                v.write(ctx, i, me + 1);
            }
            ctx.barrier();
            let sum: u64 = (0..64).map(|i| v.read(ctx, i)).sum();
            assert_eq!(sum, 16 * (1 + 2 + 3 + 4), "under {kind}");
        });
        assert_eq!(report.stats.barriers_crossed, 1, "under {kind}");
    }
}
