//! Home-based LRC: the third protocol, proving the [`Coherence`] seam.
//!
//! Every page has a static *home* node (block assignment, so a block
//! partitioning keeps most pages homed where they are written). At
//! interval close a writer flushes each dirtied page's diff to its home;
//! a faulting reader asks the home and receives the whole up-to-date page
//! in a single round trip. Compared to the homeless lazy protocol, a
//! fault costs one request/reply pair regardless of how many writers are
//! pending — fewer messages — but the reply always carries a full page —
//! more data volume. This is the trade-off of home-based LRC as used by
//! user-level DSMs in the Ramesh & Varadarajan line of work.
//!
//! Ordering: a flush leaves the writer at interval close, *before* the
//! write notices for that interval can travel (notices ride on later
//! lock grants and barrier releases). A reader's request names the
//! `(writer, interval)` pairs it needs — its pending notices plus its
//! own last flush — and the home parks the request until its per-writer
//! watermarks cover them, so an overtaking request can never read a
//! stale home copy.

use std::collections::HashMap;

use cvm_sim::VirtualTime;

use crate::msg::Payload;
use crate::oracle::{InjectFault, Invariant};
use crate::page::{PageId, PageState};
use crate::trace::TraceEvent;

use super::{Coherence, DriverCore};

/// A faulting node's request the home cannot serve yet: waiting for
/// flushes that cover `needs`.
#[derive(Debug)]
struct ParkedReq {
    /// The faulting node (the home itself for a local fault).
    requester: usize,
    /// `(writer, interval)` pairs the reply must cover.
    needs: Vec<(usize, u32)>,
    /// The requester's RemoteFault span (0 when spans are off): the
    /// eventual reply must ride in it, not in whatever flush span
    /// happened to unpark the request.
    span: u64,
}

/// Home-based LRC.
#[derive(Debug, Default)]
pub(super) struct HomeLazy {
    /// Per writer node: page → the last interval flushed to the home
    /// (coverage the writer itself must wait for when it later faults).
    flushed_upto: Vec<HashMap<usize, u32>>,
    /// Per home node: page → requests parked until coverage.
    parked: Vec<HashMap<usize, Vec<ParkedReq>>>,
}

impl HomeLazy {
    /// The page's static home: block assignment over the shared segment,
    /// matching the block partitioning most SPMD apps use, so interior
    /// pages are homed where they are written.
    fn home_of(&self, core: &DriverCore, p: usize) -> usize {
        (p * core.cfg.nodes / core.cfg.pages()).min(core.cfg.nodes - 1)
    }

    /// Serves every parked request for `p` at home `n` that the current
    /// watermarks cover (in arrival order).
    fn check_parked(&mut self, core: &mut DriverCore, n: usize, p: usize, t: VirtualTime) {
        let Some(list) = self.parked[n].remove(&p) else {
            return;
        };
        let mut keep = Vec::new();
        for req in list {
            let covered = req
                .needs
                .iter()
                .all(|&(w, i)| core.ctl[n].applied_ivl(p, w) >= i);
            let serve = covered || skip_watermark(core);
            if serve && core.oracle.enabled() {
                core.oracle.check(Invariant::HomeServeCoverage, covered, Some(n), t, || {
                    format!("home {n} unparked a request for p{p} before its watermarks covered {:?}", req.needs)
                });
            }
            if !serve {
                keep.push(req);
            } else if req.requester == n {
                // The home's own fault: the page bytes are current now.
                core.complete_fetch(n, p, t);
            } else {
                self.reply(core, n, p, req.requester, req.span, t);
            }
        }
        if !keep.is_empty() {
            self.parked[n].insert(p, keep);
        }
    }

    /// Sends the whole current page, with per-writer watermarks so the
    /// requester can retire its write notices. The reply rides in `span`,
    /// the requester's fault span.
    fn reply(
        &self,
        core: &mut DriverCore,
        home: usize,
        p: usize,
        to: usize,
        span: u64,
        t: VirtualTime,
    ) {
        let data = core.cells[home].lock().page_bytes(p).to_vec();
        let watermarks: Vec<(usize, u32)> = (0..core.cfg.nodes)
            .filter_map(|w| {
                let v = core.ctl[home].applied_ivl(p, w);
                (v > 0).then_some((w, v))
            })
            .collect();
        let saved = core.cur_span;
        core.cur_span = span;
        core.send_remote(
            home,
            to,
            Payload::HomeReply {
                page: PageId(p),
                data,
                watermarks,
            },
            t,
        );
        core.cur_span = saved;
    }
}

impl Coherence for HomeLazy {
    fn reset(&mut self, core: &mut DriverCore) {
        self.flushed_upto = (0..core.cfg.nodes).map(|_| HashMap::new()).collect();
        self.parked = (0..core.cfg.nodes).map(|_| HashMap::new()).collect();
    }

    /// Flush each closed page's diff to its home (even a silent close
    /// flushes, so the home's watermark always advances); the home itself
    /// only advances its own watermark.
    fn on_interval_close(&mut self, core: &mut DriverCore, n: usize, pages: &[usize]) {
        let now = core.ctl[n].sched.clock;
        for &p in pages {
            let entry = core.ensure_extracted(n, p);
            let upto = core.ctl[n].log.latest();
            let home = self.home_of(core, p);
            if home == n {
                let e = core.ctl[n].applied_ivl.entry((p, n)).or_insert(0);
                *e = (*e).max(upto);
                self.check_parked(core, n, p, now);
            } else {
                self.flushed_upto[n].insert(p, upto);
                core.stats.updates_pushed += 1;
                core.send_remote(
                    n,
                    home,
                    Payload::HomeFlush {
                        page: PageId(p),
                        diff: entry,
                        upto,
                    },
                    now,
                );
            }
        }
    }

    fn on_fault(&mut self, core: &mut DriverCore, n: usize, tid: usize, page: PageId, write: bool) {
        let p = page.0;
        if let Some(fetch) = core.ctl[n].fetches.get_mut(&p) {
            // The paper's "Block Same Page": an identical request is
            // already outstanding.
            fetch.waiters.push((tid, write));
            core.stats.block_same_page += 1;
            return;
        }
        // Fault overhead: user-level signal + protection change.
        let overhead = core.cfg.signal + core.cfg.mprotect;
        core.ctl[n].sched.clock += overhead;
        core.ctl[n].breakdown.user += overhead;
        let now = core.ctl[n].sched.clock;
        // Per pending writer, the highest interval we must see.
        let mut needs: Vec<(usize, u32)> = Vec::new();
        if let Some(pend) = core.ctl[n].pending.get(&p) {
            let mut by_writer: Vec<(usize, u32)> = Vec::new();
            for &(w, i) in pend {
                match by_writer.iter_mut().find(|e| e.0 == w) {
                    Some(e) => e.1 = e.1.max(i),
                    None => by_writer.push((w, i)),
                }
            }
            by_writer.sort_unstable();
            needs = by_writer;
        }
        let home = self.home_of(core, p);
        let state = core.cells[n].lock().state[p];
        if n == home {
            let covered = needs
                .iter()
                .all(|&(w, i)| core.ctl[n].applied_ivl(p, w) >= i);
            if covered {
                // The home's bytes already reflect everything we know of:
                // validate and continue (e.g. a pre-startup touch).
                core.retire_pending(n, p);
                let mut cell = core.cells[n].lock();
                if matches!(cell.state[p], PageState::Unmapped | PageState::Invalid) {
                    cell.state[p] = PageState::ReadOnly;
                }
                drop(cell);
                core.ctl[n].sched.ready.push_back(tid);
                return;
            }
            // Wait for the covering flushes to arrive.
            core.note_request_initiated(n);
            core.stats.remote_faults += 1;
            core.ctl[n].out_faults += 1;
            core.attr.page_mut(p).faults += 1;
            core.trace.record(
                now,
                TraceEvent::Fault {
                    node: n,
                    page,
                    write,
                },
            );
            let span = core.open_fetch(n, p, tid, write, now);
            self.parked[n].entry(p).or_default().push(ParkedReq {
                requester: n,
                needs,
                span,
            });
            return;
        }
        if state != PageState::Unmapped && needs.is_empty() {
            // Nothing newer than our copy exists: validate and continue.
            let mut cell = core.cells[n].lock();
            if cell.state[p] == PageState::Invalid {
                cell.state[p] = PageState::ReadOnly;
            }
            drop(cell);
            core.ctl[n].sched.ready.push_back(tid);
            return;
        }
        // Ask the home for the whole page, once it covers our pending
        // notices AND our own last flush — without the latter, a reply
        // computed before our in-flight flush lands would lose our own
        // writes when it overwrites the page.
        if let Some(&own) = self.flushed_upto[n].get(&p) {
            needs.push((n, own));
        }
        core.note_request_initiated(n);
        core.stats.remote_faults += 1;
        core.ctl[n].out_faults += 1;
        core.attr.page_mut(p).faults += 1;
        core.trace.record(
            now,
            TraceEvent::Fault {
                node: n,
                page,
                write,
            },
        );
        let span = core.open_fetch(n, p, tid, write, now);
        core.cur_span = span;
        core.send_remote(n, home, Payload::HomeRequest { page, needs }, now);
        core.cur_span = 0;
    }

    fn on_message(
        &mut self,
        core: &mut DriverCore,
        n: usize,
        src: usize,
        payload: Payload,
        t: VirtualTime,
    ) {
        match payload {
            Payload::HomeFlush { page, diff, upto } => {
                let p = page.0;
                if let Some((tag, _gseq, d)) = diff {
                    {
                        let mut cell = core.cells[n].lock();
                        d.apply(cell.page_bytes_mut(p));
                        // Keep a concurrent twin in step so the home's own
                        // next diff covers only its own writes.
                        if let Some(twin) = cell.twin_mut(p) {
                            d.apply(twin);
                        }
                    }
                    core.stats.diffs_used += 1;
                    let e = core.ctl[n].applied_dtag.entry((p, src)).or_insert(0);
                    *e = (*e).max(tag);
                }
                let e = core.ctl[n].applied_ivl.entry((p, src)).or_insert(0);
                *e = (*e).max(upto);
                if core.cfg.verify {
                    core.trace.record(
                        t,
                        TraceEvent::DiffApplied {
                            node: n,
                            page,
                            writer: src,
                            upto,
                        },
                    );
                }
                self.check_parked(core, n, p, t);
                if !core.ctl[n].fetches.contains_key(&p) {
                    // Retire satisfied notices; the home's copy stays
                    // usable without faulting.
                    let remaining = core.retire_pending(n, p);
                    if !remaining {
                        let mut cell = core.cells[n].lock();
                        if cell.state[p] == PageState::Invalid {
                            cell.state[p] = PageState::ReadOnly;
                        }
                    }
                }
            }
            Payload::HomeRequest { page, needs } => {
                let p = page.0;
                let covered = needs
                    .iter()
                    .all(|&(w, i)| core.ctl[n].applied_ivl(p, w) >= i);
                let serve = covered || skip_watermark(core);
                if serve && core.oracle.enabled() {
                    core.oracle.check(Invariant::HomeServeCoverage, covered, Some(n), t, || {
                        format!("home {n} served p{p} for node {src} before its watermarks covered {needs:?}")
                    });
                }
                if serve {
                    self.reply(core, n, p, src, core.cur_span, t);
                } else {
                    self.parked[n].entry(p).or_default().push(ParkedReq {
                        requester: src,
                        needs,
                        span: core.cur_span,
                    });
                }
            }
            Payload::HomeReply {
                page,
                data,
                watermarks,
            } => {
                let p = page.0;
                for &(w, upto) in &watermarks {
                    let e = core.ctl[n].applied_ivl.entry((p, w)).or_insert(0);
                    *e = (*e).max(upto);
                    if core.cfg.verify {
                        // The race detector mirrors the watermark from
                        // this event, exempting home traffic from the
                        // stale-read check exactly like a diff apply.
                        core.trace.record(
                            t,
                            TraceEvent::DiffApplied {
                                node: n,
                                page,
                                writer: w,
                                upto,
                            },
                        );
                    }
                }
                if core.ctl[n].fetches.contains_key(&p) {
                    if let Some(f) = core.ctl[n].fetches.get_mut(&p) {
                        f.base = Some(data);
                    }
                    core.complete_fetch(n, p, t);
                }
            }
            other => unreachable!("home-lazy never receives {:?}", other.kind()),
        }
    }
}

/// Mutation self-test hook: pretend the `nth` uncovered request's
/// watermark check passed, serving the stale home copy (the parking
/// protocol is exactly what makes home-lazy safe under wire-dominant
/// latencies, so this is the fault `cvm check --mutate skip-watermark`
/// must catch).
fn skip_watermark(core: &mut DriverCore) -> bool {
    core.inject_hits(|f| match f {
        InjectFault::SkipHomeWatermark { nth } => Some(*nth),
        _ => None,
    })
}
