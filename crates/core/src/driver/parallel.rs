//! The parallel event core: conservative-lookahead burst pre-execution.
//!
//! The driver loop itself stays *sequential* — events are handled one at
//! a time in global `(time, seq)` order, which is what makes reports
//! byte-identical at any shard count. What runs in parallel is the part
//! that dominates wall-clock time at scale: *application bursts*, the
//! node-local compute an application thread performs between two blocking
//! points. When the planner can prove that the next `NodeResume` of
//! several shards will (a) be reached and (b) pick a known thread, it
//! *starts* those threads' bursts concurrently ([`CoopScheduler::start`])
//! and lets the loop *collect* each result when its event is actually
//! popped ([`CoopScheduler::wait`]). `resume = start + wait`, so the
//! simulated execution is unchanged — only the host-time overlap is new.
//!
//! # Why pre-execution is invisible
//!
//! A burst on node `n` is pre-started at event time `t` only when all of
//! the following hold at planning time (the instant the network has
//! delivered every event at or before the queue head `t0`):
//!
//! 1. **Lookahead**: `t < t0 + lookahead`, where `lookahead` is the
//!    latency model's fixed floor ([`LatencyModel::lookahead`]). Any
//!    message sent by an event processed from `t0` onward arrives after
//!    the whole window, so it cannot invalidate the plan.
//! 2. **Delivery floors**: `t` is strictly below the earliest pending
//!    network delivery (or live retransmission timer) addressed to `n`
//!    ([`NetworkSim::delivery_floors`]). Strictly, because the loop
//!    drains deliveries at time `t` *before* popping a main event at
//!    `t` — an equal-time delivery could still reorder `n`'s run queue.
//! 3. **Head of its shard**: the event is its shard's earliest, and at
//!    most one burst per shard is in flight, planned only when none are.
//! 4. **Predictable pick**: replay scripts, schedule exploration, step
//!    recording, fault injection and the verifying oracle are all off
//!    (see `par_enabled`), so the pick is the configured FIFO/LIFO head
//!    of `n`'s ready queue — which conditions 1–2 freeze until `t`.
//!
//! Everything a handler or another node's burst does between planning and
//! collection either touches only its own node's state or travels through
//! the network (arriving ≥ `lookahead` later), so the pre-started burst
//! reads exactly the state it would have read sequentially. The pick
//! prediction is re-checked at collection and divergence is a panic, not
//! a wrong answer.
//!
//! [`CoopScheduler::start`]: cvm_sim::coop::CoopScheduler::start
//! [`CoopScheduler::wait`]: cvm_sim::coop::CoopScheduler::wait
//! [`LatencyModel::lookahead`]: cvm_net::LatencyModel::lookahead
//! [`NetworkSim::delivery_floors`]: cvm_net::NetworkSim::delivery_floors

use cvm_sim::VirtualTime;

use super::{DriverCore, MainEvent};

impl DriverCore {
    /// Plans one lookahead window: pre-starts the burst of every shard
    /// head that is provably safe to run early. Called only when no
    /// bursts are in flight; a no-op unless at least two shard heads fall
    /// inside the window (overlapping a single burst with nothing is the
    /// sequential loop with extra bookkeeping).
    pub(super) fn plan_window(&mut self) {
        debug_assert_eq!(self.planned_n, 0, "planning over in-flight bursts");
        // The previous window is fully collected by now; retire its
        // burst-time accumulators into the overlap ledger (`sum - max` is
        // the burst time a one-core-per-shard host keeps off the critical
        // path). The run's final window is retired at report time.
        self.overlap_saved_ns += self.win_sum_ns - self.win_max_ns;
        self.win_sum_ns = 0;
        self.win_max_ns = 0;
        let Some(t0) = self.mainq.peek_time() else {
            return;
        };
        let horizon = t0 + self.lookahead;
        let shards = self.mainq.map().shards();
        let mut candidates = 0usize;
        for s in 0..shards {
            if let Some((t, _)) = self.mainq.shard_head(s) {
                if t < horizon {
                    candidates += 1;
                }
            }
        }
        if candidates < 2 {
            return;
        }
        self.floors.fill(VirtualTime::MAX);
        self.net.delivery_floors(&mut self.floors);
        for s in 0..shards {
            let Some((t, &MainEvent::NodeResume(n))) = self.mainq.shard_head(s) else {
                continue;
            };
            if t >= horizon || t >= self.floors[n] {
                continue;
            }
            let Some(tid) = self.peek_pick(n) else {
                continue;
            };
            self.coop.start(self.threads[tid].coop);
            self.planned[s] = Some((n, tid));
            self.planned_n += 1;
            self.planned_bursts += 1;
        }
    }

    /// The thread `run_node` will pick on node `n`, predicted without
    /// consuming it — valid only under the planner's freeze conditions
    /// (no script/explore overrides, ready queue can't change before the
    /// event fires).
    fn peek_pick(&self, n: usize) -> Option<usize> {
        let ready = &self.ctl[n].sched.ready;
        if self.cfg.lifo_schedule {
            ready.back().copied()
        } else {
            ready.front().copied()
        }
    }

    /// Claims the pre-started burst for node `n`, if one is in flight on
    /// `n`'s shard: returns the thread whose burst must be collected with
    /// `wait` instead of `resume`.
    pub(super) fn take_planned(&mut self, n: usize) -> Option<usize> {
        if self.planned_n == 0 {
            return None;
        }
        let s = self.mainq.map().shard_of(n);
        match self.planned[s] {
            Some((planned_node, tid)) if planned_node == n => {
                self.planned[s] = None;
                self.planned_n -= 1;
                Some(tid)
            }
            _ => None,
        }
    }
}
