//! Report assembly: the single path that turns driver state into a
//! [`RunReport`]. Reads every layer's counters; calls nothing.
//!
//! Both report producers — the `end_measure` snapshot taken while the run
//! is still in flight, and the end-of-run report — go through
//! [`DriverCore::snapshot_report`], which aggregates the per-node
//! breakdowns with [`RunReport::breakdown_sum`] (the same primitive the
//! sweep uses), so there is exactly one place where per-node time turns
//! into system-wide statistics.

use cvm_sim::ExploreSchedule;

use crate::report::{MemMisses, MemPeaks, RunReport};

use super::DriverCore;

impl DriverCore {
    pub(super) fn build_report(&mut self) -> RunReport {
        if let Some(snap) = self.snapshot.take() {
            return snap;
        }
        self.snapshot_report()
    }

    /// Assembles a report from the current state.
    pub(super) fn snapshot_report(&self) -> RunReport {
        let mut nodes = Vec::with_capacity(self.cfg.nodes);
        let mut stats = self.stats.clone();
        for (n, ctl) in self.ctl.iter().enumerate() {
            let mut b = ctl.breakdown;
            b.clock = ctl.sched.clock;
            stats.twins_created += self.cells[n].lock().twin_creations;
            nodes.push(b);
        }
        let mut mem = MemMisses::default();
        let mut node_twin_peak = Vec::with_capacity(self.cfg.nodes);
        for cell in &self.cells {
            let c = cell.lock();
            node_twin_peak.push(c.twin_bytes_peak);
            if let Some(m) = &c.memsim {
                mem.dcache += m.dcache_misses();
                mem.dtlb += m.dtlb_misses();
                mem.itlb += m.itlb_misses();
            }
        }
        let mem_peaks = MemPeaks {
            node_twin_peak,
            node_cache_peak: self.ctl.iter().map(|c| c.cache_peak).collect(),
            node_parked_peak: self.net.parked().peaks().to_vec(),
            twin_global_peak: self.twin_global_peak,
            cache_global_peak: self.cache_global_peak,
            parked_global_peak: self.net.parked().peak_total(),
        };
        let mut report = RunReport {
            total_time: cvm_sim::VirtualTime::ZERO,
            stats,
            net: self.net.stats().clone(),
            loss: self.net.loss_stats(),
            // Failures so far; the end-of-run path overwrites both fields
            // with the final values (this snapshot is taken mid-run, so
            // "unfinished" is not meaningful here).
            failures: self.net.delivery_failures(),
            unfinished_threads: 0,
            nodes,
            mem,
            mem_peaks,
            planned_bursts: self.planned_bursts,
            burst_total_ns: self.burst_total_ns,
            // The final window may not have been retired by a later
            // planning instant; fold it here.
            overlap_saved_ns: self.overlap_saved_ns + (self.win_sum_ns - self.win_max_ns),
            hist: {
                // Fold per-node request latencies into the run histograms.
                // Node order + commutative bucket addition keeps the merge
                // independent of host-thread interleaving.
                let mut hist = self.hist.clone();
                for cell in &self.cells {
                    hist.request_ns.merge(&cell.lock().req_hist);
                }
                hist
            },
            attr: self.attr.clone(),
            trace: if self.trace.enabled() {
                Some(self.trace.clone())
            } else {
                None
            },
            spans: if self.spans.enabled() {
                Some(self.spans.clone())
            } else {
                None
            },
            findings: self.cfg.verify_sink.snapshot(),
            explore_decisions: self.explore.as_ref().map_or(0, ExploreSchedule::decisions),
            // Filled at end of run (the step log spans the whole run and
            // the fingerprint is of the *terminal* state).
            steps: None,
            state_hash: 0,
        };
        let sum = report.breakdown_sum();
        report.total_time = sum.clock;
        report.stats.user_time += sum.user;
        report.stats.wait_barrier += sum.barrier;
        report.stats.wait_fault += sum.fault;
        report.stats.wait_lock += sum.lock;
        report.stats.wait_idle += sum.idle;
        report
    }
}
