//! Transport dispatch: sending messages into the simulated network and
//! routing arrivals to the owning layer.
//!
//! Sync-service payloads (locks, barriers, reductions) go to the sync
//! layer; everything else is data-plane traffic owned by the active
//! [`Coherence`] impl. This is pure routing — no payload is interpreted
//! here and no protocol kind is consulted.

use cvm_net::{Message, NodeId};
use cvm_sim::VirtualTime;

use crate::msg::Payload;
use crate::oracle::Invariant;

use super::{Coherence, DriverCore};

impl DriverCore {
    /// Sends a payload, short-circuiting self-sends straight back into
    /// [`handle_payload`](Self::handle_payload) (the sync services route
    /// to static managers that may be the sender itself).
    pub(super) fn send(
        &mut self,
        proto: &mut dyn Coherence,
        from: usize,
        to: usize,
        payload: Payload,
        t: VirtualTime,
    ) {
        if from == to {
            self.handle_payload(proto, to, from, payload, t);
            return;
        }
        self.send_remote(from, to, payload, t);
    }

    /// Sends a payload that is known to cross the network: the coherence
    /// protocols always address a *remote* party (a page's home, a
    /// pending writer, a copyset member), so no self-send shortcut — and
    /// no `&mut dyn Coherence` reentrancy — is needed.
    pub(super) fn send_remote(&mut self, from: usize, to: usize, payload: Payload, t: VirtualTime) {
        debug_assert_ne!(from, to, "send_remote used for a self-send");
        let kind = payload.kind();
        let bytes = payload.wire_bytes();
        // The ambient causal span rides in the header's reserved bytes;
        // a remote handler's own sends inherit it, which is what links
        // child spans across nodes (self-sends stay synchronous inside
        // the same ambient context and need no stamp).
        self.net.send(
            t,
            Message::new(NodeId(from), NodeId(to), kind, bytes, payload).with_span(self.cur_span),
        );
    }

    /// Routes an arrived payload to the sync services or to the protocol.
    pub(super) fn handle_payload(
        &mut self,
        proto: &mut dyn Coherence,
        n: usize,
        src: usize,
        payload: Payload,
        t: VirtualTime,
    ) {
        match payload {
            Payload::LockRequest { lock, acquirer, vt } => {
                self.manager_handle(proto, n, lock, acquirer, vt, t);
            }
            Payload::LockForward { lock, acquirer, vt } => {
                self.forward_at(proto, n, lock, acquirer, vt, t);
            }
            Payload::LockGrant { lock, vt, notices } => {
                self.handle_lock_grant(proto, n, lock, vt, notices, t);
            }
            Payload::BarrierArrive {
                epoch,
                node,
                vt,
                notices,
            } => {
                self.oracle
                    .check(Invariant::BarrierMasterRouting, n == 0, Some(n), t, || {
                        format!("n{node}'s arrival delivered to n{n}, not the master")
                    });
                self.oracle.check(
                    Invariant::BarrierEpochAgreement,
                    epoch == self.master.epoch(),
                    Some(node),
                    t,
                    || {
                        format!(
                            "n{node} arrived for episode {epoch}, master at {}",
                            self.master.epoch()
                        )
                    },
                );
                self.master_arrive(proto, node, vt, notices, t);
            }
            Payload::ReduceArrive { node, op, value } => {
                debug_assert_eq!(n, 0, "reduce arrivals go to the master");
                self.reduce_arrive_at_master(proto, node, op, value, t);
            }
            Payload::ReduceRelease { value } => {
                self.apply_reduce_release(n, value, t);
            }
            Payload::BarrierRelease { epoch, vt, notices } => {
                // Duplicate releases (non-aggregated ablation) are stale
                // after the first: drop them so they cannot wake waiters
                // of a later episode.
                if epoch <= self.ctl[n].release_seen {
                    return;
                }
                self.ctl[n].release_seen = epoch;
                self.apply_release(proto, n, vt, notices, t);
            }
            data => proto.on_message(self, n, src, data, t),
        }
    }
}
