//! Scheduler layer: per-node run queues, wait-class accounting and the
//! non-preemptive thread switch (the paper's core mechanism — switch to
//! another ready thread on a remote request instead of spinning).
//!
//! This layer never branches on the protocol kind: a page-fault block is
//! handed to the active [`Coherence`] impl, everything else to the sync
//! services.

use cvm_sim::coop::Burst;
use cvm_sim::{SimDuration, StepRecord, SyncOp, VirtualTime};

use crate::ctx::BlockReason;
use crate::sched::WaitClass;
use crate::trace::TraceEvent;

use super::{Coherence, DriverCore, MainEvent};

impl DriverCore {
    pub(super) fn schedule_resume(&mut self, n: usize, t: VirtualTime) {
        if !self.ctl[n].sched.resume_scheduled {
            self.ctl[n].sched.resume_scheduled = true;
            self.mainq.push(t, n, MainEvent::NodeResume(n));
        }
    }

    pub(super) fn make_ready(&mut self, n: usize, tid: usize, t: VirtualTime) {
        self.ctl[n].sched.ready.push_back(tid);
        let at = self.ctl[n].sched.clock.max(t);
        self.schedule_resume(n, at);
    }

    /// Snapshot of what an idle node is waiting for, by priority.
    fn wait_class(&self, n: usize) -> WaitClass {
        let ctl = &self.ctl[n];
        if ctl.out_faults > 0 {
            WaitClass::Fault
        } else if ctl.out_locks > 0 || ctl.locks.iter().any(|l| !l.local_queue.is_empty()) {
            WaitClass::Lock
        } else if !ctl.nb.blocked.is_empty() {
            WaitClass::Barrier
        } else if ctl.sched.sleeping > 0 {
            WaitClass::Idle
        } else {
            WaitClass::Other
        }
    }

    fn begin_idle_if_needed(&mut self, n: usize) {
        let all_done = self.ctl[n].sched.all_finished();
        if !all_done && self.ctl[n].sched.idle_since.is_none() {
            let class = self.wait_class(n);
            let clock = self.ctl[n].sched.clock;
            self.ctl[n].sched.idle_since = Some((clock, class));
        }
    }

    fn settle_idle(&mut self, n: usize, until: VirtualTime) {
        if let Some((since, class)) = self.ctl[n].sched.idle_since.take() {
            if until > since {
                let d = until - since;
                let b = &mut self.ctl[n].breakdown;
                match class {
                    WaitClass::Fault => b.fault += d,
                    WaitClass::Lock => b.lock += d,
                    WaitClass::Idle => b.idle += d,
                    WaitClass::Barrier | WaitClass::Other => b.barrier += d,
                }
            }
        }
    }

    pub(super) fn run_node(&mut self, proto: &mut dyn Coherence, n: usize, t: VirtualTime) {
        let prestarted = self.take_planned(n);
        self.ctl[n].sched.resume_scheduled = false;
        if !self.ctl[n].sched.has_ready() {
            assert!(
                prestarted.is_none(),
                "pre-started burst on a node with an empty ready queue"
            );
            return;
        }
        let clock0 = self.ctl[n].sched.clock.max(t);
        self.settle_idle(n, clock0);
        self.ctl[n].sched.clock = clock0;
        let ready_len = self.ctl[n].sched.ready.len();
        // The enabled set of this transition (queue order), recorded for
        // the model checker before the pick consumes it.
        let enabled: Vec<u32> = if self.steps.is_some() {
            self.ctl[n]
                .sched
                .ready
                .iter()
                .map(|&t| u32::try_from(t).expect("tid fits u32"))
                .collect()
        } else {
            Vec::new()
        };
        let scripted = self.script.as_mut().and_then(|s| s.next(ready_len));
        let explored = if scripted.is_some() {
            None
        } else {
            self.explore.as_mut().and_then(|e| e.pick(ready_len))
        };
        let (tid, chosen) = if let Some(idx) = scripted {
            // Model-checker replay: the script pins this pick exactly.
            (
                self.ctl[n].sched.ready.remove(idx).expect("pick in range"),
                idx,
            )
        } else if let Some(idx) = explored {
            // Exploration overrides the policy with a seeded choice among
            // the ready set (budget-bounded, then the policy resumes).
            (
                self.ctl[n].sched.ready.remove(idx).expect("pick in range"),
                idx,
            )
        } else if self.cfg.lifo_schedule {
            // Memory-conscious policy: run the most recently readied
            // thread, whose working set is most likely still cached.
            (
                self.ctl[n].sched.ready.pop_back().expect("ready checked"),
                ready_len - 1,
            )
        } else {
            (
                self.ctl[n].sched.ready.pop_front().expect("ready checked"),
                0,
            )
        };
        if let Some(prev) = self.ctl[n].sched.last_ran {
            if prev != tid {
                self.ctl[n].sched.clock += self.cfg.thread_switch;
                self.ctl[n].breakdown.user += self.cfg.thread_switch;
                self.stats.thread_switches += 1;
            }
        }
        if let Some(prev) = self.ctl[n].sched.last_ran {
            if prev != tid && self.trace.enabled() {
                let at = self.ctl[n].sched.clock;
                self.trace.record(
                    at,
                    TraceEvent::ThreadSwitch {
                        node: n,
                        from: prev,
                        to: tid,
                    },
                );
            }
        }
        self.ctl[n].sched.last_ran = Some(tid);
        let burst = match prestarted {
            // The burst already ran on the host; collecting it here gives
            // the same result `resume` would have produced sequentially.
            Some(ptid) => {
                assert_eq!(ptid, tid, "window planner predicted a different pick");
                self.coop.wait(self.threads[tid].coop)
            }
            None => self.coop.resume(self.threads[tid].coop),
        };
        let consumed = SimDuration::from_ns(self.cells[n].lock().drain_burst());
        self.burst_total_ns += consumed.as_ns();
        if prestarted.is_some() {
            self.win_sum_ns += consumed.as_ns();
            self.win_max_ns = self.win_max_ns.max(consumed.as_ns());
        }
        self.ctl[n].sched.clock += consumed;
        self.ctl[n].breakdown.user += consumed;
        if self.steps.is_some() {
            self.record_step(n, tid, enabled, chosen, &burst);
        }
        match burst {
            Burst::Finished => {
                self.threads[tid].finished = true;
                self.ctl[n].sched.finished += 1;
                self.finished_total += 1;
            }
            Burst::Blocked(reason) => self.handle_reason(proto, n, tid, reason),
        }
        if self.ctl[n].sched.has_ready() {
            let at = self.ctl[n].sched.clock;
            self.schedule_resume(n, at);
        } else {
            self.begin_idle_if_needed(n);
        }
        self.sample_twin_live(n);
    }

    /// Logs one scheduling point for the model checker: the enabled set
    /// and chosen index, plus the finished burst's page footprint and the
    /// synchronization operation that ended it.
    fn record_step(
        &mut self,
        n: usize,
        tid: usize,
        enabled: Vec<u32>,
        chosen: usize,
        burst: &Burst<BlockReason>,
    ) {
        let (reads, writes) = self.cells[n].lock().drain_step_pages();
        let sync = match burst {
            Burst::Finished => SyncOp::Finish,
            Burst::Blocked(reason) => match reason {
                BlockReason::Fault { page, write } => SyncOp::Fault {
                    page: u32::try_from(page.0).expect("page fits u32"),
                    write: *write,
                },
                BlockReason::Acquire { lock } => SyncOp::Acquire {
                    lock: u32::try_from(*lock).expect("lock fits u32"),
                },
                BlockReason::Release { lock } => SyncOp::Release {
                    lock: u32::try_from(*lock).expect("lock fits u32"),
                },
                BlockReason::Barrier => SyncOp::Barrier,
                BlockReason::LocalBarrier { reduce: None } => SyncOp::LocalBarrier,
                BlockReason::LocalBarrier { reduce: Some(_) }
                | BlockReason::GlobalReduce { .. } => SyncOp::Reduce,
                BlockReason::Startup | BlockReason::EndMeasure => SyncOp::Rendezvous,
                BlockReason::Yield | BlockReason::Now | BlockReason::SleepUntil { .. } => {
                    SyncOp::Yield
                }
            },
        };
        let log = self.steps.as_mut().expect("record_step gated on steps");
        log.record(StepRecord {
            node: u32::try_from(n).expect("node fits u32"),
            thread: u32::try_from(tid).expect("tid fits u32"),
            enabled,
            chosen: u32::try_from(chosen).expect("index fits u32"),
            reads,
            writes,
            sync,
        });
    }

    /// Routes an application block reason to the owning layer.
    fn handle_reason(
        &mut self,
        proto: &mut dyn Coherence,
        n: usize,
        tid: usize,
        reason: BlockReason,
    ) {
        match reason {
            BlockReason::Fault { page, write } => proto.on_fault(self, n, tid, page, write),
            BlockReason::Acquire { lock } => self.handle_acquire(proto, n, tid, lock),
            BlockReason::Release { lock } => self.handle_release(proto, n, tid, lock),
            BlockReason::Barrier => self.handle_barrier(proto, n, tid),
            BlockReason::LocalBarrier { reduce } => self.handle_local_barrier(n, tid, reduce),
            BlockReason::GlobalReduce { reduce } => {
                self.handle_global_reduce(proto, n, tid, reduce);
            }
            BlockReason::Startup => self.handle_startup(proto),
            BlockReason::EndMeasure => self.handle_end_measure(tid),
            BlockReason::Yield => self.ctl[n].sched.ready.push_back(tid),
            BlockReason::Now => {
                // Publish the node clock (which already includes the burst
                // just drained) and resume the same thread immediately —
                // front of the queue, so no switch is charged and the read
                // is a pure observation.
                let now = self.ctl[n].sched.clock;
                self.cells[n].lock().now_ns = now.as_ns();
                self.ctl[n].sched.ready.push_front(tid);
            }
            BlockReason::SleepUntil { ns } => {
                let at = self.ctl[n].sched.clock.max(VirtualTime::from_ns(ns));
                self.ctl[n].sched.sleeping += 1;
                self.mainq.push(at, n, MainEvent::ThreadWake(n, tid));
            }
        }
    }

    pub(super) fn note_request_initiated(&mut self, n: usize) {
        self.stats.outstanding_faults += self.ctl[n].out_faults as u64;
        self.stats.outstanding_locks += self.ctl[n].out_locks as u64;
    }
}
