//! Scheduler layer: per-node run queues, wait-class accounting and the
//! non-preemptive thread switch (the paper's core mechanism — switch to
//! another ready thread on a remote request instead of spinning).
//!
//! This layer never branches on the protocol kind: a page-fault block is
//! handed to the active [`Coherence`] impl, everything else to the sync
//! services.

use cvm_sim::coop::Burst;
use cvm_sim::{SimDuration, VirtualTime};

use crate::ctx::BlockReason;
use crate::sched::WaitClass;
use crate::trace::TraceEvent;

use super::{Coherence, DriverCore, MainEvent};

impl DriverCore {
    pub(super) fn schedule_resume(&mut self, n: usize, t: VirtualTime) {
        if !self.ctl[n].sched.resume_scheduled {
            self.ctl[n].sched.resume_scheduled = true;
            self.mainq.push(t, MainEvent::NodeResume(n));
        }
    }

    pub(super) fn make_ready(&mut self, n: usize, tid: usize, t: VirtualTime) {
        self.ctl[n].sched.ready.push_back(tid);
        let at = self.ctl[n].sched.clock.max(t);
        self.schedule_resume(n, at);
    }

    /// Snapshot of what an idle node is waiting for, by priority.
    fn wait_class(&self, n: usize) -> WaitClass {
        let ctl = &self.ctl[n];
        if ctl.out_faults > 0 {
            WaitClass::Fault
        } else if ctl.out_locks > 0 || ctl.locks.iter().any(|l| !l.local_queue.is_empty()) {
            WaitClass::Lock
        } else if !ctl.nb.blocked.is_empty() {
            WaitClass::Barrier
        } else {
            WaitClass::Other
        }
    }

    fn begin_idle_if_needed(&mut self, n: usize) {
        let all_done = self.ctl[n].sched.all_finished();
        if !all_done && self.ctl[n].sched.idle_since.is_none() {
            let class = self.wait_class(n);
            let clock = self.ctl[n].sched.clock;
            self.ctl[n].sched.idle_since = Some((clock, class));
        }
    }

    fn settle_idle(&mut self, n: usize, until: VirtualTime) {
        if let Some((since, class)) = self.ctl[n].sched.idle_since.take() {
            if until > since {
                let d = until - since;
                let b = &mut self.ctl[n].breakdown;
                match class {
                    WaitClass::Fault => b.fault += d,
                    WaitClass::Lock => b.lock += d,
                    WaitClass::Barrier | WaitClass::Other => b.barrier += d,
                }
            }
        }
    }

    pub(super) fn run_node(&mut self, proto: &mut dyn Coherence, n: usize, t: VirtualTime) {
        self.ctl[n].sched.resume_scheduled = false;
        if !self.ctl[n].sched.has_ready() {
            return;
        }
        let clock0 = self.ctl[n].sched.clock.max(t);
        self.settle_idle(n, clock0);
        self.ctl[n].sched.clock = clock0;
        let explored = self
            .explore
            .as_mut()
            .and_then(|e| e.pick(self.ctl[n].sched.ready.len()));
        let tid = if let Some(idx) = explored {
            // Exploration overrides the policy with a seeded choice among
            // the ready set (budget-bounded, then the policy resumes).
            self.ctl[n].sched.ready.remove(idx).expect("pick in range")
        } else if self.cfg.lifo_schedule {
            // Memory-conscious policy: run the most recently readied
            // thread, whose working set is most likely still cached.
            self.ctl[n].sched.ready.pop_back().expect("ready checked")
        } else {
            self.ctl[n].sched.ready.pop_front().expect("ready checked")
        };
        if let Some(prev) = self.ctl[n].sched.last_ran {
            if prev != tid {
                self.ctl[n].sched.clock += self.cfg.thread_switch;
                self.ctl[n].breakdown.user += self.cfg.thread_switch;
                self.stats.thread_switches += 1;
            }
        }
        if let Some(prev) = self.ctl[n].sched.last_ran {
            if prev != tid && self.trace.enabled() {
                let at = self.ctl[n].sched.clock;
                self.trace.record(
                    at,
                    TraceEvent::ThreadSwitch {
                        node: n,
                        from: prev,
                        to: tid,
                    },
                );
            }
        }
        self.ctl[n].sched.last_ran = Some(tid);
        let burst = self.coop.resume(self.threads[tid].coop);
        let consumed = SimDuration::from_ns(self.cells[n].lock().drain_burst());
        self.ctl[n].sched.clock += consumed;
        self.ctl[n].breakdown.user += consumed;
        match burst {
            Burst::Finished => {
                self.threads[tid].finished = true;
                self.ctl[n].sched.finished += 1;
                self.finished_total += 1;
            }
            Burst::Blocked(reason) => self.handle_reason(proto, n, tid, reason),
        }
        if self.ctl[n].sched.has_ready() {
            let at = self.ctl[n].sched.clock;
            self.schedule_resume(n, at);
        } else {
            self.begin_idle_if_needed(n);
        }
    }

    /// Routes an application block reason to the owning layer.
    fn handle_reason(
        &mut self,
        proto: &mut dyn Coherence,
        n: usize,
        tid: usize,
        reason: BlockReason,
    ) {
        match reason {
            BlockReason::Fault { page, write } => proto.on_fault(self, n, tid, page, write),
            BlockReason::Acquire { lock } => self.handle_acquire(proto, n, tid, lock),
            BlockReason::Release { lock } => self.handle_release(proto, n, tid, lock),
            BlockReason::Barrier => self.handle_barrier(proto, n, tid),
            BlockReason::LocalBarrier { reduce } => self.handle_local_barrier(n, tid, reduce),
            BlockReason::GlobalReduce { reduce } => {
                self.handle_global_reduce(proto, n, tid, reduce);
            }
            BlockReason::Startup => self.handle_startup(proto),
            BlockReason::EndMeasure => self.handle_end_measure(tid),
            BlockReason::Yield => self.ctl[n].sched.ready.push_back(tid),
        }
    }

    pub(super) fn note_request_initiated(&mut self, n: usize) {
        self.stats.outstanding_faults += self.ctl[n].out_faults as u64;
        self.stats.outstanding_locks += self.ctl[n].out_locks as u64;
    }
}
